/// gate_sizing — the paper's incremental motivation (§1): after a timing
/// optimizer resizes gates, each resized cell must be re-legalized locally
/// without disturbing the rest of the placement. Demonstrates MLL's
/// instant-legalization usage: remove → swap master (wider cell) →
/// mll_place at the old location, and measures how local the disturbance
/// stays.

#include <iostream>

#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "util/rng.hpp"

int main() {
    using namespace mrlg;

    // Build and legalize a mid-density design.
    GenProfile profile;
    profile.name = "gate_sizing_demo";
    profile.num_single = 4500;
    profile.num_double = 500;
    profile.density = 0.7;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;
    SegmentGrid grid = SegmentGrid::build(db);
    if (!legalize_placement(db, grid).success) {
        std::cerr << "initial legalization failed\n";
        return 1;
    }
    std::cout << "initial placement legal: "
              << (check_legality(db, grid).legal ? "yes" : "NO") << "\n";

    // "Size up" 50 random cells: replace each by a sibling 2 sites wider
    // and re-legalize locally at the original spot.
    Rng rng(42);
    const auto movable = db.movable_cells();
    int resized = 0;
    int failed = 0;
    double total_disturbance = 0.0;
    for (int trial = 0; trial < 50; ++trial) {
        const CellId victim = movable[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(movable.size()) - 1))];
        const Cell& old_cell = db.cell(victim);
        if (!old_cell.placed()) {
            continue;
        }
        const double px = old_cell.x();
        const double py = old_cell.y();
        grid.remove(db, victim);

        const CellId upsized = db.add_cell(
            Cell(old_cell.name() + "_x2",
                 old_cell.width() + 2, old_cell.height(),
                 old_cell.rail_phase()));
        db.cell(upsized).set_gp(px, py);

        const MllResult r = mll_place(db, grid, upsized, px, py);
        if (r.success()) {
            ++resized;
            total_disturbance += r.real_cost_um;
        } else {
            // Roll back: MLL left everything untouched (abort semantics),
            // so the original cell simply returns to its slot.
            grid.place(db, victim, static_cast<SiteCoord>(px),
                       static_cast<SiteCoord>(py));
            ++failed;
        }
    }

    LegalityOptions lopts;
    lopts.require_all_placed = false;  // swapped-out originals stay out
    const LegalityReport rep = check_legality(db, grid, lopts);
    std::cout << "resized " << resized << " cells (+2 sites each), "
              << failed << " rolled back\n"
              << "placement still legal: " << (rep.legal ? "yes" : "NO")
              << "\n"
              << "avg local disturbance per resize: "
              << (resized > 0 ? total_disturbance /
                                    static_cast<double>(resized) /
                                    db.floorplan().site_w_um()
                              : 0.0)
              << " site-widths of displacement\n";
    return rep.legal ? 0 : 1;
}
