/// incremental_flow — a full physical-synthesis-style loop exercising the
/// whole library: quadratic global placement from the netlist → multi-row
/// legalization → a round of local cell moves with instant legalization
/// (the detailed-placement style of [11,12] the paper cites) → metrics at
/// every stage.

#include <iostream>

#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "gp/quadratic.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "util/rng.hpp"

int main() {
    using namespace mrlg;

    // 1. Design with netlist (generator positions are discarded below).
    GenProfile profile;
    profile.name = "incremental_flow_demo";
    profile.num_single = 3000;
    profile.num_double = 300;
    profile.density = 0.45;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;

    // 2. Our own global placement from the netlist.
    gp::QuadraticOptions qopts;
    qopts.iterations = 10;
    const gp::QuadraticStats qstats = gp::quadratic_place(db, qopts);
    std::cout << "quadratic GP: HPWL "
              << qstats.hpwl_um * 1e-6 << " m, max bin util "
              << qstats.final_max_util << "\n";

    // 3. Legalize.
    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions lopts;
    lopts.max_rounds = 128;
    const LegalizerStats lstats = legalize_placement(db, grid, lopts);
    std::cout << "legalized in " << lstats.runtime_s << " s, legal: "
              << (check_legality(db, grid).legal ? "yes" : "NO")
              << ", HPWL " << hpwl_m(db, PositionSource::kLegalized)
              << " m\n";
    if (!lstats.success) {
        return 1;
    }

    // 4. Detailed-placement pass with instant legalization: move each of
    //    200 random cells toward the median of its connected pins; each
    //    move is remove + MLL, so the placement is legal at every step.
    Rng rng(7);
    const auto movable = db.movable_cells();
    const double hpwl_before = hpwl_um(db, PositionSource::kLegalized);
    int improved = 0;
    int attempted = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const CellId c = movable[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(movable.size()) - 1))];
        Cell& cell = db.cell(c);
        if (!cell.placed() || cell.pins().empty()) {
            continue;
        }
        // Median of the other pins of this cell's nets.
        std::vector<double> xs;
        std::vector<double> ys;
        for (const PinId pid : cell.pins()) {
            const Net& net = db.net(db.pin(pid).net);
            for (const PinId qid : net.pins()) {
                const Pin& q = db.pin(qid);
                if (q.cell == c) {
                    continue;
                }
                const Cell& other = db.cell(q.cell);
                xs.push_back(other.x() + q.offset_x);
                ys.push_back(other.y() + q.offset_y);
            }
        }
        if (xs.empty()) {
            continue;
        }
        std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
        std::nth_element(ys.begin(), ys.begin() + ys.size() / 2, ys.end());
        const double tx = xs[xs.size() / 2];
        const double ty = ys[ys.size() / 2];

        ++attempted;
        const SiteCoord old_x = cell.x();
        const SiteCoord old_y = cell.y();
        const double before = hpwl_um(db, PositionSource::kLegalized);
        grid.remove(db, c);
        const MllResult r = mll_place(db, grid, c, tx, ty);
        if (!r.success()) {
            grid.place(db, c, old_x, old_y);
            continue;
        }
        const double after = hpwl_um(db, PositionSource::kLegalized);
        if (after < before) {
            ++improved;
        } else if (grid.region_free(db,
                                    Rect{old_x, old_y, cell.width(),
                                         cell.height()},
                                    c)) {
            // Not an improvement and the old slot is still free: undo.
            // (If MLL shuffled neighbours into the old slot, keep the move
            // — the placement is legal either way.)
            grid.remove(db, c);
            grid.place(db, c, old_x, old_y);
        }
    }
    const double hpwl_after = hpwl_um(db, PositionSource::kLegalized);
    const LegalityReport rep = check_legality(db, grid);
    std::cout << "detailed placement: " << improved << "/" << attempted
              << " moves kept, HPWL " << hpwl_before * 1e-6 << " m -> "
              << hpwl_after * 1e-6 << " m ("
              << (hpwl_after / hpwl_before - 1.0) * 100 << " %)\n"
              << "final legal: " << (rep.legal ? "yes" : "NO") << "\n";
    return rep.legal && hpwl_after <= hpwl_before * 1.001 ? 0 : 1;
}
