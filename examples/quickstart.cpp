/// quickstart — the smallest end-to-end use of mrlg:
/// build a tiny design, scatter a "global placement", legalize it with the
/// multi-row local legalization flow, and print the quality metrics.

#include <iostream>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "legalize/legalizer.hpp"
#include "util/rng.hpp"

int main() {
    using namespace mrlg;

    // A 20-row x 400-site die.
    Database db{Floorplan(20, 400)};

    // 300 single-row cells and 30 double-row cells with random sizes and
    // a noisy, overlapping global placement.
    Rng rng(2016);
    for (int i = 0; i < 300; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 8));
        const CellId id = db.add_cell(Cell("inst" + std::to_string(i), w, 1));
        db.cell(id).set_gp(rng.uniform01() * (400 - w),
                           rng.uniform01() * 19.0);
    }
    for (int i = 0; i < 30; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        const CellId id = db.add_cell(
            Cell("ff" + std::to_string(i), w, 2, RailPhase::kEven));
        db.cell(id).set_gp(rng.uniform01() * (400 - w),
                           rng.uniform01() * 18.0);
    }

    // A few nets so HPWL is meaningful.
    for (int n = 0; n < 200; ++n) {
        const NetId net = db.add_net("n" + std::to_string(n));
        for (int k = 0; k < 3; ++k) {
            const CellId c{static_cast<CellId::underlying>(
                rng.uniform(0, static_cast<std::int64_t>(db.num_cells()) -
                                   1))};
            db.add_pin(c, net, db.cell(c).width() / 2.0,
                       db.cell(c).height() / 2.0);
        }
    }

    SegmentGrid grid = SegmentGrid::build(db);

    LegalizerOptions opts;  // paper defaults: Rx=30, Ry=5, rail checked
    const LegalizerStats stats = legalize_placement(db, grid, opts);

    const LegalityReport report = check_legality(db, grid);
    const DisplacementStats disp = displacement_stats(db);

    std::cout << "legalized " << stats.num_cells << " cells in "
              << stats.runtime_s << " s\n"
              << "  direct placements : " << stats.direct_placements << "\n"
              << "  MLL placements    : " << stats.mll_successes << "\n"
              << "  legal             : " << (report.legal ? "yes" : "NO")
              << "\n"
              << "  avg displacement  : " << disp.avg_sites << " sites\n"
              << "  HPWL change       : " << hpwl_delta(db) * 100.0
              << " %\n";
    return report.legal && stats.success ? 0 : 1;
}
