/// legalize_bookshelf — command-line front end: read a Bookshelf design,
/// legalize it with the DAC'16 multi-row algorithm, report Table-1-style
/// metrics, and write the legalized placement (plus an optional SVG).
///
/// Usage:
///   legalize_bookshelf <design.aux> [options]
///     --out DIR      write <design>_legal.{aux,...} into DIR
///     --svg FILE     render the result as SVG
///     --relaxed      drop the power-rail parity constraint
///     --exact        exact local optimality (Table 1's "ILP" config)
///     --dp           run the detailed placer afterwards
///     --swap         run the global same-footprint swap pass
///     --polish       run the single-row polish pass afterwards
///     --report       print the placement quality report
///     --rx N --ry N  MLL window radii (default 30 / 5)
///     --demo         generate a small demo design instead of reading one\n///     --lef L --def D  read an ISPD2015-style LEF/DEF pair instead

#include <cstring>
#include <filesystem>
#include <iostream>

#include "db/segment.hpp"
#include "dp/detailed_placer.hpp"
#include "dp/row_polish.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "io/lefdef.hpp"
#include "io/svg.hpp"
#include "legalize/legalizer.hpp"

using namespace mrlg;

namespace {

const char* find_arg(int argc, char** argv, const char* key) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return argv[i + 1];
        }
    }
    return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], key) == 0) {
            return true;
        }
    }
    return false;
}

}  // namespace

int main(int argc, char** argv) {
    Database db;
    std::string design = "design";
    LefLibrary lef;          // populated in LEF/DEF mode
    bool lefdef_mode = false;
    if (find_arg(argc, argv, "--lef") != nullptr &&
        find_arg(argc, argv, "--def") != nullptr) {
        // ISPD2015-style input: --lef tech.lef --def design.def
        try {
            lef = read_lef(find_arg(argc, argv, "--lef"));
            DefReadResult r = read_def(find_arg(argc, argv, "--def"), lef);
            db = std::move(r.db);
            design = r.design_name;
            lefdef_mode = true;
        } catch (const LefDefError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    } else if (has_flag(argc, argv, "--demo")) {
        GenProfile p;
        p.name = "demo";
        p.num_single = 2000;
        p.num_double = 200;
        p.density = 0.6;
        GenResult gen = generate_benchmark(p);
        db = std::move(gen.db);
        design = "demo";
    } else {
        if (argc < 2 || argv[1][0] == '-') {
            // (reached only when neither --demo nor --lef/--def was given)
            std::cerr << "usage: legalize_bookshelf <design.aux> [--out DIR]"
                         " [--svg FILE] [--relaxed] [--exact] [--dp]"
                         " [--demo]\n";
            return 2;
        }
        try {
            BookshelfReadResult r = read_bookshelf(argv[1]);
            db = std::move(r.db);
            design = r.design_name;
        } catch (const ParseError& e) {
            std::cerr << "parse error: " << e.what() << "\n";
            return 2;
        }
        db.freeze_fixed_cells();
    }

    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    opts.mll.check_rail = !has_flag(argc, argv, "--relaxed");
    opts.mll.exact_evaluation = has_flag(argc, argv, "--exact");
    if (const char* rx = find_arg(argc, argv, "--rx")) {
        opts.mll.rx = static_cast<SiteCoord>(std::atoi(rx));
    }
    if (const char* ry = find_arg(argc, argv, "--ry")) {
        opts.mll.ry = static_cast<SiteCoord>(std::atoi(ry));
    }

    const double gp_hpwl = hpwl_m(db, PositionSource::kGlobalPlacement);
    const LegalizerStats stats = legalize_placement(db, grid, opts);
    LegalityOptions lopts;
    lopts.check_rail_alignment = opts.mll.check_rail;
    const LegalityReport rep = check_legality(db, grid, lopts);
    const DisplacementStats disp = displacement_stats(db);

    std::cout << design << ": " << db.num_single_row_cells()
              << " single-row + " << db.num_multi_row_cells()
              << " multi-row cells, density " << db.density() << "\n"
              << "  legalized in " << stats.runtime_s << " s ("
              << stats.direct_placements << " direct, "
              << stats.mll_successes << " MLL, "
              << stats.fallback_placements << " fallback, "
              << stats.ripup_placements << " rip-up)\n"
              << "  legal: " << (rep.legal ? "yes" : "NO") << "\n"
              << "  avg displacement: " << disp.avg_sites << " sites\n"
              << "  GP HPWL " << gp_hpwl << " m -> "
              << hpwl_m(db, PositionSource::kLegalized) << " m ("
              << hpwl_delta(db) * 100 << " %)\n";
    if (!rep.legal || !stats.success) {
        for (const auto& msg : rep.messages) {
            std::cerr << "  violation: " << msg << "\n";
        }
        return 1;
    }

    if (has_flag(argc, argv, "--dp")) {
        const DetailedPlacementStats d = detailed_place(db, grid);
        std::cout << "  detailed placement: " << d.moves_accepted << "/"
                  << d.moves_attempted << " moves, HPWL -"
                  << d.improvement_pct() << " % in " << d.runtime_s
                  << " s\n";
    }
    if (has_flag(argc, argv, "--swap")) {
        const SwapStats ss = swap_pass(db, grid);
        std::cout << "  global swap: " << ss.swaps_accepted << "/"
                  << ss.swaps_attempted << " swaps, HPWL "
                  << ss.hpwl_before_um * 1e-6 << " m -> "
                  << ss.hpwl_after_um * 1e-6 << " m\n";
    }
    if (has_flag(argc, argv, "--polish")) {
        const RowPolishStats rp = row_polish(db, grid);
        std::cout << "  row polish: " << rp.segments_accepted
                  << " segments improved, HPWL -" << rp.improvement_pct()
                  << " % (" << rp.segments_skipped_multirow
                  << " segments untouchable due to multi-row cells)\n";
    }

    if (has_flag(argc, argv, "--report")) {
        print_quality_report(
            make_quality_report(db, grid, opts.mll.check_rail), std::cout);
    }

    if (const char* out = find_arg(argc, argv, "--out")) {
        if (lefdef_mode) {
            std::filesystem::create_directories(out);
            const std::string def_path =
                std::string(out) + "/" + design + "_legal.def";
            write_def(db, lef, def_path, design + "_legal");
            std::cout << "  wrote " << def_path << "\n";
        } else {
            write_bookshelf(db, out, design + "_legal", false);
            std::cout << "  wrote " << out << "/" << design
                      << "_legal.aux\n";
        }
    }
    if (const char* svg = find_arg(argc, argv, "--svg")) {
        SvgOptions sopts;
        sopts.draw_gp_arrows = db.num_cells() < 5000;
        if (write_svg(db, svg, sopts)) {
            std::cout << "  wrote " << svg << "\n";
        }
    }
    return 0;
}
