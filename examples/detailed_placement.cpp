/// detailed_placement — the paper's primary flow (§6): take an ISPD2015-
/// style design with a global placement, legalize it with the multi-row
/// algorithm, and report Table-1-style metrics. Also demonstrates the
/// exact ("ILP") configuration on the same design and writes the legalized
/// result in Bookshelf format.
///
/// Usage: detailed_placement [cells] [density] [out_dir]

#include <cstdlib>
#include <iostream>

#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "legalize/legalizer.hpp"

int main(int argc, char** argv) {
    using namespace mrlg;
    const std::size_t cells =
        argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 20000;
    const double density = argc > 2 ? std::atof(argv[2]) : 0.6;
    const std::string out_dir = argc > 3 ? argv[3] : "";

    // 1. Synthesize the design (cells, nets, macros, GP positions).
    GenProfile profile;
    profile.name = "detailed_placement_demo";
    profile.num_single = cells * 9 / 10;
    profile.num_double = cells / 10;  // the paper's 10% double-height mix
    profile.density = density;
    profile.num_blockages = 3;
    profile.blockage_area_frac = 0.03;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;
    std::cout << "design: " << db.num_single_row_cells()
              << " single-row + " << db.num_multi_row_cells()
              << " double-row cells, density " << db.density() << "\n"
              << "GP HPWL: " << hpwl_m(db, PositionSource::kGlobalPlacement)
              << " m\n\n";

    // 2. Legalize with the paper's defaults (Rx=30, Ry=5, rail checked).
    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    const LegalizerStats stats = legalize_placement(db, grid, opts);
    const LegalityReport legal = check_legality(db, grid);
    const DisplacementStats disp = displacement_stats(db);

    std::cout << "MLL legalization (" << stats.runtime_s << " s):\n"
              << "  legal              : " << (legal.legal ? "yes" : "NO")
              << "\n"
              << "  direct / MLL / fb  : " << stats.direct_placements
              << " / " << stats.mll_successes << " / "
              << stats.fallback_placements << "\n"
              << "  avg disp (sites)   : " << disp.avg_sites << "\n"
              << "  max disp (sites)   : " << disp.max_sites << "\n"
              << "  HPWL change        : " << hpwl_delta(db) * 100 << " %\n";

    // 3. Same design through the exact local solver (Table 1's "ILP").
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
    LegalizerOptions exact = opts;
    exact.mll.exact_evaluation = true;
    const LegalizerStats estats = legalize_placement(db, grid, exact);
    const DisplacementStats edisp = displacement_stats(db);
    std::cout << "\nexact / ILP configuration (" << estats.runtime_s
              << " s):\n"
              << "  avg disp (sites)   : " << edisp.avg_sites << "\n"
              << "  runtime ratio      : "
              << (stats.runtime_s > 0 ? estats.runtime_s / stats.runtime_s
                                      : 0)
              << "x\n";

    // 4. Optionally export the legalized design.
    if (!out_dir.empty()) {
        write_bookshelf(db, out_dir, profile.name, false);
        std::cout << "\nwrote " << out_dir << "/" << profile.name
                  << ".{aux,nodes,nets,pl,scl}\n";
    }
    return legal.legal && stats.success ? 0 : 1;
}
