/// buffer_insertion — the paper's second incremental scenario (§1): a
/// timing tool inserts buffers on long nets; every new buffer must be
/// legalized locally at the net's midpoint without perturbing the design.
/// Finds the longest nets, drops a buffer at each net's bounding-box
/// centre via MLL, splits the net, and verifies legality plus the HPWL
/// effect.

#include <algorithm>
#include <iostream>

#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"

int main() {
    using namespace mrlg;

    GenProfile profile;
    profile.name = "buffer_insertion_demo";
    profile.num_single = 6000;
    profile.num_double = 600;
    profile.density = 0.75;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;
    SegmentGrid grid = SegmentGrid::build(db);
    if (!legalize_placement(db, grid).success) {
        std::cerr << "initial legalization failed\n";
        return 1;
    }

    // Rank nets by legalized HPWL and buffer the 100 longest.
    struct NetLen {
        NetId id;
        double len;
        double cx;
        double cy;
    };
    std::vector<NetLen> lens;
    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    for (std::size_t i = 0; i < db.nets().size(); ++i) {
        const Net& net = db.nets()[i];
        if (net.degree() < 2) {
            continue;
        }
        double xl = 1e18;
        double xh = -1e18;
        double yl = 1e18;
        double yh = -1e18;
        for (const PinId pid : net.pins()) {
            const Pin& p = db.pin(pid);
            const Cell& c = db.cell(p.cell);
            xl = std::min(xl, c.x() + p.offset_x);
            xh = std::max(xh, c.x() + p.offset_x);
            yl = std::min(yl, c.y() + p.offset_y);
            yh = std::max(yh, c.y() + p.offset_y);
        }
        lens.push_back(NetLen{NetId{static_cast<NetId::underlying>(i)},
                              (xh - xl) * sw + (yh - yl) * sh,
                              (xl + xh) / 2, (yl + yh) / 2});
    }
    std::sort(lens.begin(), lens.end(),
              [](const NetLen& a, const NetLen& b) { return a.len > b.len; });

    int inserted = 0;
    int failed = 0;
    double total_offset_sites = 0.0;
    for (std::size_t i = 0; i < std::min<std::size_t>(100, lens.size());
         ++i) {
        const NetLen& n = lens[i];
        const CellId buf = db.add_cell(
            Cell("buf" + std::to_string(i), 2, 1, RailPhase::kEven));
        db.cell(buf).set_gp(n.cx, n.cy);
        const MllResult r = mll_place(db, grid, buf, n.cx, n.cy);
        if (!r.success()) {
            ++failed;
            continue;
        }
        ++inserted;
        total_offset_sites += std::abs(r.x - n.cx) +
                              std::abs(r.y - n.cy) * sh / sw;
        // Hook the buffer into the net (models the repeater tap).
        db.add_pin(buf, n.id, 1.0, 0.5);
    }

    LegalityOptions lopts;
    const LegalityReport rep = check_legality(db, grid, lopts);
    std::cout << "inserted " << inserted << " buffers (" << failed
              << " failed)\n"
              << "placement legal: " << (rep.legal ? "yes" : "NO") << "\n"
              << "avg buffer offset from net centre: "
              << (inserted > 0
                      ? total_offset_sites / static_cast<double>(inserted)
                      : 0.0)
              << " sites\n"
              << "post-insertion HPWL: "
              << hpwl_m(db, PositionSource::kLegalized) << " m\n";
    return rep.legal && failed == 0 ? 0 : 1;
}
