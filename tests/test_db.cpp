#include <gtest/gtest.h>

#include "db/database.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"

namespace mrlg::test {
namespace {

TEST(Floorplan, RectangularConstructor) {
    const Floorplan fp(10, 100);
    EXPECT_EQ(fp.num_rows(), 10);
    EXPECT_EQ(fp.row(3).num_sites, 100);
    EXPECT_EQ(fp.row(3).y, 3);
    EXPECT_EQ(fp.die(), (Rect{0, 0, 100, 10}));
    EXPECT_EQ(fp.free_site_area(), 1000);
}

TEST(Floorplan, RailPhaseAlternates) {
    const Floorplan fp(4, 10);
    EXPECT_EQ(fp.row(0).rail_phase(), RailPhase::kEven);
    EXPECT_EQ(fp.row(1).rail_phase(), RailPhase::kOdd);
    EXPECT_EQ(fp.row(2).rail_phase(), RailPhase::kEven);
}

TEST(Floorplan, BlockageReducesFreeArea) {
    Floorplan fp(10, 100);
    fp.add_blockage(Rect{10, 2, 20, 3});
    EXPECT_EQ(fp.free_site_area(), 1000 - 60);
}

TEST(Floorplan, OverlappingBlockagesNotDoubleCounted) {
    Floorplan fp(10, 100);
    fp.add_blockage(Rect{10, 0, 20, 1});
    fp.add_blockage(Rect{20, 0, 20, 1});  // overlaps [20,30)
    EXPECT_EQ(fp.free_site_area(), 1000 - 30);
}

TEST(Floorplan, BlockageOutsideDieClamped) {
    Floorplan fp(4, 10);
    fp.add_blockage(Rect{-5, -5, 8, 20});  // covers x [0,3) on all rows
    EXPECT_EQ(fp.free_site_area(), 4 * 10 - 4 * 3);
}

TEST(Floorplan, NonContiguousRowAddAsserts) {
    Floorplan fp;
    fp.add_row(Row{0, 0, 10});
    EXPECT_THROW(fp.add_row(Row{2, 0, 10}), AssertionError);
}

TEST(Cell, EvenHeightDetection) {
    EXPECT_FALSE(Cell("a", 2, 1).even_height());
    EXPECT_TRUE(Cell("b", 2, 2).even_height());
    EXPECT_FALSE(Cell("c", 2, 3).even_height());
    EXPECT_TRUE(Cell("d", 2, 4).even_height());
}

TEST(Cell, PlacementLifecycle) {
    Cell c("x", 3, 2);
    EXPECT_FALSE(c.placed());
    c.set_pos(5, 4);
    EXPECT_TRUE(c.placed());
    EXPECT_EQ(c.rect(), (Rect{5, 4, 3, 2}));
    c.unplace();
    EXPECT_FALSE(c.placed());
}

TEST(Database, AddAndFindCells) {
    Database db(Floorplan(4, 50));
    const CellId a = db.add_cell(Cell("a", 2, 1));
    const CellId b = db.add_cell(Cell("b", 3, 2));
    EXPECT_EQ(db.num_cells(), 2u);
    EXPECT_EQ(db.find_cell("a"), a);
    EXPECT_EQ(db.find_cell("b"), b);
    EXPECT_FALSE(db.find_cell("zzz").valid());
}

TEST(Database, DuplicateCellNameAsserts) {
    Database db(Floorplan(4, 50));
    db.add_cell(Cell("a", 2, 1));
    EXPECT_THROW(db.add_cell(Cell("a", 1, 1)), AssertionError);
}

TEST(Database, ZeroSizeCellAsserts) {
    Database db(Floorplan(4, 50));
    EXPECT_THROW(db.add_cell(Cell("bad", 0, 1)), AssertionError);
    EXPECT_THROW(db.add_cell(Cell("bad2", 1, 0)), AssertionError);
}

TEST(Database, NetsAndPins) {
    Database db(Floorplan(4, 50));
    const CellId a = db.add_cell(Cell("a", 2, 1));
    const CellId b = db.add_cell(Cell("b", 3, 1));
    const NetId n = db.add_net("n1");
    const PinId p1 = db.add_pin(a, n, 1.0, 0.5);
    const PinId p2 = db.add_pin(b, n, 0.0, 0.5);
    EXPECT_EQ(db.net(n).degree(), 2u);
    EXPECT_EQ(db.pin(p1).cell, a);
    EXPECT_EQ(db.pin(p2).cell, b);
    EXPECT_EQ(db.cell(a).pins().size(), 1u);
    EXPECT_EQ(db.find_net("n1"), n);
    EXPECT_FALSE(db.find_net("nope").valid());
}

TEST(Database, MovableCellsExcludesFixed) {
    Database db(Floorplan(4, 50));
    db.add_cell(Cell("m", 2, 1));
    Cell fixed("f", 4, 2, RailPhase::kEven, /*fixed=*/true);
    fixed.set_pos(10, 1);
    db.add_cell(std::move(fixed));
    const auto movable = db.movable_cells();
    ASSERT_EQ(movable.size(), 1u);
    EXPECT_EQ(db.cell(movable[0]).name(), "m");
}

TEST(Database, DensityComputation) {
    Database db(Floorplan(10, 100));  // free area 1000
    db.add_cell(Cell("a", 50, 1));
    db.add_cell(Cell("b", 50, 2));  // area 100
    EXPECT_NEAR(db.density(), 150.0 / 1000.0, 1e-12);
}

TEST(Database, SingleAndMultiRowCounts) {
    Database db(Floorplan(10, 100));
    db.add_cell(Cell("a", 2, 1));
    db.add_cell(Cell("b", 2, 2));
    db.add_cell(Cell("c", 2, 3));
    EXPECT_EQ(db.num_single_row_cells(), 1u);
    EXPECT_EQ(db.num_multi_row_cells(), 2u);
}

TEST(Database, FreezeFixedCellsAddsBlockages) {
    Database db(Floorplan(10, 100));
    Cell fixed("macro", 20, 4, RailPhase::kEven, true);
    fixed.set_pos(30, 2);
    db.add_cell(std::move(fixed));
    db.freeze_fixed_cells();
    ASSERT_EQ(db.floorplan().blockages().size(), 1u);
    EXPECT_EQ(db.floorplan().blockages()[0], (Rect{30, 2, 20, 4}));
}

TEST(Database, FreezeUnplacedFixedAsserts) {
    Database db(Floorplan(10, 100));
    db.add_cell(Cell("macro", 20, 4, RailPhase::kEven, true));
    EXPECT_THROW(db.freeze_fixed_cells(), AssertionError);
}

TEST(Database, BadIdAccessAsserts) {
    Database db(Floorplan(4, 50));
    EXPECT_THROW(db.cell(CellId{0}), AssertionError);
    db.add_cell(Cell("a", 1, 1));
    EXPECT_NO_THROW(db.cell(CellId{0}));
    EXPECT_THROW(db.cell(CellId{1}), AssertionError);
    EXPECT_THROW(db.cell(CellId{}), AssertionError);
}

}  // namespace
}  // namespace mrlg::test
