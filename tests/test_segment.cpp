#include <gtest/gtest.h>

#include "db/segment.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"

namespace mrlg::test {
namespace {

TEST(SegmentGrid, BuildWithoutBlockages) {
    Database db = empty_design(4, 100);
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_EQ(grid.num_segments(), 4u);
    for (SiteCoord y = 0; y < 4; ++y) {
        const auto segs = grid.row_segments(y);
        ASSERT_EQ(segs.size(), 1u);
        EXPECT_EQ(grid.segment(segs[0]).span, (Span{0, 100}));
        EXPECT_EQ(grid.segment(segs[0]).y, y);
    }
}

TEST(SegmentGrid, BlockageSplitsRow) {
    Database db = empty_design(2, 100);
    db.floorplan().add_blockage(Rect{40, 0, 10, 1});  // row 0 only
    const SegmentGrid grid = SegmentGrid::build(db);
    const auto row0 = grid.row_segments(0);
    ASSERT_EQ(row0.size(), 2u);
    EXPECT_EQ(grid.segment(row0[0]).span, (Span{0, 40}));
    EXPECT_EQ(grid.segment(row0[1]).span, (Span{50, 100}));
    EXPECT_EQ(grid.row_segments(1).size(), 1u);
}

TEST(SegmentGrid, BlockageAtRowEdge) {
    Database db = empty_design(1, 100);
    db.floorplan().add_blockage(Rect{0, 0, 10, 1});
    db.floorplan().add_blockage(Rect{90, 0, 10, 1});
    const SegmentGrid grid = SegmentGrid::build(db);
    const auto row0 = grid.row_segments(0);
    ASSERT_EQ(row0.size(), 1u);
    EXPECT_EQ(grid.segment(row0[0]).span, (Span{10, 90}));
}

TEST(SegmentGrid, FullyBlockedRowHasNoSegments) {
    Database db = empty_design(2, 50);
    db.floorplan().add_blockage(Rect{0, 1, 50, 1});
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_EQ(grid.row_segments(1).size(), 0u);
    EXPECT_EQ(grid.row_segments(0).size(), 1u);
}

TEST(SegmentGrid, ContainingSegment) {
    Database db = empty_design(1, 100);
    db.floorplan().add_blockage(Rect{40, 0, 10, 1});
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_TRUE(grid.containing_segment(0, Span{0, 40}).valid());
    EXPECT_TRUE(grid.containing_segment(0, Span{50, 100}).valid());
    EXPECT_FALSE(grid.containing_segment(0, Span{35, 55}).valid());
    EXPECT_FALSE(grid.containing_segment(0, Span{38, 45}).valid());
    EXPECT_FALSE(grid.containing_segment(1, Span{0, 10}).valid());
    EXPECT_FALSE(grid.containing_segment(-1, Span{0, 10}).valid());
}

TEST(SegmentGrid, PlaceSingleRowCell) {
    Database db = empty_design(2, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "a", 10, 0, 5, 1);
    EXPECT_TRUE(db.cell(c).placed());
    const Segment& seg = grid.segment(grid.row_segments(0)[0]);
    ASSERT_EQ(seg.cells.size(), 1u);
    EXPECT_EQ(seg.cells[0], c);
    EXPECT_EQ(grid.segment(grid.row_segments(1)[0]).cells.size(), 0u);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(SegmentGrid, PlaceMultiRowCellAppearsInAllRows) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "m", 20, 1, 4, 3);
    for (SiteCoord y = 1; y <= 3; ++y) {
        const Segment& seg = grid.segment(grid.row_segments(y)[0]);
        ASSERT_EQ(seg.cells.size(), 1u) << "row " << y;
        EXPECT_EQ(seg.cells[0], c);
    }
    EXPECT_EQ(grid.segment(grid.row_segments(0)[0]).cells.size(), 0u);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(SegmentGrid, ListsStaySortedByX) {
    Database db = empty_design(1, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "b", 50, 0, 5, 1);
    add_placed(db, grid, "a", 10, 0, 5, 1);
    add_placed(db, grid, "c", 70, 0, 5, 1);
    add_placed(db, grid, "mid", 30, 0, 5, 1);
    const Segment& seg = grid.segment(grid.row_segments(0)[0]);
    ASSERT_EQ(seg.cells.size(), 4u);
    SiteCoord prev = -1;
    for (const CellId id : seg.cells) {
        EXPECT_GT(db.cell(id).x(), prev);
        prev = db.cell(id).x();
    }
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(SegmentGrid, RemoveCell) {
    Database db = empty_design(2, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "m", 20, 0, 4, 2);
    grid.remove(db, c);
    EXPECT_FALSE(db.cell(c).placed());
    EXPECT_EQ(grid.segment(grid.row_segments(0)[0]).cells.size(), 0u);
    EXPECT_EQ(grid.segment(grid.row_segments(1)[0]).cells.size(), 0u);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(SegmentGrid, RegionFreeDetectsOverlap) {
    Database db = empty_design(3, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "m", 20, 0, 4, 2);
    EXPECT_FALSE(grid.region_free(db, Rect{22, 1, 4, 1}));
    EXPECT_TRUE(grid.region_free(db, Rect{24, 0, 4, 2}));
    EXPECT_TRUE(grid.region_free(db, Rect{22, 2, 4, 1}));
    EXPECT_TRUE(grid.region_free(db, Rect{22, 1, 4, 1}, c));  // ignore self
}

TEST(SegmentGrid, PlaceableChecksContainmentAndOverlap) {
    Database db = empty_design(2, 100);
    db.floorplan().add_blockage(Rect{40, 0, 10, 2});
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 10, 0, 5, 1);
    EXPECT_FALSE(grid.placeable(db, Rect{12, 0, 4, 1}));  // overlaps a
    EXPECT_FALSE(grid.placeable(db, Rect{38, 0, 6, 1}));  // crosses blockage
    EXPECT_FALSE(grid.placeable(db, Rect{96, 0, 6, 1}));  // off die
    EXPECT_FALSE(grid.placeable(db, Rect{20, 1, 4, 2}));  // above top row
    EXPECT_TRUE(grid.placeable(db, Rect{20, 0, 4, 1}));
    EXPECT_TRUE(grid.placeable(db, Rect{50, 0, 10, 2}));
}

TEST(SegmentGrid, PlaceOutsideSegmentAsserts) {
    Database db = empty_design(2, 100);
    db.floorplan().add_blockage(Rect{40, 0, 10, 1});
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = db.add_cell(Cell("x", 12, 1));
    EXPECT_THROW(grid.place(db, c, 35, 0), AssertionError);
    EXPECT_FALSE(db.cell(c).placed());
}

TEST(SegmentGrid, DoublePlaceAsserts) {
    Database db = empty_design(2, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "a", 0, 0, 2, 1);
    EXPECT_THROW(grid.place(db, c, 10, 0), AssertionError);
}

TEST(SegmentGrid, OrientationFlipsForOddHeightCells) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a =
        add_placed(db, grid, "a", 0, 0, 2, 1, RailPhase::kEven);
    const CellId b =
        add_placed(db, grid, "b", 10, 1, 2, 1, RailPhase::kEven);
    EXPECT_EQ(db.cell(a).orient(), Orient::kN);   // parity matches
    EXPECT_EQ(db.cell(b).orient(), Orient::kFS);  // flipped
}

TEST(SegmentGrid, CellsOverlappingRange) {
    Database db = empty_design(1, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 10, 1);
    add_placed(db, grid, "b", 20, 0, 10, 1);
    add_placed(db, grid, "c", 40, 0, 10, 1);
    const Segment& seg = grid.segment(grid.row_segments(0)[0]);
    // Range straddling a's tail and b fully.
    const auto [f1, l1] = grid.cells_overlapping(db, seg, Span{5, 35});
    EXPECT_EQ(l1 - f1, 2u);
    // Range touching nothing (gap between b and c).
    const auto [f2, l2] = grid.cells_overlapping(db, seg, Span{31, 39});
    EXPECT_EQ(l2 - f2, 0u);
    // Full range.
    const auto [f3, l3] = grid.cells_overlapping(db, seg, Span{0, 100});
    EXPECT_EQ(l3 - f3, 3u);
}

TEST(SegmentGrid, IndexInFindsCells) {
    Database db = empty_design(1, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 10, 1);
    const CellId b = add_placed(db, grid, "b", 20, 0, 10, 1);
    const Segment& seg = grid.segment(grid.row_segments(0)[0]);
    EXPECT_EQ(grid.index_in(db, seg, a), 0u);
    EXPECT_EQ(grid.index_in(db, seg, b), 1u);
}

TEST(SegmentGrid, AuditDetectsManualCorruption) {
    Database db = empty_design(1, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 10, 1);
    // Corrupt the position behind the grid's back: now the cell escapes
    // its recorded slot.
    db.cell(a).set_x(95);
    EXPECT_FALSE(grid.audit(db).empty());
}

TEST(SegmentGrid, RandomizedAuditAlwaysClean) {
    Rng rng(99);
    for (int trial = 0; trial < 5; ++trial) {
        RandomDesign d = random_legal_design(rng, 12, 120, 60, 0.3);
        EXPECT_TRUE(d.grid.audit(d.db).empty()) << "trial " << trial;
    }
}

}  // namespace
}  // namespace mrlg::test
