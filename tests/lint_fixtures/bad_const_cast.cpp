// Known-bad fixture for tools/analyze_effects.py (never compiled). The
// marked function launders the const contract with const_cast and then
// calls a setter — the analyzer must report const-cast (and the setter
// call as plan-mutation).

struct Cell {
    int x = 0;
    void set_x(int v) { x = v; }
    int width() const { return 1; }
};
struct Database {
    Cell c;
    const Cell& cell(int) const { return c; }
};

namespace mrlg_fixture {

MRLG_EFFECT_READONLY
int sneaky_plan(const Database& db, int cell) {
    const Cell& c = db.cell(cell);
    const_cast<Cell&>(c).set_x(42);
    return c.width();
}

}  // namespace mrlg_fixture
