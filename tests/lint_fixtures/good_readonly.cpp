// Known-good fixture for tools/analyze_effects.py (never compiled). A
// well-behaved planning closure: const receivers everywhere, scratch
// passed explicitly, thread_local allowed, dispatch pauses the tracer.
// The analyzer must report nothing.

struct Cell {
    int width() const { return 2; }
};
struct Database {
    Cell c;
    const Cell& cell(int) const { return c; }
    int num_cells() const { return 1; }
};
struct Scratch {
    int buffer[16];
};

namespace mrlg_fixture {

int measure(const Database& db, int cell, Scratch* scratch) {
    thread_local Scratch fallback;
    Scratch& s = scratch ? *scratch : fallback;
    s.buffer[0] = db.cell(cell).width();
    return s.buffer[0];
}

MRLG_EFFECT_READONLY
int clean_plan(const Database& db, int cell, Scratch* scratch) {
    int total = 0;
    for (int i = 0; i < db.num_cells(); ++i) {
        total += measure(db, cell, scratch);
    }
    return total;
}

void run_plan_wave(const Database& db, int n, int threads) {
    MRLG_OBS_PHASE("plan");
    obs::TracerPause pause;
    parallel_for(n, 1, threads, [&](int begin, int end) {
        Scratch scratch;
        for (int i = begin; i < end; ++i) {
            clean_plan(db, i, &scratch);
        }
    });
}

}  // namespace mrlg_fixture
