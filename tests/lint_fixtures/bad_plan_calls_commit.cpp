// Known-bad fixture for tools/analyze_effects.py (never compiled; see
// tests/test_analyze_effects.py). A function marked MRLG_EFFECT_READONLY
// reaches mll_commit through a helper — the analyzer must report a
// plan-mutation finding with the two-hop witness chain.

struct Database {
    int cells = 0;
};
struct SegmentGrid {
    int segments = 0;
};
struct MllPlan {
    bool ok = false;
};
struct MllResult {
    bool ok = false;
};

MllResult mll_commit(Database& db, SegmentGrid& grid, int cell,
                     const MllPlan& plan);

namespace mrlg_fixture {

MllPlan plan_and_apply_eagerly(Database& db, SegmentGrid& grid, int cell) {
    MllPlan plan;
    plan.ok = true;
    // The bug under test: the "planning" helper commits immediately.
    mll_commit(db, grid, cell, plan);
    return plan;
}

MRLG_EFFECT_READONLY
MllPlan my_plan(Database& db, SegmentGrid& grid, int cell) {
    return plan_and_apply_eagerly(db, grid, cell);
}

}  // namespace mrlg_fixture
