// Seeded violation for the `timeline-isolation` determinism rule: a
// worker-visible timeline file reaching for the serial Tracer. The
// Tracer is single-threaded by contract; calling it from code that pool
// workers execute is a data race. The linter must flag every access
// token below (tests/test_analyze_effects.py asserts it does).

namespace mrlg::obs {

class Tracer;
Tracer* current_tracer();

void record_span_badly() {
    // BAD: worker-path code consulting the ambient serial tracer.
    Tracer* t = current_tracer();
    (void)t;
}

}  // namespace mrlg::obs
