// Known-bad fixture for tools/analyze_effects.py (never compiled). A
// plan-phase parallel_for dispatch without obs::TracerPause: the workers
// would race on the ambient tracer. The analyzer must report
// tracer-pause.

struct Database {
    int cells = 0;
};

namespace mrlg_fixture {

int plan_one(const Database& db, int cell);

void run_plan_wave(const Database& db, int n, int threads) {
    MRLG_OBS_PHASE("plan");
    parallel_for(n, 1, threads, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
            plan_one(db, i);
        }
    });
}

int plan_one(const Database& db, int cell) { return db.cells + cell; }

}  // namespace mrlg_fixture
