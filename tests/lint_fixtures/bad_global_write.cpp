// Known-bad fixture for tools/analyze_effects.py (never compiled). The
// marked function mutates a namespace-scope global and keeps mutable
// function-local static state — both race under the concurrent plan
// fan-out; the analyzer must report global-state for each.

namespace mrlg_fixture {

int g_plan_calls = 0;

MRLG_EFFECT_READONLY
int counting_plan(int cell) {
    static int fast_path_hits = 0;
    g_plan_calls += 1;
    if (cell == 0) {
        ++fast_path_hits;
    }
    return g_plan_calls + fast_path_hits;
}

}  // namespace mrlg_fixture
