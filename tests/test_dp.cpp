#include <gtest/gtest.h>

#include "dp/detailed_placer.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

struct DpFixture {
    Database db;
    SegmentGrid grid;
};

/// Legalized design with a netlist; extra gp noise leaves HPWL slack for
/// the detailed placer to recover.
DpFixture legalized_design(std::uint64_t seed, std::size_t cells = 800,
                           double density = 0.5) {
    GenProfile p;
    p.name = "dp";
    p.num_single = cells * 9 / 10;
    p.num_double = cells / 10;
    p.density = density;
    p.seed = seed;
    p.gp_sigma_x = 3.0;
    p.gp_sigma_y = 0.8;
    GenResult gen = generate_benchmark(p);
    DpFixture f{std::move(gen.db), SegmentGrid{}};
    f.grid = SegmentGrid::build(f.db);
    LegalizerOptions opts;
    MRLG_ASSERT(legalize_placement(f.db, f.grid, opts).success,
                "fixture legalization failed");
    return f;
}

TEST(DetailedPlacer, ImprovesHpwlAndStaysLegal) {
    DpFixture f = legalized_design(11);
    const double before = hpwl_um(f.db, PositionSource::kLegalized);
    const DetailedPlacementStats stats = detailed_place(f.db, f.grid);
    EXPECT_GT(stats.moves_attempted, 0u);
    EXPECT_GT(stats.moves_accepted, 0u);
    EXPECT_LT(stats.hpwl_after_um, stats.hpwl_before_um);
    EXPECT_NEAR(stats.hpwl_before_um, before, before * 1e-9);
    // Cache bookkeeping agrees with a from-scratch evaluation.
    EXPECT_NEAR(stats.hpwl_after_um,
                hpwl_um(f.db, PositionSource::kLegalized),
                stats.hpwl_after_um * 1e-9 + 1e-9);
    const LegalityReport rep = check_legality(f.db, f.grid);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    EXPECT_TRUE(f.grid.audit(f.db).empty());
    EXPECT_GT(stats.improvement_pct(), 0.0);
}

TEST(DetailedPlacer, NeverIncreasesHpwl) {
    // Run it twice: the second run starts from an optimized placement and
    // must not make things worse (moves are accept-if-improves).
    DpFixture f = legalized_design(13);
    const DetailedPlacementStats s1 = detailed_place(f.db, f.grid);
    const DetailedPlacementStats s2 = detailed_place(f.db, f.grid);
    EXPECT_LE(s1.hpwl_after_um, s1.hpwl_before_um);
    EXPECT_LE(s2.hpwl_after_um, s2.hpwl_before_um + 1e-9);
    EXPECT_TRUE(check_legality(f.db, f.grid).legal);
}

TEST(DetailedPlacer, DeterministicForSameInput) {
    double results[2];
    for (int run = 0; run < 2; ++run) {
        DpFixture f = legalized_design(17);
        results[run] = detailed_place(f.db, f.grid).hpwl_after_um;
    }
    EXPECT_EQ(results[0], results[1]);
}

TEST(DetailedPlacer, NoNetsIsANoop) {
    Rng rng(19);
    RandomDesign d = random_legal_design(rng, 8, 100, 60, 0.2);
    const DetailedPlacementStats stats = detailed_place(d.db, d.grid);
    EXPECT_EQ(stats.moves_attempted, 0u);
    EXPECT_EQ(stats.hpwl_before_um, stats.hpwl_after_um);
}

TEST(DetailedPlacer, RespectsRailConstraint) {
    DpFixture f = legalized_design(23, 600, 0.5);
    detailed_place(f.db, f.grid);
    for (const Cell& c : f.db.cells()) {
        if (!c.fixed() && c.even_height()) {
            EXPECT_TRUE(rail_compatible(c.y(), c.height(), c.rail_phase()));
        }
    }
}

TEST(DetailedPlacer, RelaxedRailRecoversMore) {
    // Without the parity constraint double-height cells have twice the
    // candidate rows, so the optimizer should do at least as well.
    double imp[2];
    for (int mode = 0; mode < 2; ++mode) {
        DpFixture f = legalized_design(29, 700, 0.45);
        DetailedPlacementOptions opts;
        opts.mll.check_rail = mode == 0;
        imp[mode] = detailed_place(f.db, f.grid, opts).improvement_pct();
        LegalityOptions lopts;
        lopts.check_rail_alignment = mode == 0;
        EXPECT_TRUE(check_legality(f.db, f.grid, lopts).legal);
    }
    EXPECT_GE(imp[1], imp[0] * 0.8);  // loose: different search landscapes
}

TEST(DetailedPlacer, ConvergesWithinPassLimit) {
    DpFixture f = legalized_design(31, 400, 0.4);
    DetailedPlacementOptions opts;
    opts.max_passes = 20;
    const DetailedPlacementStats stats = detailed_place(f.db, f.grid, opts);
    // Accept-if-improves (exact HPWL delta, min-gain threshold) converges
    // well before 20 passes on 400 cells.
    EXPECT_LT(stats.passes, 20);
    EXPECT_TRUE(check_legality(f.db, f.grid).legal);
}

TEST(DetailedPlacer, GainOrderingNotWorseThanIdOrder) {
    double after[2];
    for (int mode = 0; mode < 2; ++mode) {
        DpFixture f = legalized_design(37);
        DetailedPlacementOptions opts;
        opts.gain_ordered = mode == 1;
        opts.max_passes = 1;
        after[mode] = detailed_place(f.db, f.grid, opts).hpwl_after_um;
    }
    // Same pass budget: gain-first should recover at least ~as much.
    EXPECT_LE(after[1], after[0] * 1.02);
}

TEST(SwapPass, SwapsTwoCellsInEachOthersSpot) {
    // a is wired to pins on the right, b to pins on the left, but they sit
    // on the wrong sides: one swap fixes both.
    Database db = empty_design(2, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    Cell anchor_l("pad_l", 2, 1, RailPhase::kEven, true);
    anchor_l.set_pos(0, 0);
    const CellId pl = db.add_cell(std::move(anchor_l));
    Cell anchor_r("pad_r", 2, 1, RailPhase::kEven, true);
    anchor_r.set_pos(98, 0);
    const CellId pr = db.add_cell(std::move(anchor_r));
    const CellId a = add_placed(db, grid, "a", 10, 1, 4, 1);
    const CellId b = add_placed(db, grid, "b", 80, 1, 4, 1);
    const NetId na = db.add_net("na");
    db.add_pin(a, na, 2.0, 0.5);
    db.add_pin(pr, na, 1.0, 0.5);  // a wants to be right
    const NetId nb = db.add_net("nb");
    db.add_pin(b, nb, 2.0, 0.5);
    db.add_pin(pl, nb, 1.0, 0.5);  // b wants to be left
    SwapOptions opts;
    opts.radius = 100;
    const SwapStats s = swap_pass(db, grid, opts);
    EXPECT_GE(s.swaps_accepted, 1u);
    EXPECT_EQ(db.cell(a).x(), 80);
    EXPECT_EQ(db.cell(b).x(), 10);
    EXPECT_LT(s.hpwl_after_um, s.hpwl_before_um);
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(SwapPass, NeverWorsensAndStaysLegal) {
    DpFixture f = legalized_design(43);
    const SwapStats s = swap_pass(f.db, f.grid);
    EXPECT_LE(s.hpwl_after_um, s.hpwl_before_um + 1e-9);
    EXPECT_NEAR(s.hpwl_after_um, hpwl_um(f.db, PositionSource::kLegalized),
                1e-6);
    EXPECT_TRUE(check_legality(f.db, f.grid).legal);
    EXPECT_TRUE(f.grid.audit(f.db).empty());
}

TEST(SwapPass, ComplementsMedianMoves) {
    // swap after move: combined recovery is at least the move-only one.
    double move_only = 0;
    double combined = 0;
    for (int mode = 0; mode < 2; ++mode) {
        DpFixture f = legalized_design(47);
        detailed_place(f.db, f.grid);
        if (mode == 1) {
            swap_pass(f.db, f.grid);
        }
        const double hp = hpwl_um(f.db, PositionSource::kLegalized);
        (mode == 0 ? move_only : combined) = hp;
        EXPECT_TRUE(check_legality(f.db, f.grid).legal);
    }
    EXPECT_LE(combined, move_only + 1e-9);
}

TEST(MllUndo, ExactlyRestoresState) {
    Rng rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        RandomDesign d = random_legal_design(rng, 10, 120, 80, 0.3);
        // Snapshot all positions.
        std::vector<Point> snapshot;
        for (const Cell& c : d.db.cells()) {
            snapshot.push_back(c.pos());
        }
        const double px = static_cast<double>(rng.uniform(5, 110));
        const double py = static_cast<double>(rng.uniform(0, 9));
        const CellId t = add_unplaced(d.db, "t", px, py, 4, 1);
        const MllResult r = mll_place(d.db, d.grid, t, px, py);
        if (!r.success()) {
            continue;
        }
        mll_undo(d.db, d.grid, t, r);
        EXPECT_FALSE(d.db.cell(t).placed());
        for (std::size_t i = 0; i < snapshot.size(); ++i) {
            EXPECT_EQ(d.db.cells()[i].pos(), snapshot[i]) << "trial "
                                                          << trial;
        }
        EXPECT_TRUE(d.grid.audit(d.db).empty());
    }
}

}  // namespace
}  // namespace mrlg::test
