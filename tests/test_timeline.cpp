/// \file test_timeline.cpp
/// The wall-clock Timeline's core contracts (obs/timeline.hpp):
///
///   * the post-run merge is ordered by the stable {wave, slot, task} key
///     — NOT by timestamp, lane, or thread arrival — so arbitrarily
///     different thread interleavings (forced here through the pool's
///     test-only chunk hook) merge to the identical event sequence;
///   * ring overflow and lane exhaustion are *reported* as
///     dropped_events, never silent;
///   * the derived schedule metrics match their documented formulas;
///   * deterministic (tick-clock) run reports stay byte-identical whether
///     or not a timeline is installed — the golden-tier guarantee;
///   * the Chrome trace export has the trace-event shape Perfetto loads.
///
/// Lives in the `parallel` ctest tier: the TSan CI stage re-runs these
/// tests with real pool workers racing the lock-free lanes.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "obs/run_report.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mrlg::test {
namespace {

using obs::ScheduleReport;
using obs::Timeline;
using obs::TimelineEventKind;
using obs::TimelineKey;

// ---------------------------------------------------------------------------
// Merge ordering and overflow accounting.

TEST(Timeline, MergeOrdersByStableKeyNotByTimestamp) {
    Timeline tl;
    // Recorded deliberately out of key order, with timestamps *reversed*
    // relative to the key order: the merge must follow the key.
    tl.span("plan.task", {2, 0, 7}, 900, 950);
    tl.span("plan.task", {1, 1, 4}, 500, 600);
    tl.instant("queue", {1, 1, 4});
    tl.span("plan.task", {1, 0, 9}, 700, 800);
    tl.span("wave", {1, 0, 0}, 100, 200);

    const std::vector<Timeline::MergedEvent> merged = tl.merge();
    ASSERT_EQ(merged.size(), 5u);
    // (1,0,0) wave < (1,0,9) task < (1,1,4) task < instant < (2,0,7).
    EXPECT_STREQ(merged[0].ev.name, "wave");
    EXPECT_EQ(merged[1].ev.key.task, 9u);
    EXPECT_EQ(merged[2].ev.key.task, 4u);
    EXPECT_EQ(merged[2].ev.kind, TimelineEventKind::kSpan);
    EXPECT_EQ(merged[3].ev.kind, TimelineEventKind::kInstant);
    EXPECT_EQ(merged[4].ev.key.wave, 2u);
    EXPECT_EQ(tl.dropped_events(), 0u);
}

TEST(Timeline, RingOverflowIsCountedNeverSilent) {
    Timeline tl(/*max_lanes=*/2, /*lane_capacity=*/8);
    for (std::uint32_t i = 0; i < 100; ++i) {
        tl.span("plan.task", {1, i, i}, i, i + 1);
    }
    // The ring keeps the newest 8 events and reports the other 92.
    EXPECT_EQ(tl.num_events(), 8u);
    EXPECT_EQ(tl.dropped_events(), 92u);
    EXPECT_EQ(tl.merge().size(), 8u);
    // The drop count flows into the derived report (and from there into
    // the run report / trace metadata).
    const ScheduleReport report = obs::derive_schedule_report(tl, 2);
    EXPECT_EQ(report.dropped_events, 92u);
    EXPECT_EQ(report.tasks_total, 8u);
}

TEST(Timeline, ThreadsBeyondMaxLanesAreCountedAsDropped) {
    Timeline tl(/*max_lanes=*/1, /*lane_capacity=*/64);
    tl.span("wave", {1, 0, 0}, 0, 10);  // this thread takes the only lane
    std::thread other([&tl] {
        for (std::uint32_t i = 0; i < 5; ++i) {
            tl.span("plan.task", {1, i, i}, i, i + 1);
        }
    });
    other.join();
    EXPECT_EQ(tl.num_lanes(), 1u);
    EXPECT_EQ(tl.num_events(), 1u);
    EXPECT_EQ(tl.dropped_events(), 5u);
}

// ---------------------------------------------------------------------------
// Derived schedule metrics: the documented formulas, on synthetic spans.

TEST(Timeline, ScheduleMetricsMatchTheirDefinitions) {
    Timeline tl;
    // Wave 1: wall [0,1000]; partition 100ns, plan 700ns, commit 200ns.
    // Two plan tasks of 300ns and 600ns.
    tl.span("wave", {1, 0, 0}, 0, 1000);
    tl.span("partition", {1, 0, 0}, 0, 100);
    tl.span("plan", {1, 0, 0}, 100, 800);
    tl.span("plan.task", {1, 0, 3}, 100, 400);
    tl.span("plan.task", {1, 1, 5}, 100, 700);
    tl.span("commit", {1, 0, 0}, 800, 1000);
    // Wave 2: wall [1000,1500]; plan 400ns with one 400ns task (critical
    // path accumulates per-wave maxima: 600 + 400).
    tl.span("wave", {2, 0, 0}, 1000, 1500);
    tl.span("plan", {2, 0, 0}, 1000, 1400);
    tl.span("plan.task", {2, 0, 8}, 1000, 1400);
    tl.span("commit", {2, 0, 0}, 1400, 1500);

    const ScheduleReport r = obs::derive_schedule_report(tl, /*threads=*/2);
    EXPECT_EQ(r.threads, 2);
    EXPECT_EQ(r.waves_total, 2u);
    ASSERT_EQ(r.waves.size(), 2u);
    EXPECT_EQ(r.waves[0].task_sum_ns, 900u);
    EXPECT_EQ(r.waves[0].task_max_ns, 600u);
    EXPECT_EQ(r.waves[0].tasks, 2u);
    EXPECT_EQ(r.wave_wall_ns, 1500u);
    EXPECT_EQ(r.plan_ns, 1100u);
    EXPECT_EQ(r.commit_ns, 300u);
    EXPECT_EQ(r.partition_ns, 100u);
    EXPECT_EQ(r.task_sum_ns, 1300u);
    EXPECT_EQ(r.critical_path_ns, 1000u);  // 600 + 400
    EXPECT_EQ(r.tasks_total, 3u);
    // pool_utilization = task_sum / (plan × threads) = 1300 / 2200.
    EXPECT_NEAR(r.pool_utilization, 1300.0 / 2200.0, 1e-12);
    // straggler = Σ max(0, task_max − task_sum/t) / Σ plan
    //           = ((600 − 450) + (400 − 200)) / 1100.
    EXPECT_NEAR(r.straggler_share, 350.0 / 1100.0, 1e-12);
    EXPECT_NEAR(r.commit_serial_share, 300.0 / 1500.0, 1e-12);
    EXPECT_NEAR(r.partition_share, 100.0 / 1500.0, 1e-12);
    EXPECT_EQ(r.task_us.count, 3u);
    EXPECT_EQ(r.wave_idle_pct.count, 2u);
}

// ---------------------------------------------------------------------------
// Scheduling independence: different forced interleavings, one merge.

using Signature =
    std::vector<std::tuple<std::string, int, std::uint32_t, std::uint32_t,
                           std::uint32_t>>;

Signature signature(const Timeline& tl) {
    Signature sig;
    for (const Timeline::MergedEvent& me : tl.merge()) {
        sig.emplace_back(me.ev.name, static_cast<int>(me.ev.kind),
                         me.ev.key.wave, me.ev.key.slot, me.ev.key.task);
    }
    return sig;
}

void stall_even_chunks(std::size_t chunk) {
    if (chunk % 2 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
}

void stall_odd_chunks(std::size_t chunk) {
    if (chunk % 2 == 1) {
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
}

/// Clears the pool's test hook even when an assertion fails out.
struct HookGuard {
    explicit HookGuard(ThreadPool::ChunkHook hook) {
        ThreadPool::set_chunk_hook_for_test(hook);
    }
    ~HookGuard() { ThreadPool::set_chunk_hook_for_test(nullptr); }
};

Signature legalize_with_timeline(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
    Timeline tl;
    obs::ScopedTimeline install(tl);
    LegalizerOptions opts;
    opts.seed = 5;
    opts.pipeline = LegalizerOptions::Pipeline::kRegionParallel;
    opts.num_threads = 8;
    const LegalizerStats stats = legalize_placement(db, grid, opts);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(tl.dropped_events(), 0u);
    return signature(tl);
}

TEST(Timeline, LegalizerMergeIdenticalUnderForcedInterleavings) {
    GenProfile p;
    p.num_single = 300;
    p.num_double = 30;
    p.density = 0.55;
    p.seed = 11;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);

    const Signature baseline = legalize_with_timeline(gen.db, grid);
    EXPECT_FALSE(baseline.empty());
    {
        HookGuard hook(&stall_even_chunks);
        EXPECT_EQ(legalize_with_timeline(gen.db, grid), baseline)
            << "stalling even chunks changed the merged sequence";
    }
    {
        HookGuard hook(&stall_odd_chunks);
        EXPECT_EQ(legalize_with_timeline(gen.db, grid), baseline)
            << "stalling odd chunks changed the merged sequence";
    }
}

// ---------------------------------------------------------------------------
// Report integration: the two-tracer split.

TEST(Timeline, DeterministicReportIsByteIdenticalWithTimelineInstalled) {
    GenProfile p;
    p.num_single = 120;
    p.num_double = 12;
    p.density = 0.5;
    p.seed = 7;

    auto report_bytes = [&](bool with_timeline) {
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        obs::TickClock ticks;
        obs::Tracer tracer(&ticks);
        obs::ScopedTracer install(tracer);
        Timeline tl;
        std::unique_ptr<obs::ScopedTimeline> install_tl;
        if (with_timeline) {
            install_tl = std::make_unique<obs::ScopedTimeline>(tl);
        }
        LegalizerOptions opts;
        opts.seed = 5;
        opts.pipeline = LegalizerOptions::Pipeline::kRegionParallel;
        opts.num_threads = 4;
        const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
        obs::RunReportSpec spec;
        spec.tool = "test_timeline";
        spec.design = "tick";
        spec.db = &gen.db;
        spec.grid = &grid;
        spec.options = &opts;
        spec.stats = &stats;
        spec.tracer = &tracer;
        spec.timeline = with_timeline ? &tl : nullptr;
        if (with_timeline) {
            EXPECT_GT(tl.num_events(), 0u);
        }
        return obs::make_run_report(spec).dump();
    };

    // Run WITHOUT a timeline first so the with-timeline run cannot leak
    // state into it; tick-clock reports must not know the difference.
    const std::string without = report_bytes(false);
    const std::string with = report_bytes(true);
    EXPECT_EQ(with, without);
    EXPECT_EQ(with.find("\"timeline\""), std::string::npos);
    EXPECT_EQ(with.find("\"memory\""), std::string::npos);
}

TEST(Timeline, WallClockReportCarriesTimelineAndMemoryBlocks) {
    GenProfile p;
    p.num_single = 120;
    p.num_double = 12;
    p.density = 0.5;
    p.seed = 7;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    obs::WallClock wall;
    obs::Tracer tracer(&wall);
    obs::ScopedTracer install(tracer);
    Timeline tl;
    obs::ScopedTimeline install_tl(tl);
    LegalizerOptions opts;
    opts.seed = 5;
    opts.pipeline = LegalizerOptions::Pipeline::kRegionParallel;
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    obs::RunReportSpec spec;
    spec.tool = "test_timeline";
    spec.design = "wall";
    spec.db = &gen.db;
    spec.grid = &grid;
    spec.options = &opts;
    spec.stats = &stats;
    spec.tracer = &tracer;
    const std::string dump = obs::make_run_report(spec).dump();
    // spec.timeline is null: the report must fall back to the ambient
    // timeline installed above.
    EXPECT_NE(dump.find("\"timeline\""), std::string::npos);
    EXPECT_NE(dump.find("\"pool_utilization\""), std::string::npos);
    EXPECT_NE(dump.find("\"commit_serial_share\""), std::string::npos);
    EXPECT_NE(dump.find("\"memory\""), std::string::npos);
    EXPECT_NE(dump.find("\"peak_rss_bytes\""), std::string::npos);
    EXPECT_NE(dump.find("\"pool_workers_active\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chrome trace export shape.

TEST(Timeline, ChromeTraceHasTraceEventShape) {
    Timeline tl;
    tl.span("wave", {1, 0, 0}, 1000, 5000);
    tl.span("plan.task", {1, 0, 2}, 2000, 3000);
    tl.instant("requeue", {1, 1, 3});
    const std::string dump = obs::chrome_trace_json(tl, "unit").dump();
    EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(dump.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(dump.find("\"process_name\""), std::string::npos);
    EXPECT_NE(dump.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(dump.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(dump.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(dump.find("\"dropped_events\""), std::string::npos);
    // Timestamps are relative to the earliest event: 1000ns → ts 0.
    EXPECT_NE(dump.find("\"ts\": 0"), std::string::npos);
}

}  // namespace
}  // namespace mrlg::test
