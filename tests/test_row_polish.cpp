#include <gtest/gtest.h>

#include "dp/row_polish.hpp"
#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

// ---------------- solve_fixed_order_row (exact 1-D solver) ----------------

TEST(FixedOrderRow, EmptyInput) {
    EXPECT_TRUE(solve_fixed_order_row({}, Span{0, 10}, {}).empty());
}

TEST(FixedOrderRow, SingleCellSnapsToPreference) {
    const auto x = solve_fixed_order_row({4}, Span{0, 20}, {7.0});
    ASSERT_EQ(x.size(), 1u);
    EXPECT_EQ(x[0], 7);
}

TEST(FixedOrderRow, SingleCellClampedToSpan) {
    EXPECT_EQ(solve_fixed_order_row({4}, Span{0, 20}, {-5.0})[0], 0);
    EXPECT_EQ(solve_fixed_order_row({4}, Span{0, 20}, {50.0})[0], 16);
}

TEST(FixedOrderRow, NonConflictingPreferencesKept) {
    const auto x =
        solve_fixed_order_row({3, 3, 3}, Span{0, 30}, {2.0, 10.0, 20.0});
    EXPECT_EQ(x[0], 2);
    EXPECT_EQ(x[1], 10);
    EXPECT_EQ(x[2], 20);
}

TEST(FixedOrderRow, ConflictingPreferencesClump) {
    // Both want x=10; order fixed → they abut around it.
    const auto x = solve_fixed_order_row({4, 4}, Span{0, 30}, {10.0, 10.0});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_EQ(x[1], x[0] + 4);
    // The L1 optimum is any clump with x0 in [6, 10] (cost 4; medians of
    // an even count are non-unique).
    EXPECT_GE(x[0], 6);
    EXPECT_LE(x[0], 10);
    EXPECT_NEAR(std::abs(x[0] - 10.0) + std::abs(x[1] - 10.0), 4.0, 1e-9);
}

TEST(FixedOrderRow, OutOfOrderPreferencesResolve) {
    // Cell 0 wants the right side, cell 1 the left: the L1-optimal
    // solution clumps them at the median of the shifted targets.
    const auto x =
        solve_fixed_order_row({2, 2}, Span{0, 20}, {15.0, 3.0});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_EQ(x[1], x[0] + 2);
    EXPECT_GE(x[0], 0);
    EXPECT_LE(x[1] + 2, 20);
}

TEST(FixedOrderRow, NeverOverlapsAndStaysInSpan) {
    Rng rng(601);
    for (int trial = 0; trial < 50; ++trial) {
        const int n = static_cast<int>(rng.uniform(1, 12));
        std::vector<SiteCoord> w;
        std::vector<double> pref;
        SiteCoord total = 0;
        for (int i = 0; i < n; ++i) {
            w.push_back(static_cast<SiteCoord>(rng.uniform(1, 6)));
            total += w.back();
            pref.push_back(static_cast<double>(rng.uniform(-10, 60)));
        }
        const Span span{0, total + static_cast<SiteCoord>(
                                       rng.uniform(0, 30))};
        const auto x = solve_fixed_order_row(w, span, pref);
        SiteCoord prev_end = span.lo;
        for (int i = 0; i < n; ++i) {
            EXPECT_GE(x[static_cast<std::size_t>(i)], prev_end);
            prev_end = x[static_cast<std::size_t>(i)] +
                       w[static_cast<std::size_t>(i)];
        }
        EXPECT_LE(prev_end, span.hi);
    }
}

TEST(FixedOrderRow, OptimalVersusBruteForce) {
    // Exhaustive check on small instances: the solver's cost matches the
    // best over all feasible integer placements.
    Rng rng(607);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 3;
        std::vector<SiteCoord> w;
        std::vector<double> pref;
        for (int i = 0; i < n; ++i) {
            w.push_back(static_cast<SiteCoord>(rng.uniform(1, 3)));
            pref.push_back(static_cast<double>(rng.uniform(0, 14)));
        }
        const Span span{0, 16};
        const auto x = solve_fixed_order_row(w, span, pref);
        double got = 0;
        for (int i = 0; i < n; ++i) {
            got += std::abs(static_cast<double>(
                                x[static_cast<std::size_t>(i)]) -
                            pref[static_cast<std::size_t>(i)]);
        }
        // Brute force.
        double best = 1e18;
        for (SiteCoord a = 0; a + w[0] <= 16; ++a) {
            for (SiteCoord b = a + w[0]; b + w[1] <= 16; ++b) {
                for (SiteCoord c = b + w[1]; c + w[2] <= 16; ++c) {
                    best = std::min(
                        best, std::abs(a - pref[0]) +
                                  std::abs(b - pref[1]) +
                                  std::abs(c - pref[2]));
                }
            }
        }
        EXPECT_NEAR(got, best, 1e-9) << "trial " << trial;
    }
}

// ---------------- row_polish (full pass) ----------------

struct PolishFixture {
    Database db;
    SegmentGrid grid;
};

PolishFixture polished_design(std::uint64_t seed, double multi_frac) {
    GenProfile p;
    p.name = "polish";
    const std::size_t total = 900;
    p.num_double = static_cast<std::size_t>(multi_frac * total);
    p.num_single = total - p.num_double;
    p.density = 0.5;
    p.seed = seed;
    p.gp_sigma_x = 3.0;
    GenResult gen = generate_benchmark(p);
    PolishFixture f{std::move(gen.db), SegmentGrid{}};
    f.grid = SegmentGrid::build(f.db);
    LegalizerOptions opts;
    MRLG_ASSERT(legalize_placement(f.db, f.grid, opts).success,
                "fixture legalization failed");
    return f;
}

TEST(RowPolish, ImprovesHpwlOnSingleRowDesign) {
    PolishFixture f = polished_design(3, 0.0);
    const RowPolishStats s = row_polish(f.db, f.grid);
    EXPECT_GT(s.segments_polished, 0u);
    EXPECT_EQ(s.segments_skipped_multirow, 0u);
    EXPECT_LT(s.hpwl_after_um, s.hpwl_before_um);
    EXPECT_NEAR(s.hpwl_after_um, hpwl_um(f.db, PositionSource::kLegalized),
                1e-6);
    EXPECT_TRUE(check_legality(f.db, f.grid).legal);
    EXPECT_TRUE(f.grid.audit(f.db).empty());
}

TEST(RowPolish, SkipsSegmentsWithMultiRowCells) {
    PolishFixture f = polished_design(5, 0.25);
    const RowPolishStats s = row_polish(f.db, f.grid);
    // The paper's point: a meaningful share of rows is untouchable by
    // single-row techniques once multi-row cells are present.
    EXPECT_GT(s.segments_skipped_multirow, 0u);
    // Multi-row cells did not move.
    EXPECT_TRUE(check_legality(f.db, f.grid).legal);
    EXPECT_TRUE(f.grid.audit(f.db).empty());
}

TEST(RowPolish, NeverWorsensHpwl) {
    PolishFixture f = polished_design(7, 0.1);
    const RowPolishStats s1 = row_polish(f.db, f.grid);
    const RowPolishStats s2 = row_polish(f.db, f.grid);
    EXPECT_LE(s1.hpwl_after_um, s1.hpwl_before_um + 1e-9);
    EXPECT_LE(s2.hpwl_after_um, s2.hpwl_before_um + 1e-9);
}

TEST(RowPolish, NoNetsNoChanges) {
    Rng rng(11);
    RandomDesign d = random_legal_design(rng, 8, 100, 60, 0.0);
    std::vector<Point> before;
    for (const Cell& c : d.db.cells()) {
        before.push_back(c.pos());
    }
    row_polish(d.db, d.grid);
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(d.db.cells()[i].pos(), before[i]);
    }
}

}  // namespace
}  // namespace mrlg::test
