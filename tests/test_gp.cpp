#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "gp/cg.hpp"
#include "gp/quadratic.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

// ---------------- CG solver ----------------

TEST(Cg, SolvesDiagonalSystem) {
    gp::SpdMatrix a(3);
    a.add_diag(0, 2.0);
    a.add_diag(1, 4.0);
    a.add_diag(2, 8.0);
    a.finalize();
    std::vector<double> x;
    const auto r = gp::solve_pcg(a, {2.0, 4.0, 16.0}, x);
    EXPECT_LT(r.residual, 1e-6);
    EXPECT_NEAR(x[0], 1.0, 1e-6);
    EXPECT_NEAR(x[1], 1.0, 1e-6);
    EXPECT_NEAR(x[2], 2.0, 1e-6);
}

TEST(Cg, SolvesLaplacianWithAnchor) {
    // Chain 0-1-2 with unit couplings, node 0 anchored to 0, node 2
    // pulled to 6: solution is linear ramp 2,4? Laplacian: solve exactly.
    gp::SpdMatrix a(3);
    auto couple = [&](std::size_t i, std::size_t j, double w) {
        a.add_diag(i, w);
        a.add_diag(j, w);
        a.add_offdiag(i, j, -w);
    };
    couple(0, 1, 1.0);
    couple(1, 2, 1.0);
    a.add_diag(0, 1.0);  // anchor weight at node 0 toward 0
    a.add_diag(2, 1.0);  // anchor at node 2 toward 6
    a.finalize();
    std::vector<double> b{0.0, 0.0, 6.0};
    std::vector<double> x;
    const auto r = gp::solve_pcg(a, b, x);
    EXPECT_LT(r.residual, 1e-6);
    // Verify A x = b by substitution.
    std::vector<double> y;
    a.multiply(x, y);
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i)], 1e-5);
    }
    EXPECT_LT(x[0], x[1]);
    EXPECT_LT(x[1], x[2]);
}

TEST(Cg, MergesDuplicateTriplets) {
    gp::SpdMatrix a(2);
    a.add_diag(0, 2.0);
    a.add_diag(1, 2.0);
    a.add_offdiag(0, 1, -0.5);
    a.add_offdiag(1, 0, -0.5);  // same entry, reversed order
    a.finalize();
    std::vector<double> y;
    a.multiply({1.0, 1.0}, y);
    EXPECT_NEAR(y[0], 1.0, 1e-12);
    EXPECT_NEAR(y[1], 1.0, 1e-12);
}

TEST(Cg, RandomSpdSystems) {
    Rng rng(401);
    for (int trial = 0; trial < 5; ++trial) {
        const std::size_t n = 20;
        gp::SpdMatrix a(n);
        for (std::size_t i = 0; i < n; ++i) {
            a.add_diag(i, 4.0 + rng.uniform01());
        }
        for (int e = 0; e < 40; ++e) {
            const auto i = static_cast<std::size_t>(rng.uniform(0, 19));
            const auto j = static_cast<std::size_t>(rng.uniform(0, 19));
            if (i != j) {
                a.add_offdiag(i, j, -0.05 - 0.05 * rng.uniform01());
            }
        }
        a.finalize();
        std::vector<double> b(n);
        for (auto& v : b) {
            v = rng.uniform01() * 10 - 5;
        }
        std::vector<double> x;
        const auto r = gp::solve_pcg(a, b, x, 500, 1e-8);
        std::vector<double> y;
        a.multiply(x, y);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(y[i], b[i], 1e-4);
        }
        static_cast<void>(r);
    }
}

// ---------------- quadratic placer ----------------

/// A clustered netlist design: two groups of connected cells plus fixed
/// anchor pads on opposite die sides.
Database clustered_design(Rng& rng, int per_group) {
    Database db = empty_design(20, 200);
    Cell pad_l("pad_l", 2, 1, RailPhase::kEven, true);
    pad_l.set_pos(0, 10);
    const CellId pl = db.add_cell(std::move(pad_l));
    Cell pad_r("pad_r", 2, 1, RailPhase::kEven, true);
    pad_r.set_pos(198, 10);
    const CellId pr = db.add_cell(std::move(pad_r));
    std::vector<CellId> left;
    std::vector<CellId> right;
    for (int i = 0; i < per_group; ++i) {
        left.push_back(add_unplaced(db, "l" + std::to_string(i),
                                    100.0 + rng.uniform01(), 10.0, 3, 1));
        right.push_back(add_unplaced(db, "r" + std::to_string(i),
                                     100.0 + rng.uniform01(), 10.0, 3, 1));
    }
    auto wire = [&](CellId a, CellId b, int n) {
        const NetId net = db.add_net("n" + std::to_string(n));
        db.add_pin(a, net, 1.0, 0.5);
        db.add_pin(b, net, 1.0, 0.5);
    };
    int n = 0;
    for (int i = 0; i < per_group; ++i) {
        wire(left[static_cast<std::size_t>(i)], pl, n++);
        wire(right[static_cast<std::size_t>(i)], pr, n++);
        if (i > 0) {
            wire(left[static_cast<std::size_t>(i)],
                 left[static_cast<std::size_t>(i - 1)], n++);
            wire(right[static_cast<std::size_t>(i)],
                 right[static_cast<std::size_t>(i - 1)], n++);
        }
    }
    return db;
}

TEST(QuadraticPlacer, PullsCellsTowardConnectedPads) {
    Rng rng(403);
    Database db = clustered_design(rng, 15);
    const gp::QuadraticStats stats = gp::quadratic_place(db);
    EXPECT_GT(stats.iterations_run, 0);
    double mean_l = 0;
    double mean_r = 0;
    for (int i = 0; i < 15; ++i) {
        mean_l += db.cell(db.find_cell("l" + std::to_string(i))).gp_x();
        mean_r += db.cell(db.find_cell("r" + std::to_string(i))).gp_x();
    }
    mean_l /= 15;
    mean_r /= 15;
    EXPECT_LT(mean_l, mean_r);       // groups separate toward their pads
    EXPECT_LT(mean_l, 100.0);
    EXPECT_GT(mean_r, 100.0);
}

TEST(QuadraticPlacer, ReducesHpwlVersusScatter) {
    Rng rng(405);
    Database db = clustered_design(rng, 20);
    // Scatter wildly first.
    for (const CellId c : db.movable_cells()) {
        db.cell(c).set_gp(rng.uniform01() * 195.0, rng.uniform01() * 19.0);
    }
    const double before = hpwl_um(db, PositionSource::kGlobalPlacement);
    gp::quadratic_place(db);
    const double after = hpwl_um(db, PositionSource::kGlobalPlacement);
    EXPECT_LT(after, before);
}

TEST(QuadraticPlacer, KeepsCellsInsideDie) {
    Rng rng(407);
    Database db = clustered_design(rng, 25);
    gp::quadratic_place(db);
    for (const CellId c : db.movable_cells()) {
        const Cell& cell = db.cell(c);
        EXPECT_GE(cell.gp_x(), 0.0);
        EXPECT_LE(cell.gp_x() + cell.width(), 200.0);
        EXPECT_GE(cell.gp_y(), 0.0);
        EXPECT_LE(cell.gp_y() + cell.height(), 20.0);
    }
}

TEST(QuadraticPlacer, SpreadingLimitsPeakUtilization) {
    Rng rng(409);
    Database db = clustered_design(rng, 40);
    gp::QuadraticOptions opts;
    opts.iterations = 16;
    const gp::QuadraticStats stats = gp::quadratic_place(db, opts);
    // Without spreading everything would collapse onto two points; the
    // CDF-flattening must keep peak bin utilization bounded.
    EXPECT_LT(stats.final_max_util, 60.0);
    EXPECT_GT(stats.hpwl_um, 0.0);
}

TEST(QuadraticPlacer, EmptyDesignNoCrash) {
    Database db = empty_design(4, 40);
    const gp::QuadraticStats stats = gp::quadratic_place(db);
    EXPECT_EQ(stats.iterations_run, 0);
}

}  // namespace
}  // namespace mrlg::test
