/// Pins every number in docs/ALGORITHM.md: if this test needs changing,
/// update the walkthrough alongside it.

#include <gtest/gtest.h>

#include "legalize/enumeration.hpp"
#include "legalize/evaluation.hpp"
#include "legalize/insertion_interval.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

struct Walkthrough {
    Database db;
    SegmentGrid grid;
    CellId a, c, m, b, t;

    Walkthrough() : db(Floorplan(2, 20)), grid(SegmentGrid::build(db)) {
        a = add_placed(db, grid, "a", 2, 0, 4, 1);
        m = add_placed(db, grid, "m", 8, 0, 3, 2);
        b = add_placed(db, grid, "b", 13, 0, 4, 1);
        c = add_placed(db, grid, "c", 3, 1, 3, 1);
        t = add_unplaced(db, "t", 6.0, 0.0, 3, 2);
    }
};

int lp_index(const LocalProblem& lp, CellId id) {
    for (int i = 0; i < lp.num_cells(); ++i) {
        if (lp.cell(i).id == id) {
            return i;
        }
    }
    return -1;
}

TEST(Walkthrough, Stage2MinMax) {
    Walkthrough w;
    LocalProblem lp =
        make_local_problem(w.db, w.grid, Rect{-24, -5, 63, 12});
    compute_minmax_placement(lp);
    EXPECT_EQ(lp.num_cells(), 4);
    const LpCell& a = lp.cell(lp_index(lp, w.a));
    EXPECT_EQ(a.xl, 0);
    EXPECT_EQ(a.xr, 9);
    const LpCell& c = lp.cell(lp_index(lp, w.c));
    EXPECT_EQ(c.xl, 0);
    EXPECT_EQ(c.xr, 10);
    const LpCell& m = lp.cell(lp_index(lp, w.m));
    EXPECT_EQ(m.xl, 4);
    EXPECT_EQ(m.xr, 13);
    const LpCell& b = lp.cell(lp_index(lp, w.b));
    EXPECT_EQ(b.xl, 7);
    EXPECT_EQ(b.xr, 16);
}

TEST(Walkthrough, Stage3IntervalsAndStage4Points) {
    Walkthrough w;
    LocalProblem lp =
        make_local_problem(w.db, w.grid, Rect{-24, -5, 63, 12});
    compute_minmax_placement(lp);
    const auto ivs = build_insertion_intervals(lp, 3);
    ASSERT_EQ(ivs.size(), 7u);  // 4 gaps row 0, 3 gaps row 1

    TargetSpec ts;
    ts.w = 3;
    ts.h = 2;
    ts.pref_x = 6.0;
    ts.pref_y = 0.0;
    ts.rail_phase = RailPhase::kEven;
    const auto en = enumerate_insertion_points(lp, ivs, ts);
    ASSERT_EQ(en.points.size(), 6u);  // straddles of m excluded

    // The winning point (a,m)+(c,m): range [4,10], xt = 6. m borders the
    // gap in both rows but is one cell and moves once, so approx and
    // exact agree at 0.20 um (docs/ALGORITHM.md stage 4).
    bool found = false;
    for (const auto& p : en.points) {
        if (p.k0 == 0 && p.gaps == std::vector<int>{1, 1}) {
            found = true;
            EXPECT_EQ(p.lo, 4);
            EXPECT_EQ(p.hi, 10);
            const Evaluation approx =
                evaluate_insertion_point_approx(lp, p, ts);
            EXPECT_EQ(approx.xt, 6);
            EXPECT_NEAR(approx.cost_um, 0.20, 1e-9);
            const Evaluation exact =
                evaluate_insertion_point_exact(lp, p, ts);
            EXPECT_EQ(exact.xt, 6);
            EXPECT_NEAR(exact.cost_um, 0.20, 1e-9);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Walkthrough, Stage5CommitAndUndo) {
    Walkthrough w;
    const MllResult r = mll_place(w.db, w.grid, w.t, 6.0, 0.0);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.x, 6);
    EXPECT_EQ(r.y, 0);
    EXPECT_NEAR(r.real_cost_um, 0.20, 1e-9);
    ASSERT_EQ(r.moved.size(), 1u);
    EXPECT_EQ(r.moved[0].first, w.m);
    EXPECT_EQ(r.moved[0].second, 8);
    EXPECT_EQ(w.db.cell(w.m).x(), 9);
    EXPECT_EQ(w.db.cell(w.b).x(), 13);  // untouched

    mll_undo(w.db, w.grid, w.t, r);
    EXPECT_EQ(w.db.cell(w.m).x(), 8);
    EXPECT_FALSE(w.db.cell(w.t).placed());
}

}  // namespace
}  // namespace mrlg::test
