#include <gtest/gtest.h>

#include <vector>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

std::vector<std::pair<SiteCoord, SiteCoord>> positions(const Database& db) {
    std::vector<std::pair<SiteCoord, SiteCoord>> pos;
    pos.reserve(db.num_cells());
    for (const Cell& c : db.cells()) {
        pos.emplace_back(c.x(), c.y());
    }
    return pos;
}

void unplace_all(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
}

/// Legalizes the same seeded generated design serially and with 4 worker
/// threads; every cell position and every stat must be bit-identical
/// (thread_pool.hpp's determinism contract, enforced by the MLL scan's
/// (cost, point index) tie-break).
void expect_deterministic(bool exact_evaluation) {
    GenProfile profile;
    profile.name = "determinism";
    profile.num_single = 400;
    profile.num_double = 60;
    profile.density = 0.65;
    profile.seed = 7;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;
    SegmentGrid grid = SegmentGrid::build(db);

    LegalizerStats serial_stats;
    std::vector<std::pair<SiteCoord, SiteCoord>> serial_pos;
    double serial_hpwl = 0.0;
    for (const int threads : {1, 4}) {
        unplace_all(db, grid);
        LegalizerOptions opts;
        opts.seed = 5;
        opts.num_threads = threads;
        opts.mll.exact_evaluation = exact_evaluation;
        const LegalizerStats stats = legalize_placement(db, grid, opts);
        EXPECT_TRUE(stats.success);
        const double hpwl =
            hpwl_um(db, PositionSource::kLegalized, threads);
        if (threads == 1) {
            serial_stats = stats;
            serial_pos = positions(db);
            serial_hpwl = hpwl;
            continue;
        }
        EXPECT_EQ(positions(db), serial_pos) << "threads=" << threads;
        EXPECT_EQ(stats.direct_placements, serial_stats.direct_placements);
        EXPECT_EQ(stats.mll_successes, serial_stats.mll_successes);
        EXPECT_EQ(stats.mll_failures, serial_stats.mll_failures);
        EXPECT_EQ(stats.fallback_placements,
                  serial_stats.fallback_placements);
        EXPECT_EQ(stats.ripup_placements, serial_stats.ripup_placements);
        EXPECT_EQ(stats.unplaced, serial_stats.unplaced);
        EXPECT_EQ(stats.rounds, serial_stats.rounds);
        EXPECT_EQ(stats.mll_points_evaluated,
                  serial_stats.mll_points_evaluated);
        // HPWL partial sums combine in fixed chunk order → bit-identical.
        EXPECT_EQ(hpwl, serial_hpwl);
    }
}

TEST(ParallelDeterminism, ApproxEvaluation) {
    expect_deterministic(/*exact_evaluation=*/false);
}

TEST(ParallelDeterminism, ExactEvaluation) {
    expect_deterministic(/*exact_evaluation=*/true);
}

TEST(ParallelDeterminism, PointAccountingIsExactUnderChunking) {
    // num_points must count points actually evaluated — identical at any
    // thread count, and nonzero on a design where MLL does real work.
    GenProfile profile;
    profile.num_single = 300;
    profile.num_double = 40;
    profile.density = 0.7;
    profile.seed = 3;
    GenResult gen = generate_benchmark(profile);
    Database& db = gen.db;
    SegmentGrid grid = SegmentGrid::build(db);

    std::size_t serial_points = 0;
    for (const int threads : {1, 3}) {
        unplace_all(db, grid);
        LegalizerOptions opts;
        opts.num_threads = threads;
        const LegalizerStats stats = legalize_placement(db, grid, opts);
        EXPECT_TRUE(stats.success);
        if (threads == 1) {
            serial_points = stats.mll_points_evaluated;
            EXPECT_GT(serial_points, 0u);
        } else {
            EXPECT_EQ(stats.mll_points_evaluated, serial_points);
        }
    }
}

TEST(ParallelDeterminism, LegalityReportIdenticalAcrossThreadCounts) {
    // Build a deliberately broken placement: overlaps, wrong parity, and
    // an unplaced cell; the report must not depend on the thread count.
    Rng rng(21);
    RandomDesign d = random_legal_design(rng, 24, 200, 160, 0.25);
    // Force two overlaps by stacking cells manually.
    const CellId a = d.db.movable_cells()[0];
    const CellId b = d.db.movable_cells()[1];
    d.grid.remove(d.db, a);
    const Cell& cb = d.db.cell(b);
    d.db.cell(a).set_pos(cb.x(), cb.y());

    LegalityOptions base;
    base.require_all_placed = false;
    base.max_messages = 1000;

    base.num_threads = 1;
    const LegalityReport serial = check_legality(d.db, d.grid, base);
    for (const int threads : {2, 4}) {
        LegalityOptions opts = base;
        opts.num_threads = threads;
        const LegalityReport rep = check_legality(d.db, d.grid, opts);
        EXPECT_EQ(rep.legal, serial.legal);
        EXPECT_EQ(rep.num_overlaps, serial.num_overlaps);
        EXPECT_EQ(rep.num_out_of_rows, serial.num_out_of_rows);
        EXPECT_EQ(rep.num_rail_violations, serial.num_rail_violations);
        EXPECT_EQ(rep.num_unplaced, serial.num_unplaced);
        EXPECT_EQ(rep.messages, serial.messages);
    }
    EXPECT_FALSE(serial.legal);  // the breakage was detected at all
}

}  // namespace
}  // namespace mrlg::test
