#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "eval/legality.hpp"
#include "io/lefdef.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

namespace fs = std::filesystem;

class LefDefTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("mrlg_lefdef_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string write(const std::string& name, const std::string& text) {
        const fs::path p = dir_ / name;
        std::ofstream(p) << text;
        return p.string();
    }
    fs::path dir_;
};

const char* kLef = R"(
# minimal ISPD-flavoured LEF
UNITS DATABASE MICRONS 1000 ; END UNITS
SITE core
  CLASS CORE ;
  SIZE 0.2 BY 1.6 ;
END core
MACRO INV
  CLASS CORE ;
  SIZE 0.6 BY 1.6 ;
  PIN A DIRECTION INPUT ;
    PORT
      LAYER metal1 ;
      RECT 0.0 0.6 0.2 1.0 ;
    END
  END A
  PIN Z DIRECTION OUTPUT ;
    PORT
      RECT 0.4 0.6 0.6 1.0 ;
    END
  END Z
END INV
MACRO FF2
  CLASS CORE ;
  SIZE 0.8 BY 3.2 ;
  PIN D ;
    PORT
      RECT 0.0 1.4 0.2 1.8 ;
    END
  END D
END FF2
)";

const char* kDef = R"(
VERSION 5.8 ;
DESIGN top ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 8000 12800 ) ;
ROW r0 core 0 0 N DO 40 BY 1 STEP 200 0 ;
ROW r1 core 0 1600 N DO 40 BY 1 STEP 200 0 ;
ROW r2 core 0 3200 N DO 40 BY 1 STEP 200 0 ;
ROW r3 core 0 4800 N DO 40 BY 1 STEP 200 0 ;
ROW r4 core 0 6400 N DO 40 BY 1 STEP 200 0 ;
ROW r5 core 0 8000 N DO 40 BY 1 STEP 200 0 ;
ROW r6 core 0 9600 N DO 40 BY 1 STEP 200 0 ;
ROW r7 core 0 11200 N DO 40 BY 1 STEP 200 0 ;
REGIONS 1 ;
- fence1 ( 4000 0 ) ( 8000 12800 ) ;
END REGIONS
GROUPS 1 ;
- grp1 u_f* + REGION fence1 ;
END GROUPS
COMPONENTS 4 ;
- u1 INV + PLACED ( 410 30 ) N ;
- u2 INV + PLACED ( 1000 1650 ) N ;
- u_f1 FF2 + PLACED ( 5010 3205 ) N ;
- blk INV + FIXED ( 2000 4800 ) N ;
END COMPONENTS
NETS 2 ;
- n1 ( u1 Z ) ( u2 A ) ;
- n2 ( u2 Z ) ( u_f1 D ) ( PIN io1 ) ;
END NETS
END DESIGN
)";

TEST_F(LefDefTest, LefParsesSitesMacrosPins) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    EXPECT_NEAR(lef.site_w_um, 0.2, 1e-9);
    EXPECT_NEAR(lef.site_h_um, 1.6, 1e-9);
    EXPECT_NEAR(lef.dbu_per_micron, 1000.0, 1e-9);
    ASSERT_EQ(lef.macros.size(), 2u);
    const LefMacro* inv = lef.find_macro("INV");
    ASSERT_NE(inv, nullptr);
    EXPECT_NEAR(inv->w_um, 0.6, 1e-9);
    EXPECT_NEAR(inv->h_um, 1.6, 1e-9);
    ASSERT_EQ(inv->pins.size(), 2u);
    EXPECT_NEAR(inv->pins.at("A").offset_x_um, 0.1, 1e-9);
    EXPECT_NEAR(inv->pins.at("Z").offset_x_um, 0.5, 1e-9);
    const LefMacro* ff = lef.find_macro("FF2");
    ASSERT_NE(ff, nullptr);
    EXPECT_NEAR(ff->h_um, 3.2, 1e-9);  // double height
}

TEST_F(LefDefTest, DefBuildsDatabase) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    DefReadResult r = read_def(write("a.def", kDef), lef);
    EXPECT_EQ(r.design_name, "top");
    Database& db = r.db;
    EXPECT_EQ(db.floorplan().num_rows(), 8);
    EXPECT_EQ(db.floorplan().row(0).num_sites, 40);
    EXPECT_EQ(db.num_cells(), 4u);

    const Cell& u1 = db.cell(db.find_cell("u1"));
    EXPECT_EQ(u1.width(), 3);   // 0.6 / 0.2
    EXPECT_EQ(u1.height(), 1);
    EXPECT_NEAR(u1.gp_x(), 410.0 / 200.0, 1e-9);
    EXPECT_NEAR(u1.gp_y(), 30.0 / 1600.0, 1e-9);

    const Cell& ff = db.cell(db.find_cell("u_f1"));
    EXPECT_EQ(ff.height(), 2);
    EXPECT_EQ(ff.region(), 1);  // via GROUPS pattern u_f*

    const Cell& blk = db.cell(db.find_cell("blk"));
    EXPECT_TRUE(blk.fixed());
    EXPECT_TRUE(blk.placed());
    EXPECT_EQ(blk.x(), 10);
    EXPECT_EQ(blk.y(), 3);

    // Fence carved from REGIONS.
    ASSERT_EQ(db.floorplan().fences().size(), 1u);
    EXPECT_EQ(db.floorplan().fences()[0].rect, (Rect{20, 0, 20, 8}));

    // Nets: the die pin entry is skipped, offsets come from LEF pins.
    ASSERT_EQ(db.nets().size(), 2u);
    EXPECT_EQ(db.nets()[0].degree(), 2u);
    EXPECT_EQ(db.nets()[1].degree(), 2u);
    const Pin& z = db.pin(db.nets()[0].pins()[0]);
    EXPECT_NEAR(z.offset_x, 0.5 / 0.2, 1e-9);
}

TEST_F(LefDefTest, EndToEndLegalizeFromDef) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    DefReadResult r = read_def(write("a.def", kDef), lef);
    r.db.freeze_fixed_cells();
    SegmentGrid grid = SegmentGrid::build(r.db);
    const LegalizerStats stats = legalize_placement(r.db, grid);
    EXPECT_TRUE(stats.success);
    EXPECT_TRUE(check_legality(r.db, grid).legal);
    // The fence member stayed in its region.
    const Cell& ff = r.db.cell(r.db.find_cell("u_f1"));
    EXPECT_GE(ff.x(), 20);
}

TEST_F(LefDefTest, DefRoundTripThroughWriter) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    DefReadResult r = read_def(write("a.def", kDef), lef);
    r.db.freeze_fixed_cells();
    SegmentGrid grid = SegmentGrid::build(r.db);
    ASSERT_TRUE(legalize_placement(r.db, grid).success);
    const std::string out = write("out.def", "");
    write_def(r.db, lef, out, "top_legal");
    // The written DEF re-tokenizes: components placed, rows present.
    std::ifstream in(out);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("DESIGN top_legal ;"), std::string::npos);
    EXPECT_NE(text.find("COMPONENTS 4 ;"), std::string::npos);
    EXPECT_NE(text.find("PLACED"), std::string::npos);
    EXPECT_NE(text.find("FIXED"), std::string::npos);
    EXPECT_NE(text.find("END DESIGN"), std::string::npos);
    EXPECT_EQ(text.find("UNPLACED"), std::string::npos);
}

TEST_F(LefDefTest, MissingFileThrows) {
    EXPECT_THROW(read_lef((dir_ / "nope.lef").string()), LefDefError);
}

TEST_F(LefDefTest, UnknownMacroThrows) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    const std::string def = write("bad.def", R"(
DESIGN top ;
UNITS DISTANCE MICRONS 1000 ;
ROW r0 core 0 0 N DO 10 BY 1 STEP 200 0 ;
COMPONENTS 1 ;
- u1 NO_SUCH_MACRO + PLACED ( 0 0 ) N ;
END COMPONENTS
END DESIGN
)");
    EXPECT_THROW(read_def(def, lef), LefDefError);
}

TEST_F(LefDefTest, NonUniformRowsThrow) {
    const LefLibrary lef = read_lef(write("a.lef", kLef));
    const std::string def = write("gap.def", R"(
DESIGN top ;
UNITS DISTANCE MICRONS 1000 ;
ROW r0 core 0 0 N DO 10 BY 1 STEP 200 0 ;
ROW r1 core 0 4800 N DO 10 BY 1 STEP 200 0 ;
END DESIGN
)");
    EXPECT_THROW(read_def(def, lef), LefDefError);
}

TEST_F(LefDefTest, MisalignedMacroThrows) {
    const std::string lef_text = R"(
SITE core
  SIZE 0.2 BY 1.6 ;
END core
MACRO ODD
  SIZE 0.3 BY 1.6 ;
END ODD
)";
    const LefLibrary lef = read_lef(write("odd.lef", lef_text));
    const std::string def = write("odd.def", R"(
DESIGN top ;
UNITS DISTANCE MICRONS 1000 ;
ROW r0 core 0 0 N DO 10 BY 1 STEP 200 0 ;
COMPONENTS 1 ;
- u1 ODD + PLACED ( 0 0 ) N ;
END COMPONENTS
END DESIGN
)");
    EXPECT_THROW(read_def(def, lef), LefDefError);
}

}  // namespace
}  // namespace mrlg::test
