#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "util/assert.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace mrlg::test {
namespace {

// ---------------- geometry ----------------

TEST(Span, LengthAndContainment) {
    const Span s{2, 7};
    EXPECT_EQ(s.length(), 5);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(s.contains(2));
    EXPECT_TRUE(s.contains(6));
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.contains(Span{3, 5}));
    EXPECT_FALSE(s.contains(Span{3, 8}));
    EXPECT_TRUE((Span{2, 7}.contains(Span{4, 4})));  // empty span inside
}

TEST(Span, OverlapIsSymmetricAndHalfOpen) {
    EXPECT_TRUE((Span{0, 5}.overlaps(Span{4, 9})));
    EXPECT_TRUE((Span{4, 9}.overlaps(Span{0, 5})));
    EXPECT_FALSE((Span{0, 5}.overlaps(Span{5, 9})));  // touching edges
    EXPECT_FALSE((Span{0, 5}.overlaps(Span{7, 9})));
}

TEST(Span, Intersect) {
    const Span i = intersect(Span{0, 10}, Span{4, 20});
    EXPECT_EQ(i, (Span{4, 10}));
    EXPECT_TRUE(intersect(Span{0, 3}, Span{5, 8}).empty());
}

TEST(Rect, BasicAccessors) {
    const Rect r{1, 2, 10, 3};
    EXPECT_EQ(r.x_hi(), 11);
    EXPECT_EQ(r.y_hi(), 5);
    EXPECT_EQ(r.area(), 30);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE((Rect{0, 0, 0, 5}.empty()));
}

TEST(Rect, ContainsPointHalfOpen) {
    const Rect r{0, 0, 4, 2};
    EXPECT_TRUE(r.contains(Point{0, 0}));
    EXPECT_TRUE(r.contains(Point{3, 1}));
    EXPECT_FALSE(r.contains(Point{4, 1}));
    EXPECT_FALSE(r.contains(Point{3, 2}));
}

TEST(Rect, ContainsRect) {
    const Rect r{0, 0, 10, 10};
    EXPECT_TRUE(r.contains(Rect{0, 0, 10, 10}));
    EXPECT_TRUE(r.contains(Rect{2, 3, 4, 5}));
    EXPECT_FALSE(r.contains(Rect{-1, 0, 4, 5}));
    EXPECT_FALSE(r.contains(Rect{8, 8, 4, 4}));
}

TEST(Rect, OverlapArea) {
    EXPECT_EQ(overlap_area(Rect{0, 0, 4, 4}, Rect{2, 2, 4, 4}), 4);
    EXPECT_EQ(overlap_area(Rect{0, 0, 4, 4}, Rect{4, 0, 4, 4}), 0);
    EXPECT_EQ(overlap_area(Rect{0, 0, 4, 4}, Rect{1, 1, 2, 2}), 4);
}

TEST(Geometry, Manhattan) {
    EXPECT_EQ(manhattan(Point{0, 0}, Point{3, 4}), 7);
    EXPECT_EQ(manhattan(Point{3, 4}, Point{0, 0}), 7);
    EXPECT_EQ(manhattan(Point{-2, 1}, Point{2, -1}), 6);
}

// ---------------- assert ----------------

TEST(Assert, ThrowsAssertionError) {
    EXPECT_THROW(MRLG_ASSERT(false, "boom"), AssertionError);
    EXPECT_NO_THROW(MRLG_ASSERT(true, "fine"));
}

TEST(Assert, MessageContainsContext) {
    try {
        MRLG_ASSERT(1 == 2, "custom context");
        FAIL() << "should have thrown";
    } catch (const AssertionError& e) {
        EXPECT_NE(std::string(e.what()).find("custom context"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    }
}

// ---------------- rng ----------------

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniform(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformSingletonRange) {
    Rng rng(7);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng.uniform(3, 3), 3);
    }
}

TEST(Rng, UniformCoversRange) {
    Rng rng(11);
    bool seen[5] = {};
    for (int i = 0; i < 1000; ++i) {
        seen[rng.uniform(0, 4)] = true;
    }
    for (const bool s : seen) {
        EXPECT_TRUE(s);
    }
}

TEST(Rng, Uniform01Bounds) {
    Rng rng(13);
    double mn = 1.0;
    double mx = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform01();
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
    EXPECT_LT(mn, 0.05);
    EXPECT_GT(mx, 0.95);
}

TEST(Rng, NormalRoughMoments) {
    Rng rng(17);
    double sum = 0.0;
    double sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(3.0, 2.0);
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, UniformEmptyRangeAsserts) {
    Rng rng(1);
    EXPECT_THROW(rng.uniform(4, 3), AssertionError);
}

// ---------------- strings ----------------

TEST(Str, Trim) {
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \n "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Str, SplitWs) {
    const auto v = split_ws("  a\tbb   c ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "bb");
    EXPECT_EQ(v[2], "c");
    EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Str, SplitDelim) {
    const auto v = split("a,,b", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
}

TEST(Str, StartsWith) {
    EXPECT_TRUE(starts_with("NetDegree : 3", "NetDegree"));
    EXPECT_FALSE(starts_with("Net", "NetDegree"));
}

TEST(Str, IEquals) {
    EXPECT_TRUE(iequals("CoreRow", "corerow"));
    EXPECT_FALSE(iequals("CoreRow", "corero"));
}

TEST(Str, FormatFixed) {
    EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

// ---------------- table ----------------

TEST(Table, AlignsAndPrints) {
    Table t({"name", "value"});
    t.add_row({"foo", "1.5"});
    t.add_row({"longer_name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("longer_name"), std::string::npos);
    EXPECT_NE(out.find("value"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowArityMismatchAsserts) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only_one"}), AssertionError);
}

TEST(Table, Csv) {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace mrlg::test
