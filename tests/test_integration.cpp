#include <gtest/gtest.h>

#include <filesystem>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "gp/quadratic.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "io/profiles.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// End-to-end: generate → legalize → verify, the bench_table1 inner loop.
TEST(Integration, GenerateLegalizeVerify) {
    GenProfile p;
    p.name = "int1";
    p.num_single = 800;
    p.num_double = 80;
    p.density = 0.6;
    p.num_blockages = 2;
    p.blockage_area_frac = 0.03;
    GenResult gen = generate_benchmark(p);
    ASSERT_TRUE(gen.packed_ok);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    const LegalizerStats s = legalize_placement(gen.db, grid);
    ASSERT_TRUE(s.success);
    const LegalityReport rep = check_legality(gen.db, grid);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    EXPECT_TRUE(grid.audit(gen.db).empty());
    // Quality sanity: small displacement, tiny HPWL change.
    EXPECT_LT(displacement_stats(gen.db).avg_sites, 20.0);
    EXPECT_LT(std::abs(hpwl_delta(gen.db)), 0.10);
}

TEST(Integration, HighDensityProfileLegalizes) {
    GenProfile p;
    p.name = "dense";
    p.num_single = 900;
    p.num_double = 90;
    p.density = 0.9;
    GenResult gen = generate_benchmark(p);
    ASSERT_TRUE(gen.packed_ok);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    const LegalizerStats s = legalize_placement(gen.db, grid);
    EXPECT_TRUE(s.success) << s.unplaced;
    EXPECT_TRUE(check_legality(gen.db, grid).legal);
}

TEST(Integration, RelaxedRailBeatsAlignedOnDisplacement) {
    // The paper's second experiment, end to end on one profile.
    double disp[2];
    double dhpwl[2];
    for (int mode = 0; mode < 2; ++mode) {
        GenProfile p;
        p.name = "relax";
        p.num_single = 700;
        p.num_double = 120;
        p.density = 0.6;
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        LegalizerOptions opts;
        opts.mll.check_rail = mode == 0;
        ASSERT_TRUE(legalize_placement(gen.db, grid, opts).success);
        disp[mode] = displacement_stats(gen.db).avg_sites;
        dhpwl[mode] = std::abs(hpwl_delta(gen.db));
    }
    EXPECT_LT(disp[1], disp[0]);
    static_cast<void>(dhpwl);
}

TEST(Integration, QuadraticGpFeedsLegalizer) {
    // Full substrate chain: netlist → quadratic GP → MLL legalization.
    GenProfile p;
    p.name = "gpchain";
    p.num_single = 400;
    p.num_double = 40;
    p.density = 0.45;
    GenResult gen = generate_benchmark(p);
    gp::QuadraticOptions qopts;
    qopts.iterations = 8;
    gp::quadratic_place(gen.db, qopts);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.max_rounds = 128;  // quadratic GP can be denser locally
    const LegalizerStats s = legalize_placement(gen.db, grid, opts);
    EXPECT_TRUE(s.success) << s.unplaced;
    EXPECT_TRUE(check_legality(gen.db, grid).legal);
}

TEST(Integration, BookshelfExportOfLegalizedDesign) {
    namespace fs = std::filesystem;
    GenProfile p;
    p.name = "bs";
    p.num_single = 300;
    p.num_double = 30;
    p.density = 0.5;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    ASSERT_TRUE(legalize_placement(gen.db, grid).success);

    const fs::path dir =
        fs::temp_directory_path() / "mrlg_integration_bs";
    fs::create_directories(dir);
    write_bookshelf(gen.db, dir.string(), "out", false);
    const BookshelfReadResult r =
        read_bookshelf((dir / "out.aux").string());
    // Re-imported legalized positions are legal without any moves.
    Database db2 = std::move(const_cast<Database&>(r.db));
    for (const CellId c : db2.movable_cells()) {
        Cell& cell = db2.cell(c);
        cell.set_pos(static_cast<SiteCoord>(std::lround(cell.gp_x())),
                     static_cast<SiteCoord>(std::lround(cell.gp_y())));
    }
    const SegmentGrid grid2 = SegmentGrid::build(db2);
    LegalityOptions lopts;
    lopts.check_rail_alignment = false;  // phases not serialized
    EXPECT_TRUE(check_legality(db2, grid2, lopts).legal);
    fs::remove_all(dir);
}

TEST(Integration, IncrementalUseCaseGateSizing) {
    // The paper's motivating incremental scenario: resize a placed cell
    // and locally re-legalize it with MLL.
    Rng rng(501);
    RandomDesign d = random_legal_design(rng, 12, 140, 130, 0.25);
    // Pick a placed cell, remove it, grow it by 2 sites, re-insert.
    const CellId victim = d.db.movable_cells()[40];
    const double px = d.db.cell(victim).x();
    const double py = d.db.cell(victim).y();
    d.grid.remove(d.db, victim);
    // Widen: new cell object (width is immutable by design).
    const CellId fat = d.db.add_cell(
        Cell("fat", d.db.cell(victim).width() + 2, 1));
    d.db.cell(fat).set_gp(px, py);
    const MllResult r = mll_place(d.db, d.grid, fat, px, py);
    ASSERT_TRUE(r.success());
    LegalityOptions lopts;
    lopts.require_all_placed = false;  // the original victim stays out
    EXPECT_TRUE(check_legality(d.db, d.grid, lopts).legal);
    // Local disruption only: the re-insertion cost is bounded by the
    // window size.
    EXPECT_LT(r.real_cost_um / d.db.floorplan().site_w_um(), 80.0);
}

TEST(Integration, IncrementalUseCaseBufferInsertion) {
    // Buffer insertion: drop a brand-new small cell near a net's centre.
    Rng rng(503);
    RandomDesign d = random_legal_design(rng, 12, 140, 150, 0.25);
    int inserted = 0;
    for (int i = 0; i < 10; ++i) {
        const double px = static_cast<double>(rng.uniform(10, 130));
        const double py = static_cast<double>(rng.uniform(0, 11));
        const CellId buf =
            add_unplaced(d.db, "buf" + std::to_string(i), px, py, 2, 1);
        inserted += mll_place(d.db, d.grid, buf, px, py).success() ? 1 : 0;
    }
    EXPECT_EQ(inserted, 10);
    LegalityOptions lopts;
    lopts.require_all_placed = false;
    EXPECT_TRUE(check_legality(d.db, d.grid, lopts).legal);
    EXPECT_TRUE(d.grid.audit(d.db).empty());
}

TEST(Integration, Table1ProfileSmokeRun) {
    // One scaled Table 1 entry through the whole harness path.
    auto entries = table1_benchmarks(0.003);
    GenProfile profile = entries[5].profile;  // fft_2 at tiny scale
    GenResult gen = generate_benchmark(profile);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions ours;
    const LegalizerStats s = legalize_placement(gen.db, grid, ours);
    ASSERT_TRUE(s.success);
    const DisplacementStats disp = displacement_stats(gen.db);
    EXPECT_GT(disp.avg_sites, 0.0);
    EXPECT_LT(disp.avg_sites, 30.0);
}

}  // namespace
}  // namespace mrlg::test
