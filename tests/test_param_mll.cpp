/// Parameterized MLL pipeline property sweeps: for every (target shape ×
/// evaluator × rail mode) grid point, run many randomized local problems
/// and check the pipeline's core invariants stage by stage.

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/evaluation.hpp"
#include "legalize/exact_local.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/mll.hpp"
#include "legalize/realization.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

struct MllCase {
    SiteCoord target_w;
    SiteCoord target_h;
    bool check_rail;
    bool exact_eval;
};

std::ostream& operator<<(std::ostream& os, const MllCase& c) {
    return os << "w" << c.target_w << "h" << c.target_h
              << (c.check_rail ? "_rail" : "_norail")
              << (c.exact_eval ? "_exact" : "_approx");
}

class MllSweep : public ::testing::TestWithParam<MllCase> {};

TEST_P(MllSweep, InsertionsKeepAllInvariants) {
    const MllCase& c = GetParam();
    Rng rng(900 + static_cast<std::uint64_t>(c.target_w * 10 + c.target_h));
    int successes = 0;
    for (int trial = 0; trial < 12; ++trial) {
        RandomDesign d = random_legal_design(rng, 12, 130, 95, 0.3, 3);
        const double px = static_cast<double>(rng.uniform(5, 120));
        const double py = static_cast<double>(
            rng.uniform(0, 11 - c.target_h));
        const CellId t = add_unplaced(d.db, "target", px, py, c.target_w,
                                      c.target_h, RailPhase::kEven);
        MllOptions opts;
        opts.check_rail = c.check_rail;
        opts.exact_evaluation = c.exact_eval;
        const MllResult r = mll_place(d.db, d.grid, t, px, py, opts);
        if (!r.success()) {
            // Abort semantics: target untouched.
            EXPECT_FALSE(d.db.cell(t).placed());
            continue;
        }
        ++successes;
        // Rail parity honoured for even-height targets.
        if (c.check_rail && c.target_h % 2 == 0) {
            EXPECT_EQ(r.y % 2, 0);
        }
        LegalityOptions lopts;
        lopts.check_rail_alignment = false;  // random designs mix phases
        lopts.require_all_placed = false;
        const LegalityReport rep = check_legality(d.db, d.grid, lopts);
        EXPECT_TRUE(rep.legal)
            << (rep.messages.empty() ? "?" : rep.messages[0]);
        EXPECT_TRUE(d.grid.audit(d.db).empty());
        // Reported cost is consistent: est_cost equals realized cost when
        // evaluating exactly.
        if (c.exact_eval) {
            EXPECT_NEAR(r.est_cost_um, r.real_cost_um, 1e-6);
        }
    }
    EXPECT_GT(successes, 4) << "sweep point never exercised the pipeline";
}

INSTANTIATE_TEST_SUITE_P(
    TargetShapes, MllSweep,
    ::testing::Values(MllCase{1, 1, true, false},
                      MllCase{4, 1, true, false},
                      MllCase{8, 1, true, false},
                      MllCase{2, 2, true, false},
                      MllCase{4, 2, true, false},
                      MllCase{3, 3, true, false},
                      MllCase{2, 2, false, false},
                      MllCase{4, 1, true, true},
                      MllCase{4, 2, true, true},
                      MllCase{3, 3, true, true},
                      MllCase{6, 2, false, true}));

/// Exact local oracle optimality: for every enumerated point and every
/// integer x inside it, the realized cost is never below the oracle's
/// chosen optimum. Parameterized over target shapes.
class OracleSweep
    : public ::testing::TestWithParam<std::pair<SiteCoord, SiteCoord>> {};

TEST_P(OracleSweep, OracleIsGlobalMinimum) {
    const auto [w, h] = GetParam();
    Rng rng(700 + static_cast<std::uint64_t>(w * 10 + h));
    for (int trial = 0; trial < 6; ++trial) {
        RandomDesign d = random_legal_design(rng, 8, 60, 30, 0.35);
        TargetSpec target;
        target.w = w;
        target.h = h;
        target.pref_x = static_cast<double>(rng.uniform(0, 55));
        target.pref_y = static_cast<double>(rng.uniform(0, 7 - h));
        target.rail_phase = RailPhase::kEven;

        LocalProblem lp =
            make_local_problem(d.db, d.grid, Rect{0, 0, 60, 8});
        const ExactLocalSolution sol = solve_local_exact(lp, target);
        if (!sol.feasible) {
            continue;
        }
        // Exhaustive check over every point and every feasible x.
        const auto intervals = build_insertion_intervals(lp, target.w);
        const auto res =
            enumerate_insertion_points(lp, intervals, target, {});
        double global_min = std::numeric_limits<double>::max();
        for (const auto& pt : res.points) {
            for (SiteCoord x = pt.lo; x <= pt.hi; ++x) {
                const Realization real =
                    realize_insertion(lp, pt, x, target.w);
                const double cost =
                    real.moved_sites * lp.site_w_um() +
                    std::abs(static_cast<double>(x) - target.pref_x) *
                        lp.site_w_um() +
                    std::abs(static_cast<double>(lp.y0() + pt.k0) -
                             target.pref_y) *
                        lp.site_h_um();
                global_min = std::min(global_min, cost);
            }
        }
        EXPECT_NEAR(sol.cost_um, global_min, 1e-6)
            << "w" << w << "h" << h << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OracleSweep,
    ::testing::Values(std::pair<SiteCoord, SiteCoord>{1, 1},
                      std::pair<SiteCoord, SiteCoord>{3, 1},
                      std::pair<SiteCoord, SiteCoord>{6, 1},
                      std::pair<SiteCoord, SiteCoord>{2, 2},
                      std::pair<SiteCoord, SiteCoord>{4, 2},
                      std::pair<SiteCoord, SiteCoord>{2, 3}));

/// Hinge-minimizer sweep over structured hinge patterns.
struct HingeCase {
    int num_a;
    int num_b;
    SiteCoord spread;
};

class HingeSweep : public ::testing::TestWithParam<HingeCase> {};

TEST_P(HingeSweep, MatchesBruteForce) {
    const HingeCase& c = GetParam();
    Rng rng(300 + static_cast<std::uint64_t>(c.num_a * 7 + c.num_b));
    for (int trial = 0; trial < 40; ++trial) {
        HingeSet h;
        for (int i = 0; i < c.num_a; ++i) {
            h.a.push_back(
                static_cast<SiteCoord>(rng.uniform(-c.spread, c.spread)));
        }
        for (int i = 0; i < c.num_b; ++i) {
            h.b.push_back(
                static_cast<SiteCoord>(rng.uniform(-c.spread, c.spread)));
        }
        h.pref = static_cast<double>(rng.uniform(-c.spread, c.spread)) +
                 rng.uniform01();
        const SiteCoord lo =
            static_cast<SiteCoord>(rng.uniform(-c.spread, 0));
        const SiteCoord hi =
            static_cast<SiteCoord>(rng.uniform(0, c.spread));
        const auto [x, cost] = minimize_hinge_cost(h, lo, hi);
        EXPECT_GE(x, lo);
        EXPECT_LE(x, hi);
        EXPECT_NEAR(cost, brute_force_hinge_min(h.a, h.b, h.pref, lo, hi),
                    1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Patterns, HingeSweep,
                         ::testing::Values(HingeCase{0, 0, 20},
                                           HingeCase{1, 0, 20},
                                           HingeCase{0, 1, 20},
                                           HingeCase{3, 3, 30},
                                           HingeCase{10, 2, 50},
                                           HingeCase{2, 10, 50},
                                           HingeCase{20, 20, 100}));

}  // namespace
}  // namespace mrlg::test
