UCLA pl 1.0
wide 0 0 : N
b 0.4 0 : N
c 1.2 0 : N
