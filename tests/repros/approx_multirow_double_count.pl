UCLA pl 1.0
p34 11.4 1.71 : N
t0 11.3268 2.405 : N
mrlgblk0 8.4 3.42 : N /FIXED
