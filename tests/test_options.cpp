/// Option-plumbing tests: the knobs on MllOptions / LegalizerOptions /
/// EnumerationOptions actually reach the algorithms and their effects are
/// observable (truncation flags, caps, disabled fallbacks).

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"
#include "util/str.hpp"

namespace mrlg::test {
namespace {

TEST(Options, MllMaxPointsTruncationIsReported) {
    Database db = empty_design(1, 400);
    SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 40; ++i) {
        add_placed(db, grid, "c" + std::to_string(i),
                   static_cast<SiteCoord>(i * 10), 0, 4, 1);
    }
    const CellId t = add_unplaced(db, "t", 200.0, 0.0, 2, 1);
    MllOptions opts;
    opts.max_points = 3;
    const MllResult r = mll_place(db, grid, t, 200.0, 0.0, opts);
    ASSERT_TRUE(r.success());  // truncated but still places from the cap
    EXPECT_TRUE(r.enumeration_truncated);
    EXPECT_LE(r.num_points, 3u);
}

TEST(Options, MllWindowRadiiChangeRegionSize) {
    Database db = empty_design(12, 200);
    SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 24; ++i) {
        add_placed(db, grid, "c" + std::to_string(i),
                   static_cast<SiteCoord>((i % 12) * 16),
                   static_cast<SiteCoord>(i / 12 + 5), 4, 1);
    }
    const CellId t = add_unplaced(db, "t", 100.0, 5.0, 4, 1);
    MllOptions small;
    small.rx = 5;
    small.ry = 0;
    const MllResult rs = mll_place(db, grid, t, 100.0, 5.0, small);
    ASSERT_TRUE(rs.success());
    const std::size_t small_locals = rs.num_local_cells;
    mll_undo(db, grid, t, rs);

    MllOptions big;
    big.rx = 90;
    big.ry = 5;
    const MllResult rb = mll_place(db, grid, t, 100.0, 5.0, big);
    ASSERT_TRUE(rb.success());
    EXPECT_GT(rb.num_local_cells, small_locals);
}

TEST(Options, LegalizerFallbackCanBeDisabled) {
    // With fallback and rip-up pushed past max_rounds, a design that needs
    // them fails — proving the flags gate the mechanisms.
    auto build = [](Database& db) {
        SegmentGrid grid = SegmentGrid::build(db);
        for (int i = 0; i < 8; ++i) {
            db.cell(db.add_cell(Cell("r1_" + std::to_string(i), 5, 1)))
                .set_gp(i * 5.0, 1.0);
            db.cell(db.add_cell(Cell("r2_" + std::to_string(i), 5, 1)))
                .set_gp(i * 5.0, 2.0);
        }
        db.cell(db.add_cell(Cell("dbl", 4, 2, RailPhase::kOdd)))
            .set_gp(18.0, 1.0);
        return grid;
    };
    for (const bool enable : {false, true}) {
        Database db = empty_design(4, 40);
        SegmentGrid grid = build(db);
        LegalizerOptions opts;
        opts.order = LegalizerOptions::Order::kInputOrder;  // adversarial
        opts.max_rounds = 12;
        opts.enable_ripup = enable;
        // Rows 1-2 fill completely; the double-height cell then depends on
        // rip-up (free rows 0 and 3 are not paired).
        const LegalizerStats s = legalize_placement(db, grid, opts);
        EXPECT_EQ(s.success, enable) << "enable_ripup=" << enable;
        if (enable) {
            EXPECT_GE(s.ripup_placements, 1u);
        }
    }
}

TEST(Options, LegalizerMaxRoundsBoundsWork) {
    Database db = empty_design(1, 10);
    for (int i = 0; i < 3; ++i) {
        db.cell(db.add_cell(Cell("c" + std::to_string(i), 5, 1)))
            .set_gp(0.0, 0.0);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    opts.max_rounds = 3;
    const LegalizerStats s = legalize_placement(db, grid, opts);
    EXPECT_FALSE(s.success);
    EXPECT_LE(s.rounds, 3);
}

TEST(Options, UnplaceFirstFalseKeepsExistingPlacement) {
    Rng rng(77);
    RandomDesign d = random_legal_design(rng, 8, 100, 50, 0.2);
    std::vector<Point> before;
    for (const Cell& c : d.db.cells()) {
        before.push_back(c.pos());
    }
    // Add one new unplaced cell; incremental legalization must keep the
    // placed ones where possible.
    add_unplaced(d.db, "new", 50.0, 4.0, 3, 1);
    LegalizerOptions opts;
    opts.unplace_first = false;
    const LegalizerStats s = legalize_placement(d.db, d.grid, opts);
    EXPECT_TRUE(s.success);
    EXPECT_EQ(s.num_cells, d.db.movable_cells().size());
    // At most the local neighbourhood of the insertion moved.
    std::size_t moved = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        moved += d.db.cells()[i].pos() == before[i] ? 0 : 1;
    }
    EXPECT_LT(moved, 10u);
}

TEST(Options, FormatSiHelper) {
    EXPECT_EQ(format_si(1234.0), "1.23k");
    EXPECT_EQ(format_si(2500000.0), "2.50M");
    EXPECT_EQ(format_si(3.2e9), "3.20G");
    EXPECT_EQ(format_si(12.0), "12.00");
}

}  // namespace
}  // namespace mrlg::test
