/// Non-rectangular dies: rows with different x origins and widths (the
/// .scl SubrowOrigin case). Everything downstream — segments, windows,
/// min/max packing, MLL, the full legalizer — must respect per-row
/// extents, not just a global die box.

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// A "staircase" die: row y spans [2*y, 2*y + 40).
Database staircase_design(SiteCoord rows) {
    Floorplan fp;
    for (SiteCoord y = 0; y < rows; ++y) {
        fp.add_row(Row{y, static_cast<SiteCoord>(2 * y), 40});
    }
    return Database{std::move(fp)};
}

TEST(RowOrigins, SegmentsFollowRowExtents) {
    Database db = staircase_design(4);
    const SegmentGrid grid = SegmentGrid::build(db);
    for (SiteCoord y = 0; y < 4; ++y) {
        const auto segs = grid.row_segments(y);
        ASSERT_EQ(segs.size(), 1u);
        EXPECT_EQ(grid.segment(segs[0]).span,
                  (Span{static_cast<SiteCoord>(2 * y),
                        static_cast<SiteCoord>(2 * y + 40)}));
    }
    EXPECT_EQ(db.floorplan().die(), (Rect{0, 0, 46, 4}));
    EXPECT_EQ(db.floorplan().free_site_area(), 160);
}

TEST(RowOrigins, PlacementRespectsRowStart) {
    Database db = staircase_design(4);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = db.add_cell(Cell("c", 4, 1));
    // Row 3 starts at x=6; placing at x=4 must fail.
    EXPECT_THROW(grid.place(db, c, 4, 3), AssertionError);
    EXPECT_FALSE(db.cell(c).placed());
    grid.place(db, c, 6, 3);
    EXPECT_TRUE(check_legality(db, grid, {.require_all_placed = false})
                    .legal);
}

TEST(RowOrigins, MultiRowCellNeedsAllRowsToCover) {
    Database db = staircase_design(4);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId m = db.add_cell(Cell("m", 4, 2, RailPhase::kEven));
    // x=1 is inside row 0 ([0,40)) but outside row 1 ([2,42)).
    EXPECT_THROW(grid.place(db, m, 1, 0), AssertionError);
    grid.place(db, m, 2, 0);  // inside both
    EXPECT_TRUE(db.cell(m).placed());
}

TEST(RowOrigins, MllPlacesWithinStaircase) {
    Database db = staircase_design(8);
    SegmentGrid grid = SegmentGrid::build(db);
    // Preferred position left of row 5's origin: MLL must clamp into the
    // covered region.
    const CellId t = add_unplaced(db, "t", 1.0, 5.0, 4, 1);
    const MllResult r = mll_place(db, grid, t, 1.0, 5.0);
    ASSERT_TRUE(r.success());
    const Cell& cell = db.cell(t);
    const Row& row = db.floorplan().row(cell.y());
    EXPECT_GE(cell.x(), row.x);
    EXPECT_LE(cell.x() + cell.width(), row.x + row.num_sites);
    EXPECT_TRUE(check_legality(db, grid, {.require_all_placed = false})
                    .legal);
}

TEST(RowOrigins, NearestAlignedClampsPerRow) {
    Database db = staircase_design(8);
    const CellId c = db.add_cell(Cell("c", 4, 2, RailPhase::kEven));
    const Point p = nearest_aligned_position(db, c, 0.0, 6.0, true);
    // Base row 6 starts at 12; the footprint also covers row 7 (origin
    // 14), so x must be >= 14.
    EXPECT_EQ(p.y, 6);
    EXPECT_GE(p.x, 14);
}

TEST(RowOrigins, FullLegalizationOnStaircase) {
    Database db = staircase_design(10);
    Rng rng(71);
    for (int i = 0; i < 80; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 5));
        const bool dbl = i % 8 == 0;
        const CellId id = db.add_cell(
            Cell("c" + std::to_string(i), w, dbl ? 2 : 1));
        db.cell(id).set_gp(rng.uniform01() * 50.0, rng.uniform01() * 8.0);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    const LegalizerStats stats = legalize_placement(db, grid);
    EXPECT_TRUE(stats.success) << stats.unplaced;
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    // Every placed cell sits within each row it crosses.
    for (const Cell& c : db.cells()) {
        for (SiteCoord y = c.y(); y < c.y() + c.height(); ++y) {
            const Row& row = db.floorplan().row(y);
            EXPECT_GE(c.x(), row.x);
            EXPECT_LE(c.x() + c.width(), row.x + row.num_sites);
        }
    }
}

}  // namespace
}  // namespace mrlg::test
