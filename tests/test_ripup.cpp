#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/ripup.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// The deadlock scenario rip-up exists for: single-row cells consume the
/// interior rows completely, leaving no paired-row capacity for a
/// double-height cell anywhere, even though total free area is plentiful.
struct Starved {
    Database db;
    SegmentGrid grid;
    CellId stuck;
};

Starved starved_design() {
    Starved s{empty_design(4, 40), SegmentGrid{}, CellId{}};
    s.grid = SegmentGrid::build(s.db);
    // Rows 1 and 2 filled to 100% by singles; rows 0 and 3 empty.
    for (int i = 0; i < 8; ++i) {
        add_placed(s.db, s.grid, "r1_" + std::to_string(i),
                   static_cast<SiteCoord>(i * 5), 1, 5, 1);
        add_placed(s.db, s.grid, "r2_" + std::to_string(i),
                   static_cast<SiteCoord>(i * 5), 2, 5, 1);
    }
    s.stuck = add_unplaced(s.db, "dbl", 18.0, 1.0, 4, 2, RailPhase::kOdd);
    return s;
}

TEST(Ripup, RescuesStarvedDoubleHeightCell) {
    Starved s = starved_design();
    // Plain MLL fails everywhere (rows 1-2 are full; pairs (0,1), (1,2),
    // (2,3) all include a full row; parity restricts to odd base rows).
    const MllResult m = mll_place(s.db, s.grid, s.stuck, 18.0, 1.0);
    ASSERT_FALSE(m.success());

    RipupResult r = ripup_place(s.db, s.grid, s.stuck, 18.0, 1.0);
    EXPECT_TRUE(r.success);
    EXPECT_GT(r.evicted, 0u);
    EXPECT_TRUE(s.db.cell(s.stuck).placed());
    LegalityOptions lopts;
    lopts.check_rail_alignment = false;  // mixed phases in fixture
    const LegalityReport rep = check_legality(s.db, s.grid, lopts);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    EXPECT_TRUE(s.grid.audit(s.db).empty());
    // Rail parity of the rescued cell is honoured.
    EXPECT_TRUE(rail_compatible(s.db.cell(s.stuck).y(), 2,
                                RailPhase::kOdd));
}

TEST(Ripup, RollsBackExactlyWhenImpossible) {
    // Make re-insertion impossible: fill *every* row completely, so the
    // evicted singles have nowhere to go.
    Database db = empty_design(2, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 4; ++i) {
        add_placed(db, grid, "a" + std::to_string(i),
                   static_cast<SiteCoord>(i * 5), 0, 5, 1);
        add_placed(db, grid, "b" + std::to_string(i),
                   static_cast<SiteCoord>(i * 5), 1, 5, 1);
    }
    const CellId stuck =
        add_unplaced(db, "dbl", 8.0, 0.0, 4, 2, RailPhase::kEven);
    std::vector<std::pair<bool, Point>> snapshot;
    for (const Cell& c : db.cells()) {
        snapshot.emplace_back(c.placed(), c.pos());
    }
    const RipupResult r = ripup_place(db, grid, stuck, 8.0, 0.0);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(db.cell(stuck).placed());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        EXPECT_EQ(db.cells()[i].placed(), snapshot[i].first);
        if (snapshot[i].first) {
            // Only placed cells carry meaningful coordinates; the failed
            // target's internal position is scratch space.
            EXPECT_EQ(db.cells()[i].pos(), snapshot[i].second);
        }
    }
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(Ripup, SkipsMultiRowVictims) {
    // The footprint overlaps another double-height cell; rip-up must not
    // evict it (by policy) and should find a different candidate or fail.
    Database db = empty_design(4, 24);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId blocker =
        add_placed(db, grid, "blk", 8, 0, 4, 2, RailPhase::kEven);
    // Fill the rest of rows 0-1 with singles.
    for (int i = 0; i < 2; ++i) {
        add_placed(db, grid, "s0" + std::to_string(i),
                   static_cast<SiteCoord>(i * 4), 0, 4, 1);
        add_placed(db, grid, "s1" + std::to_string(i),
                   static_cast<SiteCoord>(i * 4), 1, 4, 1);
    }
    const CellId t = add_unplaced(db, "t", 8.0, 0.0, 4, 2,
                                  RailPhase::kEven);
    const RipupResult r = ripup_place(db, grid, t, 8.0, 0.0);
    // Rip-up succeeds without ever *evicting* the multi-row blocker: the
    // blocker stays placed (it may shift in x via re-insertion MLL, which
    // is allowed), and the result is legal.
    EXPECT_TRUE(r.success);
    EXPECT_TRUE(db.cell(blocker).placed());
    EXPECT_EQ(db.cell(blocker).y(), 0);  // rows never change
    LegalityOptions lopts;
    const LegalityReport rep = check_legality(db, grid, lopts);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(Ripup, PlacedTargetAsserts) {
    Database db = empty_design(2, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId c = add_placed(db, grid, "c", 0, 0, 4, 1);
    EXPECT_THROW(ripup_place(db, grid, c, 0.0, 0.0), AssertionError);
}

TEST(Ripup, LegalizerRescuesAdversarialOrderViaRipup) {
    // Input order places all singles first (the starvation order).
    // Algorithm 1 + free-slot fallback alone can deadlock; with rip-up the
    // legalizer must finish.
    Rng rng(97);
    Database db = empty_design(10, 100);
    for (int i = 0; i < 180; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 7));
        add_unplaced(db, "s" + std::to_string(i),
                     rng.uniform01() * (100 - w), rng.uniform01() * 9, w, 1);
    }
    for (int i = 0; i < 10; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        add_unplaced(db, "d" + std::to_string(i),
                     rng.uniform01() * (100 - w), rng.uniform01() * 8, w, 2);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    opts.order = LegalizerOptions::Order::kInputOrder;  // adversarial
    const LegalizerStats stats = legalize_placement(db, grid, opts);
    EXPECT_TRUE(stats.success) << stats.unplaced << " unplaced";
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Ripup, CandidateBudgetRespected) {
    Starved s = starved_design();
    RipupOptions opts;
    opts.max_candidates = 0;
    const RipupResult r =
        ripup_place(s.db, s.grid, s.stuck, 18.0, 1.0, opts);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.candidates_tried, 0u);
}

}  // namespace
}  // namespace mrlg::test
