#include <gtest/gtest.h>

#include <cstdlib>

#include "check/audit.hpp"
#include "check/audit_local.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/minmax_placement.hpp"
#include "test_helpers.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mrlg::test {
namespace {

/// Two single-height cells and one double-height cell, all placed legally.
/// The corruption tests each break exactly one invariant of this fixture.
struct Fixture {
    Database db;
    SegmentGrid grid;
    CellId a;  ///< 1x5 at (0, 0)
    CellId b;  ///< 1x5 at (10, 0)
    CellId d;  ///< 2x4 at (30, 0), even rail phase
};

Fixture make_fixture() {
    Fixture f{empty_design(4, 100), {}, {}, {}, {}};
    f.grid = SegmentGrid::build(f.db);
    f.a = add_placed(f.db, f.grid, "a", 0, 0, 5, 1);
    f.b = add_placed(f.db, f.grid, "b", 10, 0, 5, 1);
    f.d = add_placed(f.db, f.grid, "d", 30, 0, 4, 2);
    return f;
}

TEST(AuditLevel, FromEnv) {
    const auto with_env = [](const char* value) {
        if (value == nullptr) {
            ::unsetenv("MRLG_VALIDATE");
        } else {
            ::setenv("MRLG_VALIDATE", value, 1);
        }
        const AuditLevel got = audit_level_from_env();
        ::unsetenv("MRLG_VALIDATE");
        return got;
    };
    EXPECT_EQ(with_env(nullptr), AuditLevel::kOff);
    EXPECT_EQ(with_env(""), AuditLevel::kOff);
    EXPECT_EQ(with_env("off"), AuditLevel::kOff);
    EXPECT_EQ(with_env("cheap"), AuditLevel::kCheap);
    EXPECT_EQ(with_env("FULL"), AuditLevel::kFull);
    EXPECT_EQ(with_env("1"), AuditLevel::kCheap);
    EXPECT_EQ(with_env("2"), AuditLevel::kFull);
    EXPECT_EQ(with_env("bogus"), AuditLevel::kOff);
}

TEST(AuditReport, CapsRecordedIssues) {
    AuditReport r;
    for (std::size_t i = 0; i < AuditReport::kMaxIssues + 10; ++i) {
        r.add("test-check", "issue " + std::to_string(i));
    }
    EXPECT_EQ(r.issues.size(), AuditReport::kMaxIssues);
    EXPECT_EQ(r.suppressed, 10u);
    EXPECT_FALSE(r.ok());
}

TEST(Audit, CleanFixturePassesAllLevels) {
    Fixture f = make_fixture();
    EXPECT_TRUE(audit_database(f.db).ok());
    EXPECT_TRUE(
        audit_placement(f.db, f.grid, AuditLevel::kCheap).ok());
    const AuditReport full =
        audit_placement(f.db, f.grid, AuditLevel::kFull);
    EXPECT_TRUE(full.ok()) << full.to_string();
    EXPECT_NO_THROW(enforce(full));
}

TEST(Audit, CleanRandomDesignPassesFull) {
    Rng rng(17);
    RandomDesign rd = random_legal_design(rng, 12, 120, 80, 0.25);
    const AuditReport r =
        audit_placement(rd.db, rd.grid, AuditLevel::kFull);
    EXPECT_TRUE(r.ok()) << r.to_string();
}

// --- corrupted fixtures: each flips one invariant; the matching check ----

TEST(AuditCorruption, UnsortedListIsCaught) {
    Fixture f = make_fixture();
    // Move a past b without updating the segment list: order breaks.
    f.db.cell(f.a).set_x(20);
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("list-order")) << r.to_string();
    EXPECT_THROW(enforce(r), AssertionError);
}

TEST(AuditCorruption, OverlapIsCaught) {
    Fixture f = make_fixture();
    // a now spans [8, 13), overlapping b's [10, 15).
    f.db.cell(f.a).set_x(8);
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("list-order")) << r.to_string();
}

TEST(AuditCorruption, EscapedSegmentSpanIsCaught) {
    Fixture f = make_fixture();
    // a now spans [97, 102) but the row segment ends at 100.
    f.db.cell(f.a).set_x(97);
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("list-span")) << r.to_string();
}

TEST(AuditCorruption, UnplacedWhileListedIsCaught) {
    Fixture f = make_fixture();
    f.db.cell(f.b).unplace();
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("list-placed")) << r.to_string();
}

TEST(AuditCorruption, RailParityViolationIsCaught) {
    Fixture f = make_fixture();
    // Move the even-phase double-height cell to an odd bottom row.
    f.grid.remove(f.db, f.d);
    f.grid.place(f.db, f.d, 30, 1);
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("rail-parity")) << r.to_string();
}

TEST(AuditCorruption, MissingListEntryIsCaught) {
    Fixture f = make_fixture();
    // Erase the double-height cell from its bottom-row list only: it now
    // appears in 1 list instead of height() == 2.
    const SegmentId seg = f.grid.containing_segment(0, Span{30, 34});
    ASSERT_TRUE(seg.valid());
    auto& cells = f.grid.mutable_cells_for_test(seg);
    ASSERT_TRUE(std::erase(cells, f.d) == 1);
    const AuditReport r = audit_segment_grid(f.db, f.grid);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("coverage")) << r.to_string();
}

TEST(AuditCorruption, FullLevelCatchesWhatListsCannot) {
    Fixture f = make_fixture();
    // Consistent lists, illegal geometry: move a onto b AND patch the
    // list order by also moving b. Both lists stay sorted, but the cells
    // overlap — only the independent kFull legality sweep re-derives it.
    f.db.cell(f.a).set_x(9);   // [9, 14)
    f.db.cell(f.b).set_x(12);  // [12, 17): sorted but overlapping
    const AuditReport cheap =
        audit_segment_grid(f.db, f.grid, AuditLevel::kCheap);
    const AuditReport full =
        audit_segment_grid(f.db, f.grid, AuditLevel::kFull);
    EXPECT_FALSE(full.ok());
    // The structural list-order check already sees the overlap (lists
    // store footprints), so cheap may flag it too — but the independent
    // sweep must flag it under "legality" regardless.
    EXPECT_TRUE(full.has("legality") || cheap.has("list-order"))
        << full.to_string();
}

TEST(AuditCorruption, DatabaseGatesZeroSizeCells) {
    // Zero-size cells are rejected at the insertion gate, so the
    // auditor's cell-geometry check is a backstop against memory
    // corruption only.
    Fixture f = make_fixture();
    EXPECT_THROW(f.db.add_cell(Cell("zero", 0, 1)), AssertionError);
}

TEST(AuditCorruption, NegativeFenceRegionIsCaught) {
    Fixture f = make_fixture();
    f.db.cell(f.a).set_region(-3);
    const AuditReport r = audit_database(f.db);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("cell-region")) << r.to_string();
}

TEST(AuditCorruption, ReportIsDeterministic) {
    const auto corrupt_and_render = [] {
        Fixture f = make_fixture();
        f.db.cell(f.a).set_x(20);
        f.db.cell(f.b).unplace();
        return audit_placement(f.db, f.grid, AuditLevel::kFull)
            .to_string();
    };
    EXPECT_EQ(corrupt_and_render(), corrupt_and_render());
}

// --- local-region / local-problem auditors -------------------------------

TEST(AuditLocal, CleanRegionAndProblemPass) {
    Fixture f = make_fixture();
    const Rect window{0, 0, 40, 2};
    const LocalRegion region =
        extract_local_region(f.db, f.grid, window);
    const AuditReport rr = audit_local_region(f.db, f.grid, region);
    EXPECT_TRUE(rr.ok()) << rr.to_string();

    LocalProblem lp = make_local_problem(f.db, f.grid, window);
    const AuditReport before = audit_local_problem(lp, false);
    EXPECT_TRUE(before.ok()) << before.to_string();
    compute_minmax_placement(lp);
    const AuditReport after = audit_local_problem(lp, true);
    EXPECT_TRUE(after.ok()) << after.to_string();
}

TEST(AuditLocal, CorruptedRegionRowIsCaught) {
    Fixture f = make_fixture();
    LocalRegion region =
        extract_local_region(f.db, f.grid, Rect{0, 0, 40, 2});
    ASSERT_TRUE(region.has_row(0));
    // Stretch the chosen local span beyond its enclosing segment.
    region.mutable_row(0)->span.hi += 500;
    const AuditReport r = audit_local_region(f.db, f.grid, region);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("lr-span") || r.has("lr-segment"))
        << r.to_string();
}

TEST(AuditLocal, CorruptedProblemCellIsCaught) {
    Fixture f = make_fixture();
    LocalProblem lp =
        make_local_problem(f.db, f.grid, Rect{0, 0, 40, 2});
    ASSERT_GT(lp.num_cells(), 0);
    lp.mutable_cells()[0].w = 0;
    const AuditReport r = audit_local_problem(lp, false);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("lp-cell-geometry")) << r.to_string();
}

TEST(AuditLocal, MinmaxBoundViolationIsCaught) {
    Fixture f = make_fixture();
    LocalProblem lp =
        make_local_problem(f.db, f.grid, Rect{0, 0, 40, 2});
    compute_minmax_placement(lp);
    ASSERT_GT(lp.num_cells(), 0);
    // Claim the leftmost feasible x is right of the current x.
    lp.mutable_cells()[0].xl = lp.cells()[0].x + 1;
    const AuditReport r = audit_local_problem(lp, true);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.has("lp-minmax")) << r.to_string();
}

// --- end-to-end: legalizer with in-run audits ----------------------------

TEST(AuditEndToEnd, LegalizerRunsCleanUnderFullValidation) {
    Rng rng(5);
    Database db = empty_design(10, 120);
    for (int i = 0; i < 60; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 7));
        add_unplaced(db, "s" + std::to_string(i),
                     rng.uniform01() * (120 - w), rng.uniform01() * 9, w,
                     1);
    }
    for (int i = 0; i < 10; ++i) {
        add_unplaced(db, "d" + std::to_string(i), rng.uniform01() * 116,
                     rng.uniform01() * 8, 3, 2);
    }
    db.freeze_fixed_cells();
    SegmentGrid grid = SegmentGrid::build(db);

    LegalizerOptions opts;
    opts.audit = AuditLevel::kFull;
    const LegalizerStats stats = legalize_placement(db, grid, opts);
    EXPECT_TRUE(stats.success);
    EXPECT_GT(stats.audits_run, 0u);
    const AuditReport r = audit_placement(db, grid, AuditLevel::kFull);
    EXPECT_TRUE(r.ok()) << r.to_string();
}

}  // namespace
}  // namespace mrlg::test
