/// Parameterized full-flow sweeps: the legalizer must succeed and produce
/// a legal, low-displacement placement across the (density × height-mix ×
/// rail-mode) grid. One TEST_P instance per grid point.

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

struct SweepCase {
    double density;
    double double_frac;
    double triple_frac;
    double quad_frac;
    bool check_rail;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << "d" << c.density << "_m" << c.double_frac << "_t"
              << c.triple_frac << "_q" << c.quad_frac
              << (c.check_rail ? "_rail" : "_norail");
}

class LegalizerSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LegalizerSweep, LegalizesWithBoundedDisplacement) {
    const SweepCase& c = GetParam();
    GenProfile p;
    p.name = "sweep";
    const std::size_t total = 1200;
    p.num_double = static_cast<std::size_t>(c.double_frac * total);
    p.num_triple = static_cast<std::size_t>(c.triple_frac * total);
    p.num_quad = static_cast<std::size_t>(c.quad_frac * total);
    p.num_single = total - p.num_double - p.num_triple - p.num_quad;
    p.density = c.density;
    p.seed = 1234 + static_cast<std::uint64_t>(c.density * 100);
    GenResult gen = generate_benchmark(p);
    ASSERT_TRUE(gen.packed_ok);

    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.mll.check_rail = c.check_rail;
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    EXPECT_TRUE(stats.success) << stats.unplaced << " unplaced";

    LegalityOptions lopts;
    lopts.check_rail_alignment = c.check_rail;
    const LegalityReport rep = check_legality(gen.db, grid, lopts);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    EXPECT_TRUE(grid.audit(gen.db).empty());

    // Displacement stays within a loose but meaningful bound: the GP noise
    // plus pushes must not blow up even at high density.
    const DisplacementStats disp = displacement_stats(gen.db);
    EXPECT_LT(disp.avg_sites, 15.0);
    EXPECT_GT(disp.avg_sites, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DensityAndHeightGrid, LegalizerSweep,
    ::testing::Values(
        // Paper-style mixes (10% doubles) over the density range.
        SweepCase{0.20, 0.10, 0.0, 0.0, true},
        SweepCase{0.40, 0.10, 0.0, 0.0, true},
        SweepCase{0.60, 0.10, 0.0, 0.0, true},
        SweepCase{0.75, 0.10, 0.0, 0.0, true},
        SweepCase{0.88, 0.10, 0.0, 0.0, true},
        // Relaxed power-rail variants.
        SweepCase{0.40, 0.10, 0.0, 0.0, false},
        SweepCase{0.75, 0.10, 0.0, 0.0, false},
        SweepCase{0.88, 0.10, 0.0, 0.0, false},
        // Taller-cell extensions.
        SweepCase{0.50, 0.10, 0.05, 0.00, true},
        SweepCase{0.50, 0.10, 0.05, 0.03, true},
        SweepCase{0.70, 0.15, 0.08, 0.04, true},
        SweepCase{0.70, 0.15, 0.08, 0.04, false},
        // Single-height-only degenerate case.
        SweepCase{0.60, 0.00, 0.0, 0.0, true}));

/// Window-size sweep: every window large enough to hold the tallest cell
/// must keep the flow legal; quality improves monotonically-ish with Rx.
class WindowSweep
    : public ::testing::TestWithParam<std::pair<SiteCoord, SiteCoord>> {};

TEST_P(WindowSweep, LegalAtAnyWindow) {
    const auto [rx, ry] = GetParam();
    GenProfile p;
    p.name = "window";
    p.num_single = 900;
    p.num_double = 100;
    p.density = 0.6;
    p.seed = 555;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.mll.rx = rx;
    opts.mll.ry = ry;
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    EXPECT_TRUE(stats.success);
    EXPECT_TRUE(check_legality(gen.db, grid).legal);
}

INSTANTIATE_TEST_SUITE_P(
    WindowGrid, WindowSweep,
    ::testing::Values(std::pair<SiteCoord, SiteCoord>{5, 2},
                      std::pair<SiteCoord, SiteCoord>{10, 2},
                      std::pair<SiteCoord, SiteCoord>{10, 5},
                      std::pair<SiteCoord, SiteCoord>{30, 5},
                      std::pair<SiteCoord, SiteCoord>{30, 1},
                      std::pair<SiteCoord, SiteCoord>{60, 8}));

/// Seed sweep: the whole flow is deterministic per seed but must succeed
/// for any seed.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, AnySeedSucceeds) {
    GenProfile p;
    p.name = "seed";
    p.num_single = 700;
    p.num_double = 90;
    p.density = 0.8;
    p.seed = GetParam();
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.seed = GetParam();
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    EXPECT_TRUE(stats.success) << stats.unplaced;
    EXPECT_TRUE(check_legality(gen.db, grid).legal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace mrlg::test
