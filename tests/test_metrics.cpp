#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// Two cells, one 2-pin net; site dims default 0.2 x 1.71 um.
struct TwoCellNet {
    Database db = empty_design(4, 100);
    CellId a, b;
    TwoCellNet() {
        a = db.add_cell(Cell("a", 2, 1));
        b = db.add_cell(Cell("b", 2, 1));
        const NetId n = db.add_net("n");
        db.add_pin(a, n, 1.0, 0.5);
        db.add_pin(b, n, 1.0, 0.5);
    }
};

TEST(Hpwl, SinglePinNetIgnored) {
    Database db = empty_design(2, 50);
    const CellId a = db.add_cell(Cell("a", 2, 1));
    const NetId n = db.add_net("n");
    db.add_pin(a, n, 0.0, 0.0);
    db.cell(a).set_gp(10, 1);
    EXPECT_EQ(hpwl_um(db, PositionSource::kGlobalPlacement), 0.0);
}

TEST(Hpwl, TwoPinNetGlobalPositions) {
    TwoCellNet f;
    f.db.cell(f.a).set_gp(0.0, 0.0);
    f.db.cell(f.b).set_gp(10.0, 2.0);
    const double sw = f.db.floorplan().site_w_um();
    const double sh = f.db.floorplan().site_h_um();
    EXPECT_NEAR(hpwl_um(f.db, PositionSource::kGlobalPlacement),
                10.0 * sw + 2.0 * sh, 1e-9);
}

TEST(Hpwl, LegalizedPositionsDifferFromGp) {
    TwoCellNet f;
    f.db.cell(f.a).set_gp(0.0, 0.0);
    f.db.cell(f.b).set_gp(10.0, 2.0);
    f.db.cell(f.a).set_pos(0, 0);
    f.db.cell(f.b).set_pos(20, 3);
    const double sw = f.db.floorplan().site_w_um();
    const double sh = f.db.floorplan().site_h_um();
    EXPECT_NEAR(hpwl_um(f.db, PositionSource::kLegalized),
                20.0 * sw + 3.0 * sh, 1e-9);
}

TEST(Hpwl, DeltaPositiveWhenLegalizationStretches) {
    TwoCellNet f;
    f.db.cell(f.a).set_gp(0.0, 0.0);
    f.db.cell(f.b).set_gp(10.0, 0.0);
    f.db.cell(f.a).set_pos(0, 0);
    f.db.cell(f.b).set_pos(15, 0);
    EXPECT_NEAR(hpwl_delta(f.db), 0.5, 1e-9);
}

TEST(Hpwl, FixedCellsUseFixedPositionForBothSources) {
    Database db = empty_design(4, 100);
    Cell fixed("pad", 1, 1, RailPhase::kEven, true);
    fixed.set_pos(50, 2);
    const CellId f = db.add_cell(std::move(fixed));
    const CellId m = db.add_cell(Cell("m", 2, 1));
    db.cell(m).set_gp(0.0, 0.0);
    db.cell(m).set_pos(0, 0);
    const NetId n = db.add_net("n");
    db.add_pin(f, n, 0.0, 0.0);
    db.add_pin(m, n, 0.0, 0.0);
    const double gp = hpwl_um(db, PositionSource::kGlobalPlacement);
    const double lg = hpwl_um(db, PositionSource::kLegalized);
    EXPECT_NEAR(gp, lg, 1e-9);
    EXPECT_GT(gp, 0.0);
}

TEST(Hpwl, PinOffsetsMatter) {
    TwoCellNet f;
    f.db.cell(f.a).set_gp(0.0, 0.0);
    f.db.cell(f.b).set_gp(0.0, 0.0);  // same origin; offsets identical
    EXPECT_NEAR(hpwl_um(f.db, PositionSource::kGlobalPlacement), 0.0, 1e-9);
}

TEST(Displacement, ZeroWhenAtGp) {
    Database db = empty_design(4, 100);
    const CellId a = db.add_cell(Cell("a", 2, 1));
    db.cell(a).set_gp(10.0, 2.0);
    db.cell(a).set_pos(10, 2);
    const DisplacementStats s = displacement_stats(db);
    EXPECT_EQ(s.num_cells, 1u);
    EXPECT_NEAR(s.avg_sites, 0.0, 1e-12);
    EXPECT_NEAR(s.max_sites, 0.0, 1e-12);
}

TEST(Displacement, MixesXandYInSiteWidths) {
    Database db = empty_design(4, 100);
    const CellId a = db.add_cell(Cell("a", 2, 1));
    db.cell(a).set_gp(10.0, 0.0);
    db.cell(a).set_pos(13, 1);  // dx=3 sites, dy=1 row
    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    const DisplacementStats s = displacement_stats(db);
    EXPECT_NEAR(s.total_um, 3.0 * sw + 1.0 * sh, 1e-9);
    EXPECT_NEAR(s.avg_sites, (3.0 * sw + 1.0 * sh) / sw, 1e-9);
}

TEST(Displacement, AveragesOverPlacedMovableOnly) {
    Database db = empty_design(4, 100);
    const CellId a = db.add_cell(Cell("a", 2, 1));
    db.cell(a).set_gp(0.0, 0.0);
    db.cell(a).set_pos(4, 0);
    db.add_cell(Cell("unplaced", 2, 1));
    Cell fixed("f", 2, 1, RailPhase::kEven, true);
    fixed.set_pos(50, 0);
    db.add_cell(std::move(fixed));
    const DisplacementStats s = displacement_stats(db);
    EXPECT_EQ(s.num_cells, 1u);
    EXPECT_NEAR(s.avg_sites, 4.0, 1e-9);
    EXPECT_NEAR(s.max_sites, 4.0, 1e-9);
}

TEST(Displacement, FractionalGpHandled) {
    Database db = empty_design(4, 100);
    const CellId a = db.add_cell(Cell("a", 2, 1));
    db.cell(a).set_gp(10.4, 0.0);
    db.cell(a).set_pos(10, 0);
    EXPECT_NEAR(displacement_stats(db).avg_sites, 0.4, 1e-9);
}

}  // namespace
}  // namespace mrlg::test
