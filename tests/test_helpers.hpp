#pragma once
/// Shared fixtures: tiny hand-built designs and randomized design factories
/// used across the test suite.

#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/local_region.hpp"
#include "util/rng.hpp"

namespace mrlg::test {

/// A database with `rows` × `sites` rectangular floorplan and no cells.
Database empty_design(SiteCoord rows, SiteCoord sites);

/// Adds a movable cell and places it via the grid. Returns its id.
CellId add_placed(Database& db, SegmentGrid& grid, const std::string& name,
                  SiteCoord x, SiteCoord y, SiteCoord w, SiteCoord h,
                  RailPhase phase = RailPhase::kEven);

/// Adds an unplaced movable cell with the given gp position.
CellId add_unplaced(Database& db, const std::string& name, double gp_x,
                    double gp_y, SiteCoord w, SiteCoord h,
                    RailPhase phase = RailPhase::kEven);

/// Randomized legal design: packs `num_cells` cells (multi_frac of them
/// double-height) into the die; every cell placed. Densities ~0.3-0.8.
struct RandomDesign {
    Database db;
    SegmentGrid grid;
};
RandomDesign random_legal_design(Rng& rng, SiteCoord rows, SiteCoord sites,
                                 int num_cells, double multi_frac,
                                 SiteCoord max_h = 2);

/// Extracts a LocalProblem around the window. Convenience for pipeline
/// stage tests.
LocalProblem make_local_problem(const Database& db, const SegmentGrid& grid,
                                const Rect& window);

/// Brute-force minimal hinge cost by scanning all integer x in [lo, hi]
/// (reference for minimize_hinge_cost).
double brute_force_hinge_min(const std::vector<SiteCoord>& a,
                             const std::vector<SiteCoord>& b, double pref,
                             SiteCoord lo, SiteCoord hi);

}  // namespace mrlg::test
