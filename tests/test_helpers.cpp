#include "test_helpers.hpp"

#include <algorithm>
#include <cmath>

#include "legalize/greedy.hpp"
#include "util/assert.hpp"

namespace mrlg::test {

Database empty_design(SiteCoord rows, SiteCoord sites) {
    return Database(Floorplan(rows, sites));
}

CellId add_placed(Database& db, SegmentGrid& grid, const std::string& name,
                  SiteCoord x, SiteCoord y, SiteCoord w, SiteCoord h,
                  RailPhase phase) {
    const CellId id = db.add_cell(Cell(name, w, h, phase));
    db.cell(id).set_gp(static_cast<double>(x), static_cast<double>(y));
    grid.place(db, id, x, y);
    return id;
}

CellId add_unplaced(Database& db, const std::string& name, double gp_x,
                    double gp_y, SiteCoord w, SiteCoord h, RailPhase phase) {
    const CellId id = db.add_cell(Cell(name, w, h, phase));
    db.cell(id).set_gp(gp_x, gp_y);
    return id;
}

RandomDesign random_legal_design(Rng& rng, SiteCoord rows, SiteCoord sites,
                                 int num_cells, double multi_frac,
                                 SiteCoord max_h) {
    RandomDesign d{empty_design(rows, sites), SegmentGrid{}};
    for (int i = 0; i < num_cells; ++i) {
        const bool multi = rng.uniform01() < multi_frac;
        const SiteCoord h =
            multi ? static_cast<SiteCoord>(rng.uniform(2, max_h)) : 1;
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 6));
        const RailPhase phase =
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd;
        const CellId id =
            d.db.add_cell(Cell("c" + std::to_string(i), w, h, phase));
        d.db.cell(id).set_gp(
            rng.uniform01() * static_cast<double>(sites - w),
            rng.uniform01() * static_cast<double>(rows - h));
    }
    d.grid = SegmentGrid::build(d.db);
    GreedyOptions gopts;
    gopts.order = GreedyOptions::Order::kAreaDescending;
    const GreedyStats s = greedy_legalize(d.db, d.grid, gopts);
    MRLG_ASSERT(s.success, "random design packing failed — lower density");
    return d;
}

LocalProblem make_local_problem(const Database& db, const SegmentGrid& grid,
                                const Rect& window) {
    const LocalRegion region = extract_local_region(db, grid, window);
    return LocalProblem::build(db, region);
}

double brute_force_hinge_min(const std::vector<SiteCoord>& a,
                             const std::vector<SiteCoord>& b, double pref,
                             SiteCoord lo, SiteCoord hi) {
    double best = std::numeric_limits<double>::max();
    for (SiteCoord x = lo; x <= hi; ++x) {
        double cost = std::abs(static_cast<double>(x) - pref);
        for (const SiteCoord av : a) {
            cost += std::max(0, av - x);
        }
        for (const SiteCoord bv : b) {
            cost += std::max(0, x - bv);
        }
        best = std::min(best, cost);
    }
    return best;
}

}  // namespace mrlg::test
