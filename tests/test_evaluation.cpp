#include <gtest/gtest.h>

#include "legalize/evaluation.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/realization.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TargetSpec make_target(SiteCoord w, SiteCoord h, double px, double py,
                       RailPhase phase = RailPhase::kEven) {
    TargetSpec t;
    t.w = w;
    t.h = h;
    t.pref_x = px;
    t.pref_y = py;
    t.rail_phase = phase;
    return t;
}

// ---------------- hinge minimizer ----------------

TEST(HingeMin, NoHingesSnapsToPref) {
    HingeSet h;
    h.pref = 12.0;
    const auto [x, c] = minimize_hinge_cost(h, 0, 40);
    EXPECT_EQ(x, 12);
    EXPECT_NEAR(c, 0.0, 1e-12);
}

TEST(HingeMin, PrefOutsideRangeClamped) {
    HingeSet h;
    h.pref = 100.0;
    const auto [x, c] = minimize_hinge_cost(h, 0, 40);
    EXPECT_EQ(x, 40);
    EXPECT_NEAR(c, 60.0, 1e-12);
}

TEST(HingeMin, FractionalPrefPicksNearestInteger) {
    HingeSet h;
    h.pref = 10.4;
    const auto [x, c] = minimize_hinge_cost(h, 0, 40);
    EXPECT_EQ(x, 10);
    EXPECT_NEAR(c, 0.4, 1e-12);
}

TEST(HingeMin, LeftHingePullsRight) {
    // Left neighbour critical at 20: positions below 20 cost (20-x).
    HingeSet h;
    h.a = {20};
    h.pref = 15.0;
    const auto [x, c] = minimize_hinge_cost(h, 0, 40);
    // Balance: moving from 15 to 20 trades |x-pref| 1:1 against the hinge
    // — any x in [15,20] costs 5. Tie-break prefers closeness to pref.
    EXPECT_EQ(x, 15);
    EXPECT_NEAR(c, 5.0, 1e-12);
}

TEST(HingeMin, MajorityWins) {
    HingeSet h;
    h.a = {20, 20, 20};  // three cells want x >= 20
    h.pref = 15.0;
    const auto [x, c] = minimize_hinge_cost(h, 0, 40);
    EXPECT_EQ(x, 20);
    EXPECT_NEAR(c, 5.0, 1e-12);
}

TEST(HingeMin, MatchesBruteForceRandomized) {
    Rng rng(53);
    for (int t = 0; t < 200; ++t) {
        HingeSet h;
        const int na = static_cast<int>(rng.uniform(0, 5));
        const int nb = static_cast<int>(rng.uniform(0, 5));
        for (int i = 0; i < na; ++i) {
            h.a.push_back(static_cast<SiteCoord>(rng.uniform(-20, 60)));
        }
        for (int i = 0; i < nb; ++i) {
            h.b.push_back(static_cast<SiteCoord>(rng.uniform(-20, 60)));
        }
        h.pref = static_cast<double>(rng.uniform(-10, 50)) +
                 rng.uniform01();
        const SiteCoord lo = static_cast<SiteCoord>(rng.uniform(-10, 20));
        const SiteCoord hi =
            lo + static_cast<SiteCoord>(rng.uniform(0, 40));
        const auto [x, c] = minimize_hinge_cost(h, lo, hi);
        EXPECT_GE(x, lo);
        EXPECT_LE(x, hi);
        const double ref = brute_force_hinge_min(h.a, h.b, h.pref, lo, hi);
        EXPECT_NEAR(c, ref, 1e-9) << "trial " << t;
    }
}

// ---------------- approximate evaluation ----------------

TEST(EvalApprox, FreeGapZeroCost) {
    Database db = empty_design(1, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    add_placed(db, grid, "b", 50, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 1});
    compute_minmax_placement(lp);
    const TargetSpec t = make_target(4, 1, 20.0, 0.0);
    InsertionPoint p;
    p.k0 = 0;
    p.gaps = {1};
    p.lo = 5;
    p.hi = 46;
    const Evaluation ev = evaluate_insertion_point_approx(lp, p, t);
    ASSERT_TRUE(ev.feasible);
    EXPECT_EQ(ev.xt, 20);
    EXPECT_NEAR(ev.cost_um, 0.0, 1e-9);
}

TEST(EvalApprox, CountsNeighbourDisplacement) {
    // Target wants x=2 but the left neighbour ends at 5: either the target
    // moves right or the neighbour moves left.
    Database db = empty_design(1, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 1});
    compute_minmax_placement(lp);
    const TargetSpec t = make_target(4, 1, 2.0, 0.0);
    InsertionPoint p;
    p.k0 = 0;
    p.gaps = {1};  // right of a
    p.lo = 0;      // a can pack to xl=0? no: gap (a,R): lo = xl_a + 5 = 5
    p.lo = 5;
    p.hi = 56;
    const Evaluation ev = evaluate_insertion_point_approx(lp, p, t);
    ASSERT_TRUE(ev.feasible);
    EXPECT_EQ(ev.xt, 5);
    // cost = |5-2| site widths (x in microns / site_w = 3 sites).
    EXPECT_NEAR(ev.cost_um / lp.site_w_um(), 3.0, 1e-9);
}

TEST(EvalApprox, YDisplacementIncluded) {
    Database db = empty_design(4, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 4});
    compute_minmax_placement(lp);
    const TargetSpec t = make_target(4, 1, 10.0, 2.6);
    InsertionPoint p;
    p.k0 = 0;  // absolute row 0, pref row 2.6 → dy = 2.6 rows
    p.gaps = {0};
    p.lo = 0;
    p.hi = 56;
    const Evaluation ev = evaluate_insertion_point_approx(lp, p, t);
    ASSERT_TRUE(ev.feasible);
    EXPECT_NEAR(ev.cost_um, 2.6 * lp.site_h_um(), 1e-9);
}

// ---------------- exact critical positions ----------------

TEST(CriticalPositions, ChainOfLeftCells) {
    // Cells a(0,w5) b(5,w5) c(10,w5); target inserted right of c.
    // xa_c = 15, xa_b = xa_c - x_c + x_b + w_b = 15-10+5+5=15? Chain with
    // no slack: xa_b = x_b + w_b + (xa_c - x_c) = 5+5+5 = 15, xa_a = 15.
    Database db = empty_design(1, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 5, 0, 5, 1);
    const CellId c = add_placed(db, grid, "c", 10, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 1});
    compute_minmax_placement(lp);
    InsertionPoint p;
    p.k0 = 0;
    p.gaps = {3};
    p.lo = 15;
    p.hi = 56;
    const CriticalPositions cp = compute_critical_positions(lp, p, 4);
    auto idx = [&](CellId id) {
        for (int i = 0; i < lp.num_cells(); ++i) {
            if (lp.cell(i).id == id) return i;
        }
        return -1;
    };
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(c))], 15);
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(b))], 15);
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(a))], 15);
    // No push-right thresholds (nothing right of the gap).
    EXPECT_EQ(cp.xb[static_cast<std::size_t>(idx(a))], kSiteCoordMax);
}

TEST(CriticalPositions, SlackBreaksChains) {
    // a(0,w5), c(20,w5): pushing c left only reaches a when the target
    // goes below a's edge plus the gap.
    Database db = empty_design(1, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 5, 1);
    const CellId c = add_placed(db, grid, "c", 20, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 1});
    compute_minmax_placement(lp);
    InsertionPoint p;
    p.k0 = 0;
    p.gaps = {2};  // right of c
    p.lo = 10;
    p.hi = 56;
    const CriticalPositions cp = compute_critical_positions(lp, p, 4);
    auto idx = [&](CellId id) {
        for (int i = 0; i < lp.num_cells(); ++i) {
            if (lp.cell(i).id == id) return i;
        }
        return -1;
    };
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(c))], 25);
    // xa_a = x_a + w_a + (xa_c - x_c) = 0+5+5 = 10.
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(a))], 10);
}

TEST(CriticalPositions, MultiRowPropagatesAcrossRows) {
    // Double-height m couples rows: pushing m in row 0 pushes s in row 1.
    Database db = empty_design(2, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId s = add_placed(db, grid, "s", 0, 1, 5, 1);
    const CellId m = add_placed(db, grid, "m", 5, 0, 4, 2);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 2});
    compute_minmax_placement(lp);
    // Single-row target in row 0, right of m.
    InsertionPoint p;
    p.k0 = 0;
    p.gaps = {1};
    p.lo = 9;
    p.hi = 56;
    const CriticalPositions cp = compute_critical_positions(lp, p, 4);
    auto idx = [&](CellId id) {
        for (int i = 0; i < lp.num_cells(); ++i) {
            if (lp.cell(i).id == id) return i;
        }
        return -1;
    };
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(m))], 9);
    // s is pushed via m: xa_s = x_s + w_s + (xa_m - x_m) = 0+5+4 = 9.
    EXPECT_EQ(cp.xa[static_cast<std::size_t>(idx(s))], 9);
}

// ---------------- exact vs realization ----------------

TEST(EvalExact, CostMatchesRealizedDisplacement) {
    // Property: for every enumerated point, the exact evaluation's cost
    // equals target-pref displacement + realized local displacement.
    Rng rng(61);
    for (int trial = 0; trial < 20; ++trial) {
        RandomDesign d = random_legal_design(rng, 8, 100, 60, 0.3);
        LocalProblem lp =
            make_local_problem(d.db, d.grid, Rect{10, 0, 70, 8});
        compute_minmax_placement(lp);
        const TargetSpec t = make_target(
            static_cast<SiteCoord>(rng.uniform(1, 5)),
            static_cast<SiteCoord>(rng.uniform(1, 2)),
            static_cast<double>(rng.uniform(10, 70)),
            static_cast<double>(rng.uniform(0, 7)),
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd);
        const auto intervals = build_insertion_intervals(lp, t.w);
        const auto res = enumerate_insertion_points(lp, intervals, t);
        for (const auto& pt : res.points) {
            const Evaluation ev =
                evaluate_insertion_point_exact(lp, pt, t);
            ASSERT_TRUE(ev.feasible);
            const Realization real =
                realize_insertion(lp, pt, ev.xt, t.w);
            const double real_cost =
                real.moved_sites * lp.site_w_um() +
                std::abs(static_cast<double>(ev.xt) - t.pref_x) *
                    lp.site_w_um() +
                std::abs(static_cast<double>(lp.y0() + pt.k0) - t.pref_y) *
                    lp.site_h_um();
            EXPECT_NEAR(ev.cost_um, real_cost, 1e-6)
                << "trial " << trial << " point k0=" << pt.k0;
        }
    }
}

TEST(EvalExact, ExactNeverWorseThanApproxChoice) {
    // The approximate evaluator may misjudge a point's cost, but for any
    // fixed point the exact optimum x is at least as good as realizing the
    // approximate x.
    Rng rng(67);
    for (int trial = 0; trial < 10; ++trial) {
        RandomDesign d = random_legal_design(rng, 6, 80, 40, 0.3);
        LocalProblem lp =
            make_local_problem(d.db, d.grid, Rect{0, 0, 80, 6});
        compute_minmax_placement(lp);
        const TargetSpec t =
            make_target(3, 1, static_cast<double>(rng.uniform(0, 75)),
                        static_cast<double>(rng.uniform(0, 5)));
        const auto intervals = build_insertion_intervals(lp, t.w);
        const auto res = enumerate_insertion_points(lp, intervals, t);
        for (const auto& pt : res.points) {
            const Evaluation ex = evaluate_insertion_point_exact(lp, pt, t);
            const Evaluation ap =
                evaluate_insertion_point_approx(lp, pt, t);
            ASSERT_TRUE(ex.feasible && ap.feasible);
            const Realization at_approx =
                realize_insertion(lp, pt, ap.xt, t.w);
            const double approx_real_cost =
                at_approx.moved_sites * lp.site_w_um() +
                std::abs(static_cast<double>(ap.xt) - t.pref_x) *
                    lp.site_w_um() +
                std::abs(static_cast<double>(lp.y0() + pt.k0) - t.pref_y) *
                    lp.site_h_um();
            EXPECT_LE(ex.cost_um, approx_real_cost + 1e-6);
        }
    }
}

}  // namespace
}  // namespace mrlg::test
