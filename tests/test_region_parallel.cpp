/// \file test_region_parallel.cpp
/// Determinism and unit coverage for the region-parallel plan/commit
/// pipeline (legalize/pipeline.hpp): the pipeline must be byte-identical
/// to the serial cell-at-a-time loop on every design, at every thread
/// count — that is its entire correctness contract.

#include <gtest/gtest.h>

#include <vector>

#include "eval/legality.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/local_region.hpp"
#include "legalize/pipeline.hpp"
#include "obs/timeline.hpp"
#include "qa/generators.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

// ---------------------------------------------------------------------------
// Footprint unit tests.

TEST(AttemptFootprint, HullsWindowAndFittedWithPad) {
    const Rect window{10, 2, 20, 4};   // x [10,30), rows [2,6)
    const Rect fitted{32, 1, 4, 2};    // x [32,36), rows [1,3)
    const AttemptFootprint fp =
        compute_attempt_footprint(window, fitted, /*max_cell_width=*/5);
    EXPECT_EQ(fp.rows.lo, 1);
    EXPECT_EQ(fp.rows.hi, 6);
    EXPECT_EQ(fp.x.lo, 10 - 4);  // pad = max_cell_width - 1
    EXPECT_EQ(fp.x.hi, 36 + 4);
}

TEST(AttemptFootprint, OverlapNeedsBothAxes) {
    AttemptFootprint a;
    a.rows = Span{0, 2};
    a.x = Span{0, 10};
    AttemptFootprint b;
    b.rows = Span{2, 4};  // touching rows only — half-open, disjoint
    b.x = Span{0, 10};
    EXPECT_FALSE(a.overlaps(b));
    b.rows = Span{1, 3};
    b.x = Span{10, 20};  // overlapping rows, touching x — disjoint
    EXPECT_FALSE(a.overlaps(b));
    b.x = Span{9, 20};
    EXPECT_TRUE(a.overlaps(b));
}

// ---------------------------------------------------------------------------
// Ledger / partition unit tests.

AttemptFootprint fp(SiteCoord row_lo, SiteCoord row_hi, SiteCoord x_lo,
                    SiteCoord x_hi) {
    AttemptFootprint f;
    f.rows = Span{row_lo, row_hi};
    f.x = Span{x_lo, x_hi};
    return f;
}

TEST(FootprintLedger, ClaimAndConflict) {
    FootprintLedger ledger;
    ledger.reset(8, Span{0, 1024});
    EXPECT_FALSE(ledger.conflicts(fp(0, 2, 16, 30)));
    ledger.claim(fp(0, 2, 16, 30));
    EXPECT_TRUE(ledger.conflicts(fp(1, 3, 24, 48)));   // real overlap
    EXPECT_FALSE(ledger.conflicts(fp(2, 4, 24, 48)));  // rows disjoint
    // The ledger is bucket-conservative (kBucketSites granularity): a
    // footprint sharing a bucket with a claim conflicts even when the
    // exact spans only touch. That defers a cell by a wave; never wrong.
    EXPECT_TRUE(ledger.conflicts(fp(0, 2, 30, 48)));
    // From the next bucket boundary onward it is clean again.
    EXPECT_FALSE(ledger.conflicts(fp(0, 2, 32, 48)));
    // Spans straddling word boundaries (bucket 64 = word 1) still track.
    ledger.claim(fp(4, 6, 500, 560));
    EXPECT_TRUE(ledger.conflicts(fp(5, 6, 520, 530)));
    EXPECT_FALSE(ledger.conflicts(fp(4, 6, 320, 420)));
    // Rows and x outside the die are clamped away, not tracked.
    ledger.claim(fp(-3, 0, 0, 16));
    EXPECT_FALSE(ledger.conflicts(fp(0, 1, 0, 16)));
    ledger.claim(fp(6, 8, -200, 0));
    EXPECT_FALSE(ledger.conflicts(fp(6, 8, 0, 40)));
}

TEST(PartitionWave, EarlierClaimsWinDeferredKeepOrder) {
    std::vector<PlanTask> tasks(4);
    tasks[0].footprint = fp(0, 2, 0, 10);
    tasks[1].footprint = fp(0, 2, 5, 15);    // conflicts with 0 → defer
    tasks[2].footprint = fp(0, 2, 12, 20);   // conflicts with 1's *claim*
    tasks[3].footprint = fp(4, 6, 0, 10);    // independent rows → batch
    const std::vector<std::size_t> pending{0, 1, 2, 3};
    FootprintLedger ledger;
    ledger.reset(8, Span{0, 256});
    std::vector<std::size_t> batch;
    std::vector<std::size_t> deferred;
    partition_wave(tasks, pending, ledger, batch, deferred);
    EXPECT_EQ(batch, (std::vector<std::size_t>{0, 3}));
    // Task 2 defers because the *deferred* task 1 claimed its interval —
    // the serial-equivalence rule: later cells yield to every earlier
    // pending cell, batched or not.
    EXPECT_EQ(deferred, (std::vector<std::size_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// Whole-flow bit-identity: region-parallel vs serial pipeline.

std::vector<std::pair<SiteCoord, SiteCoord>> positions(const Database& db) {
    std::vector<std::pair<SiteCoord, SiteCoord>> pos;
    pos.reserve(db.num_cells());
    for (const Cell& c : db.cells()) {
        pos.emplace_back(c.x(), c.y());
    }
    return pos;
}

void unplace_all(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
}

struct RunOutcome {
    std::vector<std::pair<SiteCoord, SiteCoord>> pos;
    LegalizerStats stats;
};

RunOutcome run(Database& db, SegmentGrid& grid,
               LegalizerOptions::Pipeline pipeline, int threads) {
    unplace_all(db, grid);
    LegalizerOptions opts;
    opts.seed = 5;
    opts.pipeline = pipeline;
    opts.num_threads = threads;
    // Every run records a wall-clock timeline: this test sits in the
    // `parallel` tier that CI re-runs under TSan, so the Timeline's
    // lock-free lane writes get raced by real pool workers here.
    obs::Timeline timeline;
    obs::ScopedTimeline install(timeline);
    RunOutcome out;
    out.stats = legalize_placement(db, grid, opts);
    out.pos = positions(db);
    return out;
}

void expect_equal(const RunOutcome& a, const RunOutcome& b,
                  const char* what) {
    EXPECT_EQ(a.pos, b.pos) << what;
    EXPECT_EQ(a.stats.success, b.stats.success) << what;
    EXPECT_EQ(a.stats.direct_placements, b.stats.direct_placements) << what;
    EXPECT_EQ(a.stats.mll_successes, b.stats.mll_successes) << what;
    EXPECT_EQ(a.stats.mll_failures, b.stats.mll_failures) << what;
    EXPECT_EQ(a.stats.fallback_placements, b.stats.fallback_placements)
        << what;
    EXPECT_EQ(a.stats.ripup_placements, b.stats.ripup_placements) << what;
    EXPECT_EQ(a.stats.unplaced, b.stats.unplaced) << what;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << what;
    EXPECT_EQ(a.stats.mll_points_evaluated, b.stats.mll_points_evaluated)
        << what;
}

/// The three golden-suite benchmark flavours (test_golden.cpp); identity
/// on these means identity on the reports the golden tier pins down.
GenProfile golden_profile(int flavour) {
    GenProfile p;
    switch (flavour) {
        case 0:  // uniform_small
            p.num_single = 300; p.num_double = 30;
            p.density = 0.55; p.seed = 11;
            break;
        case 1:  // blocked_mixed
            p.num_single = 220; p.num_double = 40;
            p.num_triple = 12; p.num_quad = 8;
            p.density = 0.6; p.seed = 22;
            p.num_blockages = 2; p.blockage_area_frac = 0.04;
            break;
        default:  // fenced_dense
            p.num_single = 260; p.num_double = 30;
            p.density = 0.5; p.seed = 33;
            p.fence_cell_frac = 0.15;
            break;
    }
    return p;
}

void expect_pipeline_identity(Database& db, SegmentGrid& grid,
                              const char* what) {
    const RunOutcome serial =
        run(db, grid, LegalizerOptions::Pipeline::kSerial, 1);
    EXPECT_EQ(serial.stats.waves, 0u) << what;   // serial runs no waves
    for (const int threads : {1, 2, 8}) {
        const RunOutcome rp = run(
            db, grid, LegalizerOptions::Pipeline::kRegionParallel, threads);
        expect_equal(rp, serial, what);
        EXPECT_GT(rp.stats.waves, 0u) << what;
    }
    // And the wave structure itself is thread-count independent.
    const RunOutcome rp1 =
        run(db, grid, LegalizerOptions::Pipeline::kRegionParallel, 1);
    const RunOutcome rp8 =
        run(db, grid, LegalizerOptions::Pipeline::kRegionParallel, 8);
    EXPECT_EQ(rp1.stats.waves, rp8.stats.waves) << what;
    EXPECT_EQ(rp1.stats.conflict_requeues, rp8.stats.conflict_requeues)
        << what;
}

TEST(RegionParallel, GoldenProfilesBitIdenticalToSerial) {
    for (int flavour = 0; flavour < 3; ++flavour) {
        GenResult gen = generate_benchmark(golden_profile(flavour));
        SegmentGrid grid = SegmentGrid::build(gen.db);
        expect_pipeline_identity(gen.db, grid,
                                 flavour == 0   ? "uniform_small"
                                 : flavour == 1 ? "blocked_mixed"
                                                : "fenced_dense");
    }
}

TEST(RegionParallel, SaturatedDesignsDegradeGracefully) {
    // Adversarial high-density cases (qa fuzz generator): footprints
    // conflict constantly, so waves thin out toward serial order — the
    // result must stay bit-identical and the conflicts must be visible in
    // the stats.
    std::size_t total_requeues = 0;
    for (const std::uint64_t seed : {101u, 202u, 303u}) {
        Rng rng(seed);
        Database db = qa::gen_saturated_case(rng, /*num_targets=*/3);
        SegmentGrid grid = qa::materialize_case(db);
        const RunOutcome serial =
            run(db, grid, LegalizerOptions::Pipeline::kSerial, 1);
        for (const int threads : {1, 2, 8}) {
            const RunOutcome rp =
                run(db, grid, LegalizerOptions::Pipeline::kRegionParallel,
                    threads);
            expect_equal(rp, serial, "saturated");
            total_requeues += rp.stats.conflict_requeues;
        }
    }
    // At ~90% density the partition must actually be deferring work.
    EXPECT_GT(total_requeues, 0u);
}

TEST(RegionParallel, WavesAccountedInStats) {
    GenResult gen = generate_benchmark(golden_profile(0));
    SegmentGrid grid = SegmentGrid::build(gen.db);
    const RunOutcome rp =
        run(gen.db, grid, LegalizerOptions::Pipeline::kRegionParallel, 2);
    // Every round runs at least one wave; requeued cells appear in the
    // requeue counter, and a wave can never batch zero cells.
    EXPECT_GE(rp.stats.waves, static_cast<std::size_t>(rp.stats.rounds));
    EXPECT_TRUE(rp.stats.success);
}

}  // namespace
}  // namespace mrlg::test
