#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TEST(RailCompatible, OddHeightAlwaysCompatible) {
    for (SiteCoord y = 0; y < 6; ++y) {
        EXPECT_TRUE(rail_compatible(y, 1, RailPhase::kEven));
        EXPECT_TRUE(rail_compatible(y, 1, RailPhase::kOdd));
        EXPECT_TRUE(rail_compatible(y, 3, RailPhase::kEven));
    }
}

TEST(RailCompatible, EvenHeightNeedsMatchingParity) {
    EXPECT_TRUE(rail_compatible(0, 2, RailPhase::kEven));
    EXPECT_FALSE(rail_compatible(1, 2, RailPhase::kEven));
    EXPECT_TRUE(rail_compatible(2, 2, RailPhase::kEven));
    EXPECT_FALSE(rail_compatible(0, 2, RailPhase::kOdd));
    EXPECT_TRUE(rail_compatible(1, 2, RailPhase::kOdd));
    EXPECT_TRUE(rail_compatible(4, 4, RailPhase::kEven));
    EXPECT_FALSE(rail_compatible(3, 4, RailPhase::kEven));
}

TEST(Legality, EmptyDesignIsLegal) {
    Database db = empty_design(4, 50);
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Legality, CleanPlacementIsLegal) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    add_placed(db, grid, "b", 5, 0, 5, 1);
    add_placed(db, grid, "m", 10, 0, 4, 2, RailPhase::kEven);
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_TRUE(rep.legal) << (rep.messages.empty() ? "" : rep.messages[0]);
}

TEST(Legality, DetectsOverlapSameRow) {
    Database db = empty_design(2, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    const CellId b = db.add_cell(Cell("b", 5, 1));
    db.cell(b).set_pos(3, 0);  // bypass grid to create the violation
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_GE(rep.num_overlaps, 1u);
}

TEST(Legality, DetectsNestedOverlapsUnderWideCell) {
    // Regression: a wide cell fully covering two disjoint short cells.
    // The old sweep compared each slice only against its immediate
    // predecessor, so the second covered cell ([6,8) vs predecessor [2,4))
    // was missed entirely. The running-max sweep must find both overlaps
    // and attribute both to the covering cell.
    Database db = empty_design(2, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId wide = db.add_cell(Cell("wide", 10, 1));
    db.cell(wide).set_pos(0, 0);  // bypass grid to create the violation
    const CellId b = db.add_cell(Cell("b", 2, 1));
    db.cell(b).set_pos(2, 0);
    const CellId c = db.add_cell(Cell("c", 2, 1));
    db.cell(c).set_pos(6, 0);
    LegalityOptions opts;
    opts.collect_overlap_pairs = true;
    const LegalityReport rep = check_legality(db, grid, opts);
    EXPECT_FALSE(rep.legal);
    EXPECT_EQ(rep.num_overlaps, 2u);
    ASSERT_EQ(rep.overlap_pairs.size(), 2u);
    EXPECT_EQ(rep.overlap_pairs[0], (std::pair<CellId, CellId>{wide, b}));
    EXPECT_EQ(rep.overlap_pairs[1], (std::pair<CellId, CellId>{wide, c}));
}

TEST(Legality, DetectsCrossRowOverlapViaMultiRowCell) {
    Database db = empty_design(3, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "tall", 0, 0, 4, 3);
    const CellId b = db.add_cell(Cell("b", 4, 1));
    db.cell(b).set_pos(2, 2);  // overlaps row 2 slice of "tall"
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_GE(rep.num_overlaps, 1u);
}

TEST(Legality, DetectsRailViolation) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId m = db.add_cell(Cell("m", 4, 2, RailPhase::kEven));
    db.cell(m).set_pos(0, 1);  // odd row, even phase
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_EQ(rep.num_rail_violations, 1u);
}

TEST(Legality, RailViolationIgnoredWhenRelaxed) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId m = db.add_cell(Cell("m", 4, 2, RailPhase::kEven));
    db.cell(m).set_pos(0, 1);
    LegalityOptions opts;
    opts.check_rail_alignment = false;
    EXPECT_TRUE(check_legality(db, grid, opts).legal);
}

TEST(Legality, DetectsCellOutsideRows) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = db.add_cell(Cell("a", 5, 1));
    db.cell(a).set_pos(48, 0);  // sticks out of the row
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_EQ(rep.num_out_of_rows, 1u);

    const CellId b = db.add_cell(Cell("b", 5, 2));
    db.cell(b).set_pos(0, 3);  // top row slice off die
    EXPECT_GE(check_legality(db, grid).num_out_of_rows, 2u);
}

TEST(Legality, DetectsCellOnBlockage) {
    Database db = empty_design(2, 50);
    db.floorplan().add_blockage(Rect{10, 0, 10, 1});
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = db.add_cell(Cell("a", 5, 1));
    db.cell(a).set_pos(12, 0);
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_EQ(rep.num_out_of_rows, 1u);
}

TEST(Legality, UnplacedCellsReported) {
    Database db = empty_design(2, 50);
    const SegmentGrid grid = SegmentGrid::build(db);
    db.add_cell(Cell("a", 5, 1));
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_EQ(rep.num_unplaced, 1u);

    LegalityOptions opts;
    opts.require_all_placed = false;
    EXPECT_TRUE(check_legality(db, grid, opts).legal);
}

TEST(Legality, FixedCellsAreExempt) {
    Database db = empty_design(4, 50);
    Cell macro("macro", 10, 2, RailPhase::kOdd, true);
    macro.set_pos(0, 0);  // "wrong" parity — irrelevant for fixed cells
    db.add_cell(std::move(macro));
    db.freeze_fixed_cells();
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Legality, MessageCapRespected) {
    Database db = empty_design(1, 200);
    const SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 50; ++i) {
        db.add_cell(Cell("u" + std::to_string(i), 2, 1));
    }
    LegalityOptions opts;
    opts.max_messages = 5;
    const LegalityReport rep = check_legality(db, grid, opts);
    EXPECT_EQ(rep.num_unplaced, 50u);
    EXPECT_EQ(rep.messages.size(), 5u);
}

TEST(PositionLegalForCell, ChecksEverything) {
    Database db = empty_design(4, 50);
    db.floorplan().add_blockage(Rect{20, 0, 5, 4});
    const SegmentGrid grid = SegmentGrid::build(db);
    const CellId d = db.add_cell(Cell("d", 4, 2, RailPhase::kEven));
    EXPECT_TRUE(position_legal_for_cell(db, grid, d, 0, 0));
    EXPECT_FALSE(position_legal_for_cell(db, grid, d, 0, 1));   // parity
    EXPECT_TRUE(position_legal_for_cell(db, grid, d, 0, 1, false));
    EXPECT_FALSE(position_legal_for_cell(db, grid, d, 18, 0));  // blockage
    EXPECT_FALSE(position_legal_for_cell(db, grid, d, 47, 0));  // off row
    EXPECT_FALSE(position_legal_for_cell(db, grid, d, 0, 3));   // off die top
    EXPECT_FALSE(position_legal_for_cell(db, grid, d, 0, -1));  // below die
}

TEST(Legality, RandomizedDesignsAlwaysLegalAfterPacking) {
    Rng rng(5);
    for (int t = 0; t < 4; ++t) {
        RandomDesign d = random_legal_design(rng, 10, 150, 80, 0.25, 3);
        const LegalityReport rep = check_legality(d.db, d.grid);
        EXPECT_TRUE(rep.legal)
            << (rep.messages.empty() ? "?" : rep.messages[0]);
    }
}

}  // namespace
}  // namespace mrlg::test
