/// Bookshelf round-trip property tests (satellite of the obs PR): a
/// written design reads back equal, writing is a fixed point after one
/// read, and the two design features with no native Bookshelf encoding —
/// floorplan blockages and odd rail phases — survive through the repro
/// dump path (qa::dump_repro encodes blockages as terminal nodes and rail
/// phases in the `.scenario` sidecar; replay reverses both).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "io/bookshelf.hpp"
#include "qa/fuzz.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

namespace fs = std::filesystem;

class IoRoundTripTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("mrlg_rt_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string sub(const std::string& d) const {
        return (dir_ / d).string();
    }
    fs::path dir_;
};

std::string slurp(const std::string& path) {
    std::ifstream is(path);
    EXPECT_TRUE(is) << path;
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/// Field-by-field database equality under the Bookshelf representation:
/// names, geometry, fixedness, gp positions (within float-text rounding),
/// fixed-cell placements, nets, pin offsets, and the floorplan rows.
void expect_equal_designs(const Database& a, const Database& b) {
    ASSERT_EQ(a.num_cells(), b.num_cells());
    for (std::size_t i = 0; i < a.num_cells(); ++i) {
        const Cell& ca = a.cells()[i];
        const CellId bid = b.find_cell(ca.name());
        ASSERT_TRUE(bid.valid()) << ca.name();
        const Cell& cb = b.cell(bid);
        EXPECT_EQ(ca.width(), cb.width()) << ca.name();
        EXPECT_EQ(ca.height(), cb.height()) << ca.name();
        EXPECT_EQ(ca.fixed(), cb.fixed()) << ca.name();
        // GP positions pass through 6-significant-digit text (default
        // ostream precision), so rounding is ~1e-4 at site scale.
        EXPECT_NEAR(ca.gp_x(), cb.gp_x(), 1e-3) << ca.name();
        EXPECT_NEAR(ca.gp_y(), cb.gp_y(), 1e-3) << ca.name();
        if (ca.fixed()) {
            ASSERT_TRUE(cb.placed()) << ca.name();
            EXPECT_EQ(ca.x(), cb.x()) << ca.name();
            EXPECT_EQ(ca.y(), cb.y()) << ca.name();
        }
    }
    ASSERT_EQ(a.nets().size(), b.nets().size());
    for (std::size_t n = 0; n < a.nets().size(); ++n) {
        const Net& na = a.nets()[n];
        const Net& nb = b.nets()[n];
        ASSERT_EQ(na.degree(), nb.degree()) << na.name();
        for (std::size_t p = 0; p < na.pins().size(); ++p) {
            const Pin& pa = a.pin(na.pins()[p]);
            const Pin& pb = b.pin(nb.pins()[p]);
            EXPECT_EQ(a.cell(pa.cell).name(), b.cell(pb.cell).name());
            // Pin offsets pass through 6-significant-digit text (default
            // ostream precision), so rounding is ~1e-5 at site scale.
            EXPECT_NEAR(pa.offset_x, pb.offset_x, 1e-4);
            EXPECT_NEAR(pa.offset_y, pb.offset_y, 1e-4);
        }
    }
    const Floorplan& fa = a.floorplan();
    const Floorplan& fb = b.floorplan();
    ASSERT_EQ(fa.num_rows(), fb.num_rows());
    for (SiteCoord r = 0; r < fa.num_rows(); ++r) {
        EXPECT_EQ(fa.row(r).x, fb.row(r).x) << "row " << r;
        EXPECT_EQ(fa.row(r).num_sites, fb.row(r).num_sites) << "row " << r;
    }
    EXPECT_NEAR(fa.site_w_um(), fb.site_w_um(), 1e-9);
    EXPECT_NEAR(fa.site_h_um(), fb.site_h_um(), 1e-9);
}

GenResult mixed_benchmark(int blockages) {
    GenProfile p;
    p.name = "rt";
    p.num_single = 80;
    p.num_double = 10;
    p.num_triple = 4;
    p.density = 0.45;
    p.seed = 5;
    p.num_blockages = blockages;
    p.blockage_area_frac = blockages > 0 ? 0.05 : 0.0;
    return generate_benchmark(p);
}

TEST_F(IoRoundTripTest, ReadWriteReadPreservesGeneratedDesign) {
    GenResult gen = mixed_benchmark(0);
    write_bookshelf(gen.db, sub("w1"), "rt", /*use_gp_positions=*/true);
    const BookshelfReadResult r1 = read_bookshelf(sub("w1") + "/rt.aux");
    write_bookshelf(r1.db, sub("w2"), "rt", /*use_gp_positions=*/true);
    const BookshelfReadResult r2 = read_bookshelf(sub("w2") + "/rt.aux");
    EXPECT_EQ(r1.design_name, r2.design_name);
    expect_equal_designs(r1.db, r2.db);
    // And the read design matches the original up to float-text rounding.
    expect_equal_designs(gen.db, r1.db);
}

TEST_F(IoRoundTripTest, WriteIsAFixedPointAfterOneRead) {
    GenResult gen = mixed_benchmark(0);
    write_bookshelf(gen.db, sub("w1"), "rt", /*use_gp_positions=*/true);
    const BookshelfReadResult r1 = read_bookshelf(sub("w1") + "/rt.aux");
    write_bookshelf(r1.db, sub("w2"), "rt", /*use_gp_positions=*/true);
    const BookshelfReadResult r2 = read_bookshelf(sub("w2") + "/rt.aux");
    write_bookshelf(r2.db, sub("w3"), "rt", /*use_gp_positions=*/true);
    for (const char* f : {"rt.aux", "rt.nodes", "rt.pl", "rt.nets",
                          "rt.scl"}) {
        EXPECT_EQ(slurp(sub("w2") + "/" + f), slurp(sub("w3") + "/" + f))
            << f;
    }
}

TEST_F(IoRoundTripTest, LegalizedPlacementRoundTripsThroughPl) {
    Database db = empty_design(6, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "s0", 3, 1, 4, 1);
    add_placed(db, grid, "s1", 10, 2, 3, 1);
    add_placed(db, grid, "d0", 20, 2, 2, 2);
    Cell pad("pad", 2, 1, RailPhase::kEven, true);
    pad.set_pos(30, 0);
    db.add_cell(std::move(pad));
    write_bookshelf(db, sub("w"), "legal", /*use_gp_positions=*/false);
    const BookshelfReadResult r = read_bookshelf(sub("w") + "/legal.aux");
    // Movable cells come back as GP input seeded at the legal slots.
    for (const char* name : {"s0", "s1", "d0"}) {
        const Cell& orig = db.cell(db.find_cell(name));
        const Cell& back = r.db.cell(r.db.find_cell(name));
        EXPECT_NEAR(back.gp_x(), static_cast<double>(orig.x()), 1e-6)
            << name;
        EXPECT_NEAR(back.gp_y(), static_cast<double>(orig.y()), 1e-6)
            << name;
        EXPECT_FALSE(back.fixed()) << name;
    }
    const Cell& back_pad = r.db.cell(r.db.find_cell("pad"));
    EXPECT_TRUE(back_pad.fixed());
    EXPECT_EQ(back_pad.x(), 30);
    EXPECT_EQ(back_pad.y(), 0);
}

TEST_F(IoRoundTripTest, BlockagesSurviveReproDump) {
    GenResult gen = mixed_benchmark(/*blockages=*/3);
    const std::size_t num_blk = gen.db.floorplan().blockages().size();
    ASSERT_GT(num_blk, 0u);
    const std::string aux = qa::dump_repro(
        gen.db, qa::FuzzScenario::kLegality, sub("repro"), "blk");
    BookshelfReadResult r = read_bookshelf(aux);
    // dump_repro materialized each blockage as a fixed terminal node...
    std::size_t terminals = 0;
    for (const Cell& c : r.db.cells()) {
        terminals += c.fixed() ? 1 : 0;
    }
    EXPECT_EQ(terminals, num_blk);
    // ...and freezing turns them back into floorplan blockages with the
    // original geometry.
    r.db.freeze_fixed_cells();
    ASSERT_EQ(r.db.floorplan().blockages().size(), num_blk);
    for (std::size_t i = 0; i < num_blk; ++i) {
        const Rect& want = gen.db.floorplan().blockages()[i];
        const Rect& got = r.db.floorplan().blockages()[i];
        EXPECT_EQ(got.x, want.x) << i;
        EXPECT_EQ(got.y, want.y) << i;
        EXPECT_EQ(got.w, want.w) << i;
        EXPECT_EQ(got.h, want.h) << i;
    }
}

TEST_F(IoRoundTripTest, RailPhasesSurviveScenarioSidecar) {
    Database db = empty_design(6, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "even0", 2, 0, 3, 2, RailPhase::kEven);
    add_placed(db, grid, "odd0", 10, 1, 3, 2, RailPhase::kOdd);
    add_placed(db, grid, "odd1", 20, 3, 2, 2, RailPhase::kOdd);
    const std::string aux = qa::dump_repro(
        db, qa::FuzzScenario::kLegality, sub("repro"), "rails");

    // The sidecar names exactly the odd-phase cells.
    const std::string side = slurp(sub("repro") + "/rails.scenario");
    EXPECT_NE(side.find("scenario legality"), std::string::npos) << side;
    EXPECT_NE(side.find("odd odd0"), std::string::npos) << side;
    EXPECT_NE(side.find("odd odd1"), std::string::npos) << side;
    EXPECT_EQ(side.find("odd even0"), std::string::npos) << side;

    // A full replay reconstructs the phases and passes its oracle.
    EXPECT_EQ(qa::replay_repro(aux), "");
}

TEST_F(IoRoundTripTest, ScenarioSidecarNamesReplayBattery) {
    Database db = empty_design(4, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 2, 0, 3, 1);
    add_placed(db, grid, "b", 8, 1, 3, 2);
    const std::string aux = qa::dump_repro(
        db, qa::FuzzScenario::kMllRoundtrip, sub("repro"), "mll");
    const std::string side = slurp(sub("repro") + "/mll.scenario");
    EXPECT_NE(side.find("scenario"), std::string::npos);
    EXPECT_EQ(qa::replay_repro(aux), "") << aux;
}

}  // namespace
}  // namespace mrlg::test
