#include <gtest/gtest.h>

#include "legalize/minmax_placement.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// Index of a cell in the LocalProblem by database id.
int lp_index(const LocalProblem& lp, CellId id) {
    for (int i = 0; i < lp.num_cells(); ++i) {
        if (lp.cell(i).id == id) {
            return i;
        }
    }
    return -1;
}

TEST(MinMax, SingleCellFullRange) {
    Database db = empty_design(2, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 40, 0, 6, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 100, 2});
    compute_minmax_placement(lp);
    const LpCell& c = lp.cell(lp_index(lp, a));
    EXPECT_EQ(c.xl, 0);
    EXPECT_EQ(c.xr, 94);
}

TEST(MinMax, ChainPacksAgainstWalls) {
    Database db = empty_design(1, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 10, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 20, 0, 5, 1);
    const CellId c = add_placed(db, grid, "c", 30, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 50, 1});
    compute_minmax_placement(lp);
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xl, 0);
    EXPECT_EQ(lp.cell(lp_index(lp, b)).xl, 5);
    EXPECT_EQ(lp.cell(lp_index(lp, c)).xl, 10);
    EXPECT_EQ(lp.cell(lp_index(lp, c)).xr, 45);
    EXPECT_EQ(lp.cell(lp_index(lp, b)).xr, 40);
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xr, 35);
}

TEST(MinMax, MultiRowCellCouplesRows) {
    // Fig. 6 flavour: a double-height cell must clear the max frontier of
    // both rows.
    Database db = empty_design(2, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 10, 1);   // row 0
    const CellId b = add_placed(db, grid, "b", 2, 1, 5, 1);    // row 1
    const CellId m = add_placed(db, grid, "m", 20, 0, 4, 2);   // rows 0-1
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 2});
    compute_minmax_placement(lp);
    // Leftmost: a→0 (10 wide), b→0..? b is only on row 1 → xl=0? No: b's
    // x (2) is after a's x (0) but they share no row; frontier of row 1 is
    // 0 → b.xl = 0. m must clear row0 frontier (10) and row1 frontier (5).
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xl, 0);
    EXPECT_EQ(lp.cell(lp_index(lp, b)).xl, 0);
    EXPECT_EQ(lp.cell(lp_index(lp, m)).xl, 10);
    // Rightmost: m packs to 56; a to min over rows it spans (row0): 56-10
    // = 46; b to 56-5 = 51.
    EXPECT_EQ(lp.cell(lp_index(lp, m)).xr, 56);
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xr, 46);
    EXPECT_EQ(lp.cell(lp_index(lp, b)).xr, 51);
}

TEST(MinMax, SegmentWallsRespected) {
    Database db = empty_design(1, 100);
    db.floorplan().add_blockage(Rect{0, 0, 10, 1});
    db.floorplan().add_blockage(Rect{90, 0, 10, 1});
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 50, 0, 6, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 100, 1});
    compute_minmax_placement(lp);
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xl, 10);
    EXPECT_EQ(lp.cell(lp_index(lp, a)).xr, 84);
}

TEST(MinMax, BoundsBracketCurrentPosition) {
    Rng rng(23);
    for (int t = 0; t < 10; ++t) {
        RandomDesign d = random_legal_design(rng, 10, 140, 100, 0.3, 3);
        LocalProblem lp = make_local_problem(
            d.db, d.grid,
            Rect{static_cast<SiteCoord>(rng.uniform(0, 90)),
                 static_cast<SiteCoord>(rng.uniform(0, 6)), 45, 6});
        compute_minmax_placement(lp);
        for (int i = 0; i < lp.num_cells(); ++i) {
            const LpCell& c = lp.cell(i);
            EXPECT_LE(c.xl, c.x);
            EXPECT_GE(c.xr, c.x);
        }
    }
}

TEST(MinMax, LeftmostPlacementIsLegal) {
    // Property: assigning every cell its xl yields an overlap-free,
    // order-preserving placement (same for xr).
    Rng rng(29);
    for (int t = 0; t < 10; ++t) {
        RandomDesign d = random_legal_design(rng, 10, 140, 100, 0.3, 3);
        LocalProblem lp = make_local_problem(
            d.db, d.grid,
            Rect{static_cast<SiteCoord>(rng.uniform(0, 90)),
                 static_cast<SiteCoord>(rng.uniform(0, 6)), 45, 6});
        compute_minmax_placement(lp);
        for (int k = 0; k < lp.num_rows(); ++k) {
            if (!lp.has_row(k)) {
                continue;
            }
            const auto& row = lp.row(k);
            SiteCoord prev_l = row.span.lo;
            SiteCoord prev_r = row.span.lo;
            for (const int ci : row.cells) {
                const LpCell& c = lp.cell(ci);
                EXPECT_GE(c.xl, prev_l);
                EXPECT_GE(c.xr, prev_r);
                prev_l = c.xl + c.w;
                prev_r = c.xr + c.w;
            }
            EXPECT_LE(prev_l, row.span.hi);
            EXPECT_LE(prev_r, row.span.hi);
        }
    }
}

TEST(MinMax, AssertsOnIllegalInput) {
    Database db = empty_design(1, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 10, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 20, 1});
    // Corrupt: push b onto a behind the problem's back (swap order).
    static_cast<void>(a);
    static_cast<void>(b);
    auto& cells = lp.mutable_cells();
    for (LpCell& c : cells) {
        if (c.id == b) {
            c.x = 2;  // now overlaps a and violates list order
        }
    }
    EXPECT_THROW(compute_minmax_placement(lp), AssertionError);
}

}  // namespace
}  // namespace mrlg::test
