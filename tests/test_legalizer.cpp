#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// Scattered design: cells carry gp positions but are unplaced.
Database scattered_design(Rng& rng, SiteCoord rows, SiteCoord sites,
                          int singles, int doubles) {
    Database db = empty_design(rows, sites);
    for (int i = 0; i < singles; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 7));
        add_unplaced(db, "s" + std::to_string(i),
                     rng.uniform01() * (sites - w),
                     rng.uniform01() * (rows - 1), w, 1);
    }
    for (int i = 0; i < doubles; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        add_unplaced(db, "d" + std::to_string(i),
                     rng.uniform01() * (sites - w),
                     rng.uniform01() * (rows - 2), w, 2);
    }
    return db;
}

TEST(NearestAligned, RoundsAndClamps) {
    Database db = empty_design(10, 100);
    const CellId c = db.add_cell(Cell("c", 4, 1));
    EXPECT_EQ(nearest_aligned_position(db, c, 10.4, 3.6, true),
              (Point{10, 4}));
    EXPECT_EQ(nearest_aligned_position(db, c, -5.0, 3.0, true),
              (Point{0, 3}));
    EXPECT_EQ(nearest_aligned_position(db, c, 200.0, 30.0, true),
              (Point{96, 9}));
}

TEST(NearestAligned, ParityAdjustedForEvenHeight) {
    Database db = empty_design(10, 100);
    const CellId d =
        db.add_cell(Cell("d", 4, 2, RailPhase::kEven));
    // Preferred row 3 (odd) → nearest even row (2 or 4).
    const Point p = nearest_aligned_position(db, d, 10.0, 3.2, true);
    EXPECT_EQ(p.y % 2, 0);
    EXPECT_TRUE(p.y == 2 || p.y == 4);
    // Relaxed: keeps row 3.
    EXPECT_EQ(nearest_aligned_position(db, d, 10.0, 3.2, false).y, 3);
}

TEST(NearestAligned, ParityAtDieTop) {
    Database db = empty_design(6, 100);
    const CellId d = db.add_cell(Cell("d", 4, 2, RailPhase::kEven));
    const Point p = nearest_aligned_position(db, d, 10.0, 5.9, true);
    EXPECT_EQ(p.y, 4);  // max_y = 4 and parity even
}

TEST(Legalizer, EmptyDesignSucceedsTrivially) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const LegalizerStats s = legalize_placement(db, grid);
    EXPECT_TRUE(s.success);
    EXPECT_EQ(s.num_cells, 0u);
}

TEST(Legalizer, LegalizesScatteredDesign) {
    Rng rng(91);
    Database db = scattered_design(rng, 12, 150, 150, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    const LegalizerStats s = legalize_placement(db, grid);
    EXPECT_TRUE(s.success);
    EXPECT_EQ(s.unplaced, 0u);
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_TRUE(grid.audit(db).empty());
    EXPECT_GT(s.direct_placements, 0u);
    EXPECT_GT(s.mll_successes, 0u);
}

TEST(Legalizer, DeterministicForFixedSeed) {
    for (int run = 0; run < 2; ++run) {
        static std::vector<Point> first_positions;
        Rng rng(93);
        Database db = scattered_design(rng, 10, 120, 100, 15);
        SegmentGrid grid = SegmentGrid::build(db);
        LegalizerOptions opts;
        opts.seed = 5;
        ASSERT_TRUE(legalize_placement(db, grid, opts).success);
        std::vector<Point> positions;
        for (const Cell& c : db.cells()) {
            positions.push_back(c.pos());
        }
        if (run == 0) {
            first_positions = positions;
        } else {
            EXPECT_EQ(first_positions.size(), positions.size());
            for (std::size_t i = 0; i < positions.size(); ++i) {
                EXPECT_EQ(first_positions[i], positions[i]);
            }
        }
    }
}

TEST(Legalizer, HighDensityNeedsRetryRounds) {
    // Density ~0.85: the first pass cannot place everything; the random
    // retry rounds of Algorithm 1 must finish the job.
    Rng rng(97);
    Database db = scattered_design(rng, 10, 100, 180, 10);
    // area ≈ 180*4.5 + 10*2*2.5 = 860 of 1000.
    SegmentGrid grid = SegmentGrid::build(db);
    const LegalizerStats s = legalize_placement(db, grid);
    EXPECT_TRUE(s.success) << s.unplaced << " unplaced";
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Legalizer, RespectsRailConstraintByDefault) {
    Rng rng(101);
    Database db = scattered_design(rng, 12, 120, 80, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    ASSERT_TRUE(legalize_placement(db, grid).success);
    for (const Cell& c : db.cells()) {
        if (c.even_height()) {
            EXPECT_TRUE(rail_compatible(c.y(), c.height(), c.rail_phase()));
        }
    }
}

TEST(Legalizer, RelaxedModeReducesDisplacement) {
    // Paper §6 last paragraph: relaxing the power-rail constraint lowers
    // displacement (38-42 % in the paper).
    double disp[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
        Rng rng(103);
        Database db = scattered_design(rng, 16, 140, 120, 60);
        SegmentGrid grid = SegmentGrid::build(db);
        LegalizerOptions opts;
        opts.mll.check_rail = mode == 0;
        ASSERT_TRUE(legalize_placement(db, grid, opts).success);
        disp[mode] = displacement_stats(db).avg_sites;
    }
    EXPECT_LT(disp[1], disp[0]);
}

TEST(Legalizer, InfeasibleDesignReportsFailure) {
    // More cell area than the die has sites.
    Database db = empty_design(2, 20);
    for (int i = 0; i < 10; ++i) {
        add_unplaced(db, "c" + std::to_string(i), 5.0, 0.0, 6, 1);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    LegalizerOptions opts;
    opts.max_rounds = 5;  // keep the failure fast
    const LegalizerStats s = legalize_placement(db, grid, opts);
    EXPECT_FALSE(s.success);
    EXPECT_GT(s.unplaced, 0u);
    // Whatever was placed is still legal.
    LegalityOptions lopts;
    lopts.require_all_placed = false;
    EXPECT_TRUE(check_legality(db, grid, lopts).legal);
}

TEST(Legalizer, OrderingOptionsAllSucceed) {
    for (const auto order : {LegalizerOptions::Order::kInputOrder,
                             LegalizerOptions::Order::kMultiRowFirst,
                             LegalizerOptions::Order::kLeftToRight,
                             LegalizerOptions::Order::kAreaDescending}) {
        Rng rng(107);
        Database db = scattered_design(rng, 10, 120, 100, 15);
        SegmentGrid grid = SegmentGrid::build(db);
        LegalizerOptions opts;
        opts.order = order;
        EXPECT_TRUE(legalize_placement(db, grid, opts).success);
        EXPECT_TRUE(check_legality(db, grid).legal);
    }
}

TEST(Legalizer, WorksAroundBlockages) {
    Rng rng(109);
    Database db = scattered_design(rng, 12, 150, 120, 15);
    db.floorplan().add_blockage(Rect{50, 2, 40, 6});
    SegmentGrid grid = SegmentGrid::build(db);
    const LegalizerStats s = legalize_placement(db, grid);
    EXPECT_TRUE(s.success);
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
}

TEST(Legalizer, ExactEvaluationModeProducesLowerOrEqualDisplacement) {
    // The Table 1 relationship: the exact ("ILP") configuration should on
    // average displace no more than the approximate one.
    double disp[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
        Rng rng(113);
        Database db = scattered_design(rng, 14, 160, 200, 25);
        SegmentGrid grid = SegmentGrid::build(db);
        LegalizerOptions opts;
        opts.mll.exact_evaluation = mode == 1;
        ASSERT_TRUE(legalize_placement(db, grid, opts).success);
        disp[mode] = displacement_stats(db).avg_sites;
    }
    // Exact is near-optimal per step; allow a tiny tolerance since the
    // greedy sequence differs.
    EXPECT_LE(disp[1], disp[0] * 1.05);
}

}  // namespace
}  // namespace mrlg::test
