#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "legalize/abacus.hpp"
#include "legalize/greedy.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

Database scattered(Rng& rng, SiteCoord rows, SiteCoord sites, int singles,
                   int doubles) {
    Database db = empty_design(rows, sites);
    for (int i = 0; i < singles; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(2, 7));
        add_unplaced(db, "s" + std::to_string(i),
                     rng.uniform01() * (sites - w),
                     rng.uniform01() * (rows - 1), w, 1);
    }
    for (int i = 0; i < doubles; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        add_unplaced(db, "d" + std::to_string(i),
                     rng.uniform01() * (sites - w),
                     rng.uniform01() * (rows - 2), w, 2);
    }
    return db;
}

// ---------------- greedy ----------------

TEST(Greedy, LegalizesMixedHeightDesign) {
    Rng rng(301);
    Database db = scattered(rng, 12, 140, 120, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    const GreedyStats s = greedy_legalize(db, grid);
    EXPECT_TRUE(s.success);
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(Greedy, RespectsRailParity) {
    Rng rng(303);
    Database db = scattered(rng, 12, 140, 60, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    ASSERT_TRUE(greedy_legalize(db, grid).success);
    for (const Cell& c : db.cells()) {
        if (c.even_height()) {
            EXPECT_TRUE(rail_compatible(c.y(), c.height(), c.rail_phase()));
        }
    }
}

TEST(Greedy, AvoidsBlockages) {
    Rng rng(305);
    Database db = scattered(rng, 12, 140, 100, 10);
    db.floorplan().add_blockage(Rect{40, 0, 30, 12});
    SegmentGrid grid = SegmentGrid::build(db);
    ASSERT_TRUE(greedy_legalize(db, grid).success);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Greedy, ReportsUnplacedWhenOverfull) {
    Database db = empty_design(1, 20);
    for (int i = 0; i < 6; ++i) {
        add_unplaced(db, "c" + std::to_string(i), 0.0, 0.0, 5, 1);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    const GreedyStats s = greedy_legalize(db, grid);
    EXPECT_FALSE(s.success);
    EXPECT_EQ(s.unplaced, 2u);
}

TEST(Greedy, HighDensityDisplacementWorseThanMll) {
    // The §1 claim: placed objects never move, so at high density the
    // greedy baseline pays much more displacement than MLL.
    double disp_greedy = 0;
    double disp_mll = 0;
    for (int mode = 0; mode < 2; ++mode) {
        Rng rng(307);
        Database db = scattered(rng, 10, 100, 160, 12);  // density ~0.8
        SegmentGrid grid = SegmentGrid::build(db);
        if (mode == 0) {
            ASSERT_TRUE(greedy_legalize(db, grid).success);
            disp_greedy = displacement_stats(db).avg_sites;
        } else {
            ASSERT_TRUE(legalize_placement(db, grid).success);
            disp_mll = displacement_stats(db).avg_sites;
        }
    }
    EXPECT_GT(disp_greedy, disp_mll);
}

// ---------------- abacus ----------------

TEST(Abacus, RejectsMultiRowDesigns) {
    Rng rng(311);
    Database db = scattered(rng, 10, 100, 50, 5);
    SegmentGrid grid = SegmentGrid::build(db);
    const AbacusStats s = abacus_legalize(db, grid);
    EXPECT_FALSE(s.success);
    EXPECT_TRUE(s.rejected_multi_row);
}

TEST(Abacus, LegalizesSingleRowDesign) {
    Rng rng(313);
    Database db = scattered(rng, 10, 120, 140, 0);
    SegmentGrid grid = SegmentGrid::build(db);
    const AbacusStats s = abacus_legalize(db, grid);
    EXPECT_TRUE(s.success) << s.unplaced;
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_TRUE(grid.audit(db).empty());
}

TEST(Abacus, LowDisplacementOnEasyDesign) {
    // A sparse design: every cell should land near its gp position.
    Rng rng(317);
    Database db = scattered(rng, 10, 200, 60, 0);
    SegmentGrid grid = SegmentGrid::build(db);
    ASSERT_TRUE(abacus_legalize(db, grid).success);
    EXPECT_LT(displacement_stats(db).avg_sites, 8.0);
}

TEST(Abacus, ClusterCollapseKeepsOrder) {
    // Three cells preferring the same spot collapse into one cluster
    // around it, in gp-x order.
    Database db = empty_design(1, 40);
    add_unplaced(db, "a", 10.0, 0.0, 4, 1);
    add_unplaced(db, "b", 10.5, 0.0, 4, 1);
    add_unplaced(db, "c", 11.0, 0.0, 4, 1);
    SegmentGrid grid = SegmentGrid::build(db);
    ASSERT_TRUE(abacus_legalize(db, grid).success);
    const Cell& a = db.cell(db.find_cell("a"));
    const Cell& b = db.cell(db.find_cell("b"));
    const Cell& c = db.cell(db.find_cell("c"));
    EXPECT_EQ(b.x(), a.x() + 4);
    EXPECT_EQ(c.x(), b.x() + 4);
    // Cluster optimum: x = mean(10-0, 10.5-4, 11-8) = 6.5, so the middle
    // cell sits at ~10.5 (integer rounding ±1).
    EXPECT_NEAR(b.x(), 10.5, 1.0);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Abacus, WorksWithBlockages) {
    Rng rng(319);
    Database db = scattered(rng, 8, 120, 80, 0);
    db.floorplan().add_blockage(Rect{50, 0, 20, 8});
    SegmentGrid grid = SegmentGrid::build(db);
    const AbacusStats s = abacus_legalize(db, grid);
    EXPECT_TRUE(s.success);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

}  // namespace
}  // namespace mrlg::test
