#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/bookshelf.hpp"
#include "io/benchmark_gen.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

namespace fs = std::filesystem;

class BookshelfTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("mrlg_bs_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string& f) const {
        return (dir_ / f).string();
    }
    fs::path dir_;
};

Database small_design() {
    Database db = empty_design(4, 60);
    add_unplaced(db, "a", 5.3, 1.2, 4, 1);
    add_unplaced(db, "b", 20.0, 2.0, 3, 2);
    Cell pad("pad", 2, 1, RailPhase::kEven, true);
    pad.set_pos(50, 0);
    db.add_cell(std::move(pad));
    const NetId n = db.add_net("n0");
    db.add_pin(db.find_cell("a"), n, 2.0, 0.5);
    db.add_pin(db.find_cell("b"), n, 1.5, 1.0);
    db.add_pin(db.find_cell("pad"), n, 1.0, 0.5);
    return db;
}

TEST_F(BookshelfTest, RoundTripPreservesDesign) {
    Database db = small_design();
    write_bookshelf(db, dir_.string(), "t", /*use_gp_positions=*/true);
    const BookshelfReadResult r = read_bookshelf(path("t.aux"));
    EXPECT_EQ(r.design_name, "t");
    const Database& db2 = r.db;
    ASSERT_EQ(db2.num_cells(), 3u);
    const Cell& a = db2.cell(db2.find_cell("a"));
    EXPECT_EQ(a.width(), 4);
    EXPECT_EQ(a.height(), 1);
    EXPECT_NEAR(a.gp_x(), 5.3, 1e-6);
    EXPECT_NEAR(a.gp_y(), 1.2, 1e-6);
    const Cell& b = db2.cell(db2.find_cell("b"));
    EXPECT_EQ(b.height(), 2);
    const Cell& pad = db2.cell(db2.find_cell("pad"));
    EXPECT_TRUE(pad.fixed());
    EXPECT_EQ(pad.x(), 50);
    ASSERT_EQ(db2.nets().size(), 1u);
    EXPECT_EQ(db2.nets()[0].degree(), 3u);
    EXPECT_EQ(db2.floorplan().num_rows(), 4);
    EXPECT_EQ(db2.floorplan().row(0).num_sites, 60);
    // Pin offsets survive the centre-offset conversion.
    const Pin& p0 = db2.pin(db2.nets()[0].pins()[0]);
    EXPECT_NEAR(p0.offset_x, 2.0, 1e-6);
    EXPECT_NEAR(p0.offset_y, 0.5, 1e-6);
}

TEST_F(BookshelfTest, LegalizedPositionsWritten) {
    Database db = small_design();
    db.cell(db.find_cell("a")).set_pos(5, 1);
    db.cell(db.find_cell("b")).set_pos(20, 2);
    write_bookshelf(db, dir_.string(), "t", /*use_gp_positions=*/false);
    const BookshelfReadResult r = read_bookshelf(path("t.aux"));
    EXPECT_NEAR(r.db.cell(r.db.find_cell("a")).gp_x(), 5.0, 1e-6);
}

TEST_F(BookshelfTest, MissingFileThrows) {
    EXPECT_THROW(read_bookshelf(path("nope.aux")), ParseError);
}

TEST_F(BookshelfTest, MalformedAuxThrows) {
    std::ofstream(path("bad.aux")) << "RowBasedPlacement : foo.nodes\n";
    EXPECT_THROW(read_bookshelf(path("bad.aux")), ParseError);
}

TEST_F(BookshelfTest, UnknownNodeInPlThrows) {
    Database db = small_design();
    write_bookshelf(db, dir_.string(), "t", true);
    std::ofstream(path("t.pl"), std::ios::app) << "ghost 1 1 : N\n";
    EXPECT_THROW(read_bookshelf(path("t.aux")), ParseError);
}

TEST_F(BookshelfTest, MisalignedNodeSizeThrows) {
    Database db = small_design();
    write_bookshelf(db, dir_.string(), "t", true);
    // Append a node whose width is not a site multiple.
    std::ofstream(path("t.nodes"), std::ios::app) << "odd 0.3 1.71\n";
    EXPECT_THROW(read_bookshelf(path("t.aux")), ParseError);
}

TEST_F(BookshelfTest, CommentsAndBlankLinesIgnored) {
    Database db = small_design();
    write_bookshelf(db, dir_.string(), "t", true);
    // Prepend comments to every file.
    for (const char* f : {"t.nodes", "t.pl", "t.scl", "t.nets"}) {
        const std::string p = path(f);
        std::ifstream in(p);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        in.close();
        std::ofstream out(p);
        out << "# a comment\n\n" << content << "\n# trailing\n";
    }
    EXPECT_NO_THROW(read_bookshelf(path("t.aux")));
}

TEST_F(BookshelfTest, GeneratedBenchmarkRoundTrips) {
    GenProfile p;
    p.name = "tiny";
    p.num_single = 150;
    p.num_double = 15;
    p.density = 0.5;
    p.num_blockages = 0;
    GenResult gen = generate_benchmark(p);
    write_bookshelf(gen.db, dir_.string(), "tiny", true);
    const BookshelfReadResult r = read_bookshelf(path("tiny.aux"));
    EXPECT_EQ(r.db.num_cells(), gen.db.num_cells());
    EXPECT_EQ(r.db.nets().size(), gen.db.nets().size());
    EXPECT_EQ(r.db.pins().size(), gen.db.pins().size());
    EXPECT_EQ(r.db.floorplan().num_rows(),
              gen.db.floorplan().num_rows());
    // Spot-check gp coordinates survive within rounding noise.
    for (const char* name : {"s0", "s7", "d3"}) {
        const Cell& c1 = gen.db.cell(gen.db.find_cell(name));
        const Cell& c2 = r.db.cell(r.db.find_cell(name));
        EXPECT_NEAR(c1.gp_x(), c2.gp_x(), 1e-4) << name;
        EXPECT_NEAR(c1.gp_y(), c2.gp_y(), 1e-4) << name;
        EXPECT_EQ(c1.width(), c2.width());
        EXPECT_EQ(c1.height(), c2.height());
    }
}

}  // namespace
}  // namespace mrlg::test
