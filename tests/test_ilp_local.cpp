#include <gtest/gtest.h>

#include "legalize/exact_local.hpp"
#include "legalize/ilp_local.hpp"
#include "legalize/minmax_placement.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TargetSpec make_target(SiteCoord w, SiteCoord h, double px, double py,
                       RailPhase phase = RailPhase::kEven) {
    TargetSpec t;
    t.w = w;
    t.h = h;
    t.pref_x = px;
    t.pref_y = py;
    t.rail_phase = phase;
    return t;
}

TEST(IlpLocal, EmptyRowPlacesAtPreference) {
    Database db = empty_design(2, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 40, 2});
    const TargetSpec t = make_target(4, 1, 10.0, 0.0);
    const IlpLocalResult r = solve_local_ilp(lp, t);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.cost_um, 0.0, 1e-6);
    EXPECT_NEAR(r.x_target, 10.0, 1e-6);
    EXPECT_EQ(r.y_base, 0);
}

TEST(IlpLocal, PushesNeighbourWhenTight) {
    // One cell at [0,5); total row [0,12); target w4 wants x=0.
    // Optimum: target at 0, cell pushed to 4 → cost 4 sites... or target
    // at 5, cost 5. ILP must find 4.
    Database db = empty_design(1, 12);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 12, 1});
    const TargetSpec t = make_target(4, 1, 0.0, 0.0);
    const IlpLocalResult r = solve_local_ilp(lp, t);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.cost_um / db.floorplan().site_w_um(), 4.0, 1e-6);
}

TEST(IlpLocal, RespectsRailParity) {
    Database db = empty_design(4, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 40, 4});
    const TargetSpec t = make_target(4, 2, 10.0, 1.0, RailPhase::kEven);
    const IlpLocalResult r = solve_local_ilp(lp, t);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.y_base % 2, 0);

    EnumerationOptions relaxed;
    relaxed.check_rail = false;
    const IlpLocalResult r2 = solve_local_ilp(lp, t, relaxed);
    ASSERT_TRUE(r2.feasible);
    EXPECT_EQ(r2.y_base, 1);
}

TEST(IlpLocal, InfeasibleWhenRegionFull) {
    Database db = empty_design(1, 12);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 6, 1);
    add_placed(db, grid, "b", 6, 0, 6, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 12, 1});
    const TargetSpec t = make_target(4, 1, 3.0, 0.0);
    EXPECT_FALSE(solve_local_ilp(lp, t).feasible);
}

TEST(IlpLocal, MultiRowConsistencyViaSharedVariable) {
    // Fig. 8 situation: double cell 'a' in the middle. The ILP must not
    // produce a solution straddling it.
    Database db = empty_design(2, 24);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 10, 0, 4, 2);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 24, 2});
    const TargetSpec t = make_target(6, 2, 9.0, 0.0);
    const IlpLocalResult r = solve_local_ilp(lp, t);
    ASSERT_TRUE(r.feasible);
    // Either fully left (x<=?) or fully right of a's final position; with
    // pref 9 the cheapest is pushing a right and sitting left, or sitting
    // right at 14 etc. Cross-validate exact value against the oracle.
    LocalProblem lp2 = make_local_problem(db, grid, Rect{0, 0, 24, 2});
    const ExactLocalSolution ex = solve_local_exact(lp2, t);
    ASSERT_TRUE(ex.feasible);
    EXPECT_NEAR(r.cost_um, ex.cost_um, 1e-6);
}

TEST(IlpLocal, MatchesExactOracleRandomized) {
    // The headline validation (DESIGN.md #13/#14): the MIP solved by our
    // own simplex+B&B agrees with the exhaustive exact local solver on the
    // optimal displacement, across random local problems.
    Rng rng(131);
    int compared = 0;
    for (int trial = 0; trial < 25; ++trial) {
        RandomDesign d = random_legal_design(rng, 6, 40, 18, 0.35);
        const TargetSpec t = make_target(
            static_cast<SiteCoord>(rng.uniform(1, 4)),
            static_cast<SiteCoord>(rng.uniform(1, 2)),
            static_cast<double>(rng.uniform(0, 36)),
            static_cast<double>(rng.uniform(0, 4)),
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd);
        LocalProblem lp_ilp =
            make_local_problem(d.db, d.grid, Rect{0, 0, 40, 6});
        LocalProblem lp_ex =
            make_local_problem(d.db, d.grid, Rect{0, 0, 40, 6});
        const IlpLocalResult ilp_r = solve_local_ilp(lp_ilp, t);
        const ExactLocalSolution ex_r = solve_local_exact(lp_ex, t);
        EXPECT_EQ(ilp_r.feasible, ex_r.feasible) << "trial " << trial;
        if (ilp_r.feasible && ex_r.feasible) {
            EXPECT_NEAR(ilp_r.cost_um, ex_r.cost_um, 1e-5)
                << "trial " << trial;
            ++compared;
        }
    }
    EXPECT_GT(compared, 10);
}

TEST(ExactLocal, PicksGloballyBestPoint) {
    // Two candidate gaps: a tight one near pref and a free one far away.
    // Exact solver must weigh push cost vs target displacement.
    Database db = empty_design(1, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 8, 0, 4, 1);
    add_placed(db, grid, "b", 12, 0, 4, 1);
    // Gap (a,b) needs pushing; left/right of the pair is free.
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 40, 1});
    const TargetSpec t = make_target(4, 1, 10.0, 0.0);
    const ExactLocalSolution s = solve_local_exact(lp, t);
    ASSERT_TRUE(s.feasible);
    // Optimal: insert between a and b at 10: a → 6 (push 2), b → 14
    // (push 2), target displacement 0 → cost 4. Alternatives: x=4 left of
    // a (cost 6+... |4-10|=6) or x=16 right of b (6). So cost 4.
    EXPECT_NEAR(s.cost_um / db.floorplan().site_w_um(), 4.0, 1e-6);
}

}  // namespace
}  // namespace mrlg::test
