#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/svg.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size())) {
        ++n;
    }
    return n;
}

class SvgTest : public ::testing::Test {
protected:
    void SetUp() override {
        path_ = fs::temp_directory_path() /
                ("mrlg_svg_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()) +
                 ".svg");
    }
    void TearDown() override { fs::remove(path_); }
    fs::path path_;
};

TEST_F(SvgTest, DrawsRowsCellsAndBlockages) {
    Database db = empty_design(4, 50);
    db.floorplan().add_blockage(Rect{10, 0, 5, 2});
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 20, 0, 5, 1);
    add_placed(db, grid, "m", 30, 0, 4, 2);
    ASSERT_TRUE(write_svg(db, path_.string()));
    const std::string svg = read_file(path_);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // background + 4 rows + 1 blockage + 2 cells = 8 rects.
    EXPECT_EQ(count_occurrences(svg, "<rect"), 8u);
    // Heights use distinct colours.
    EXPECT_NE(svg.find("#7eb0d5"), std::string::npos);  // h=1
    EXPECT_NE(svg.find("#fd7f6f"), std::string::npos);  // h=2
}

TEST_F(SvgTest, UnplacedCellsDrawnHollow) {
    Database db = empty_design(4, 50);
    add_unplaced(db, "u", 10.0, 1.0, 5, 1);
    ASSERT_TRUE(write_svg(db, path_.string()));
    const std::string svg = read_file(path_);
    EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
}

TEST_F(SvgTest, GpArrowsOptIn) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 20, 0, 5, 1);
    db.cell(a).set_gp(10.0, 2.0);
    ASSERT_TRUE(write_svg(db, path_.string()));
    EXPECT_EQ(count_occurrences(read_file(path_), "<line"), 0u);
    SvgOptions opts;
    opts.draw_gp_arrows = true;
    ASSERT_TRUE(write_svg(db, path_.string(), opts));
    EXPECT_EQ(count_occurrences(read_file(path_), "<line"), 1u);
}

TEST_F(SvgTest, LabelsOptIn) {
    Database db = empty_design(2, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "my_cell", 5, 0, 4, 1);
    SvgOptions opts;
    opts.label_cells = true;
    ASSERT_TRUE(write_svg(db, path_.string(), opts));
    EXPECT_NE(read_file(path_).find(">my_cell<"), std::string::npos);
}

TEST_F(SvgTest, RefusesOversizedDesign) {
    Database db = empty_design(2, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 2, 1);
    add_placed(db, grid, "b", 4, 0, 2, 1);
    SvgOptions opts;
    opts.max_cells = 1;
    EXPECT_FALSE(write_svg(db, path_.string(), opts));
    EXPECT_FALSE(fs::exists(path_));
}

TEST_F(SvgTest, FixedCellsSkipped) {
    Database db = empty_design(2, 30);
    Cell macro("mac", 6, 2, RailPhase::kEven, true);
    macro.set_pos(10, 0);
    db.add_cell(std::move(macro));
    db.freeze_fixed_cells();
    ASSERT_TRUE(write_svg(db, path_.string()));
    const std::string svg = read_file(path_);
    // background + 2 rows + 1 blockage (frozen macro) and no cell rect.
    EXPECT_EQ(count_occurrences(svg, "<rect"), 4u);
}

}  // namespace
}  // namespace mrlg::test
