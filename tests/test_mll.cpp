#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TEST(Mll, PlacesIntoEmptyRegionAtPreferredSpot) {
    Database db = empty_design(12, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId t = add_unplaced(db, "t", 40.0, 5.0, 4, 1);
    const MllResult r = mll_place(db, grid, t, 40.0, 5.0);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.x, 40);
    EXPECT_EQ(r.y, 5);
    EXPECT_TRUE(db.cell(t).placed());
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_NEAR(r.real_cost_um, 0.0, 1e-9);
}

TEST(Mll, ShiftsNeighboursMinimally) {
    Database db = empty_design(12, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    // Row 5 is packed around x=40; target forces a small shuffle.
    const CellId a = add_placed(db, grid, "a", 36, 5, 4, 1);
    const CellId b = add_placed(db, grid, "b", 40, 5, 4, 1);
    const CellId c = add_placed(db, grid, "c", 44, 5, 4, 1);
    const CellId t = add_unplaced(db, "t", 40.0, 5.0, 4, 1);
    const MllResult r = mll_place(db, grid, t, 40.0, 5.0);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.y, 5);
    EXPECT_TRUE(check_legality(db, grid).legal);
    EXPECT_TRUE(grid.audit(db).empty());
    // All four cells now distinct and ordered on row 5.
    static_cast<void>(a);
    static_cast<void>(b);
    static_cast<void>(c);
}

TEST(Mll, RespectsRailParityForDoubleHeightTarget) {
    Database db = empty_design(12, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId t =
        add_unplaced(db, "t", 40.0, 5.0, 4, 2, RailPhase::kEven);
    const MllResult r = mll_place(db, grid, t, 40.0, 5.0);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.y % 2, 0);  // even parity
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Mll, RelaxedRailAllowsAnyRow) {
    Database db = empty_design(12, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId t =
        add_unplaced(db, "t", 40.0, 5.0, 4, 2, RailPhase::kEven);
    MllOptions opts;
    opts.check_rail = false;
    const MllResult r = mll_place(db, grid, t, 40.0, 5.0, opts);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.y, 5);  // odd row allowed when relaxed
    LegalityOptions lopts;
    lopts.check_rail_alignment = false;
    EXPECT_TRUE(check_legality(db, grid, lopts).legal);
}

TEST(Mll, FailsWhenRegionFull) {
    Database db = empty_design(1, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 10, 1);
    add_placed(db, grid, "b", 10, 0, 10, 1);
    const CellId t = add_unplaced(db, "t", 5.0, 0.0, 4, 1);
    const MllResult r = mll_place(db, grid, t, 5.0, 0.0);
    EXPECT_FALSE(r.success());
    EXPECT_EQ(r.status, MllStatus::kNoInsertionPoint);
    // Abort semantics: nothing changed.
    EXPECT_FALSE(db.cell(t).placed());
    EXPECT_EQ(db.cell(db.find_cell("a")).x(), 0);
    EXPECT_EQ(db.cell(db.find_cell("b")).x(), 10);
}

TEST(Mll, FailsOffDie) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId t = add_unplaced(db, "t", 10.0, 100.0, 4, 1);
    const MllResult r = mll_place(db, grid, t, 10.0, 100.0);
    EXPECT_FALSE(r.success());
    EXPECT_EQ(r.status, MllStatus::kNoRegion);
}

TEST(Mll, PlacedTargetAsserts) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId t = add_placed(db, grid, "t", 10, 0, 4, 1);
    EXPECT_THROW(mll_place(db, grid, t, 10.0, 0.0), AssertionError);
}

TEST(Mll, Figure5Scenario) {
    // The paper's running example (Fig. 5): a 3x2 target inserted into a
    // 4-row local region with cells a, b, c, d, e. We reproduce the
    // qualitative outcome: a feasible optimal point exists with total
    // displacement 2 sites (the paper's optimal {(2,L,c),(3,a,c),(4,a,b)}).
    Database db = empty_design(4, 10);
    SegmentGrid grid = SegmentGrid::build(db);
    // Layout loosely mirroring Fig. 5(a) (site-level positions inferred):
    // rows are 0-based here (paper rows 1-4 bottom-up).
    add_placed(db, grid, "e", 0, 0, 3, 1, RailPhase::kEven);   // row 0
    add_placed(db, grid, "c", 5, 0, 3, 1, RailPhase::kOdd);    // row 0
    add_placed(db, grid, "a", 0, 1, 2, 2, RailPhase::kOdd);    // rows 1-2
    add_placed(db, grid, "d", 6, 1, 3, 1, RailPhase::kOdd);    // row 1
    add_placed(db, grid, "b", 3, 3, 3, 1, RailPhase::kOdd);    // row 3
    const CellId t =
        add_unplaced(db, "t", 4.0, 1.0, 3, 2, RailPhase::kOdd);
    MllOptions opts;
    opts.check_rail = false;  // the figure ignores parity
    const MllResult r = mll_place(db, grid, t, 4.0, 1.0, opts);
    ASSERT_TRUE(r.success());
    LegalityOptions lopts;
    lopts.check_rail_alignment = false;
    lopts.require_all_placed = false;
    EXPECT_TRUE(check_legality(db, grid, lopts).legal);
    EXPECT_TRUE(grid.audit(db).empty());
    // Some displacement is unavoidable, but it must be small.
    EXPECT_LE(r.real_cost_um / db.floorplan().site_w_um(), 12.0);
}

TEST(Mll, ApproxAndExactBothLegalExactNoWorse) {
    Rng rng(81);
    for (int trial = 0; trial < 8; ++trial) {
        RandomDesign d = random_legal_design(rng, 10, 120, 80, 0.3);
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 5));
        const SiteCoord h = static_cast<SiteCoord>(rng.uniform(1, 2));
        const double px = static_cast<double>(rng.uniform(10, 110));
        const double py = static_cast<double>(rng.uniform(0, 9 - h));
        const RailPhase phase =
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd;

        // Run approx on one copy and exact on an identical copy.
        double costs[2] = {0, 0};
        for (int mode = 0; mode < 2; ++mode) {
            Rng rng_copy(1000 + static_cast<std::uint64_t>(trial));
            RandomDesign dd =
                random_legal_design(rng_copy, 10, 120, 80, 0.3);
            const CellId t = add_unplaced(
                dd.db, "target", px, py, w, h, phase);
            MllOptions opts;
            opts.exact_evaluation = mode == 1;
            const MllResult r =
                mll_place(dd.db, dd.grid, t, px, py, opts);
            if (!r.success()) {
                costs[0] = costs[1] = -1;
                break;
            }
            costs[mode] = r.real_cost_um;
            LegalityOptions lopts;
            lopts.require_all_placed = false;
            EXPECT_TRUE(check_legality(dd.db, dd.grid, lopts).legal);
            EXPECT_TRUE(dd.grid.audit(dd.db).empty());
        }
        if (costs[0] >= 0) {
            EXPECT_LE(costs[1], costs[0] + 1e-6) << "trial " << trial;
        }
        static_cast<void>(d);
    }
}

TEST(Mll, ManySequentialInsertionsStayLegal) {
    Database db = empty_design(10, 120);
    SegmentGrid grid = SegmentGrid::build(db);
    Rng rng(83);
    int placed = 0;
    for (int i = 0; i < 150; ++i) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 5));
        const bool dbl = rng.chance(0.2);
        const double px = static_cast<double>(rng.uniform(0, 115));
        const double py = static_cast<double>(rng.uniform(0, 8));
        const CellId t = add_unplaced(db, "c" + std::to_string(i), px, py,
                                      w, dbl ? 2 : 1);
        const MllResult r = mll_place(db, grid, t, px, py);
        placed += r.success() ? 1 : 0;
        if (i % 25 == 0) {
            LegalityOptions lopts;
            lopts.require_all_placed = false;
            ASSERT_TRUE(check_legality(db, grid, lopts).legal)
                << "after " << i;
            ASSERT_TRUE(grid.audit(db).empty());
        }
    }
    EXPECT_GT(placed, 140);  // density ~0.35, almost everything fits
    LegalityOptions lopts;
    lopts.require_all_placed = false;
    EXPECT_TRUE(check_legality(db, grid, lopts).legal);
}

}  // namespace
}  // namespace mrlg::test
