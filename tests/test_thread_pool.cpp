#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mrlg::test {
namespace {

TEST(ThreadPool, ChunkingDependsOnlyOnNAndGrain) {
    EXPECT_EQ(num_chunks_for(0, 16), 0u);
    EXPECT_EQ(num_chunks_for(1, 16), 1u);
    EXPECT_EQ(num_chunks_for(16, 16), 1u);
    EXPECT_EQ(num_chunks_for(17, 16), 2u);
    EXPECT_EQ(num_chunks_for(5, 0), 5u);  // grain 0 treated as 1
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    for (const int threads : {1, 2, 4, 8}) {
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) {
            h.store(0);
        }
        parallel_for(n, 16, threads, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                hits[i].fetch_add(1);
            }
        });
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at "
                                         << threads << " threads";
        }
    }
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
    bool called = false;
    parallel_for(0, 16, 4, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
    const int r = parallel_reduce(
        std::size_t{0}, std::size_t{16}, 4, 42,
        [](std::size_t, std::size_t) { return 0; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(r, 42);  // init returned untouched
}

TEST(ThreadPool, SingleChunkWhenNBelowGrainRunsOnCaller) {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> calls;
    const auto caller = std::this_thread::get_id();
    std::thread::id executed_on;
    parallel_for(5, 100, 8, [&](std::size_t b, std::size_t e) {
        std::lock_guard<std::mutex> lk(m);
        calls.emplace_back(b, e);
        executed_on = std::this_thread::get_id();
    });
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0], (std::pair<std::size_t, std::size_t>{0, 5}));
    EXPECT_EQ(executed_on, caller);
}

TEST(ThreadPool, ReduceSumMatchesClosedForm) {
    const std::size_t n = 12345;
    for (const int threads : {1, 2, 8}) {
        const std::int64_t sum = parallel_reduce(
            n, std::size_t{64}, threads, std::int64_t{0},
            [](std::size_t b, std::size_t e) {
                std::int64_t s = 0;
                for (std::size_t i = b; i < e; ++i) {
                    s += static_cast<std::int64_t>(i);
                }
                return s;
            },
            [](std::int64_t a, std::int64_t b) { return a + b; });
        EXPECT_EQ(sum, static_cast<std::int64_t>(n) *
                           static_cast<std::int64_t>(n - 1) / 2);
    }
}

TEST(ThreadPool, DoubleReduceBitIdenticalAcrossThreadCounts) {
    Rng rng(99);
    std::vector<double> values(10007);
    for (double& v : values) {
        v = rng.uniform01() * 1e6 - 5e5;
    }
    const auto run = [&](int threads) {
        return parallel_reduce(
            values.size(), std::size_t{128}, threads, 0.0,
            [&](std::size_t b, std::size_t e) {
                double s = 0.0;
                for (std::size_t i = b; i < e; ++i) {
                    s += values[i];
                }
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double serial = run(1);
    for (const int threads : {2, 3, 7, 8}) {
        const double parallel = run(threads);
        // Bit-identical, not just close: fixed chunk boundaries + ordered
        // combine make the summation order independent of the threads.
        EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
            << "threads=" << threads;
    }
}

TEST(ThreadPool, ExceptionsPropagateFromSerialAndParallel) {
    for (const int threads : {1, 4}) {
        EXPECT_THROW(
            parallel_for(1000, 16, threads,
                         [&](std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i) {
                                 if (i == 637) {
                                     throw std::runtime_error("boom");
                                 }
                             }
                         }),
            std::runtime_error)
            << "threads=" << threads;
    }
}

TEST(ThreadPool, PoolSurvivesAThrowingRegion) {
    auto& pool = ThreadPool::global();
    EXPECT_THROW(pool.run_chunks(8, 4,
                                 [](std::size_t c) {
                                     if (c == 3) {
                                         throw std::runtime_error("boom");
                                     }
                                 }),
                 std::runtime_error);
    // Next region still works.
    std::atomic<int> count{0};
    pool.run_chunks(8, 4, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ResolveThreadsPrefersExplicitRequest) {
    EXPECT_EQ(ThreadPool::resolve_threads(5), 5);
    EXPECT_GE(ThreadPool::default_threads(), 1);
}

TEST(ThreadPool, DefaultThreadsReadsEnvironment) {
    ASSERT_EQ(setenv("MRLG_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::default_threads(), 3);
    EXPECT_EQ(ThreadPool::resolve_threads(0), 3);
    ASSERT_EQ(setenv("MRLG_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::default_threads(), 1);  // falls back to hardware
    ASSERT_EQ(unsetenv("MRLG_THREADS"), 0);
}

TEST(ThreadPool, NestedSerialReduceInsideParallelRegion) {
    // The MLL scan calls evaluators that may themselves reduce; inner
    // calls with num_threads=1 must stay serial and correct.
    const std::int64_t total = parallel_reduce(
        std::size_t{64}, std::size_t{4}, 4, std::int64_t{0},
        [](std::size_t b, std::size_t e) {
            std::int64_t s = 0;
            for (std::size_t i = b; i < e; ++i) {
                s += parallel_reduce(
                    std::size_t{10}, std::size_t{4}, 1, std::int64_t{0},
                    [&](std::size_t bb, std::size_t ee) {
                        return static_cast<std::int64_t>(ee - bb) *
                               static_cast<std::int64_t>(i);
                    },
                    [](std::int64_t a, std::int64_t b2) { return a + b2; });
            }
            return s;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(total, 10 * (64 * 63 / 2));
}

}  // namespace
}  // namespace mrlg::test
