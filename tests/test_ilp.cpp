#include <gtest/gtest.h>

#include "ilp/branch_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

using ilp::Model;
using ilp::Sense;

TEST(Model, BuildAndEvaluate) {
    Model m;
    const int x = m.add_var(0, 10, 2.0);
    const int y = m.add_var(0, 10, 3.0);
    m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 8.0);
    EXPECT_EQ(m.num_vars(), 2);
    EXPECT_EQ(m.num_constraints(), 1);
    EXPECT_NEAR(m.objective_value({2.0, 3.0}), 13.0, 1e-12);
    EXPECT_TRUE(m.feasible({2.0, 3.0}));
    EXPECT_FALSE(m.feasible({5.0, 5.0}));   // violates constraint
    EXPECT_FALSE(m.feasible({-1.0, 0.0}));  // violates bound
}

TEST(Model, EmptyDomainAsserts) {
    Model m;
    EXPECT_THROW(m.add_var(3, 2, 0.0), AssertionError);
}

TEST(Simplex, UnconstrainedSitsAtLowerBounds) {
    Model m;
    m.add_var(2, 10, 1.0);
    m.add_var(-5, 5, 3.0);
    const auto r = ilp::solve_lp(m);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.x[0], 2.0, 1e-6);
    EXPECT_NEAR(r.x[1], -5.0, 1e-6);
    EXPECT_NEAR(r.obj, 2.0 - 15.0, 1e-6);
}

TEST(Simplex, NegativeObjectivePushesToUpperBound) {
    Model m;
    m.add_var(0, 7, -1.0);
    const auto r = ilp::solve_lp(m);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.x[0], 7.0, 1e-6);
}

TEST(Simplex, ClassicTwoVarLp) {
    // min -x - 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 10.
    // Optimum at (3, 1): obj -5.
    Model m;
    const int x = m.add_var(0, 10, -1.0);
    const int y = m.add_var(0, 10, -2.0);
    m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
    m.add_constraint({{x, 1.0}, {y, 3.0}}, Sense::kGe, 0.0);  // slack
    m.add_constraint({{x, 1.0}, {y, 3.0}}, Sense::kLe, 6.0);
    const auto r = ilp::solve_lp(m);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.obj, -5.0, 1e-6);
    EXPECT_NEAR(r.x[0], 3.0, 1e-6);
    EXPECT_NEAR(r.x[1], 1.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
    // min x + y s.t. x + y == 5, x >= 2.
    Model m;
    const int x = m.add_var(2, 10, 1.0);
    const int y = m.add_var(0, 10, 1.0);
    m.add_constraint({{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0);
    const auto r = ilp::solve_lp(m);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.obj, 5.0, 1e-6);
}

TEST(Simplex, InfeasibleDetected) {
    Model m;
    const int x = m.add_var(0, 1, 1.0);
    m.add_constraint({{x, 1.0}}, Sense::kGe, 5.0);
    EXPECT_EQ(ilp::solve_lp(m).status, ilp::LpStatus::kInfeasible);
}

TEST(Simplex, ConflictingEqualitiesInfeasible) {
    Model m;
    const int x = m.add_var(0, 10, 0.0);
    m.add_constraint({{x, 1.0}}, Sense::kEq, 3.0);
    m.add_constraint({{x, 1.0}}, Sense::kEq, 4.0);
    EXPECT_EQ(ilp::solve_lp(m).status, ilp::LpStatus::kInfeasible);
}

TEST(Simplex, BoundOverridesForBranching) {
    Model m;
    const int x = m.add_var(0, 10, -1.0);
    static_cast<void>(x);
    std::vector<double> lb{0.0};
    std::vector<double> ub{4.0};
    const auto r = ilp::solve_lp(m, {}, &lb, &ub);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.x[0], 4.0, 1e-6);
    lb[0] = 6.0;
    ub[0] = 5.0;
    EXPECT_EQ(ilp::solve_lp(m, {}, &lb, &ub).status,
              ilp::LpStatus::kInfeasible);
}

TEST(Simplex, DifferenceChainLikeLegalization) {
    // min |x1-3| + |x2-4| st x2 >= x1 + 5 — the 1-D legalization core:
    // d1 >= x1-3, d1 >= 3-x1 etc. Optimal total displacement 4 (e.g.
    // x1=1,x2=6 → 2+2... actually x1=0..3 trade-off: min is 4).
    Model m;
    const int x1 = m.add_var(0, 20, 0.0);
    const int x2 = m.add_var(0, 20, 0.0);
    const int d1 = m.add_var(0, 100, 1.0);
    const int d2 = m.add_var(0, 100, 1.0);
    m.add_constraint({{d1, 1.0}, {x1, -1.0}}, Sense::kGe, -3.0);
    m.add_constraint({{d1, 1.0}, {x1, 1.0}}, Sense::kGe, 3.0);
    m.add_constraint({{d2, 1.0}, {x2, -1.0}}, Sense::kGe, -4.0);
    m.add_constraint({{d2, 1.0}, {x2, 1.0}}, Sense::kGe, 4.0);
    m.add_constraint({{x2, 1.0}, {x1, -1.0}}, Sense::kGe, 5.0);
    const auto r = ilp::solve_lp(m);
    ASSERT_EQ(r.status, ilp::LpStatus::kOptimal);
    EXPECT_NEAR(r.obj, 4.0, 1e-6);
}

TEST(BranchBound, PureLpPassesThrough) {
    Model m;
    m.add_var(0, 10, -1.0);
    const auto r = ilp::solve_mip(m);
    ASSERT_EQ(r.status, ilp::MipStatus::kOptimal);
    EXPECT_NEAR(r.obj, -10.0, 1e-6);
}

TEST(BranchBound, SimpleIntegerRounding) {
    // min -x s.t. 2x <= 7, x integer → x = 3 (LP gives 3.5).
    Model m;
    const int x = m.add_var(0, 10, -1.0, /*integer=*/true);
    m.add_constraint({{x, 2.0}}, Sense::kLe, 7.0);
    const auto r = ilp::solve_mip(m);
    ASSERT_EQ(r.status, ilp::MipStatus::kOptimal);
    EXPECT_NEAR(r.x[0], 3.0, 1e-6);
    EXPECT_NEAR(r.obj, -3.0, 1e-6);
}

TEST(BranchBound, Knapsack) {
    // max 10a + 6b + 4c st 1a+1b+1c <= 2 binaries → min form.
    Model m;
    const int a = m.add_var(0, 1, -10.0, true);
    const int b = m.add_var(0, 1, -6.0, true);
    const int c = m.add_var(0, 1, -4.0, true);
    m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Sense::kLe, 2.0);
    const auto r = ilp::solve_mip(m);
    ASSERT_EQ(r.status, ilp::MipStatus::kOptimal);
    EXPECT_NEAR(r.obj, -16.0, 1e-6);
    EXPECT_NEAR(r.x[a], 1.0, 1e-6);
    EXPECT_NEAR(r.x[b], 1.0, 1e-6);
    EXPECT_NEAR(r.x[c], 0.0, 1e-6);
}

TEST(BranchBound, FractionalKnapsackNeedsBranching) {
    // max 6a + 10b st 3a + 4b <= 6, binaries. LP relax: b=1, a=2/3.
    // Integer optimum: b=1 (obj 10) beats a=1 (6).
    Model m;
    const int a = m.add_var(0, 1, -6.0, true);
    const int b = m.add_var(0, 1, -10.0, true);
    m.add_constraint({{a, 3.0}, {b, 4.0}}, Sense::kLe, 6.0);
    const auto r = ilp::solve_mip(m);
    ASSERT_EQ(r.status, ilp::MipStatus::kOptimal);
    EXPECT_NEAR(r.obj, -10.0, 1e-6);
}

TEST(BranchBound, InfeasibleInteger) {
    // 2x == 3 with x integer in [0,5] → infeasible.
    Model m;
    const int x = m.add_var(0, 5, 1.0, true);
    m.add_constraint({{x, 2.0}}, Sense::kEq, 3.0);
    EXPECT_EQ(ilp::solve_mip(m).status, ilp::MipStatus::kInfeasible);
}

TEST(BranchBound, BigMGapSelection) {
    // Tiny version of the legalization gap choice: target at x in [0,10],
    // either left of a wall cell at [4,7] (x+3<=4) or right of it (x>=7).
    // Preference 5 → nearest choice costs min(|4-3-5|?,...) — left gives
    // x<=1 (cost >=4), right gives x>=7 (cost 2). Optimal x=7.
    Model m;
    const double big = 100.0;
    const int x = m.add_var(0, 10, 0.0);
    const int d = m.add_var(0, 100, 1.0);
    const int b = m.add_var(0, 1, 0.0, true);  // 1 = right side
    m.add_constraint({{d, 1.0}, {x, -1.0}}, Sense::kGe, -5.0);
    m.add_constraint({{d, 1.0}, {x, 1.0}}, Sense::kGe, 5.0);
    // left: x + 3 <= 4 + M b;  right: x >= 7 - M(1-b).
    m.add_constraint({{x, 1.0}, {b, -big}}, Sense::kLe, 1.0);
    m.add_constraint({{x, 1.0}, {b, -big}}, Sense::kGe, 7.0 - big);
    const auto r = ilp::solve_mip(m);
    ASSERT_EQ(r.status, ilp::MipStatus::kOptimal);
    EXPECT_NEAR(r.obj, 2.0, 1e-6);
    EXPECT_NEAR(r.x[x], 7.0, 1e-6);
    EXPECT_NEAR(r.x[b], 1.0, 1e-6);
}

TEST(BranchBound, RandomizedAgainstExhaustive) {
    // Random small binary programs vs exhaustive enumeration.
    Rng rng(211);
    for (int trial = 0; trial < 30; ++trial) {
        Model m;
        const int n = 4;
        std::vector<double> obj(n);
        for (int i = 0; i < n; ++i) {
            obj[static_cast<std::size_t>(i)] =
                static_cast<double>(rng.uniform(-9, 9));
            m.add_var(0, 1, obj[static_cast<std::size_t>(i)], true);
        }
        // Two random <= constraints.
        for (int k = 0; k < 2; ++k) {
            std::vector<ilp::Term> terms;
            for (int i = 0; i < n; ++i) {
                terms.push_back(
                    {i, static_cast<double>(rng.uniform(-4, 4))});
            }
            m.add_constraint(std::move(terms), Sense::kLe,
                             static_cast<double>(rng.uniform(0, 6)));
        }
        const auto r = ilp::solve_mip(m);
        // Exhaustive.
        double best = std::numeric_limits<double>::max();
        for (int mask = 0; mask < (1 << n); ++mask) {
            std::vector<double> x(n);
            for (int i = 0; i < n; ++i) {
                x[static_cast<std::size_t>(i)] = (mask >> i) & 1;
            }
            if (m.feasible(x)) {
                best = std::min(best, m.objective_value(x));
            }
        }
        if (best == std::numeric_limits<double>::max()) {
            EXPECT_EQ(r.status, ilp::MipStatus::kInfeasible)
                << "trial " << trial;
        } else {
            ASSERT_EQ(r.status, ilp::MipStatus::kOptimal)
                << "trial " << trial;
            EXPECT_NEAR(r.obj, best, 1e-6) << "trial " << trial;
        }
    }
}

}  // namespace
}  // namespace mrlg::test
