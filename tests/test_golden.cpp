/// Golden end-to-end regression tests: three seeded synthetic benchmarks
/// run through the full legalization flow under a counted-tick clock; the
/// serialized run report must match the checked-in golden byte for byte.
/// Any intended behaviour change (placement order, metrics, schema)
/// regenerates the goldens via tests/update_goldens.sh and shows up in
/// review as a plain-text diff of the reports.
///
/// Regenerate: MRLG_UPDATE_GOLDENS=1 ./tests/test_golden  (or the script).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "obs/clock.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

#ifndef MRLG_GOLDEN_DIR
#error "build must define MRLG_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace mrlg {
namespace {

struct GoldenCase {
    const char* name;
    GenProfile profile;
};

GenProfile profile(std::size_t singles, std::size_t doubles,
                   std::size_t triples, std::size_t quads, double density,
                   std::uint64_t seed) {
    GenProfile p;
    p.num_single = singles;
    p.num_double = doubles;
    p.num_triple = triples;
    p.num_quad = quads;
    p.density = density;
    p.seed = seed;
    return p;
}

/// The three benchmark flavours the suite pins down: a plain single/double
/// mix, a mixed-height design with placement blockages, and a fenced
/// design (ISPD2015-style region constraint).
std::vector<GoldenCase> golden_cases() {
    std::vector<GoldenCase> cases;
    {
        GoldenCase c{"uniform_small",
                     profile(300, 30, 0, 0, 0.55, 11)};
        cases.push_back(std::move(c));
    }
    {
        GoldenCase c{"blocked_mixed",
                     profile(220, 40, 12, 8, 0.6, 22)};
        c.profile.num_blockages = 2;
        c.profile.blockage_area_frac = 0.04;
        cases.push_back(std::move(c));
    }
    {
        GoldenCase c{"fenced_dense", profile(260, 30, 0, 0, 0.5, 33)};
        c.profile.fence_cell_frac = 0.15;
        cases.push_back(std::move(c));
    }
    return cases;
}

/// Runs one case end to end and returns the serialized run report. The
/// tick clock plus the pinned options make the result a pure function of
/// this source tree — bit-identical across machines and thread counts.
std::string run_case(const GoldenCase& c) {
    GenProfile p = c.profile;
    p.name = c.name;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.num_threads = 2;
    obs::TickClock clock;
    obs::Tracer tracer(&clock);
    obs::ScopedTracer install(tracer);
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    obs::RunReportSpec spec;
    spec.tool = "test_golden";
    spec.design = c.name;
    spec.db = &gen.db;
    spec.grid = &grid;
    spec.check_rail = opts.mll.check_rail;
    spec.num_threads = opts.num_threads;
    spec.options = &opts;
    spec.stats = &stats;
    spec.tracer = &tracer;
    return obs::make_run_report(spec).dump();
}

std::string golden_path(const std::string& name) {
    return std::string(MRLG_GOLDEN_DIR) + "/" + name + ".json";
}

bool update_mode() {
    const char* v = std::getenv("MRLG_UPDATE_GOLDENS");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// Points at the first differing line so a report diff is readable
/// without leaving the test log.
std::string first_difference(const std::string& got,
                             const std::string& want) {
    std::istringstream gs(got);
    std::istringstream ws(want);
    std::string gl;
    std::string wl;
    int line = 0;
    while (true) {
        const bool g_ok = static_cast<bool>(std::getline(gs, gl));
        const bool w_ok = static_cast<bool>(std::getline(ws, wl));
        ++line;
        if (!g_ok && !w_ok) {
            return "no difference";
        }
        if (gl != wl || g_ok != w_ok) {
            std::ostringstream os;
            os << "line " << line << ":\n  golden: "
               << (w_ok ? wl : "<eof>") << "\n  actual: "
               << (g_ok ? gl : "<eof>");
            return os.str();
        }
    }
}

void check_case(const GoldenCase& c) {
    const std::string report = run_case(c);
    const std::string path = golden_path(c.name);
    if (update_mode()) {
        std::ofstream os(path);
        ASSERT_TRUE(os) << "cannot write " << path;
        os << report;
        std::cout << "updated golden " << path << "\n";
        return;
    }
    std::ifstream is(path);
    ASSERT_TRUE(is) << "missing golden " << path
                    << " — run tests/update_goldens.sh";
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string golden = buf.str();
    EXPECT_EQ(report, golden)
        << "run report diverged from " << path << "\n"
        << first_difference(report, golden)
        << "\nIf the change is intended, run tests/update_goldens.sh";
}

TEST(Golden, UniformSmall) { check_case(golden_cases()[0]); }

TEST(Golden, BlockedMixed) { check_case(golden_cases()[1]); }

TEST(Golden, FencedDense) { check_case(golden_cases()[2]); }

/// The golden flavour of the satellite-2 property: the exact bytes we pin
/// in the goldens do not depend on the evaluation thread count.
TEST(Golden, ReportsIndependentOfThreadCount) {
    GoldenCase c = golden_cases()[0];
    const std::string base = run_case(c);
    for (const int threads : {1, 8}) {
        GoldenCase v = c;
        // The recorded option stays 2 (run_case pins it); only the real
        // worker count varies via the environment-independent override.
        const std::string report = [&] {
            GenProfile p = v.profile;
            p.name = v.name;
            GenResult gen = generate_benchmark(p);
            SegmentGrid grid = SegmentGrid::build(gen.db);
            LegalizerOptions opts;
            opts.num_threads = threads;
            obs::TickClock clock;
            obs::Tracer tracer(&clock);
            obs::ScopedTracer install(tracer);
            const LegalizerStats stats =
                legalize_placement(gen.db, grid, opts);
            obs::RunReportSpec spec;
            spec.tool = "test_golden";
            spec.design = v.name;
            spec.db = &gen.db;
            spec.grid = &grid;
            spec.check_rail = opts.mll.check_rail;
            spec.num_threads = 2;  // pinned configuration echo
            spec.options = &opts;
            spec.stats = &stats;
            spec.tracer = &tracer;
            return obs::make_run_report(spec).dump();
        }();
        EXPECT_EQ(report, base) << "threads=" << threads;
    }
}

}  // namespace
}  // namespace mrlg
