/// Fence regions (ISPD2015 semantics): members stay inside their fence,
/// core cells stay outside. Exercises the region tagging in SegmentGrid,
/// the region-filtered queries, MLL/legalizer/greedy/rip-up behaviour and
/// the generator's fence mode.

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/greedy.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

/// 6 rows x 60 sites, fence region 1 over x [40, 60).
Database fenced_design() {
    Database db = empty_design(6, 60);
    db.floorplan().add_fence(1, Rect{40, 0, 20, 6});
    return db;
}

TEST(Fences, SegmentsSplitAndTagged) {
    Database db = fenced_design();
    const SegmentGrid grid = SegmentGrid::build(db);
    for (SiteCoord y = 0; y < 6; ++y) {
        const auto segs = grid.row_segments(y);
        ASSERT_EQ(segs.size(), 2u) << "row " << y;
        EXPECT_EQ(grid.segment(segs[0]).span, (Span{0, 40}));
        EXPECT_EQ(grid.segment(segs[0]).region, 0);
        EXPECT_EQ(grid.segment(segs[1]).span, (Span{40, 60}));
        EXPECT_EQ(grid.segment(segs[1]).region, 1);
    }
}

TEST(Fences, AdjacentSameRegionRectsMerge) {
    Database db = empty_design(2, 60);
    db.floorplan().add_fence(1, Rect{10, 0, 10, 2});
    db.floorplan().add_fence(1, Rect{20, 0, 10, 2});
    const SegmentGrid grid = SegmentGrid::build(db);
    const auto segs = grid.row_segments(0);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(grid.segment(segs[1]).span, (Span{10, 30}));
    EXPECT_EQ(grid.segment(segs[1]).region, 1);
}

TEST(Fences, OverlappingDifferentRegionsAssert) {
    Database db = empty_design(2, 60);
    db.floorplan().add_fence(1, Rect{10, 0, 10, 2});
    EXPECT_THROW(db.floorplan().add_fence(2, Rect{15, 0, 10, 2}),
                 AssertionError);
    EXPECT_THROW(db.floorplan().add_fence(0, Rect{30, 0, 5, 2}),
                 AssertionError);  // region 0 reserved for the core
}

TEST(Fences, BlockageWinsOverFence) {
    Database db = empty_design(1, 60);
    db.floorplan().add_fence(1, Rect{40, 0, 20, 1});
    db.floorplan().add_blockage(Rect{45, 0, 5, 1});
    const SegmentGrid grid = SegmentGrid::build(db);
    const auto segs = grid.row_segments(0);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(grid.segment(segs[1]).span, (Span{40, 45}));
    EXPECT_EQ(grid.segment(segs[1]).region, 1);
    EXPECT_EQ(grid.segment(segs[2]).span, (Span{50, 60}));
    EXPECT_EQ(grid.segment(segs[2]).region, 1);
}

TEST(Fences, PlaceRejectsWrongRegion) {
    Database db = fenced_design();
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId core = db.add_cell(Cell("core", 4, 1));
    const CellId member = db.add_cell(Cell("mem", 4, 1));
    db.cell(member).set_region(1);
    EXPECT_THROW(grid.place(db, core, 45, 0), AssertionError);    // in fence
    EXPECT_THROW(grid.place(db, member, 10, 0), AssertionError);  // outside
    grid.place(db, core, 10, 0);
    grid.place(db, member, 45, 0);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Fences, PlaceableRespectsRegion) {
    Database db = fenced_design();
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_TRUE(grid.placeable(db, Rect{45, 0, 4, 1}, CellId{}, 1));
    EXPECT_FALSE(grid.placeable(db, Rect{45, 0, 4, 1}, CellId{}, 0));
    EXPECT_TRUE(grid.placeable(db, Rect{45, 0, 4, 1}));  // kAnyRegion
    EXPECT_FALSE(grid.placeable(db, Rect{38, 0, 4, 1}, CellId{}, 0));
    // ^ straddles the fence boundary: contained in no single segment.
}

TEST(Fences, LegalityFlagsRegionViolations) {
    Database db = fenced_design();
    const SegmentGrid grid = SegmentGrid::build(db);
    const CellId core = db.add_cell(Cell("core", 4, 1));
    db.cell(core).set_pos(45, 0);  // bypass the grid: core cell in fence
    const LegalityReport rep = check_legality(db, grid);
    EXPECT_FALSE(rep.legal);
    EXPECT_GE(rep.num_out_of_rows, 1u);
}

TEST(Fences, MllKeepsTargetInItsRegion) {
    Database db = fenced_design();
    SegmentGrid grid = SegmentGrid::build(db);
    // Member cell prefers a spot deep in the core — MLL must pull it into
    // the fence anyway.
    const CellId member =
        add_unplaced(db, "mem", 10.0, 2.0, 4, 1);
    db.cell(member).set_region(1);
    const MllResult r = mll_place(db, grid, member, 10.0, 2.0);
    ASSERT_TRUE(r.success());
    EXPECT_GE(r.x, 40);
    // And a core cell preferring the fence stays out.
    const CellId core = add_unplaced(db, "core", 50.0, 2.0, 4, 1);
    const MllResult rc = mll_place(db, grid, core, 50.0, 2.0);
    ASSERT_TRUE(rc.success());
    EXPECT_LE(rc.x + 4, 40);
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Fences, MllShiftsOnlySameRegionNeighbours) {
    Database db = fenced_design();
    SegmentGrid grid = SegmentGrid::build(db);
    // A core cell right at the fence boundary must be invisible to a
    // member insertion (regions never push across the wall).
    const CellId wall_neighbor = db.add_cell(Cell("cn", 4, 1));
    grid.place(db, wall_neighbor, 36, 2);
    const CellId m0 = db.add_cell(Cell("m0", 18, 1));
    db.cell(m0).set_region(1);
    grid.place(db, m0, 40, 2);  // fence row 2 nearly full: [40,58) of 20
    const CellId member = add_unplaced(db, "mem", 41.0, 2.0, 4, 1);
    db.cell(member).set_region(1);
    const MllResult r = mll_place(db, grid, member, 41.0, 2.0);
    ASSERT_TRUE(r.success());
    EXPECT_NE(r.y, 2);  // row 2's fence part cannot host 4 more sites
    EXPECT_EQ(db.cell(wall_neighbor).x(), 36);  // untouched
    EXPECT_TRUE(check_legality(db, grid).legal);
}

TEST(Fences, GreedyRespectsRegions) {
    Database db = fenced_design();
    SegmentGrid grid = SegmentGrid::build(db);
    Rng rng(83);
    for (int i = 0; i < 30; ++i) {
        const CellId c = add_unplaced(db, "c" + std::to_string(i),
                                      rng.uniform01() * 55.0,
                                      rng.uniform01() * 5.0, 3, 1);
        if (i % 3 == 0) {
            db.cell(c).set_region(1);
        }
    }
    const GreedyStats s = greedy_legalize(db, grid);
    EXPECT_TRUE(s.success);
    for (const Cell& c : db.cells()) {
        if (c.region() == 1) {
            EXPECT_GE(c.x(), 40);
        } else {
            EXPECT_LE(c.x() + c.width(), 40);
        }
    }
}

TEST(Fences, FullLegalizationWithGeneratorFences) {
    GenProfile p;
    p.name = "fenced";
    p.num_single = 700;
    p.num_double = 70;
    p.density = 0.55;
    p.fence_cell_frac = 0.2;
    p.seed = 9;
    GenResult gen = generate_benchmark(p);
    ASSERT_TRUE(gen.packed_ok);
    ASSERT_EQ(gen.db.floorplan().fences().size(), 1u);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    const LegalizerStats stats = legalize_placement(gen.db, grid);
    EXPECT_TRUE(stats.success) << stats.unplaced;
    const LegalityReport rep = check_legality(gen.db, grid);
    EXPECT_TRUE(rep.legal)
        << (rep.messages.empty() ? "" : rep.messages[0]);
    // Every member inside the strip, every core cell outside.
    const Rect fence = gen.db.floorplan().fences()[0].rect;
    std::size_t members = 0;
    for (const Cell& c : gen.db.cells()) {
        if (c.region() == 1) {
            ++members;
            EXPECT_TRUE(fence.contains(c.rect())) << c.name();
        } else {
            EXPECT_FALSE(fence.overlaps(c.rect())) << c.name();
        }
    }
    EXPECT_GT(members, 100u);
}

}  // namespace
}  // namespace mrlg::test
