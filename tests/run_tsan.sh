#!/usr/bin/env sh
# Builds the parallel-evaluation tests under ThreadSanitizer and runs them
# with 4 worker threads. Usage: tests/run_tsan.sh [build-dir]
# Set MRLG_SANITIZE=address instead via: MRLG_SANITIZE=address tests/run_tsan.sh
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitizer=${MRLG_SANITIZE:-thread}
build_dir=${1:-"$repo_root/build-$sanitizer"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMRLG_SANITIZE="$sanitizer"
cmake --build "$build_dir" -j \
  --target test_thread_pool test_parallel_determinism

export MRLG_THREADS=4
"$build_dir/tests/test_thread_pool"
"$build_dir/tests/test_parallel_determinism"
echo "${sanitizer} sanitizer run passed"
