#!/usr/bin/env sh
# Builds the whole library and test suite under a sanitizer and runs the
# full ctest suite with 4 worker threads.
#
# Usage: tests/run_tsan.sh [build-dir]
#   MRLG_SANITIZE selects the sanitizer(s); default "thread". Commas are
#   allowed ("address,undefined") and map to a comma-free build dir name.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
sanitizer=${MRLG_SANITIZE:-thread}
suffix=$(printf '%s' "$sanitizer" | tr ',' '-')
build_dir=${1:-"$repo_root/build-$suffix"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMRLG_SANITIZE="$sanitizer" \
  -DMRLG_DCHECKS=ON
cmake --build "$build_dir" -j

# 4 workers exercises the deterministic thread pool's synchronisation;
# the audit layer runs too so data races in the auditors also surface.
export MRLG_THREADS=4
export MRLG_VALIDATE=cheap
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
echo "${sanitizer} sanitizer run passed (full suite)"
