#include <gtest/gtest.h>

#include "legalize/evaluation.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/realization.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

int idx_of(const LocalProblem& lp, CellId id) {
    for (int i = 0; i < lp.num_cells(); ++i) {
        if (lp.cell(i).id == id) {
            return i;
        }
    }
    return -1;
}

/// Checks that the realization plus a target at (xt, rows k0..) is
/// overlap-free and keeps every row's order and span.
void expect_legal_realization(const LocalProblem& lp,
                              const InsertionPoint& pt,
                              const Realization& r, SiteCoord target_w) {
    for (int k = 0; k < lp.num_rows(); ++k) {
        if (!lp.has_row(k)) {
            continue;
        }
        const LpRow& row = lp.row(k);
        const bool comb =
            k >= pt.k0 && k < pt.k0 + static_cast<int>(pt.gaps.size());
        const int gap =
            comb ? pt.gaps[static_cast<std::size_t>(k - pt.k0)] : -1;
        SiteCoord cursor = row.span.lo;
        for (std::size_t pos = 0; pos <= row.cells.size(); ++pos) {
            if (comb && static_cast<int>(pos) == gap) {
                EXPECT_GE(r.xt, cursor) << "target overlaps on row " << k;
                cursor = r.xt + target_w;
            }
            if (pos < row.cells.size()) {
                const int ci = row.cells[pos];
                const SiteCoord nx = r.new_x[static_cast<std::size_t>(ci)];
                EXPECT_GE(nx, cursor)
                    << "overlap before cell " << ci << " row " << k;
                cursor = nx + lp.cell(ci).w;
            }
        }
        EXPECT_LE(cursor, row.span.hi) << "row " << k << " overflows";
    }
}

TEST(Realization, NoPushWhenGapIsWide) {
    Database db = empty_design(1, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 50, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 60, 1});
    compute_minmax_placement(lp);
    InsertionPoint pt;
    pt.k0 = 0;
    pt.gaps = {1};
    pt.lo = 5;
    pt.hi = 46;
    const Realization r = realize_insertion(lp, pt, 20, 4);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.moved_sites, 0.0);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, a))], 0);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, b))], 50);
    expect_legal_realization(lp, pt, r, 4);
}

TEST(Realization, PushesLeftChain) {
    Database db = empty_design(1, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 2, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 8, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 30, 1});
    compute_minmax_placement(lp);
    InsertionPoint pt;
    pt.k0 = 0;
    pt.gaps = {2};  // right of b
    pt.lo = 10;
    pt.hi = 26;
    const Realization r = realize_insertion(lp, pt, 11, 4);
    ASSERT_TRUE(r.ok);
    // b must end at 11 → pushed to 6; that pushes a to 1.
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, b))], 6);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, a))], 1);
    EXPECT_EQ(r.moved_sites, 3.0);
    expect_legal_realization(lp, pt, r, 4);
}

TEST(Realization, PushesRightChain) {
    Database db = empty_design(1, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 10, 0, 5, 1);
    const CellId b = add_placed(db, grid, "b", 16, 0, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 30, 1});
    compute_minmax_placement(lp);
    InsertionPoint pt;
    pt.k0 = 0;
    pt.gaps = {0};  // left of a
    pt.lo = 0;
    pt.hi = 10;
    const Realization r = realize_insertion(lp, pt, 8, 4);
    ASSERT_TRUE(r.ok);
    // a pushed to 12, b pushed to 17.
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, a))], 12);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, b))], 17);
    EXPECT_EQ(r.moved_sites, 3.0);
    expect_legal_realization(lp, pt, r, 4);
}

TEST(Realization, MultiRowPushCascadesAcrossRows) {
    // Pushing double-height m right in row 0 must move its row-1 slice,
    // which pushes s in row 1.
    Database db = empty_design(2, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId m = add_placed(db, grid, "m", 4, 0, 4, 2);
    const CellId s = add_placed(db, grid, "s", 9, 1, 5, 1);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 30, 2});
    compute_minmax_placement(lp);
    // Single-row target left of m in row 0.
    InsertionPoint pt;
    pt.k0 = 0;
    pt.gaps = {0};
    pt.lo = 0;
    pt.hi = 12;  // xr_m - wt... generous
    const Realization r = realize_insertion(lp, pt, 2, 4);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, m))], 6);
    EXPECT_EQ(r.new_x[static_cast<std::size_t>(idx_of(lp, s))], 10);
    expect_legal_realization(lp, pt, r, 4);
}

TEST(Realization, TargetXOutsideRangeAsserts) {
    Database db = empty_design(1, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    LocalProblem lp = make_local_problem(db, grid, Rect{0, 0, 20, 1});
    compute_minmax_placement(lp);
    InsertionPoint pt;
    pt.k0 = 0;
    pt.gaps = {0};
    pt.lo = 0;
    pt.hi = 16;
    EXPECT_THROW(realize_insertion(lp, pt, 17, 4), AssertionError);
}

TEST(Realization, EveryEnumeratedPointRealizesLegally) {
    // Core soundness property (paper §5.3): every valid insertion point,
    // realized at any x in [lo, hi], yields a legal local placement.
    Rng rng(71);
    for (int trial = 0; trial < 15; ++trial) {
        RandomDesign d = random_legal_design(rng, 8, 90, 55, 0.35, 3);
        LocalProblem lp =
            make_local_problem(d.db, d.grid, Rect{5, 0, 70, 8});
        compute_minmax_placement(lp);
        TargetSpec t;
        t.w = static_cast<SiteCoord>(rng.uniform(1, 5));
        t.h = static_cast<SiteCoord>(rng.uniform(1, 3));
        t.rail_phase =
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd;
        const auto intervals = build_insertion_intervals(lp, t.w);
        const auto res = enumerate_insertion_points(lp, intervals, t);
        for (const auto& pt : res.points) {
            for (const SiteCoord x :
                 {pt.lo, pt.hi,
                  static_cast<SiteCoord>((pt.lo + pt.hi) / 2)}) {
                const Realization r = realize_insertion(lp, pt, x, t.w);
                ASSERT_TRUE(r.ok);
                expect_legal_realization(lp, pt, r, t.w);
            }
        }
    }
}

TEST(Realization, MovedCostIsMinimal) {
    // Each pushed cell moves exactly to the overlap boundary, never more:
    // moved distance equals the hinge displacement predicted by the exact
    // critical positions.
    Rng rng(73);
    RandomDesign d = random_legal_design(rng, 6, 80, 45, 0.3);
    LocalProblem lp = make_local_problem(d.db, d.grid, Rect{0, 0, 80, 6});
    compute_minmax_placement(lp);
    TargetSpec t;
    t.w = 3;
    t.h = 1;
    const auto intervals = build_insertion_intervals(lp, t.w);
    const auto res = enumerate_insertion_points(lp, intervals, t);
    for (const auto& pt : res.points) {
        const CriticalPositions cp =
            compute_critical_positions(lp, pt, t.w);
        const SiteCoord x = pt.lo;
        const Realization r = realize_insertion(lp, pt, x, t.w);
        for (int i = 0; i < lp.num_cells(); ++i) {
            const LpCell& c = lp.cell(i);
            SiteCoord expected = c.x;
            if (cp.xa[static_cast<std::size_t>(i)] != kSiteCoordMin) {
                expected = c.x - std::max<SiteCoord>(
                    0, cp.xa[static_cast<std::size_t>(i)] - x);
            } else if (cp.xb[static_cast<std::size_t>(i)] !=
                       kSiteCoordMax) {
                expected = c.x + std::max<SiteCoord>(
                    0, x - cp.xb[static_cast<std::size_t>(i)]);
            }
            EXPECT_EQ(r.new_x[static_cast<std::size_t>(i)], expected);
        }
    }
}

}  // namespace
}  // namespace mrlg::test
