#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "legalize/enumeration.hpp"
#include "legalize/minmax_placement.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TargetSpec make_target(SiteCoord w, SiteCoord h,
                       RailPhase phase = RailPhase::kEven) {
    TargetSpec t;
    t.w = w;
    t.h = h;
    t.rail_phase = phase;
    return t;
}

struct Prepared {
    LocalProblem lp;
    std::vector<InsertionInterval> intervals;
};

Prepared prepare(Database& db, SegmentGrid& grid, const Rect& window,
                 const TargetSpec& target) {
    Prepared p{make_local_problem(db, grid, window), {}};
    compute_minmax_placement(p.lp);
    p.intervals = build_insertion_intervals(p.lp, target.w);
    return p;
}

/// Canonical form for set comparison.
std::set<std::string> canon(const std::vector<InsertionPoint>& pts) {
    std::set<std::string> out;
    for (const auto& p : pts) {
        std::string s = std::to_string(p.k0) + "|";
        for (const int g : p.gaps) {
            s += std::to_string(g) + ",";
        }
        s += "|" + std::to_string(p.lo) + ":" + std::to_string(p.hi);
        out.insert(s);
    }
    return out;
}

TEST(Enumeration, SingleRowTargetOneIntervalPerPoint) {
    Database db = empty_design(1, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 20, 0, 5, 1);
    const TargetSpec t = make_target(4, 1);
    Prepared p = prepare(db, grid, Rect{0, 0, 50, 1}, t);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, t);
    EXPECT_FALSE(res.truncated);
    EXPECT_EQ(res.points.size(), p.intervals.size());
}

TEST(Enumeration, DoubleRowTargetCombinesAdjacentRows) {
    Database db = empty_design(2, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const TargetSpec t = make_target(4, 2);
    Prepared p = prepare(db, grid, Rect{0, 0, 50, 2}, t);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, t);
    // One empty gap per row, combined once.
    ASSERT_EQ(res.points.size(), 1u);
    EXPECT_EQ(res.points[0].k0, 0);
    EXPECT_EQ(res.points[0].lo, 0);
    EXPECT_EQ(res.points[0].hi, 46);
}

TEST(Enumeration, RailParityFiltersBaseRows) {
    Database db = empty_design(4, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const TargetSpec even = make_target(4, 2, RailPhase::kEven);
    Prepared p = prepare(db, grid, Rect{0, 0, 50, 4}, even);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, even);
    // Base rows 0 and 2 only.
    std::set<int> bases;
    for (const auto& pt : res.points) {
        bases.insert(pt.k0);
    }
    EXPECT_EQ(bases, (std::set<int>{0, 2}));

    const TargetSpec odd = make_target(4, 2, RailPhase::kOdd);
    const auto res2 = enumerate_insertion_points(p.lp, p.intervals, odd);
    bases.clear();
    for (const auto& pt : res2.points) {
        bases.insert(pt.k0);
    }
    EXPECT_EQ(bases, (std::set<int>{1}));

    EnumerationOptions relaxed;
    relaxed.check_rail = false;
    const auto res3 =
        enumerate_insertion_points(p.lp, p.intervals, even, relaxed);
    bases.clear();
    for (const auto& pt : res3.points) {
        bases.insert(pt.k0);
    }
    EXPECT_EQ(bases, (std::set<int>{0, 1, 2}));
}

TEST(Enumeration, CommonCutlineRequired) {
    // Row 0 free only on the left, row 1 free only on the right, with no
    // common x → no double-height insertion point.
    Database db = empty_design(2, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    db.floorplan().add_blockage(Rect{18, 0, 22, 1});  // row 0: [0,18) free
    db.floorplan().add_blockage(Rect{0, 1, 22, 1});   // row 1: [22,40) free
    grid = SegmentGrid::build(db);
    const TargetSpec t = make_target(4, 2);
    Prepared p = prepare(db, grid, Rect{0, 0, 40, 2}, t);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, t);
    EXPECT_TRUE(res.points.empty());
}

TEST(Enumeration, Figure8MultiRowBlocking) {
    // Fig. 8: gaps on opposite sides of a double-height cell do not form a
    // valid insertion point even with a common cutline.
    Database db = empty_design(2, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 12, 0, 6, 2);  // double-height wall
    const TargetSpec t = make_target(4, 2);
    Prepared p = prepare(db, grid, Rect{0, 0, 30, 2}, t);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, t);
    // Valid: both gaps left of a, both right of a. Invalid: mixed.
    ASSERT_EQ(res.points.size(), 2u);
    for (const auto& pt : res.points) {
        EXPECT_EQ(pt.gaps[0], pt.gaps[1]);
        EXPECT_TRUE(insertion_point_consistent(p.lp, pt));
    }
}

TEST(Enumeration, MixedSidePointRejectedByConsistency) {
    Database db = empty_design(2, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 12, 0, 6, 2);
    const TargetSpec t = make_target(4, 2);
    Prepared p = prepare(db, grid, Rect{0, 0, 30, 2}, t);
    InsertionPoint bad;
    bad.k0 = 0;
    bad.gaps = {0, 1};  // left of a in row 0, right of a in row 1
    EXPECT_FALSE(insertion_point_consistent(p.lp, bad));
}

TEST(Enumeration, MatchesNaiveOnHandcraftedRegion) {
    Database db = empty_design(3, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "m", 20, 0, 4, 2);
    add_placed(db, grid, "s1", 5, 0, 6, 1);
    add_placed(db, grid, "s2", 30, 1, 6, 1);
    add_placed(db, grid, "s3", 26, 2, 5, 1);
    for (const SiteCoord h : {1, 2, 3}) {
        for (const SiteCoord w : {2, 5}) {
            const TargetSpec t = make_target(w, h);
            Prepared p = prepare(db, grid, Rect{0, 0, 60, 3}, t);
            const auto fast =
                enumerate_insertion_points(p.lp, p.intervals, t);
            const auto naive =
                naive_enumerate_insertion_points(p.lp, p.intervals, t);
            EXPECT_EQ(canon(fast.points), canon(naive.points))
                << "h=" << h << " w=" << w;
        }
    }
}

TEST(Enumeration, MatchesNaiveOnRandomRegions) {
    Rng rng(41);
    for (int trial = 0; trial < 25; ++trial) {
        RandomDesign d = random_legal_design(rng, 8, 100,
                                             40 + trial, 0.35, 3);
        const TargetSpec t = make_target(
            static_cast<SiteCoord>(rng.uniform(1, 5)),
            static_cast<SiteCoord>(rng.uniform(1, 3)),
            rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd);
        LocalProblem lp = make_local_problem(
            d.db, d.grid,
            Rect{static_cast<SiteCoord>(rng.uniform(0, 60)),
                 static_cast<SiteCoord>(rng.uniform(0, 4)), 40, 5});
        compute_minmax_placement(lp);
        const auto intervals = build_insertion_intervals(lp, t.w);
        const auto fast = enumerate_insertion_points(lp, intervals, t);
        const auto naive =
            naive_enumerate_insertion_points(lp, intervals, t);
        EXPECT_EQ(canon(fast.points), canon(naive.points))
            << "trial " << trial;
    }
}

TEST(Enumeration, NoDuplicatesEmitted) {
    Rng rng(43);
    for (int trial = 0; trial < 10; ++trial) {
        RandomDesign d = random_legal_design(rng, 8, 100, 50, 0.3);
        const TargetSpec t = make_target(3, 2);
        LocalProblem lp =
            make_local_problem(d.db, d.grid, Rect{10, 0, 60, 8});
        compute_minmax_placement(lp);
        const auto intervals = build_insertion_intervals(lp, t.w);
        const auto res = enumerate_insertion_points(lp, intervals, t);
        EXPECT_EQ(canon(res.points).size(), res.points.size());
    }
}

TEST(Enumeration, FeasibleRangeAlwaysNonEmptyAndTight) {
    Rng rng(47);
    RandomDesign d = random_legal_design(rng, 8, 100, 55, 0.3);
    const TargetSpec t = make_target(3, 2);
    LocalProblem lp = make_local_problem(d.db, d.grid, Rect{0, 0, 100, 8});
    compute_minmax_placement(lp);
    const auto intervals = build_insertion_intervals(lp, t.w);
    const auto res = enumerate_insertion_points(lp, intervals, t);
    for (const auto& pt : res.points) {
        EXPECT_LE(pt.lo, pt.hi);
        EXPECT_EQ(pt.gaps.size(), 2u);
    }
}

TEST(Enumeration, MaxPointsTruncates) {
    Database db = empty_design(1, 200);
    SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 20; ++i) {
        add_placed(db, grid, "c" + std::to_string(i),
                   static_cast<SiteCoord>(i * 10), 0, 4, 1);
    }
    const TargetSpec t = make_target(2, 1);
    Prepared p = prepare(db, grid, Rect{0, 0, 200, 1}, t);
    EnumerationOptions opts;
    opts.max_points = 5;
    const auto res =
        enumerate_insertion_points(p.lp, p.intervals, t, opts);
    EXPECT_TRUE(res.truncated);
    EXPECT_EQ(res.points.size(), 5u);
}

TEST(Enumeration, MissingRowBlocksTallTargets) {
    Database db = empty_design(3, 40);
    db.floorplan().add_blockage(Rect{0, 1, 40, 1});  // row 1 fully blocked
    SegmentGrid grid = SegmentGrid::build(db);
    const TargetSpec t2 = make_target(4, 2);
    Prepared p = prepare(db, grid, Rect{0, 0, 40, 3}, t2);
    EXPECT_TRUE(enumerate_insertion_points(p.lp, p.intervals, t2)
                    .points.empty());
    const TargetSpec t1 = make_target(4, 1);
    Prepared p1 = prepare(db, grid, Rect{0, 0, 40, 3}, t1);
    EXPECT_EQ(enumerate_insertion_points(p1.lp, p1.intervals, t1)
                  .points.size(),
              2u);  // rows 0 and 2
}

TEST(Enumeration, TripleRowTargetAcrossMultiRowCells) {
    Database db = empty_design(3, 40);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "m", 16, 0, 4, 3);  // full-height wall
    const TargetSpec t = make_target(4, 3, RailPhase::kEven);
    Prepared p = prepare(db, grid, Rect{0, 0, 40, 3}, t);
    const auto res = enumerate_insertion_points(p.lp, p.intervals, t);
    ASSERT_EQ(res.points.size(), 2u);  // fully left or fully right of m
    for (const auto& pt : res.points) {
        EXPECT_TRUE(std::all_of(pt.gaps.begin(), pt.gaps.end(),
                                [&](int g) { return g == pt.gaps[0]; }));
    }
}

}  // namespace
}  // namespace mrlg::test
