#include <gtest/gtest.h>

#include <sstream>

#include "eval/report.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

TEST(QualityReport, EmptyDesign) {
    Database db = empty_design(4, 40);
    const SegmentGrid grid = SegmentGrid::build(db);
    const QualityReport rep = make_quality_report(db, grid);
    EXPECT_EQ(rep.num_cells, 0u);
    EXPECT_TRUE(rep.legal);
    EXPECT_EQ(rep.disp_avg, 0.0);
}

TEST(QualityReport, StatsMatchHandComputation) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    // Two cells: displacements 0 and 5 sites.
    const CellId a = add_placed(db, grid, "a", 10, 0, 4, 1);
    db.cell(a).set_gp(10.0, 0.0);
    const CellId b = add_placed(db, grid, "b", 30, 0, 4, 1);
    db.cell(b).set_gp(25.0, 0.0);
    const QualityReport rep = make_quality_report(db, grid);
    EXPECT_EQ(rep.num_cells, 2u);
    EXPECT_EQ(rep.num_unplaced, 0u);
    EXPECT_NEAR(rep.disp_avg, 2.5, 1e-9);
    EXPECT_NEAR(rep.disp_max, 5.0, 1e-9);
    EXPECT_EQ(rep.disp_histogram[0], 1u);  // [0,1)
    EXPECT_EQ(rep.disp_histogram[3], 1u);  // [4,8)
    EXPECT_EQ(rep.count_by_height[0], 2u);
    EXPECT_TRUE(rep.legal);
}

TEST(QualityReport, HeightClassesSeparated) {
    Database db = empty_design(6, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId s = add_placed(db, grid, "s", 10, 0, 4, 1);
    db.cell(s).set_gp(10.0, 0.0);
    const CellId d = add_placed(db, grid, "d", 20, 0, 4, 2);
    db.cell(d).set_gp(18.0, 0.0);  // 2 sites
    const CellId t = add_placed(db, grid, "t", 40, 0, 4, 3);
    db.cell(t).set_gp(40.0, 0.0);
    static_cast<void>(t);
    const QualityReport rep = make_quality_report(db, grid);
    EXPECT_EQ(rep.count_by_height[0], 1u);
    EXPECT_EQ(rep.count_by_height[1], 1u);
    EXPECT_EQ(rep.count_by_height[2], 1u);
    EXPECT_NEAR(rep.disp_by_height[1], 2.0, 1e-9);
    static_cast<void>(d);
}

TEST(QualityReport, UnplacedCounted) {
    Database db = empty_design(4, 40);
    const SegmentGrid grid = SegmentGrid::build(db);
    add_unplaced(db, "u", 5.0, 1.0, 3, 1);
    const QualityReport rep = make_quality_report(db, grid);
    EXPECT_EQ(rep.num_unplaced, 1u);
    EXPECT_FALSE(rep.legal);
}

TEST(QualityReport, PrintContainsKeyLines) {
    GenProfile p;
    p.name = "rep";
    p.num_single = 300;
    p.num_double = 30;
    p.density = 0.5;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    ASSERT_TRUE(legalize_placement(gen.db, grid).success);
    const QualityReport rep = make_quality_report(gen.db, grid);
    std::ostringstream os;
    print_quality_report(rep, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("placement quality report"), std::string::npos);
    EXPECT_NE(out.find("histogram"), std::string::npos);
    EXPECT_NE(out.find("legal               : yes"), std::string::npos);
    EXPECT_NE(out.find("by height"), std::string::npos);
}

TEST(QualityReport, PercentilesOrdered) {
    GenProfile p;
    p.name = "rep2";
    p.num_single = 500;
    p.num_double = 50;
    p.density = 0.7;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    ASSERT_TRUE(legalize_placement(gen.db, grid).success);
    const QualityReport rep = make_quality_report(gen.db, grid);
    EXPECT_LE(rep.disp_median, rep.disp_p95);
    EXPECT_LE(rep.disp_p95, rep.disp_max);
    EXPECT_GT(rep.disp_avg, 0.0);
    std::size_t total = 0;
    for (const std::size_t b : rep.disp_histogram) {
        total += b;
    }
    EXPECT_EQ(total, rep.num_cells - rep.num_unplaced);
}

}  // namespace
}  // namespace mrlg::test
