/// Tests for the src/qa differential-oracle subsystem itself, plus the
/// seeded corpora that double as regression nets for the bugs the fuzzer
/// flushed out (overlap-pair completeness, transaction rollback residue,
/// continuous-variable MIP costs, est/real cost consistency).

#include <gtest/gtest.h>

#include <cmath>

#include "eval/legality.hpp"
#include "legalize/mll.hpp"
#include "legalize/ripup.hpp"
#include "qa/fuzz.hpp"
#include "qa/generators.hpp"
#include "qa/oracles.hpp"
#include "qa/shrink.hpp"
#include "qa/snapshot.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace mrlg {
namespace {

using test::add_placed;
using test::add_unplaced;
using test::empty_design;

TEST(QaOracles, CanonicalPairsSortsAndDedups) {
    const CellId a{1};
    const CellId b{2};
    const CellId c{3};
    const auto canon = qa::canonical_pairs({{b, a}, {a, b}, {c, a}});
    ASSERT_EQ(canon.size(), 2u);
    EXPECT_EQ(canon[0], std::make_pair(a, b));
    EXPECT_EQ(canon[1], std::make_pair(a, c));
}

TEST(QaOracles, LegalityDiffAgreesOnLegalDesign) {
    Database db = empty_design(4, 20);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 4, 1);
    add_placed(db, grid, "b", 4, 0, 4, 1);
    add_placed(db, grid, "c", 2, 1, 6, 2, RailPhase::kOdd);
    EXPECT_EQ(qa::diff_legality(db, grid), "");
}

/// The bug ISSUE 4 names: a wide cell covering two disjoint short cells
/// plus a covered pair that also overlaps each other. Sweep and naive
/// checker must report the identical, complete pair set.
TEST(QaOracles, LegalityDiffAgreesOnNestedOverlapChains) {
    Database db = empty_design(2, 24);
    const CellId wide = db.add_cell(Cell("wide", 12, 1));
    db.cell(wide).set_pos(0, 0);
    const CellId in1 = db.add_cell(Cell("in1", 4, 1));
    db.cell(in1).set_pos(2, 0);
    const CellId in2 = db.add_cell(Cell("in2", 4, 1));
    db.cell(in2).set_pos(5, 0);  // overlaps both wide and in1
    const CellId in3 = db.add_cell(Cell("in3", 2, 1));
    db.cell(in3).set_pos(10, 0);  // disjoint from in1/in2, covered by wide
    SegmentGrid grid = SegmentGrid::build(db);

    EXPECT_EQ(qa::diff_legality(db, grid), "");

    LegalityOptions opts;
    opts.collect_overlap_pairs = true;
    const LegalityReport rep = check_legality(db, grid, opts);
    const auto pairs = qa::canonical_pairs(rep.overlap_pairs);
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(pairs[0], std::make_pair(wide, in1));
    EXPECT_EQ(pairs[1], std::make_pair(wide, in2));
    EXPECT_EQ(pairs[2], std::make_pair(wide, in3));
    EXPECT_EQ(pairs[3], std::make_pair(in1, in2));
}

TEST(QaOracles, LegalityDiffSeededCorpus) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        Rng rng(seed);
        Database db = qa::gen_overlapping_case(rng);
        const SegmentGrid grid = qa::materialize_case(db);
        LegalityOptions opts;
        opts.require_all_placed = false;
        EXPECT_EQ(qa::diff_legality(db, grid, opts), "") << "seed " << seed;
    }
}

TEST(QaSnapshot, DetectsPlacementAndGridChanges) {
    Database db = empty_design(2, 10);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 0, 0, 2, 1);
    const qa::PlacementSnapshot before = qa::capture_snapshot(db, grid);
    EXPECT_EQ(qa::describe_snapshot_diff(
                  before, qa::capture_snapshot(db, grid), db),
              "");
    grid.remove(db, a);
    grid.place(db, a, 4, 0);
    const std::string diff = qa::describe_snapshot_diff(
        before, qa::capture_snapshot(db, grid), db);
    EXPECT_NE(diff, "");
    EXPECT_NE(diff.find("a"), std::string::npos);
}

TEST(QaSnapshot, IgnoresStaleCoordinatesOfUnplacedCells) {
    Database db = empty_design(2, 10);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_unplaced(db, "a", 1.5, 0.5, 2, 1);
    const qa::PlacementSnapshot before = qa::capture_snapshot(db, grid);
    // Place then unplace: x_/y_ keep the stale values by design.
    grid.place(db, a, 4, 0);
    grid.remove(db, a);
    db.cell(a).unplace();
    EXPECT_EQ(qa::describe_snapshot_diff(
                  before, qa::capture_snapshot(db, grid), db),
              "");
}

TEST(QaShrink, ReducesToSingleCulpritCell) {
    Database db = empty_design(4, 30);
    SegmentGrid grid = SegmentGrid::build(db);
    for (int i = 0; i < 12; ++i) {
        add_placed(db, grid, "f" + std::to_string(i),
                   static_cast<SiteCoord>(2 * i), i % 4 == 0 ? 0 : i % 4, 2,
                   1);
    }
    const CellId culprit = db.add_cell(Cell("culprit", 9, 1));
    db.cell(culprit).set_pos(0, 3);
    Database probe = db;  // shrink_case copies; keep original intact

    const qa::ShrinkResult r = qa::shrink_case(probe, [](Database& d) {
        for (const Cell& c : d.cells()) {
            if (c.width() > 8) {
                return std::string("culprit present");
            }
        }
        return std::string();
    });
    EXPECT_EQ(r.cells_before, 13u);
    EXPECT_EQ(r.cells_after, 1u);
    EXPECT_EQ(r.db.cells()[0].name(), "culprit");
    EXPECT_EQ(r.failure, "culprit present");
}

TEST(QaLocal, SolverCrossCheckSeededCorpus) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        Database db = qa::gen_packed_case(rng, 2);
        const SegmentGrid grid = qa::materialize_case(db);
        for (const CellId id : db.movable_cells()) {
            const Cell& c = db.cell(id);
            if (c.placed()) {
                continue;
            }
            const SiteCoord ax =
                static_cast<SiteCoord>(std::lround(c.gp_x()));
            const SiteCoord ay =
                static_cast<SiteCoord>(std::lround(c.gp_y()));
            const Rect window{static_cast<SiteCoord>(ax - 8),
                              static_cast<SiteCoord>(ay - 2),
                              static_cast<SiteCoord>(16 + c.width()),
                              static_cast<SiteCoord>(4 + c.height())};
            EXPECT_EQ(qa::diff_local_solvers(db, grid, id, c.gp_x(),
                                             c.gp_y(), window),
                      "")
                << "seed " << seed << " target " << c.name();
        }
    }
}

/// Satellite 4: under exact evaluation est_cost_um must equal the realized
/// cost; the §5.2 neighbour approximation is a provable lower bound
/// (neighbour-only hinge ignores second-order push chains), so est <= real
/// — both directions exercised over a seeded MLL corpus by the roundtrip
/// oracle, which fails on any other relation.
TEST(QaMll, RoundtripAndCostConsistencySeededCorpus) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        Database db = qa::gen_packed_case(rng, 3);
        SegmentGrid grid = qa::materialize_case(db);
        int idx = 0;
        for (const CellId id : db.movable_cells()) {
            const Cell& c = db.cell(id);
            if (c.placed()) {
                continue;
            }
            MllOptions opts;
            opts.exact_evaluation = (idx++ % 2) == 0;
            EXPECT_EQ(qa::diff_mll_roundtrip(db, grid, id, c.gp_x(),
                                             c.gp_y(), opts),
                      "")
                << "seed " << seed << " target " << c.name()
                << (opts.exact_evaluation ? " exact" : " approx");
        }
    }
}

TEST(QaRipup, RollbackSeededCorpus) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        Database db = qa::gen_saturated_case(rng, 2);
        SegmentGrid grid = qa::materialize_case(db);
        std::size_t cap = 1;
        for (const CellId id : db.movable_cells()) {
            const Cell& c = db.cell(id);
            if (c.placed()) {
                continue;
            }
            RipupOptions opts;
            opts.max_evictions = cap;
            cap = cap % 4 + 1;
            EXPECT_EQ(qa::diff_ripup_rollback(db, grid, id, c.gp_x(),
                                              c.gp_y(), opts),
                      "")
                << "seed " << seed << " target " << c.name();
        }
    }
}

/// Satellite 3: a rip-up transaction that cannot complete must restore the
/// database and segment grid exactly — including the gp-driven positions
/// the victims were re-inserted toward before the rollback.
TEST(QaRipup, FailedTransactionRestoresStateExactly) {
    Database db = empty_design(2, 8);
    SegmentGrid grid = SegmentGrid::build(db);
    // Die completely full: evicting victims leaves nowhere to re-insert.
    for (SiteCoord r = 0; r < 2; ++r) {
        for (SiteCoord x = 0; x < 8; x += 2) {
            const CellId id = add_placed(
                db, grid, "f" + std::to_string(r) + "_" + std::to_string(x),
                x, r, 2, 1);
            // gp far away from the placement: a sloppy rollback that
            // "restores" victims toward gp instead of their original slot
            // will be caught by the byte-identical snapshot compare.
            db.cell(id).set_gp(7.8, 1.9);
        }
    }
    const CellId target = add_unplaced(db, "t", 3.4, 0.6, 4, 2);

    const qa::PlacementSnapshot before = qa::capture_snapshot(db, grid);
    RipupOptions opts;
    opts.max_evictions = 2;
    const RipupResult r =
        ripup_place(db, grid, target, 3.4, 0.6, opts);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(db.cell(target).placed());
    EXPECT_EQ(qa::describe_snapshot_diff(
                  before, qa::capture_snapshot(db, grid), db),
              "");
    EXPECT_EQ(grid.audit(db), "");
    // And the oracle wrapper agrees end to end.
    EXPECT_EQ(qa::diff_ripup_rollback(db, grid, target, 3.4, 0.6, opts),
              "");
}

TEST(QaFuzz, SmokeRunAllScenariosClean) {
    qa::FuzzOptions opts;
    opts.seed = 7;
    opts.iters = 2;
    const qa::FuzzReport report = qa::run_fuzz(opts);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.iterations_run, 10);
}

TEST(QaFuzz, ReportIsThreadCountInvariant) {
    qa::FuzzOptions serial;
    serial.seed = 11;
    serial.iters = 1;
    serial.num_threads = 1;
    qa::FuzzOptions parallel = serial;
    parallel.num_threads = 4;
    EXPECT_EQ(qa::run_fuzz(serial).summary(),
              qa::run_fuzz(parallel).summary());
}

TEST(QaFuzz, DumpAndReplayRoundTrip) {
    Rng rng(5);
    Database db = qa::gen_overlapping_case(rng);
    // Exercise the sidecar encodings: ensure at least one odd-phase cell
    // and one blockage are present.
    const CellId odd = db.add_cell(Cell("oddcell", 2, 2, RailPhase::kOdd));
    db.cell(odd).set_gp(0.25, 0.75);
    db.floorplan().add_blockage(Rect{0, 0, 2, 1});

    const std::string tmp =
        testing::TempDir() + "mrlg_qa_repro";
    const std::string aux =
        qa::dump_repro(db, qa::FuzzScenario::kLegality, tmp, "case5");
    EXPECT_NE(aux.find("case5.aux"), std::string::npos);
    // The case passes its battery in memory, so the replay must pass too
    // (same verdict is the round-trip property under test).
    Database mem = db;
    const std::string in_memory =
        qa::check_case(mem, qa::FuzzScenario::kLegality);
    EXPECT_EQ(qa::replay_repro(aux), in_memory);
}

}  // namespace
}  // namespace mrlg
