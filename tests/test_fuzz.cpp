/// Randomized operation fuzzing: long interleaved sequences of the
/// library's mutating operations (MLL insert, remove, move, undo, rip-up)
/// with full legality + bookkeeping audits at checkpoints. This is the
/// test that catches cross-feature interactions no targeted test thinks
/// of.

#include <gtest/gtest.h>

#include "eval/legality.hpp"
#include "legalize/mll.hpp"
#include "legalize/ripup.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

class FuzzSession {
public:
    FuzzSession(std::uint64_t seed, SiteCoord rows, SiteCoord sites)
        : rng_(seed), db_(empty_design(rows, sites)),
          grid_(SegmentGrid::build(db_)), rows_(rows), sites_(sites) {}

    void run(int ops) {
        for (int i = 0; i < ops; ++i) {
            const double dice = rng_.uniform01();
            if (dice < 0.45) {
                op_insert();
            } else if (dice < 0.65) {
                op_remove();
            } else if (dice < 0.90) {
                op_move();
            } else if (dice < 0.95) {
                op_undo_roundtrip();
            } else {
                op_ripup();
            }
            if (i % 50 == 49) {
                audit();
            }
        }
        audit();
    }

    std::size_t placed_count() const {
        std::size_t n = 0;
        for (const Cell& c : db_.cells()) {
            n += (!c.fixed() && c.placed()) ? 1 : 0;
        }
        return n;
    }

private:
    void audit() {
        LegalityOptions lopts;
        lopts.require_all_placed = false;
        lopts.check_rail_alignment = false;  // phases are mixed
        const LegalityReport rep = check_legality(db_, grid_, lopts);
        ASSERT_TRUE(rep.legal)
            << (rep.messages.empty() ? "?" : rep.messages[0]);
        ASSERT_TRUE(grid_.audit(db_).empty());
        // Rail parity is honoured for even-height placed cells because
        // every op goes through rail-checked paths.
        for (const Cell& c : db_.cells()) {
            if (!c.fixed() && c.placed() && c.even_height()) {
                ASSERT_TRUE(
                    rail_compatible(c.y(), c.height(), c.rail_phase()));
            }
        }
    }

    CellId random_placed() {
        std::vector<CellId> placed;
        for (std::size_t i = 0; i < db_.num_cells(); ++i) {
            const CellId id{static_cast<CellId::underlying>(i)};
            if (!db_.cell(id).fixed() && db_.cell(id).placed()) {
                placed.push_back(id);
            }
        }
        if (placed.empty()) {
            return CellId{};
        }
        return placed[static_cast<std::size_t>(rng_.uniform(
            0, static_cast<std::int64_t>(placed.size()) - 1))];
    }

    void op_insert() {
        const SiteCoord h = rng_.chance(0.25)
                                ? static_cast<SiteCoord>(rng_.uniform(2, 3))
                                : 1;
        const SiteCoord w = static_cast<SiteCoord>(rng_.uniform(1, 6));
        const RailPhase phase =
            rng_.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd;
        const double px =
            rng_.uniform01() * static_cast<double>(sites_ - w);
        const double py =
            rng_.uniform01() * static_cast<double>(rows_ - h);
        const CellId c = db_.add_cell(
            Cell("f" + std::to_string(counter_++), w, h, phase));
        db_.cell(c).set_gp(px, py);
        mll_place(db_, grid_, c, px, py);  // failure is fine
    }

    void op_remove() {
        const CellId c = random_placed();
        if (c.valid()) {
            grid_.remove(db_, c);
        }
    }

    void op_move() {
        const CellId c = random_placed();
        if (!c.valid()) {
            return;
        }
        const Cell& cell = db_.cell(c);
        const SiteCoord old_x = cell.x();
        const SiteCoord old_y = cell.y();
        const double px =
            rng_.uniform01() *
            static_cast<double>(sites_ - cell.width());
        const double py =
            rng_.uniform01() *
            static_cast<double>(rows_ - cell.height());
        grid_.remove(db_, c);
        if (!mll_place(db_, grid_, c, px, py).success()) {
            grid_.place(db_, c, old_x, old_y);  // guaranteed free
        }
    }

    void op_undo_roundtrip() {
        // Insert then immediately undo — state must be unchanged.
        const SiteCoord w = static_cast<SiteCoord>(rng_.uniform(1, 5));
        const double px =
            rng_.uniform01() * static_cast<double>(sites_ - w);
        const double py = rng_.uniform01() * static_cast<double>(rows_ - 1);
        const CellId c = db_.add_cell(
            Cell("u" + std::to_string(counter_++), w, 1));
        db_.cell(c).set_gp(px, py);
        const MllResult r = mll_place(db_, grid_, c, px, py);
        if (r.success()) {
            mll_undo(db_, grid_, c, r);
        }
    }

    void op_ripup() {
        const SiteCoord w = static_cast<SiteCoord>(rng_.uniform(1, 4));
        const double px =
            rng_.uniform01() * static_cast<double>(sites_ - w);
        const double py = rng_.uniform01() * static_cast<double>(rows_ - 2);
        const CellId c = db_.add_cell(
            Cell("r" + std::to_string(counter_++), w, 2, RailPhase::kEven));
        db_.cell(c).set_gp(px, py);
        ripup_place(db_, grid_, c, px, py);  // failure is fine
    }

    Rng rng_;
    Database db_;
    SegmentGrid grid_;
    SiteCoord rows_;
    SiteCoord sites_;
    int counter_ = 0;
};

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, LongRandomOperationSequences) {
    FuzzSession session(GetParam(), 10, 120);
    session.run(400);
    // The die fills up over time; most inserts must have landed.
    EXPECT_GT(session.placed_count(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(Fuzz, TinyDieStressTest) {
    // A tiny die saturates instantly; ops must stay correct at 100% fill.
    FuzzSession session(5, 4, 20);
    session.run(200);
}

TEST(Fuzz, TallDieStressTest) {
    // Many rows, narrow rows: exercises window clipping at both die edges.
    FuzzSession session(17, 40, 30);
    session.run(300);
}

}  // namespace
}  // namespace mrlg::test
