#include <gtest/gtest.h>

#include <algorithm>

#include "legalize/local_region.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

bool has_local(const LocalRegion& r, CellId c) {
    return std::find(r.local_cells().begin(), r.local_cells().end(), c) !=
           r.local_cells().end();
}

TEST(LocalRegion, EmptyWindowOnEmptyDie) {
    Database db = empty_design(4, 100);
    const SegmentGrid grid = SegmentGrid::build(db);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 1, 20, 2});
    EXPECT_EQ(r.height(), 2);
    EXPECT_TRUE(r.has_row(0));
    EXPECT_TRUE(r.has_row(1));
    EXPECT_EQ(r.row(0).span, (Span{10, 30}));
    EXPECT_TRUE(r.local_cells().empty());
}

TEST(LocalRegion, WindowClippedToDie) {
    Database db = empty_design(4, 100);
    const SegmentGrid grid = SegmentGrid::build(db);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{-10, -2, 30, 10});
    EXPECT_EQ(r.y0(), 0);
    EXPECT_EQ(r.height(), 4);
    EXPECT_EQ(r.row(0).span, (Span{0, 20}));
}

TEST(LocalRegion, WindowEntirelyOffDie) {
    Database db = empty_design(4, 100);
    const SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_EQ(extract_local_region(db, grid, Rect{0, 10, 20, 3}).height(),
              0);
}

TEST(LocalRegion, FullyInsideCellIsLocal) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 20, 1, 4, 1);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 0, 30, 3});
    EXPECT_TRUE(has_local(r, a));
    const int k = r.row_index(1);
    ASSERT_TRUE(r.has_row(k));
    ASSERT_EQ(r.row(k).cells.size(), 1u);
    EXPECT_EQ(r.row(k).cells[0], a);
}

TEST(LocalRegion, StraddlingCellIsNonLocalAndCutsRow) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    // Cell half inside the window's left edge.
    const CellId a = add_placed(db, grid, "a", 5, 1, 10, 1);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 0, 30, 3});
    EXPECT_FALSE(has_local(r, a));
    const int k = r.row_index(1);
    ASSERT_TRUE(r.has_row(k));
    // The local segment starts after the straddler's footprint.
    EXPECT_EQ(r.row(k).span, (Span{15, 40}));
}

TEST(LocalRegion, PieceClosestToCenterChosen) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    // Non-local straddler (rows 2-3, window covers rows 0-2 only) splits
    // row 2 into [10,20) and [26,40); window centre x=25 sits closer to the
    // right piece, which wins.
    add_placed(db, grid, "wall", 20, 2, 6, 2);
    const CellId right = add_placed(db, grid, "r", 30, 2, 4, 1);
    const CellId left = add_placed(db, grid, "l", 12, 2, 4, 1);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 0, 30, 3});
    const int k = r.row_index(2);
    ASSERT_TRUE(r.has_row(k));
    EXPECT_EQ(r.row(k).span, (Span{26, 40}));
    EXPECT_TRUE(has_local(r, right));
    // Figure 3's cell "i": inside W but outside the chosen local segment.
    EXPECT_FALSE(has_local(r, left));
}

TEST(LocalRegion, BlockageBoundsLocalSegment) {
    Database db = empty_design(2, 100);
    db.floorplan().add_blockage(Rect{40, 0, 10, 2});
    SegmentGrid grid = SegmentGrid::build(db);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{20, 0, 40, 2});
    // Window x [20,60); centre 40 sits on the blockage; both pieces at
    // distance 0 from the centre — the wider one ([20,40), width 20) wins.
    ASSERT_TRUE(r.has_row(0));
    EXPECT_EQ(r.row(0).span, (Span{20, 40}));
}

TEST(LocalRegion, MultiRowCellLocalWhenAllRowsContained) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId m = add_placed(db, grid, "m", 20, 0, 4, 2);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 0, 30, 3});
    EXPECT_TRUE(has_local(r, m));
    // Appears in both of its rows' lists, once in local_cells().
    EXPECT_EQ(r.row(r.row_index(0)).cells.size(), 1u);
    EXPECT_EQ(r.row(r.row_index(1)).cells.size(), 1u);
    EXPECT_EQ(std::count(r.local_cells().begin(), r.local_cells().end(), m),
              1);
}

TEST(LocalRegion, MultiRowCellStickingOutOfWindowIsNonLocal) {
    Database db = empty_design(4, 100);
    SegmentGrid grid = SegmentGrid::build(db);
    // Rows 2..3, window covers rows 0..2 only.
    const CellId m = add_placed(db, grid, "m", 20, 2, 4, 2);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{10, 0, 30, 3});
    EXPECT_FALSE(has_local(r, m));
    // Its footprint cuts row 2's local segment.
    const int k = r.row_index(2);
    ASSERT_TRUE(r.has_row(k));
    const Span s = r.row(k).span;
    EXPECT_TRUE(s.hi <= 20 || s.lo >= 24);
}

TEST(LocalRegion, CascadingNonLocalFixpoint) {
    // A multi-row cell fully inside the window whose row-3 slice loses the
    // centre-closest contest becomes non-local and must then cut row 2 too.
    Database db = empty_design(6, 120);
    SegmentGrid grid = SegmentGrid::build(db);
    // Initial blocker: rows 3-4, window covers rows 0-3 → splits row 3
    // into [30,40) and [44,70); the right piece contains the centre (50).
    add_placed(db, grid, "wall", 40, 3, 4, 2, RailPhase::kOdd);
    // Multi-row cell on rows 2-3 sits in row 3's *left* piece.
    const CellId m = add_placed(db, grid, "m", 32, 2, 4, 2);
    const LocalRegion r =
        extract_local_region(db, grid, Rect{30, 0, 40, 4});
    EXPECT_FALSE(has_local(r, m));
    // Row 2's local segment must exclude m's sites.
    const int k2 = r.row_index(2);
    ASSERT_TRUE(r.has_row(k2));
    EXPECT_FALSE(r.row(k2).span.overlaps(Span{32, 36}));
}

TEST(LocalRegion, CellListsOrderedByX) {
    Rng rng(3);
    RandomDesign d = random_legal_design(rng, 12, 150, 90, 0.3);
    const LocalRegion r =
        extract_local_region(d.db, d.grid, Rect{30, 2, 70, 8});
    for (int k = 0; k < r.height(); ++k) {
        if (!r.has_row(k)) {
            continue;
        }
        SiteCoord prev = kSiteCoordMin;
        for (const CellId c : r.row(k).cells) {
            EXPECT_GE(d.db.cell(c).x(), prev);
            prev = d.db.cell(c).x();
            // Every listed cell is fully inside the local segment.
            EXPECT_TRUE(r.row(k).span.contains(
                Span{d.db.cell(c).x(),
                     d.db.cell(c).x() + d.db.cell(c).width()}));
        }
    }
}

TEST(LocalRegion, RandomizedInvariants) {
    Rng rng(17);
    for (int t = 0; t < 10; ++t) {
        RandomDesign d = random_legal_design(rng, 14, 160, 110, 0.3, 3);
        const SiteCoord wx = static_cast<SiteCoord>(rng.uniform(0, 120));
        const SiteCoord wy = static_cast<SiteCoord>(rng.uniform(0, 10));
        const LocalRegion r = extract_local_region(
            d.db, d.grid, Rect{wx, wy, 40, 6});
        for (const CellId c : r.local_cells()) {
            const Cell& cell = d.db.cell(c);
            // Local cells are completely inside the window...
            EXPECT_TRUE(r.window().contains(cell.rect()));
            // ...and inside the local segment of every row they span.
            for (SiteCoord y = cell.y(); y < cell.y() + cell.height();
                 ++y) {
                const int k = r.row_index(y);
                ASSERT_TRUE(r.has_row(k));
                EXPECT_TRUE(r.row(k).span.contains(
                    Span{cell.x(), cell.x() + cell.width()}));
            }
        }
    }
}

}  // namespace
}  // namespace mrlg::test
