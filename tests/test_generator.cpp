#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "io/benchmark_gen.hpp"
#include "io/profiles.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

GenProfile tiny_profile() {
    GenProfile p;
    p.name = "tiny";
    p.num_single = 300;
    p.num_double = 30;
    p.density = 0.5;
    p.seed = 5;
    return p;
}

TEST(Generator, ProducesRequestedCellMix) {
    const GenResult r = generate_benchmark(tiny_profile());
    EXPECT_TRUE(r.packed_ok);
    EXPECT_EQ(r.db.num_single_row_cells(), 300u);
    EXPECT_EQ(r.db.num_multi_row_cells(), 30u);
}

TEST(Generator, DensityNearTarget) {
    for (const double target : {0.3, 0.6, 0.85}) {
        GenProfile p = tiny_profile();
        p.density = target;
        const GenResult r = generate_benchmark(p);
        EXPECT_TRUE(r.packed_ok);
        EXPECT_NEAR(r.db.density(), target, 0.08) << target;
    }
}

TEST(Generator, CellsUnplacedWithGpInsideDie) {
    const GenResult r = generate_benchmark(tiny_profile());
    const Rect die = r.db.floorplan().die();
    for (const Cell& c : r.db.cells()) {
        EXPECT_FALSE(c.placed());
        EXPECT_GE(c.gp_x(), static_cast<double>(die.x));
        EXPECT_LE(c.gp_x() + c.width(), static_cast<double>(die.x_hi()));
        EXPECT_GE(c.gp_y(), 0.0);
        EXPECT_LE(c.gp_y() + c.height(),
                  static_cast<double>(r.db.floorplan().num_rows()));
    }
}

TEST(Generator, DeterministicForSeed) {
    const GenResult a = generate_benchmark(tiny_profile());
    const GenResult b = generate_benchmark(tiny_profile());
    ASSERT_EQ(a.db.num_cells(), b.db.num_cells());
    for (std::size_t i = 0; i < a.db.num_cells(); ++i) {
        EXPECT_EQ(a.db.cells()[i].gp_x(), b.db.cells()[i].gp_x());
        EXPECT_EQ(a.db.cells()[i].width(), b.db.cells()[i].width());
    }
    EXPECT_EQ(a.db.nets().size(), b.db.nets().size());
}

TEST(Generator, DifferentSeedsDiffer) {
    GenProfile p2 = tiny_profile();
    p2.seed = 6;
    const GenResult a = generate_benchmark(tiny_profile());
    const GenResult b = generate_benchmark(p2);
    int same = 0;
    for (std::size_t i = 0; i < a.db.num_cells(); ++i) {
        same += a.db.cells()[i].gp_x() == b.db.cells()[i].gp_x() ? 1 : 0;
    }
    EXPECT_LT(same, 30);
}

TEST(Generator, NetlistIsSpatiallyLocal) {
    GenProfile p = tiny_profile();
    p.net_radius = 20;
    const GenResult r = generate_benchmark(p);
    EXPECT_GT(r.db.nets().size(), 200u);
    // GP HPWL should be far below what random pin pairing would give
    // (which averages ~1/3 of the die extent per net per axis).
    const Rect die = r.db.floorplan().die();
    const double gp_hpwl = hpwl_um(r.db, PositionSource::kGlobalPlacement);
    const double random_est =
        static_cast<double>(r.db.nets().size()) *
        (die.w * r.db.floorplan().site_w_um() +
         die.h * r.db.floorplan().site_h_um()) /
        3.0;
    EXPECT_LT(gp_hpwl, random_est * 0.8);
    for (const Net& n : r.db.nets()) {
        EXPECT_GE(n.degree(), 2u);
    }
}

TEST(Generator, BlockagesCarvedOut) {
    GenProfile p = tiny_profile();
    p.num_blockages = 3;
    p.blockage_area_frac = 0.05;
    const GenResult r = generate_benchmark(p);
    EXPECT_TRUE(r.packed_ok);
    EXPECT_EQ(r.db.floorplan().blockages().size(), 3u);
    // Density accounting still near target (blockages excluded from free
    // area).
    EXPECT_NEAR(r.db.density(), 0.5, 0.1);
}

TEST(Generator, DoubleHeightCellsShareRailPhase) {
    const GenResult r = generate_benchmark(tiny_profile());
    for (const Cell& c : r.db.cells()) {
        if (c.height() == 2) {
            EXPECT_EQ(c.rail_phase(), RailPhase::kEven);
        }
    }
}

TEST(Profiles, TwentyBenchmarksWithPaperStats) {
    const auto all = table1_benchmarks(1.0);
    ASSERT_EQ(all.size(), 20u);
    EXPECT_EQ(all[0].profile.name, "des_perf_1");
    EXPECT_EQ(all[0].profile.num_single, 103842u);
    EXPECT_EQ(all[0].profile.num_double, 8802u);
    EXPECT_NEAR(all[0].profile.density, 0.91, 1e-9);
    EXPECT_NEAR(all[0].paper.rt_ilp_s, 4098.7, 1e-6);
    EXPECT_EQ(all[16].profile.name, "superblue12");
    EXPECT_EQ(all[16].profile.num_single, 1172586u);
}

TEST(Profiles, ScaleShrinksWithFloor) {
    const auto half = table1_benchmarks(0.5);
    EXPECT_EQ(half[0].profile.num_single, 51921u);
    const auto tiny = table1_benchmarks(1e-6);
    for (const auto& e : tiny) {
        EXPECT_GE(e.profile.num_single, 400u);
        EXPECT_GE(e.profile.num_double, 40u);
    }
}

TEST(Profiles, SeedsAreDistinct) {
    const auto all = table1_benchmarks(0.01);
    std::set<std::uint64_t> seeds;
    for (const auto& e : all) {
        seeds.insert(e.profile.seed);
    }
    EXPECT_EQ(seeds.size(), all.size());
}

}  // namespace
}  // namespace mrlg::test
