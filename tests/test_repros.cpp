/// Replays every checked-in Bookshelf repro under tests/repros/ through
/// its oracle battery (named by the .scenario sidecar). Each file is a
/// minimal case the fuzzer once shrank out of a real divergence; a test
/// failure here means a fixed bug has regressed. MRLG_REPRO_DIR is
/// injected by the build (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "qa/fuzz.hpp"

namespace mrlg {
namespace {

std::vector<std::string> repro_aux_files() {
    std::vector<std::string> files;
    const std::filesystem::path dir = MRLG_REPRO_DIR;
    if (std::filesystem::exists(dir)) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (entry.path().extension() == ".aux") {
                files.push_back(entry.path().string());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(Repros, DirectoryIsPopulated) {
    // The suite ships at least the legality-sweep minimal repro (ISSUE 4).
    EXPECT_FALSE(repro_aux_files().empty())
        << "no .aux cases under " << MRLG_REPRO_DIR;
}

TEST(Repros, AllCasesReplayClean) {
    for (const std::string& aux : repro_aux_files()) {
        EXPECT_EQ(qa::replay_repro(aux), "") << aux;
    }
}

}  // namespace
}  // namespace mrlg
