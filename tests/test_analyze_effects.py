#!/usr/bin/env python3
"""Fixture tests for the phase-effect analyzer (tools/analyze_effects.py
/ tools/mrlg_lint.py effects).

Each known-bad TU under tests/lint_fixtures/ seeds one violation class
the analyzer exists to catch; the known-good TU seeds none. The analyzer
MUST flag every bad fixture with the expected rule and MUST pass the
good one — if a refactor of the analyzer stops catching a seeded bug,
this test fails before the real sources can regress silently.

Run from the repo root (ctest does, with the `lint` label):
    python3 tests/test_analyze_effects.py
"""

import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")
CLI = os.path.join(ROOT, "tools", "mrlg_lint.py")

# fixture file -> (expected exit, [rules that must appear in the output])
CASES = {
    "bad_plan_calls_commit.cpp": (1, ["plan-mutation"]),
    "bad_const_cast.cpp": (1, ["const-cast", "plan-mutation"]),
    "bad_global_write.cpp": (1, ["global-state"]),
    "bad_plan_dispatch_no_pause.cpp": (1, ["tracer-pause"]),
    "good_readonly.cpp": (0, []),
}

# The witness chain must name the intermediate hop, or diagnostics have
# regressed to "something somewhere mutates".
CHAIN_CHECKS = {
    "bad_plan_calls_commit.cpp": "my_plan -> plan_and_apply_eagerly",
}


def run_analyzer(paths, extra=()):
    cmd = (
        [sys.executable, CLI, "effects"]
        + list(paths)
        + ["--root", ROOT, "--baseline", ""]
        + list(extra)
    )
    proc = subprocess.run(
        cmd, capture_output=True, text=True, cwd=ROOT, check=False
    )
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    for name, (want_rc, want_rules) in sorted(CASES.items()):
        path = os.path.join(FIXTURES, name)
        rc, out = run_analyzer([path])
        if rc != want_rc:
            failures.append(
                f"{name}: exit {rc}, expected {want_rc}\n--- output ---\n{out}"
            )
            continue
        for rule in want_rules:
            if f" {rule}: " not in out:
                failures.append(
                    f"{name}: expected a '{rule}' finding\n"
                    f"--- output ---\n{out}"
                )
        chain = CHAIN_CHECKS.get(name)
        if chain and chain not in out:
            failures.append(
                f"{name}: witness chain '{chain}' missing\n"
                f"--- output ---\n{out}"
            )

    # All bad fixtures at once: finding count must be the sum (no fixture
    # masks another).
    bad = [
        os.path.join(FIXTURES, n) for n in sorted(CASES) if n.startswith("bad_")
    ]
    rc, out = run_analyzer(bad)
    if rc != 1:
        failures.append(f"combined bad fixtures: exit {rc}, expected 1\n{out}")
    for rule in ("plan-mutation", "const-cast", "global-state", "tracer-pause"):
        if f" {rule}: " not in out:
            failures.append(f"combined bad fixtures: missing '{rule}'\n{out}")

    # Determinism tier: the timeline-isolation rule must flag a
    # worker-visible timeline file that touches the serial Tracer. The
    # fixture lives under lint_fixtures/obs/ so its path matches the
    # rule's obs/timeline.* gate.
    det_fixture = os.path.join(FIXTURES, "obs", "timeline.bad_tracer.cpp")
    proc = subprocess.run(
        [sys.executable, CLI, "determinism", det_fixture, "--root", ROOT],
        capture_output=True,
        text=True,
        cwd=ROOT,
        check=False,
    )
    det_out = proc.stdout + proc.stderr
    if proc.returncode != 1:
        failures.append(
            f"timeline.bad_tracer.cpp: exit {proc.returncode}, expected 1\n"
            f"--- output ---\n{det_out}"
        )
    elif " timeline-isolation: " not in det_out:
        failures.append(
            f"timeline.bad_tracer.cpp: expected a 'timeline-isolation' "
            f"finding\n--- output ---\n{det_out}"
        )

    # A baseline entry must downgrade a finding to tolerated (exit 0).
    baseline = os.path.join(FIXTURES, "_tmp_baseline.txt")
    try:
        proc = subprocess.run(
            [
                sys.executable,
                CLI,
                "effects",
                os.path.join(FIXTURES, "bad_global_write.cpp"),
                "--root",
                ROOT,
                "--baseline",
                baseline,
                "--update-baseline",
            ],
            capture_output=True,
            text=True,
            cwd=ROOT,
            check=False,
        )
        rc, out = run_analyzer(
            [os.path.join(FIXTURES, "bad_global_write.cpp")],
            extra=["--baseline", baseline],
        )
        if rc != 0 or "tolerated (baseline)" not in out:
            failures.append(
                f"baselined bad_global_write: exit {rc}, expected tolerated "
                f"pass\n{out}\n{proc.stdout}{proc.stderr}"
            )
    finally:
        if os.path.exists(baseline):
            os.remove(baseline)

    if failures:
        print("test_analyze_effects: FAIL", file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print(
        f"test_analyze_effects: PASS ({len(CASES)} effects fixtures + "
        f"determinism fixture + baseline)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
