/// Unit tests for the obs subsystem (json/clock/trace/run_report) plus the
/// determinism property tests: with a counted-tick clock the full run
/// report is bit-identical across evaluation thread counts and across
/// repeated runs, because the tracer only ever sees the serial execution
/// path of the orchestrating thread.

#include <gtest/gtest.h>

#include <string>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace mrlg {
namespace {

using obs::Histogram;
using obs::Json;
using obs::PhaseNode;
using obs::ScopedPhase;
using obs::ScopedTracer;
using obs::TickClock;
using obs::Tracer;
using obs::WallClock;

// ---------------------------------------------------------------- json ----

TEST(Json, SerializesScalarsAndEscapes) {
    Json j = Json::object();
    j.set("int", Json::num(static_cast<std::int64_t>(-42)));
    j.set("size", Json::num(static_cast<std::size_t>(7)));
    j.set("pi", Json::num(3.25));
    j.set("flag", Json::boolean(true));
    j.set("text", Json::str("a\"b\\c\n"));
    const std::string s = j.dump();
    EXPECT_NE(s.find("\"int\": -42"), std::string::npos);
    EXPECT_NE(s.find("\"size\": 7"), std::string::npos);
    EXPECT_NE(s.find("\"pi\": 3.25"), std::string::npos);
    EXPECT_NE(s.find("\"flag\": true"), std::string::npos);
    EXPECT_NE(s.find("a\\\"b\\\\c\\n"), std::string::npos);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
    Json j = Json::object();
    j.set("zulu", Json::num(1));
    j.set("alpha", Json::num(2));
    j.set("mike", Json::num(3));
    const std::string s = j.dump();
    EXPECT_LT(s.find("zulu"), s.find("alpha"));
    EXPECT_LT(s.find("alpha"), s.find("mike"));
}

TEST(Json, ArraysAndNesting) {
    Json arr = Json::array();
    arr.push(Json::num(1));
    arr.push(Json::num(2));
    Json j = Json::object();
    j.set("xs", std::move(arr));
    EXPECT_NE(j.dump().find("[\n    1,\n    2\n  ]"), std::string::npos)
        << j.dump();
}

TEST(Json, DumpIsStableAcrossCalls) {
    Json j = Json::object();
    j.set("a", Json::num(1.5));
    EXPECT_EQ(j.dump(), j.dump());
}

// --------------------------------------------------------------- clock ----

TEST(Clock, TickClockAdvancesByStepPerRead) {
    TickClock c(100);
    EXPECT_EQ(c.now_ns(), 100u);
    EXPECT_EQ(c.now_ns(), 200u);
    EXPECT_EQ(c.now_ns(), 300u);
    EXPECT_STREQ(c.kind(), "ticks");
}

TEST(Clock, WallClockIsMonotonic) {
    WallClock c;
    const std::uint64_t a = c.now_ns();
    const std::uint64_t b = c.now_ns();
    EXPECT_LE(a, b);
    EXPECT_STREQ(c.kind(), "wall");
}

// ----------------------------------------------------------- histogram ----

TEST(HistogramTest, Log2Buckets) {
    Histogram h;
    h.observe(0.0);    // [0,1) -> bucket 0
    h.observe(0.5);    // bucket 0
    h.observe(1.0);    // [1,2) -> bucket 1
    h.observe(3.0);    // [2,4) -> bucket 2
    h.observe(1e12);   // overflow -> last bucket
    h.observe(-5.0);   // clamps into bucket 0
    EXPECT_EQ(h.count, 6u);
    EXPECT_DOUBLE_EQ(h.max, 1e12);
    EXPECT_EQ(h.buckets[0], 3u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[Histogram::kBuckets - 1], 1u);
}

// -------------------------------------------------------------- tracer ----

TEST(TracerTest, PhaseTreeNestsAndCountsCalls) {
    TickClock clock;
    Tracer t(&clock);
    for (int i = 0; i < 3; ++i) {
        t.phase_begin("outer");
        t.phase_begin("inner");
        t.phase_end();
        t.phase_end();
    }
    const PhaseNode& root = t.root();
    ASSERT_EQ(root.children.size(), 1u);
    const PhaseNode& outer = *root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.calls, 3u);
    ASSERT_EQ(outer.children.size(), 1u);
    EXPECT_EQ(outer.children[0]->name, "inner");
    EXPECT_EQ(outer.children[0]->calls, 3u);
    // Each tick-clock read advances by the step, so spans have nonzero
    // deterministic durations and inner <= outer.
    EXPECT_GT(outer.children[0]->total_ns, 0u);
    EXPECT_LE(outer.children[0]->total_ns, outer.total_ns);
}

TEST(TracerTest, CountersAccumulateAndDefaultToZero) {
    Tracer t;
    t.count("a", 2);
    t.count("a", 3);
    t.count("b");
    EXPECT_EQ(t.counter("a"), 5u);
    EXPECT_EQ(t.counter("b"), 1u);
    EXPECT_EQ(t.counter("never_touched"), 0u);
    EXPECT_EQ(t.histogram("never_observed"), nullptr);
}

TEST(TracerTest, MacrosAreNoOpsWithoutAmbientTracer) {
    ASSERT_EQ(obs::current_tracer(), nullptr);
    // Must not crash nor evaluate into anything observable.
    MRLG_OBS_COUNT("orphan", 1);
    MRLG_OBS_OBSERVE("orphan", 2.0);
    { MRLG_OBS_PHASE("orphan"); }
    SUCCEED();
}

TEST(TracerTest, ScopedTracerInstallsAndRestores) {
    ASSERT_EQ(obs::current_tracer(), nullptr);
    Tracer outer_t;
    {
        ScopedTracer install_outer(outer_t);
        EXPECT_EQ(obs::current_tracer(), &outer_t);
        Tracer inner_t;
        {
            ScopedTracer install_inner(inner_t);
            EXPECT_EQ(obs::current_tracer(), &inner_t);
            MRLG_OBS_COUNT("seen", 1);
        }
        EXPECT_EQ(obs::current_tracer(), &outer_t);
        EXPECT_EQ(inner_t.counter("seen"), 1u);
        EXPECT_EQ(outer_t.counter("seen"), 0u);
    }
    EXPECT_EQ(obs::current_tracer(), nullptr);
}

TEST(TracerTest, ToJsonEmitsClockCountersHistogramsPhases) {
    TickClock clock;
    Tracer t(&clock);
    ScopedTracer install(t);
    {
        MRLG_OBS_PHASE("work");
        MRLG_OBS_COUNT("work.items", 4);
        MRLG_OBS_OBSERVE("work.size", 3.0);
    }
    const std::string s = t.to_json().dump();
    EXPECT_NE(s.find("\"clock\": \"ticks\""), std::string::npos);
    EXPECT_NE(s.find("\"work.items\": 4"), std::string::npos);
    EXPECT_NE(s.find("\"work.size\""), std::string::npos);
    EXPECT_NE(s.find("\"work\""), std::string::npos);
    EXPECT_TRUE(t.deterministic());
}

TEST(TracerTest, WallTracerIsNotDeterministic) {
    Tracer t;
    EXPECT_FALSE(t.deterministic());
}

// ---------------------------------------------------------- run report ----

namespace {

GenResult small_benchmark() {
    GenProfile p;
    p.name = "obs-test";
    p.num_single = 120;
    p.num_double = 12;
    p.density = 0.5;
    p.seed = 7;
    return generate_benchmark(p);
}

/// One full legalization run traced under a tick clock; returns the
/// serialized run report. `spec.num_threads` is pinned to 0 so the report
/// records the *design-independent* configuration while the run itself
/// uses `num_threads` evaluation threads — the property under test is
/// that every other byte is identical too.
std::string deterministic_report(int num_threads) {
    GenResult gen = small_benchmark();
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.num_threads = num_threads;
    obs::TickClock clock;
    Tracer tracer(&clock);
    ScopedTracer install(tracer);
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    obs::RunReportSpec spec;
    spec.tool = "test_obs";
    spec.design = "obs-test";
    spec.db = &gen.db;
    spec.grid = &grid;
    spec.num_threads = 0;
    spec.options = &opts;
    spec.stats = &stats;
    spec.tracer = &tracer;
    return obs::make_run_report(spec).dump();
}

}  // namespace

TEST(RunReport, ContainsAllBlocks) {
    const std::string s = deterministic_report(1);
    EXPECT_NE(s.find("\"schema_version\": " +
                     std::to_string(obs::kRunReportSchemaVersion)),
              std::string::npos);
    EXPECT_NE(s.find("\"options\""), std::string::npos);
    EXPECT_NE(s.find("\"design_stats\""), std::string::npos);
    EXPECT_NE(s.find("\"legalizer\""), std::string::npos);
    EXPECT_NE(s.find("\"quality\""), std::string::npos);
    EXPECT_NE(s.find("\"metrics\""), std::string::npos);
    EXPECT_NE(s.find("\"legal\": true"), std::string::npos);
    // Every LegalizerStats field is surfaced in the legalizer block.
    for (const char* field :
         {"success", "num_cells", "direct_placements", "mll_successes",
          "mll_failures", "fallback_placements", "ripup_placements",
          "unplaced", "mll_points_evaluated", "audits_run", "waves",
          "conflict_requeues", "rounds"}) {
        EXPECT_NE(s.find("\"" + std::string(field) + "\""),
                  std::string::npos)
            << field;
    }
}

TEST(RunReport, DeterministicModeOmitsWallRuntime) {
    const std::string s = deterministic_report(1);
    EXPECT_EQ(s.find("\"runtime_s\""), std::string::npos);
    // The machine-specific environment block is gated the same way.
    EXPECT_EQ(s.find("\"environment\""), std::string::npos);
}

TEST(RunReport, WallModeIncludesRuntime) {
    GenResult gen = small_benchmark();
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    Tracer tracer;  // wall clock
    ScopedTracer install(tracer);
    const LegalizerStats stats = legalize_placement(gen.db, grid, opts);
    obs::RunReportSpec spec;
    spec.tool = "test_obs";
    spec.design = "obs-test";
    spec.stats = &stats;
    spec.tracer = &tracer;
    const std::string s = obs::make_run_report(spec).dump();
    EXPECT_NE(s.find("\"runtime_s\""), std::string::npos);
    EXPECT_NE(s.find("\"clock\": \"wall\""), std::string::npos);
    // Wall-clock reports carry the machine facts behind the numbers.
    EXPECT_NE(s.find("\"environment\""), std::string::npos);
    EXPECT_NE(s.find("\"hardware_threads\""), std::string::npos);
}

TEST(RunReport, BlocksOmittedWithoutSources) {
    obs::RunReportSpec spec;
    spec.tool = "test_obs";
    spec.design = "empty";
    const std::string s = obs::make_run_report(spec).dump();
    EXPECT_EQ(s.find("\"options\""), std::string::npos);
    EXPECT_EQ(s.find("\"design_stats\""), std::string::npos);
    EXPECT_EQ(s.find("\"legalizer\""), std::string::npos);
    EXPECT_EQ(s.find("\"quality\""), std::string::npos);
    EXPECT_EQ(s.find("\"metrics\""), std::string::npos);
}

// ------------------------------------------- determinism (satellite 2) ----

TEST(RunReportDeterminism, BitIdenticalAcrossThreadCounts) {
    const std::string t1 = deterministic_report(1);
    const std::string t2 = deterministic_report(2);
    const std::string t8 = deterministic_report(8);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
}

TEST(RunReportDeterminism, BitIdenticalAcrossRepeatedRuns) {
    const std::string a = deterministic_report(2);
    const std::string b = deterministic_report(2);
    EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mrlg
