#!/usr/bin/env bash
# Regenerates the golden run reports under tests/goldens/ after an
# intended behaviour change. Builds test_golden in the given (or default)
# build directory and reruns it in update mode; review the resulting JSON
# diff before committing.
#
# Usage: tests/update_goldens.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -S "$repo_root" -B "$build_dir" >/dev/null
cmake --build "$build_dir" --target test_golden -j >/dev/null

MRLG_UPDATE_GOLDENS=1 "$build_dir/tests/test_golden" \
    --gtest_filter='Golden.UniformSmall:Golden.BlockedMixed:Golden.FencedDense'

git -C "$repo_root" --no-pager diff --stat -- tests/goldens || true
echo "goldens updated; inspect 'git diff tests/goldens' before committing"
