#include <gtest/gtest.h>

#include "legalize/insertion_interval.hpp"
#include "legalize/minmax_placement.hpp"
#include "test_helpers.hpp"

namespace mrlg::test {
namespace {

std::vector<InsertionInterval> intervals_for(Database& db, SegmentGrid& grid,
                                             const Rect& window,
                                             SiteCoord target_w,
                                             LocalProblem* out_lp = nullptr) {
    LocalProblem lp = make_local_problem(db, grid, window);
    compute_minmax_placement(lp);
    auto ivs = build_insertion_intervals(lp, target_w);
    if (out_lp != nullptr) {
        *out_lp = std::move(lp);
    }
    return ivs;
}

TEST(Intervals, EmptyRowSingleWallToWallInterval) {
    Database db = empty_design(1, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 50, 1}, 6);
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0].gap, 0);
    EXPECT_EQ(ivs[0].lo, 0);
    EXPECT_EQ(ivs[0].hi, 44);
}

TEST(Intervals, TargetWiderThanRowDiscarded) {
    Database db = empty_design(1, 10);
    SegmentGrid grid = SegmentGrid::build(db);
    EXPECT_TRUE(intervals_for(db, grid, Rect{0, 0, 10, 1}, 11).empty());
    EXPECT_EQ(intervals_for(db, grid, Rect{0, 0, 10, 1}, 10).size(), 1u);
}

TEST(Intervals, CaseABetweenTwoCells) {
    // Paper case (a): gap between cells i and j → [xl_i + w_i, xr_j - w_t].
    Database db = empty_design(1, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "i", 10, 0, 5, 1);
    add_placed(db, grid, "j", 30, 0, 5, 1);
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 50, 1}, 4);
    // Gaps: (L,i), (i,j), (j,R).
    ASSERT_EQ(ivs.size(), 3u);
    EXPECT_EQ(ivs[0].lo, 0);        // wall
    EXPECT_EQ(ivs[0].hi, 40 - 4);   // xr_i - w_t (i packs right to 40)
    EXPECT_EQ(ivs[1].lo, 0 + 5);    // xl_i + w_i
    EXPECT_EQ(ivs[1].hi, 45 - 4);   // xr_j - w_t
    EXPECT_EQ(ivs[2].lo, 5 + 5);    // xl_j + w_j
    EXPECT_EQ(ivs[2].hi, 50 - 4);   // wall - w_t
}

TEST(Intervals, NegativeLengthDiscarded) {
    // Fig. 7(f): row packed so tight the target cannot fit between.
    Database db = empty_design(1, 12);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    add_placed(db, grid, "b", 6, 0, 5, 1);
    // Free sites: 1 before b end... total slack = 2. Target width 3 fits
    // nowhere between a and b, nor at the walls.
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 12, 1}, 3);
    EXPECT_TRUE(ivs.empty());
}

TEST(Intervals, ZeroLengthKept) {
    // Fig. 7(e): total slack equals the target width, so *every* gap
    // admits exactly one target position (pushing neighbours aside).
    Database db = empty_design(1, 13);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "a", 0, 0, 5, 1);
    add_placed(db, grid, "b", 8, 0, 5, 1);
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 13, 1}, 3);
    ASSERT_EQ(ivs.size(), 3u);
    const SiteCoord expect_pos[3] = {0, 5, 10};
    for (int g = 0; g < 3; ++g) {
        EXPECT_EQ(ivs[g].gap, g);
        EXPECT_EQ(ivs[g].lo, expect_pos[g]);
        EXPECT_EQ(ivs[g].hi, expect_pos[g]);
    }
}

TEST(Intervals, LeftRightCellAccessors) {
    Database db = empty_design(1, 50);
    SegmentGrid grid = SegmentGrid::build(db);
    const CellId a = add_placed(db, grid, "a", 10, 0, 5, 1);
    LocalProblem lp;
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 50, 1}, 4, &lp);
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0].left_cell(lp), -1);
    EXPECT_EQ(lp.cell(ivs[0].right_cell(lp)).id, a);
    EXPECT_EQ(lp.cell(ivs[1].left_cell(lp)).id, a);
    EXPECT_EQ(ivs[1].right_cell(lp), -1);
}

TEST(Intervals, PerRowCountsWithMultiRowCell) {
    Database db = empty_design(2, 60);
    SegmentGrid grid = SegmentGrid::build(db);
    add_placed(db, grid, "m", 20, 0, 4, 2);
    add_placed(db, grid, "s", 40, 1, 4, 1);
    const auto ivs = intervals_for(db, grid, Rect{0, 0, 60, 2}, 4);
    int row0 = 0;
    int row1 = 0;
    for (const auto& iv : ivs) {
        (iv.k == 0 ? row0 : row1) += 1;
    }
    EXPECT_EQ(row0, 2);  // gaps (L,m), (m,R)
    EXPECT_EQ(row1, 3);  // gaps (L,m), (m,s), (s,R)
}

TEST(Intervals, BoundsAreFeasiblePositions) {
    // Property: for every interval, placing the target at lo (or hi) fits
    // within the row span given leftmost/rightmost packings.
    Rng rng(31);
    for (int t = 0; t < 10; ++t) {
        RandomDesign d = random_legal_design(rng, 8, 120, 70, 0.25);
        LocalProblem lp = make_local_problem(
            d.db, d.grid, Rect{10, 0, 80, 8});
        compute_minmax_placement(lp);
        const SiteCoord wt = static_cast<SiteCoord>(rng.uniform(1, 6));
        for (const auto& iv : build_insertion_intervals(lp, wt)) {
            const LpRow& row = lp.row(iv.k);
            EXPECT_GE(iv.lo, row.span.lo);
            EXPECT_LE(iv.hi + wt, row.span.hi);
            EXPECT_LE(iv.lo, iv.hi);
            // lo not left of the leftmost-packed left cell's right edge.
            const int lc = iv.left_cell(lp);
            if (lc >= 0) {
                EXPECT_EQ(iv.lo, lp.cell(lc).xl + lp.cell(lc).w);
            }
            const int rc = iv.right_cell(lp);
            if (rc >= 0) {
                EXPECT_EQ(iv.hi, lp.cell(rc).xr - wt);
            }
        }
    }
}

TEST(Intervals, BindPointToIntervalsIntersectsMatchedRows) {
    // Rows 0 and 1 both offer gap 0; the intersection of their ranges is
    // the point's feasible x range.
    std::vector<InsertionInterval> ivs;
    ivs.push_back(InsertionInterval{0, 0, 2, 10});
    ivs.push_back(InsertionInterval{1, 0, 5, 14});
    SiteCoord lo = 0;
    SiteCoord hi = 0;
    ASSERT_TRUE(bind_point_to_intervals(ivs, 0, {0, 0}, lo, hi));
    EXPECT_EQ(lo, 5);
    EXPECT_EQ(hi, 10);
}

TEST(Intervals, BindPointToIntervalsRejectsUnmatchedRow) {
    // Regression for the silent-sentinel bug: row 1 of the chosen
    // combination has no interval for gap 1 (it was discarded as
    // negative-length), so binding must fail instead of leaving row 1's
    // constraint at the kSiteCoordMin/Max sentinels — which would pass a
    // bare lo <= hi check and admit an x that is infeasible in row 1.
    std::vector<InsertionInterval> ivs;
    ivs.push_back(InsertionInterval{0, 0, 2, 10});
    ivs.push_back(InsertionInterval{1, 0, 5, 14});
    SiteCoord lo = 0;
    SiteCoord hi = 0;
    EXPECT_FALSE(bind_point_to_intervals(ivs, 0, {0, 1}, lo, hi));
    // A combination with no rows at all is equally unrealizable.
    EXPECT_FALSE(bind_point_to_intervals(ivs, 0, {}, lo, hi));
    // Matching only via out-of-window rows must not succeed either.
    EXPECT_FALSE(bind_point_to_intervals(ivs, 5, {0}, lo, hi));
}

}  // namespace
}  // namespace mrlg::test
