#pragma once
/// \file str.hpp
/// Small string helpers shared by the Bookshelf parser and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace mrlg {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Format a double with `digits` decimals (locale-independent).
std::string format_fixed(double value, int digits);

/// Format like "1.23k" / "4.5M" for large counts.
std::string format_si(double value);

}  // namespace mrlg
