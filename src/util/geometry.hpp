#pragma once
/// \file geometry.hpp
/// Integer geometry primitives used throughout mrlg. All legalization-side
/// coordinates are in placement-site units (see DESIGN.md §5): x counts site
/// widths, y counts rows (= site heights).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>

#include "util/assert.hpp"

namespace mrlg {

/// Site-unit coordinate. Signed: window corners may fall left of the die.
using SiteCoord = std::int32_t;
/// Database-unit coordinate (e.g. nanometres) used for HPWL reporting.
using DbuCoord = std::int64_t;

inline constexpr SiteCoord kSiteCoordMin =
    std::numeric_limits<SiteCoord>::min() / 4;
inline constexpr SiteCoord kSiteCoordMax =
    std::numeric_limits<SiteCoord>::max() / 4;

/// 2-D point in site units.
struct Point {
    SiteCoord x = 0;
    SiteCoord y = 0;

    friend constexpr bool operator==(const Point&, const Point&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ',' << p.y << ')';
}

/// Manhattan distance between two points.
constexpr SiteCoord manhattan(const Point& a, const Point& b) {
    const SiteCoord dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
    const SiteCoord dy = a.y >= b.y ? a.y - b.y : b.y - a.y;
    return dx + dy;
}

/// Half-open 1-D interval [lo, hi). Empty when hi <= lo.
struct Span {
    SiteCoord lo = 0;
    SiteCoord hi = 0;

    constexpr SiteCoord length() const { return hi - lo; }
    constexpr bool empty() const { return hi <= lo; }
    constexpr bool contains(SiteCoord x) const { return x >= lo && x < hi; }
    /// Whole-interval containment (other may be empty).
    constexpr bool contains(const Span& other) const {
        return other.lo >= lo && other.hi <= hi;
    }
    constexpr bool overlaps(const Span& other) const {
        return lo < other.hi && other.lo < hi;
    }

    friend constexpr bool operator==(const Span&, const Span&) = default;
};

constexpr Span intersect(const Span& a, const Span& b) {
    return Span{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline std::ostream& operator<<(std::ostream& os, const Span& s) {
    return os << '[' << s.lo << ',' << s.hi << ')';
}

/// Axis-aligned rectangle, half-open in both axes: [x, x+w) × [y, y+h).
struct Rect {
    SiteCoord x = 0;
    SiteCoord y = 0;
    SiteCoord w = 0;
    SiteCoord h = 0;

    constexpr SiteCoord x_hi() const { return x + w; }
    constexpr SiteCoord y_hi() const { return y + h; }
    constexpr Span x_span() const { return Span{x, x + w}; }
    constexpr Span y_span() const { return Span{y, y + h}; }
    constexpr bool empty() const { return w <= 0 || h <= 0; }
    constexpr std::int64_t area() const {
        return static_cast<std::int64_t>(w) * static_cast<std::int64_t>(h);
    }
    constexpr bool contains(const Point& p) const {
        return x_span().contains(p.x) && y_span().contains(p.y);
    }
    constexpr bool contains(const Rect& o) const {
        return x_span().contains(o.x_span()) && y_span().contains(o.y_span());
    }
    constexpr bool overlaps(const Rect& o) const {
        return x_span().overlaps(o.x_span()) && y_span().overlaps(o.y_span());
    }
    /// Centre ×2 (kept integral; compare centre distances without division).
    constexpr Point center2() const {
        return Point{static_cast<SiteCoord>(2 * x + w),
                     static_cast<SiteCoord>(2 * y + h)};
    }

    friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

constexpr Rect intersect(const Rect& a, const Rect& b) {
    const Span xs = intersect(a.x_span(), b.x_span());
    const Span ys = intersect(a.y_span(), b.y_span());
    if (xs.empty() || ys.empty()) {
        return Rect{};
    }
    return Rect{xs.lo, ys.lo, xs.length(), ys.length()};
}

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << "Rect{" << r.x << ',' << r.y << " " << r.w << 'x' << r.h
              << '}';
}

/// Overlap area of two rectangles (0 when disjoint).
constexpr std::int64_t overlap_area(const Rect& a, const Rect& b) {
    return intersect(a, b).area();
}

}  // namespace mrlg
