#pragma once
/// \file table.hpp
/// Fixed-width ASCII table printer used by the bench harnesses to emit
/// Table-1-style result rows.

#include <ostream>
#include <string>
#include <vector>

namespace mrlg {

/// Column-aligned text table. Add a header once, then rows of equal arity;
/// print() right-aligns numeric-looking cells and left-aligns the rest.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    std::size_t num_rows() const { return rows_.size(); }
    std::size_t num_cols() const { return header_.size(); }

    /// Render to `os` with a separator line under the header.
    void print(std::ostream& os) const;

    /// Render as comma-separated values (for piping into plotting tools).
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrlg
