#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace mrlg {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?????";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
    g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[mrlg %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace mrlg
