#pragma once
/// \file thread_pool.hpp
/// Deterministic parallel execution layer for the read-only hot paths
/// (MLL candidate scoring, HPWL, legality sweeps).
///
/// Determinism contract: work is split into chunks whose boundaries depend
/// only on (n, grain) — never on the thread count — and `parallel_reduce`
/// combines chunk partials in ascending chunk order on the calling thread.
/// Any `num_threads` (including 1) therefore produces bit-identical
/// results; threads only decide which worker executes which chunk.
///
/// Thread count resolution: an explicit request wins; a request of 0 falls
/// back to the `MRLG_THREADS` environment variable, then to the hardware
/// concurrency. `num_threads <= 1` (or a single chunk) runs entirely on
/// the calling thread without touching the pool.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace mrlg {

/// Snapshot of the machine/environment thread configuration, for honest
/// reporting in benchmark JSON and (wall-clock) run reports — speedup
/// numbers are meaningless without the real hardware_threads behind them.
/// Pure accessors: taking a snapshot never instantiates the global pool.
struct ThreadPoolConfig {
    int hardware_threads = 1;  ///< std::thread::hardware_concurrency().
    int default_threads = 1;   ///< ThreadPool::default_threads() result.
    int pool_workers = 0;      ///< Helper threads ThreadPool::global() uses.
    /// Helper threads the global pool actually spawned; -1 until the pool
    /// has been instantiated. Distinct from `pool_workers` (the size the
    /// pool WOULD be built with) so reports can state what really ran.
    int pool_workers_active = -1;
    bool env_override = false; ///< MRLG_THREADS set to a positive integer.
};

class ThreadPool {
public:
    /// Spawns `num_workers` helper threads (the calling thread of a
    /// parallel region always participates on top of these).
    explicit ThreadPool(int num_workers);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_workers() const;

    /// Runs `chunk_fn(c)` for every c in [0, num_chunks) across at most
    /// `max_threads` threads (calling thread included). Blocks until every
    /// chunk has finished. If chunks throw, the exception of the
    /// lowest-indexed throwing chunk is rethrown (the remaining chunks
    /// still run — there is no cancellation).
    void run_chunks(std::size_t num_chunks, int max_threads,
                    const std::function<void(std::size_t)>& chunk_fn);

    /// Process-wide pool, lazily created on first parallel use. Sized so
    /// that benchmark sweeps up to 8 threads are real threads even on
    /// smaller machines.
    static ThreadPool& global();

    /// `requested` when > 0, else default_threads().
    static int resolve_threads(int requested);

    /// MRLG_THREADS environment variable when set to a positive integer,
    /// else std::thread::hardware_concurrency() (at least 1). Re-read on
    /// every call (cheap), so tests may override the environment.
    static int default_threads();

    /// Current thread configuration snapshot (see ThreadPoolConfig).
    static ThreadPoolConfig config();

    /// TEST ONLY: called with the chunk index on the executing thread just
    /// before every chunk body runs. Lets tests force specific thread
    /// interleavings (e.g. stalling even-indexed chunks so a different
    /// worker wins the race for the next one) to prove order-independence
    /// properties like the timeline merge. nullptr (the default) is free.
    /// Never set this outside tests.
    using ChunkHook = void (*)(std::size_t chunk);
    static void set_chunk_hook_for_test(ChunkHook hook);

private:
    struct Impl;
    Impl* impl_;
};

/// Number of fixed-size chunks covering [0, n). Depends only on (n, grain).
inline std::size_t num_chunks_for(std::size_t n, std::size_t grain) {
    const std::size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
}

/// Runs `fn(begin, end)` over fixed chunks of [0, n) on up to
/// `num_threads` threads (0 = default). Serial (calling thread, ascending
/// chunk order) when the effective thread count is 1 or only one chunk
/// exists. `fn` must tolerate concurrent invocation on distinct chunks.
void parallel_for(std::size_t n, std::size_t grain, int num_threads,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic map/reduce over fixed chunks of [0, n):
/// `map(begin, end) -> T` per chunk (possibly concurrent),
/// `combine(acc, partial) -> T` in ascending chunk order on the calling
/// thread. Returns `init` for an empty range. T must be default- and
/// move-constructible.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t n, std::size_t grain, int num_threads, T init,
                  const MapFn& map, const CombineFn& combine) {
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = num_chunks_for(n, g);
    if (chunks == 0) {
        return init;
    }
    const int threads = ThreadPool::resolve_threads(num_threads);
    if (threads <= 1 || chunks == 1) {
        T acc = std::move(init);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = c * g;
            acc = combine(std::move(acc), map(b, std::min(n, b + g)));
        }
        return acc;
    }
    std::vector<T> partial(chunks);
    ThreadPool::global().run_chunks(chunks, threads, [&](std::size_t c) {
        const std::size_t b = c * g;
        partial[c] = map(b, std::min(n, b + g));
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) {
        acc = combine(std::move(acc), std::move(partial[c]));
    }
    return acc;
}

}  // namespace mrlg
