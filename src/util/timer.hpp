#pragma once
/// \file timer.hpp
/// Wall-clock stopwatch for experiment runtime reporting (Table 1 "Runtime").

#include <chrono>

namespace mrlg {

class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    /// Seconds elapsed since construction / last restart.
    double elapsed_s() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsed_ms() const { return elapsed_s() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace mrlg
