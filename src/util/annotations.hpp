#pragma once
/// \file annotations.hpp
/// Capability annotations for Clang's thread-safety analysis
/// (-Wthread-safety), plus mrlg's own effect markers.
///
/// Two cooperating enforcement layers use these macros (docs/ANALYSIS.md):
///
///  * Clang thread-safety analysis (the `analyze-effects` CMake preset,
///    -Wthread-safety -Werror) checks the *write side*: every mutating
///    entry point of the shared placement state (Database / SegmentGrid /
///    Cell position setters, mll_commit, rip-up) carries
///    MRLG_REQUIRES(grid_write_cap()), so a mutation can only be reached
///    from code that explicitly holds the GridWriteCap capability — which
///    only the serial construction and commit/retry paths acquire
///    (db/write_cap.hpp).
///  * tools/analyze_effects.py checks the *read side*: the transitive
///    closure of mll_plan (and everything the region-parallel plan stage
///    dispatches) must never reach one of those mutators, const_cast, a
///    mutable member of the shared classes, or an unsynchronized global.
///
/// Under compilers without the attributes (GCC, MSVC) every macro expands
/// to nothing, so annotated code builds identically everywhere; the
/// attributes only light up under clang -Wthread-safety.
///
/// The vocabulary mirrors the documented clang attribute set (and abseil's
/// thread_annotations.h) so anyone who knows those can read these.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MRLG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MRLG_THREAD_ANNOTATION(x)  // clang without -Wthread-safety support
#endif
#else
#define MRLG_THREAD_ANNOTATION(x)  // non-clang compilers: no-op
#endif

/// Declares a class to be a capability (a mutex, or a role like
/// GridWriteCap). `x` is the name used in diagnostics.
#define MRLG_CAPABILITY(x) MRLG_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define MRLG_SCOPED_CAPABILITY MRLG_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define MRLG_GUARDED_BY(x) MRLG_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define MRLG_PT_GUARDED_BY(x) MRLG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability (exclusively) to be held by the
/// caller; it is still held on return.
#define MRLG_REQUIRES(...) \
    MRLG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires at least shared (read) access to the capability.
#define MRLG_REQUIRES_SHARED(...) \
    MRLG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability; caller must not already hold it.
#define MRLG_ACQUIRE(...) \
    MRLG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; caller must hold it.
#define MRLG_RELEASE(...) \
    MRLG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares that the function body may assume the capability is held
/// (runtime-checked elsewhere). Used to re-establish the capability inside
/// lambdas: clang analyzes a lambda body as a separate function with an
/// empty capability set, so serial commit lambdas open with a call to an
/// assert function carrying this annotation.
#define MRLG_ASSERT_CAPABILITY(...) \
    MRLG_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define MRLG_RETURN_CAPABILITY(x) \
    MRLG_THREAD_ANNOTATION(lock_returned(x))

/// Caller must NOT hold the capability (deadlock prevention for real
/// mutexes; unused for role capabilities, which nest harmlessly).
#define MRLG_EXCLUDES(...) \
    MRLG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Opts a function out of the analysis (use sparingly, with a comment).
#define MRLG_NO_THREAD_SAFETY_ANALYSIS \
    MRLG_THREAD_ANNOTATION(no_thread_safety_analysis)

/// mrlg effect marker: declares that a function is read-only over the
/// shared placement state (Database / SegmentGrid / Cell) and touches no
/// unsynchronized global — i.e. it is safe to run on pool threads during
/// the region-parallel plan phase. Expands to nothing for every compiler;
/// tools/analyze_effects.py cross-checks each marked function against the
/// proven read-only closure, so the marker cannot silently rot.
#define MRLG_EFFECT_READONLY /* checked by tools/analyze_effects.py */
