#pragma once
/// \file mutex.hpp
/// Thin std::mutex / std::condition_variable wrappers that carry clang
/// thread-safety-analysis capability attributes (util/annotations.hpp).
/// libstdc++'s std::mutex is invisible to the analysis; routing the
/// pool's synchronization through these types lets MRLG_GUARDED_BY
/// annotations on the protected members be checked at compile time under
/// the `analyze-effects` preset. Zero overhead: every method forwards
/// directly and every attribute vanishes under non-clang compilers.

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/annotations.hpp"

namespace mrlg {

/// A std::mutex that the thread-safety analysis can see.
class MRLG_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() MRLG_ACQUIRE() { mu_.lock(); }
    void unlock() MRLG_RELEASE() { mu_.unlock(); }

    /// Tells the analysis "this mutex is held here" without any runtime
    /// effect. Needed inside lambdas (condition-variable predicates)
    /// whose enclosing scope holds the lock: clang analyzes a lambda
    /// body as a separate function with an empty capability set.
    void assert_held() MRLG_ASSERT_CAPABILITY(this) {}

private:
    friend class MutexLock;
    std::mutex mu_;
};

/// RAII lock on a Mutex; also the token CondVar::wait needs. Holds a
/// std::unique_lock so a condition variable can release/reacquire it.
class MRLG_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) MRLG_ACQUIRE(mu) : lk_(mu.mu_) {}
    ~MutexLock() MRLG_RELEASE() {}
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/// Condition variable working on Mutex/MutexLock. wait() takes both the
/// Mutex (for the analysis: REQUIRES proves the caller holds it) and the
/// MutexLock (for the runtime: the lock to drop while blocking).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    template <typename Pred>
    void wait(Mutex& mu, MutexLock& lock, Pred pred) MRLG_REQUIRES(mu) {
        cv_.wait(lock.lk_, std::move(pred));
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace mrlg
