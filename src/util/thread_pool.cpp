#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

#include "util/assert.hpp"
#include "util/mutex.hpp"

namespace mrlg {

namespace {

/// Test-only chunk hook (see ThreadPool::set_chunk_hook_for_test).
std::atomic<ThreadPool::ChunkHook> g_chunk_hook{nullptr};

/// Helper count of the live global pool; -1 until instantiated. Lets
/// ThreadPool::config() report what actually ran without instantiating
/// the pool as a side effect of reporting.
std::atomic<int> g_global_pool_active{-1};

/// State of one parallel region. Heap-shared so a worker that wakes late
/// (after the region completed and a new one started) still operates on
/// the counters of the region it was dispatched for, never a newer one.
struct JobState {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    /// One slot per chunk; slot c is written only by the thread that
    /// claimed chunk c (disjoint indices), so no lock guards the vector.
    std::vector<std::exception_ptr> errors;
    Mutex done_mutex;
    CondVar done_cv;
};

/// Pulls chunks until the job is exhausted. Safe to call even when the
/// job is already complete (the fetch_add immediately overflows).
void drain(JobState& job) {
    while (true) {
        const std::size_t c = job.next.fetch_add(1);
        if (c >= job.num_chunks) {
            return;
        }
        try {
            if (ThreadPool::ChunkHook hook =
                    g_chunk_hook.load(std::memory_order_relaxed);
                hook != nullptr) {
                hook(c);
            }
            (*job.fn)(c);
        } catch (...) {
            job.errors[c] = std::current_exception();
        }
        if (job.completed.fetch_add(1) + 1 == job.num_chunks) {
            // Empty critical section pairs with the waiter's predicate
            // check so the notification cannot be missed.
            { MutexLock lk(job.done_mutex); }
            job.done_cv.notify_all();
        }
    }
}

}  // namespace

struct ThreadPool::Impl {
    Mutex mutex;
    CondVar work_cv;
    std::vector<std::thread> threads;  // written by ctor/dtor thread only
    std::shared_ptr<JobState> current MRLG_GUARDED_BY(mutex);
    /// Helpers the current job may still claim.
    int open_slots MRLG_GUARDED_BY(mutex) = 0;
    std::uint64_t generation MRLG_GUARDED_BY(mutex) = 0;
    bool stop MRLG_GUARDED_BY(mutex) = false;

    void worker_loop() {
        std::uint64_t seen = 0;
        while (true) {
            std::shared_ptr<JobState> job;
            {
                MutexLock lk(mutex);
                work_cv.wait(mutex, lk, [&] {
                    mutex.assert_held();
                    return stop || (current != nullptr && open_slots > 0 &&
                                    generation != seen);
                });
                if (stop) {
                    return;
                }
                seen = generation;
                --open_slots;
                job = current;
            }
            drain(*job);
        }
    }
};

ThreadPool::ThreadPool(int num_workers) : impl_(new Impl) {
    const int n = std::max(num_workers, 0);
    impl_->threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        impl_->threads.emplace_back([this] { impl_->worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lk(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->threads) {
        t.join();
    }
    delete impl_;
}

int ThreadPool::num_workers() const {
    return static_cast<int>(impl_->threads.size());
}

void ThreadPool::run_chunks(std::size_t num_chunks, int max_threads,
                            const std::function<void(std::size_t)>& chunk_fn) {
    if (num_chunks == 0) {
        return;
    }
    const std::size_t max_helpers =
        static_cast<std::size_t>(std::max(max_threads - 1, 0));
    const int helpers = static_cast<int>(
        std::min({max_helpers, static_cast<std::size_t>(num_workers()),
                  num_chunks - 1}));
    if (helpers <= 0) {
        for (std::size_t c = 0; c < num_chunks; ++c) {
            chunk_fn(c);
        }
        return;
    }

    auto job = std::make_shared<JobState>();
    job->fn = &chunk_fn;
    job->num_chunks = num_chunks;
    job->errors.assign(num_chunks, nullptr);
    {
        MutexLock lk(impl_->mutex);
        impl_->current = job;
        impl_->open_slots = helpers;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();

    drain(*job);  // the calling thread participates

    {
        MutexLock lk(job->done_mutex);
        job->done_cv.wait(job->done_mutex, lk, [&] {
            // completed is atomic; the lock only serializes the sleep
            // against drain()'s empty critical section above.
            return job->completed.load() == job->num_chunks;
        });
    }
    {
        // Retire the job so late wakeups go back to sleep immediately.
        MutexLock lk(impl_->mutex);
        if (impl_->current == job) {
            impl_->current.reset();
            impl_->open_slots = 0;
        }
    }
    for (std::exception_ptr& e : job->errors) {
        if (e) {
            std::rethrow_exception(e);
        }
    }
}

namespace {

/// Helper-thread count the global pool is built with. Shared with
/// ThreadPool::config() so reporting never has to instantiate the pool.
int global_pool_workers() {
    const int hw = ThreadPool::default_threads();
    // Enough helpers that an explicit 8-thread request is honored even
    // on small machines; capped to keep oversubscription bounded.
    return std::clamp(std::max(hw, 8), 1, 64) - 1;
}

}  // namespace

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(global_pool_workers());
    g_global_pool_active.store(pool.num_workers(),
                               std::memory_order_relaxed);
    return pool;
}

void ThreadPool::set_chunk_hook_for_test(ChunkHook hook) {
    g_chunk_hook.store(hook, std::memory_order_relaxed);
}

int ThreadPool::resolve_threads(int requested) {
    return requested > 0 ? requested : default_threads();
}

int ThreadPool::default_threads() {
    if (const char* env = std::getenv("MRLG_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) {
            return static_cast<int>(std::min<long>(v, 256));
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPoolConfig ThreadPool::config() {
    ThreadPoolConfig c;
    const unsigned hw = std::thread::hardware_concurrency();
    c.hardware_threads = hw == 0 ? 1 : static_cast<int>(hw);
    c.default_threads = default_threads();
    c.pool_workers = global_pool_workers();
    c.pool_workers_active = g_global_pool_active.load(
        std::memory_order_relaxed);
    if (const char* env = std::getenv("MRLG_THREADS")) {
        c.env_override = std::strtol(env, nullptr, 10) > 0;
    }
    return c;
}

void parallel_for(std::size_t n, std::size_t grain, int num_threads,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = num_chunks_for(n, g);
    if (chunks == 0) {
        return;
    }
    const int threads = ThreadPool::resolve_threads(num_threads);
    if (threads <= 1 || chunks == 1) {
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t b = c * g;
            fn(b, std::min(n, b + g));
        }
        return;
    }
    ThreadPool::global().run_chunks(chunks, threads, [&](std::size_t c) {
        const std::size_t b = c * g;
        fn(b, std::min(n, b + g));
    });
}

}  // namespace mrlg
