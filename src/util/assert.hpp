#pragma once
/// \file assert.hpp
/// Contract-checking macros for mrlg.
///
/// Programming-contract violations (broken invariants, misuse of an API)
/// throw mrlg::AssertionError rather than calling std::abort so that unit
/// tests can exercise the contracts, and so that a host application
/// embedding the legalizer can contain a failure to one design.

#include <stdexcept>
#include <string>

namespace mrlg {

/// Thrown when an MRLG_ASSERT contract is violated.
class AssertionError : public std::logic_error {
public:
    explicit AssertionError(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
/// Builds the message and throws AssertionError. Out-of-line so the macro
/// expansion stays small at every call site.
[[noreturn]] void assertion_failed(const char* expr, const char* file,
                                   int line, const std::string& msg);
}  // namespace detail

}  // namespace mrlg

/// Always-on contract check (cheap checks on public API boundaries).
#define MRLG_ASSERT(expr, msg)                                              \
    do {                                                                    \
        if (!(expr)) {                                                      \
            ::mrlg::detail::assertion_failed(#expr, __FILE__, __LINE__,     \
                                             (msg));                        \
        }                                                                   \
    } while (false)

/// Heavier internal-consistency check, compiled out in release builds
/// unless MRLG_ENABLE_DCHECK is defined (cmake -DMRLG_DCHECKS=ON).
/// The no-op branch keeps expr and msg inside an unevaluated sizeof so
/// both still parse and name-resolve — a DCHECK cannot rot in release.
#if defined(MRLG_ENABLE_DCHECK) || !defined(NDEBUG)
#define MRLG_DCHECK(expr, msg) MRLG_ASSERT(expr, msg)
#else
#define MRLG_DCHECK(expr, msg)                                              \
    do {                                                                    \
        static_cast<void>(sizeof((expr) ? 1 : 0));                          \
        static_cast<void>(sizeof(msg));                                     \
    } while (false)
#endif
