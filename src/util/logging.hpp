#pragma once
/// \file logging.hpp
/// Minimal leveled logger. Single global sink (stderr by default); the
/// level can be raised to silence benches/tests.

#include <sstream>
#include <string>

namespace mrlg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement:  MRLG_LOG(kInfo) << "placed " << n << " cells";
class LogLine {
public:
    explicit LogLine(LogLevel level) : level_(level) {}
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;
    ~LogLine() {
        if (level_ >= log_level()) {
            detail::log_emit(level_, oss_.str());
        }
    }
    template <typename T>
    LogLine& operator<<(const T& value) {
        if (level_ >= log_level()) {
            oss_ << value;
        }
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream oss_;
};

}  // namespace mrlg

#define MRLG_LOG(level) ::mrlg::LogLine(::mrlg::LogLevel::level)
