#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generator. mrlg never uses global
/// random state: every component that needs randomness takes an Rng&, so
/// runs are reproducible from a single seed.

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace mrlg {

/// xoshiro256** — small, fast, high-quality; plenty for benchmark synthesis
/// and the legalizer's retry offsets (paper §3, Rand_x/Rand_y).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // SplitMix64 expansion of the seed into the 4-word state.
        std::uint64_t z = seed;
        for (auto& word : state_) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
            word = t ^ (t >> 31);
        }
        has_cached_normal_ = false;
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    /// Unbiased (Lemire multiply-shift with rejection).
    std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
        MRLG_ASSERT(lo <= hi, "Rng::uniform: empty range");
        const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                                   static_cast<std::uint64_t>(lo) + 1;
        if (span == 0) {  // full 64-bit range
            return static_cast<std::int64_t>(next_u64());
        }
        unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * span;
        auto low = static_cast<std::uint64_t>(m);
        if (low < span) {
            const std::uint64_t threshold = (0 - span) % span;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next_u64()) * span;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return lo + static_cast<std::int64_t>(m >> 64);
    }

    /// Uniform double in [0, 1).
    double uniform01() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Normal deviate via Box–Muller; caches the second value of each pair.
    double normal(double mean = 0.0, double stddev = 1.0) {
        if (has_cached_normal_) {
            has_cached_normal_ = false;
            return mean + stddev * cached_normal_;
        }
        double u1 = uniform01();
        while (u1 <= 0.0) {  // avoid log(0)
            u1 = uniform01();
        }
        const double u2 = uniform01();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        cached_normal_ = r * std::sin(theta);
        has_cached_normal_ = true;
        return mean + stddev * r * std::cos(theta);
    }

    /// Bernoulli trial.
    bool chance(double p) { return uniform01() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4] = {};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace mrlg
