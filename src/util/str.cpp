#include "util/str.hpp"

#include <cctype>
#include <cstdio>

namespace mrlg {

namespace {
bool is_ws(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_ws(s[b])) ++b;
    while (e > b && is_ws(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && is_ws(s[i])) ++i;
        std::size_t j = i;
        while (j < s.size() && !is_ws(s[j])) ++j;
        if (j > i) {
            out.push_back(s.substr(i, j - i));
        }
        i = j;
    }
    return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
            return false;
        }
    }
    return true;
}

std::string format_fixed(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string format_si(double value) {
    const char* suffix = "";
    double v = value;
    if (v >= 1e9) {
        v /= 1e9;
        suffix = "G";
    } else if (v >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (v >= 1e3) {
        v /= 1e3;
        suffix = "k";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
    return buf;
}

}  // namespace mrlg
