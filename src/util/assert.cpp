#include "util/assert.hpp"

#include <sstream>

namespace mrlg::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& msg) {
    std::ostringstream oss;
    oss << "MRLG_ASSERT failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) {
        oss << " — " << msg;
    }
    throw AssertionError(oss.str());
}

}  // namespace mrlg::detail
