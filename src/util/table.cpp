#include "util/table.hpp"

#include <algorithm>
#include <cctype>

#include "util/assert.hpp"

namespace mrlg {

namespace {
bool looks_numeric(const std::string& s) {
    if (s.empty()) {
        return false;
    }
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'e' && c != 'E' &&
            c != 'x') {
            return false;
        }
    }
    return true;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    MRLG_ASSERT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    MRLG_ASSERT(cells.size() == header_.size(),
                "row arity must match header");
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = widths[c] - row[c].size();
            if (looks_numeric(row[c])) {
                os << std::string(pad, ' ') << row[c];
            } else {
                os << row[c] << std::string(pad, ' ');
            }
            os << (c + 1 == row.size() ? "" : "  ");
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) {
        total += w + 2;
    }
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) {
        emit(row);
    }
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c] << (c + 1 == row.size() ? "" : ",");
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) {
        emit(row);
    }
}

}  // namespace mrlg
