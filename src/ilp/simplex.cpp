#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mrlg::ilp {

namespace {

/// Dense tableau; row 0..m-1 are constraints, objective handled separately.
class Tableau {
public:
    Tableau(int rows, int cols) : m_(rows), n_(cols),
          a_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
             0.0) {}

    double& at(int r, int c) {
        return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(c)];
    }
    double at(int r, int c) const {
        return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(c)];
    }
    int rows() const { return m_; }
    int cols() const { return n_; }

    /// Gauss pivot on (pr, pc); normalizes the pivot row.
    void pivot(int pr, int pc) {
        const double pv = at(pr, pc);
        for (int c = 0; c < n_; ++c) {
            at(pr, c) /= pv;
        }
        for (int r = 0; r < m_; ++r) {
            if (r == pr) {
                continue;
            }
            const double f = at(r, pc);
            if (f == 0.0) {
                continue;
            }
            for (int c = 0; c < n_; ++c) {
                at(r, c) -= f * at(pr, c);
            }
        }
    }

private:
    int m_;
    int n_;
    std::vector<double> a_;
};

struct StdForm {
    // Columns: [0, ny) shifted model vars, [ny, ny+ns) slacks/surplus,
    // [ny+ns, ny+ns+na) artificials. rhs per row.
    int ny = 0;
    int ns = 0;
    int na = 0;
    std::vector<std::vector<double>> rows;  ///< Dense over all columns.
    std::vector<double> rhs;
    std::vector<int> art_of_row;  ///< Artificial column of row, or -1.
};

}  // namespace

LpResult solve_lp(const Model& model, const LpOptions& opts,
                  const std::vector<double>* lb_override,
                  const std::vector<double>* ub_override) {
    LpResult result;
    const int ny = model.num_vars();
    std::vector<double> lb(static_cast<std::size_t>(ny));
    std::vector<double> ub(static_cast<std::size_t>(ny));
    for (int i = 0; i < ny; ++i) {
        lb[static_cast<std::size_t>(i)] =
            lb_override ? (*lb_override)[static_cast<std::size_t>(i)]
                        : model.vars()[static_cast<std::size_t>(i)].lb;
        ub[static_cast<std::size_t>(i)] =
            ub_override ? (*ub_override)[static_cast<std::size_t>(i)]
                        : model.vars()[static_cast<std::size_t>(i)].ub;
        if (lb[static_cast<std::size_t>(i)] >
            ub[static_cast<std::size_t>(i)] + opts.eps) {
            return result;  // empty domain
        }
    }

    // Gather raw rows: model constraints with vars shifted by lb, plus
    // upper-bound rows y_i <= ub_i - lb_i.
    struct RawRow {
        std::vector<double> a;  // size ny
        Sense sense;
        double rhs;
    };
    std::vector<RawRow> raw;
    raw.reserve(static_cast<std::size_t>(model.num_constraints() + ny));
    for (const Constraint& c : model.constraints()) {
        RawRow r;
        r.a.assign(static_cast<std::size_t>(ny), 0.0);
        r.rhs = c.rhs;
        r.sense = c.sense;
        for (const Term& t : c.terms) {
            r.a[static_cast<std::size_t>(t.var)] += t.coef;
            r.rhs -= t.coef * lb[static_cast<std::size_t>(t.var)];
        }
        raw.push_back(std::move(r));
    }
    for (int i = 0; i < ny; ++i) {
        const double range = ub[static_cast<std::size_t>(i)] -
                             lb[static_cast<std::size_t>(i)];
        RawRow r;
        r.a.assign(static_cast<std::size_t>(ny), 0.0);
        r.a[static_cast<std::size_t>(i)] = 1.0;
        r.sense = Sense::kLe;
        r.rhs = range;
        raw.push_back(std::move(r));
    }

    // Count slack columns; normalize rhs >= 0.
    const int m = static_cast<int>(raw.size());
    int ns = 0;
    for (const RawRow& r : raw) {
        if (r.sense != Sense::kEq) {
            ++ns;
        }
    }
    // Build full rows; decide slack sign; detect basis candidates.
    const int total_pre_art = ny + ns;
    std::vector<std::vector<double>> rows(
        static_cast<std::size_t>(m),
        std::vector<double>(static_cast<std::size_t>(total_pre_art), 0.0));
    std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);
    std::vector<int> basis_col(static_cast<std::size_t>(m), -1);
    int slack_cursor = ny;
    int na = 0;
    std::vector<int> needs_art;
    for (int r = 0; r < m; ++r) {
        RawRow& rr = raw[static_cast<std::size_t>(r)];
        double sign = 1.0;
        if (rr.rhs < 0.0) {
            sign = -1.0;
            rr.rhs = -rr.rhs;
            for (double& v : rr.a) {
                v = -v;
            }
            if (rr.sense == Sense::kLe) {
                rr.sense = Sense::kGe;
            } else if (rr.sense == Sense::kGe) {
                rr.sense = Sense::kLe;
            }
        }
        static_cast<void>(sign);
        for (int c = 0; c < ny; ++c) {
            rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
                rr.a[static_cast<std::size_t>(c)];
        }
        rhs[static_cast<std::size_t>(r)] = rr.rhs;
        if (rr.sense == Sense::kLe) {
            rows[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(slack_cursor)] = 1.0;
            basis_col[static_cast<std::size_t>(r)] = slack_cursor;
            ++slack_cursor;
        } else if (rr.sense == Sense::kGe) {
            rows[static_cast<std::size_t>(r)]
                [static_cast<std::size_t>(slack_cursor)] = -1.0;
            ++slack_cursor;
            needs_art.push_back(r);
            ++na;
        } else {
            needs_art.push_back(r);
            ++na;
        }
    }

    const int ncols = ny + ns + na;
    Tableau t(m + 1, ncols + 1);  // last row = objective workspace
    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < ny + ns; ++c) {
            t.at(r, c) = rows[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)];
        }
        t.at(r, ncols) = rhs[static_cast<std::size_t>(r)];
    }
    {
        int art_cursor = ny + ns;
        for (const int r : needs_art) {
            t.at(r, art_cursor) = 1.0;
            basis_col[static_cast<std::size_t>(r)] = art_cursor;
            ++art_cursor;
        }
    }

    const int obj_row = m;
    auto run_simplex = [&](int phase) -> LpStatus {
        for (int iter = 0; iter < opts.max_iters; ++iter) {
            // Bland: entering = lowest-index column with negative reduced
            // cost. In phase 1, artificial columns may not re-enter.
            int pc = -1;
            const int limit = phase == 1 ? ncols : ny + ns;
            for (int c = 0; c < limit; ++c) {
                if (phase == 1 && c >= ny + ns) {
                    continue;
                }
                if (t.at(obj_row, c) < -opts.eps) {
                    pc = c;
                    break;
                }
            }
            if (pc < 0) {
                return LpStatus::kOptimal;
            }
            int pr = -1;
            double best_ratio = std::numeric_limits<double>::max();
            for (int r = 0; r < m; ++r) {
                const double a = t.at(r, pc);
                if (a > opts.eps) {
                    const double ratio = t.at(r, ncols) / a;
                    if (ratio < best_ratio - opts.eps ||
                        (std::abs(ratio - best_ratio) <= opts.eps &&
                         (pr < 0 ||
                          basis_col[static_cast<std::size_t>(r)] <
                              basis_col[static_cast<std::size_t>(pr)]))) {
                        best_ratio = ratio;
                        pr = r;
                    }
                }
            }
            if (pr < 0) {
                return LpStatus::kUnbounded;
            }
            t.pivot(pr, pc);
            basis_col[static_cast<std::size_t>(pr)] = pc;
        }
        return LpStatus::kIterLimit;
    };

    // ---- Phase 1: minimize sum of artificials. ----
    if (na > 0) {
        for (int c = 0; c <= ncols; ++c) {
            t.at(obj_row, c) = 0.0;
        }
        for (int c = ny + ns; c < ncols; ++c) {
            t.at(obj_row, c) = 1.0;
        }
        // Eliminate basic artificial columns from the objective row.
        for (int r = 0; r < m; ++r) {
            const int bc = basis_col[static_cast<std::size_t>(r)];
            if (bc >= ny + ns) {
                for (int c = 0; c <= ncols; ++c) {
                    t.at(obj_row, c) -= t.at(r, c);
                }
            }
        }
        const LpStatus s1 = run_simplex(1);
        if (s1 == LpStatus::kIterLimit) {
            result.status = s1;
            return result;
        }
        if (-t.at(obj_row, ncols) > 1e-6) {
            result.status = LpStatus::kInfeasible;
            return result;
        }
        // Drive remaining artificials out of the basis.
        for (int r = 0; r < m; ++r) {
            const int bc = basis_col[static_cast<std::size_t>(r)];
            if (bc >= ny + ns) {
                int pc = -1;
                for (int c = 0; c < ny + ns; ++c) {
                    if (std::abs(t.at(r, c)) > 1e-7) {
                        pc = c;
                        break;
                    }
                }
                if (pc >= 0) {
                    t.pivot(r, pc);
                    basis_col[static_cast<std::size_t>(r)] = pc;
                }
                // else: redundant row; harmless to keep (all zeros).
            }
        }
    }

    // ---- Phase 2: minimize the real objective over shifted vars. ----
    for (int c = 0; c <= ncols; ++c) {
        t.at(obj_row, c) = 0.0;
    }
    for (int i = 0; i < ny; ++i) {
        t.at(obj_row, i) = model.vars()[static_cast<std::size_t>(i)].obj;
    }
    // Eliminate basic columns from the objective row.
    for (int r = 0; r < m; ++r) {
        const int bc = basis_col[static_cast<std::size_t>(r)];
        if (bc >= 0 && bc < ny + ns) {
            const double f = t.at(obj_row, bc);
            if (f != 0.0) {
                for (int c = 0; c <= ncols; ++c) {
                    t.at(obj_row, c) -= f * t.at(r, c);
                }
            }
        }
    }
    const LpStatus s2 = run_simplex(2);
    if (s2 != LpStatus::kOptimal) {
        result.status = s2;
        return result;
    }

    // Extract solution.
    std::vector<double> y(static_cast<std::size_t>(ny), 0.0);
    for (int r = 0; r < m; ++r) {
        const int bc = basis_col[static_cast<std::size_t>(r)];
        if (bc >= 0 && bc < ny) {
            y[static_cast<std::size_t>(bc)] = t.at(r, ncols);
        }
    }
    result.x.resize(static_cast<std::size_t>(ny));
    for (int i = 0; i < ny; ++i) {
        result.x[static_cast<std::size_t>(i)] =
            y[static_cast<std::size_t>(i)] + lb[static_cast<std::size_t>(i)];
    }
    result.obj = model.objective_value(result.x);
    result.status = LpStatus::kOptimal;
    return result;
}

}  // namespace mrlg::ilp
