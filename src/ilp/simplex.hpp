#pragma once
/// \file simplex.hpp
/// Dense two-phase primal simplex for the LP relaxation of a Model.
/// Designed for the small local-legalization ILPs (tens of variables);
/// uses Bland's rule to guarantee termination.

#include <vector>

#include "ilp/model.hpp"

namespace mrlg::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpResult {
    LpStatus status = LpStatus::kInfeasible;
    std::vector<double> x;  ///< Values of the model variables.
    double obj = 0.0;
};

struct LpOptions {
    int max_iters = 20000;
    double eps = 1e-9;
};

/// Solves the LP relaxation (integrality flags ignored). Variable bound
/// overrides (for branch & bound) can be supplied; entries with
/// lb > ub mark an empty domain and yield kInfeasible immediately.
LpResult solve_lp(const Model& model, const LpOptions& opts = {},
                  const std::vector<double>* lb_override = nullptr,
                  const std::vector<double>* ub_override = nullptr);

}  // namespace mrlg::ilp
