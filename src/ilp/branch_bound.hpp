#pragma once
/// \file branch_bound.hpp
/// Depth-first branch & bound over the integer variables of a Model, with
/// LP-relaxation bounding via the two-phase simplex.

#include "ilp/simplex.hpp"

namespace mrlg::ilp {

enum class MipStatus { kOptimal, kInfeasible, kNodeLimit };

struct MipResult {
    MipStatus status = MipStatus::kInfeasible;
    std::vector<double> x;
    double obj = 0.0;
    std::size_t nodes = 0;
};

struct MipOptions {
    std::size_t max_nodes = 100000;
    double int_tol = 1e-6;
    LpOptions lp;
};

/// Solves min cᵀx s.t. the model's constraints with the integrality flags
/// respected.
MipResult solve_mip(const Model& model, const MipOptions& opts = {});

}  // namespace mrlg::ilp
