#include "ilp/model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mrlg::ilp {

int Model::add_var(double lb, double ub, double obj_coef, bool integer,
                   std::string name) {
    MRLG_ASSERT(lb <= ub, "variable with empty domain: " + name);
    vars_.push_back(Variable{lb, ub, obj_coef, integer, std::move(name)});
    return static_cast<int>(vars_.size()) - 1;
}

void Model::add_constraint(std::vector<Term> terms, Sense sense, double rhs) {
    for (const Term& t : terms) {
        MRLG_ASSERT(t.var >= 0 && t.var < num_vars(),
                    "constraint references unknown variable");
    }
    cons_.push_back(Constraint{std::move(terms), sense, rhs});
}

double Model::objective_value(const std::vector<double>& x) const {
    MRLG_ASSERT(x.size() == vars_.size(), "solution arity mismatch");
    double obj = 0.0;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        obj += vars_[i].obj * x[i];
    }
    return obj;
}

bool Model::feasible(const std::vector<double>& x, double tol) const {
    if (x.size() != vars_.size()) {
        return false;
    }
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (x[i] < vars_[i].lb - tol || x[i] > vars_[i].ub + tol) {
            return false;
        }
        if (vars_[i].integer &&
            std::abs(x[i] - std::round(x[i])) > tol) {
            return false;
        }
    }
    for (const Constraint& c : cons_) {
        double lhs = 0.0;
        for (const Term& t : c.terms) {
            lhs += t.coef * x[static_cast<std::size_t>(t.var)];
        }
        switch (c.sense) {
            case Sense::kLe:
                if (lhs > c.rhs + tol) return false;
                break;
            case Sense::kGe:
                if (lhs < c.rhs - tol) return false;
                break;
            case Sense::kEq:
                if (std::abs(lhs - c.rhs) > tol) return false;
                break;
        }
    }
    return true;
}

}  // namespace mrlg::ilp
