#include "ilp/branch_bound.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace mrlg::ilp {

namespace {

struct Node {
    std::vector<double> lb;
    std::vector<double> ub;
};

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& opts) {
    MipResult result;
    const int n = model.num_vars();
    Node root;
    root.lb.resize(static_cast<std::size_t>(n));
    root.ub.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        root.lb[static_cast<std::size_t>(i)] =
            model.vars()[static_cast<std::size_t>(i)].lb;
        root.ub[static_cast<std::size_t>(i)] =
            model.vars()[static_cast<std::size_t>(i)].ub;
    }

    double incumbent = std::numeric_limits<double>::max();
    std::vector<double> best_x;

    std::vector<Node> stack{std::move(root)};
    while (!stack.empty()) {
        if (result.nodes >= opts.max_nodes) {
            result.status = best_x.empty() ? MipStatus::kNodeLimit
                                           : MipStatus::kNodeLimit;
            result.x = best_x;
            result.obj = incumbent;
            return result;
        }
        const Node node = std::move(stack.back());
        stack.pop_back();
        ++result.nodes;

        const LpResult lp = solve_lp(model, opts.lp, &node.lb, &node.ub);
        if (lp.status != LpStatus::kOptimal) {
            continue;  // infeasible or pathological node — prune
        }
        if (lp.obj >= incumbent - 1e-9) {
            continue;  // bound prune
        }
        // Find the most fractional integer variable.
        int frac_var = -1;
        double frac_dist = opts.int_tol;
        for (int i = 0; i < n; ++i) {
            if (!model.vars()[static_cast<std::size_t>(i)].integer) {
                continue;
            }
            const double v = lp.x[static_cast<std::size_t>(i)];
            const double d = std::abs(v - std::round(v));
            if (d > frac_dist) {
                frac_dist = d;
                frac_var = i;
            }
        }
        if (frac_var < 0) {
            // Integral solution.
            incumbent = lp.obj;
            best_x = lp.x;
            continue;
        }
        const double v = lp.x[static_cast<std::size_t>(frac_var)];
        Node down = node;
        down.ub[static_cast<std::size_t>(frac_var)] = std::floor(v);
        Node up = node;
        up.lb[static_cast<std::size_t>(frac_var)] = std::ceil(v);
        // DFS; push the branch nearer the LP value last so it pops first.
        if (v - std::floor(v) < 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
        } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
        }
    }

    if (!best_x.empty()) {
        result.status = MipStatus::kOptimal;
        result.x = std::move(best_x);
        result.obj = incumbent;
    }
    return result;
}

}  // namespace mrlg::ilp
