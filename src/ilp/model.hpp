#pragma once
/// \file model.hpp
/// Tiny mixed-integer linear program builder. mrlg uses it to formulate the
/// paper's §6 local-legalization ILP; it replaces the external `lpsolve`
/// dependency (see DESIGN.md substitutions).
///
/// Minimization only. Variables carry bounds and an optional integrality
/// flag; constraints are linear with sense <=, >= or ==.

#include <string>
#include <vector>

namespace mrlg::ilp {

enum class Sense : char { kLe = 'L', kGe = 'G', kEq = 'E' };

struct Term {
    int var;
    double coef;
};

struct Constraint {
    std::vector<Term> terms;
    Sense sense = Sense::kLe;
    double rhs = 0.0;
};

struct Variable {
    double lb = 0.0;
    double ub = 0.0;
    double obj = 0.0;
    bool integer = false;
    std::string name;
};

class Model {
public:
    /// Adds a variable; returns its index.
    int add_var(double lb, double ub, double obj_coef, bool integer = false,
                std::string name = {});

    /// Adds Σ terms (sense) rhs.
    void add_constraint(std::vector<Term> terms, Sense sense, double rhs);

    const std::vector<Variable>& vars() const { return vars_; }
    const std::vector<Constraint>& constraints() const { return cons_; }
    int num_vars() const { return static_cast<int>(vars_.size()); }
    int num_constraints() const { return static_cast<int>(cons_.size()); }

    /// Evaluates the objective at `x`.
    double objective_value(const std::vector<double>& x) const;

    /// True when `x` satisfies all bounds and constraints within `tol`.
    bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

private:
    std::vector<Variable> vars_;
    std::vector<Constraint> cons_;
};

}  // namespace mrlg::ilp
