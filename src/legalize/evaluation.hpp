#pragma once
/// \file evaluation.hpp
/// Insertion-point evaluation (paper §5.2, Fig. 9).
///
/// Every local cell's displacement as a function of the target position xt
/// is a hinge: zero inside [xa_i, xb_i], slope ±1 outside (Eq. (3)). The
/// optimal xt minimizes the sum of hinges plus the target's own |xt - x't|;
/// the paper takes the median of the critical positions. We implement:
///   * evaluate_insertion_point_approx — the paper's default: critical
///     positions of the <= 2·h_t immediate neighbours only, O(h_t);
///   * evaluate_insertion_point_exact  — critical positions of every local
///     cell via the push-chain recursion over the neighbour DAG, O(|C_W|).
///
/// Concurrency contract: both evaluators are pure functions of the
/// LocalProblem plus their scratch argument — no globals, no Database
/// access. They already run concurrently across insertion points of one
/// problem (PR-1 intra-window parallelism) and, since the plan/commit
/// pipeline, across whole problems on distinct worker threads; each thread
/// must bring its own scratch.

#include <optional>
#include <vector>

#include "legalize/enumeration.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/target.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct Evaluation {
    bool feasible = false;
    SiteCoord xt = 0;     ///< Chosen target x (site units).
    double cost_um = 0.0; ///< Estimated displacement cost, microns
                          ///< (locals' x moves + target's x and y move).
};

/// Hinge cost model: sum_i max(0, a_i - x) + sum_j max(0, x - b_j)
/// + |x - pref|. `a` are left-cell critical positions (cell moves when the
/// target goes below a_i), `b` right-cell ones.
struct HingeSet {
    std::vector<SiteCoord> a;
    std::vector<SiteCoord> b;
    double pref = 0.0;
};

/// Exact critical positions for every local cell under `point`:
/// result[i] = {xa, xb} with xa = -inf (kSiteCoordMin) when the cell can
/// never be pushed left-ward chainwise, xb = +inf (kSiteCoordMax) likewise.
/// Exposed for tests and the exact evaluator.
struct CriticalPositions {
    std::vector<SiteCoord> xa;  ///< Push-left thresholds (left-side cells).
    std::vector<SiteCoord> xb;  ///< Push-right thresholds (right-side cells).
};

/// Reusable buffers for the per-candidate evaluation hot path. One scratch
/// object per thread; the MLL scan keeps a thread_local instance so
/// steady-state evaluation performs no allocations. A default-constructed
/// scratch is always valid.
struct EvalScratch {
    HingeSet hinges;
    CriticalPositions cp;
    // minimize_hinge_cost internals
    std::vector<SiteCoord> a_sorted;
    std::vector<SiteCoord> b_sorted;
    std::vector<SiteCoord> cand;
    std::vector<double> a_suffix;
    std::vector<double> b_prefix;
};

/// Minimizes the hinge cost over integer x in [lo, hi] (lo <= hi required).
/// Returns (argmin, cost). Cost unit: sites. Ties break toward smaller
/// |x - pref|, then smaller x — deterministic across platforms.
std::pair<SiteCoord, double> minimize_hinge_cost(const HingeSet& hinges,
                                                 SiteCoord lo, SiteCoord hi);
std::pair<SiteCoord, double> minimize_hinge_cost(const HingeSet& hinges,
                                                 SiteCoord lo, SiteCoord hi,
                                                 EvalScratch& scratch);

/// Paper §5.2 approximation: neighbours of the gap only.
MRLG_EFFECT_READONLY
Evaluation evaluate_insertion_point_approx(const LocalProblem& lp,
                                           const InsertionPoint& point,
                                           const TargetSpec& target);
Evaluation evaluate_insertion_point_approx(const LocalProblem& lp,
                                           const InsertionPoint& point,
                                           const TargetSpec& target,
                                           EvalScratch& scratch);

/// Exact evaluation: critical positions for all local cells.
MRLG_EFFECT_READONLY
Evaluation evaluate_insertion_point_exact(const LocalProblem& lp,
                                          const InsertionPoint& point,
                                          const TargetSpec& target);
Evaluation evaluate_insertion_point_exact(const LocalProblem& lp,
                                          const InsertionPoint& point,
                                          const TargetSpec& target,
                                          EvalScratch& scratch);

CriticalPositions compute_critical_positions(const LocalProblem& lp,
                                             const InsertionPoint& point,
                                             SiteCoord target_w);
/// In-place variant reusing `cp`'s buffers.
void compute_critical_positions(const LocalProblem& lp,
                                const InsertionPoint& point,
                                SiteCoord target_w, CriticalPositions& cp);

}  // namespace mrlg
