#pragma once
/// \file ripup.hpp
/// Rip-up-and-reinsert extension (beyond the paper): when MLL cannot place
/// a cell anywhere — typically a multi-row cell whose paired-row capacity
/// was consumed by earlier single-row placements — evict the single-row
/// cells under a candidate footprint, place the target there, and re-insert
/// the evicted cells through MLL. All sub-steps are tracked; if any
/// re-insertion fails the whole transaction is rolled back exactly, so the
/// placement is never left worse than before.
///
/// The paper's Algorithm 1 relies on unbounded random retries instead; see
/// DESIGN.md ("robustness extensions") for why that can spin forever once
/// rows are parity-starved.

#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/mll.hpp"

namespace mrlg {

struct RipupOptions {
    MllOptions mll;
    /// Candidate footprints to examine (rows near the preferred row ×
    /// x offsets near the preferred x).
    int max_candidates = 24;
    /// Refuse to evict more than this many cells per candidate.
    std::size_t max_evictions = 8;
    /// Invariant-audit level. At kFull the segment grid is audited after
    /// every committed transaction and after every rollback (the
    /// transaction promises bit-for-bit restoration; the audit verifies
    /// the grid is at least structurally intact). See check/audit.hpp.
    AuditLevel audit = AuditLevel::kOff;
};

struct RipupResult {
    bool success = false;
    SiteCoord x = 0;
    SiteCoord y = 0;
    std::size_t evicted = 0;     ///< Cells ripped and re-inserted.
    std::size_t candidates_tried = 0;
    double cost_um = 0.0;        ///< Target + re-insertion displacement.
};

/// Places the unplaced `target` near (pref_x, pref_y) by transactional
/// rip-up. On failure the placement is bit-for-bit unchanged. `scratch`
/// (optional) is forwarded to the internal re-insertion MLL calls so a
/// caller's per-thread buffers are reused across victims.
RipupResult ripup_place(Database& db, SegmentGrid& grid, CellId target,
                        double pref_x, double pref_y,
                        const RipupOptions& opts = {},
                        MllScratch* scratch = nullptr)
    MRLG_REQUIRES(grid_write_cap());

}  // namespace mrlg
