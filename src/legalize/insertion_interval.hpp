#pragma once
/// \file insertion_interval.hpp
/// Insertion intervals (paper §5.1.1): for every gap of every local row,
/// the inclusive range [lo, hi] of x positions where the target cell could
/// sit in that gap, derived from the leftmost/rightmost placements:
///   gap between cells i and j:        [xl_i + w_i , xr_j − w_t]
///   gap at the left segment wall:     [span.lo    , xr_j − w_t]
///   gap at the right segment wall:    [xl_i + w_i , span.hi − w_t]
/// Negative-length intervals (hi < lo) are discarded (Fig. 7(f)).

#include <vector>

#include "legalize/local_problem.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct InsertionInterval {
    int k = 0;    ///< Local row index.
    int gap = 0;  ///< Gap index in row k: between cells[gap-1] and cells[gap].
    SiteCoord lo = 0;  ///< Leftmost feasible target x (inclusive).
    SiteCoord hi = 0;  ///< Rightmost feasible target x (inclusive).

    /// Local-cell index left of the gap, or -1 at the segment wall.
    int left_cell(const LocalProblem& lp) const {
        return gap > 0 ? lp.row(k).cells[static_cast<std::size_t>(gap - 1)]
                       : -1;
    }
    /// Local-cell index right of the gap, or -1 at the segment wall.
    int right_cell(const LocalProblem& lp) const {
        const auto& cells = lp.row(k).cells;
        return gap < static_cast<int>(cells.size())
                   ? cells[static_cast<std::size_t>(gap)]
                   : -1;
    }
};

/// Builds all non-discarded intervals for a target of width `target_w`.
/// Requires compute_minmax_placement to have run on `lp`.
MRLG_EFFECT_READONLY
std::vector<InsertionInterval> build_insertion_intervals(
    const LocalProblem& lp, SiteCoord target_w);

/// Intersects the per-row feasible x ranges of the intervals matching the
/// chosen gaps (row k0+j must have an interval with gap == gaps[j]) into
/// [lo, hi]. Returns false — leaving [lo, hi] only partially tightened —
/// when some row has no matching interval (or `gaps` is empty): such a
/// combination was discarded during interval construction and must not be
/// realized. Callers (the MIP decode path) treat false as a hard error
/// rather than silently keeping the kSiteCoordMin/Max sentinels.
bool bind_point_to_intervals(const std::vector<InsertionInterval>& intervals,
                             int k0, const std::vector<int>& gaps,
                             SiteCoord& lo, SiteCoord& hi);

}  // namespace mrlg
