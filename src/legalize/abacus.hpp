#pragma once
/// \file abacus.hpp
/// Abacus (Spindler et al., ISPD'08) single-row legalizer baseline.
///
/// Abacus assigns each cell to a row and maintains per-row clusters whose
/// optimal positions are found in closed form; inserting a cell may shift
/// whole clusters, which is exactly what breaks with multi-row cells (a
/// shift in one row creates overlap in another — paper §1). This
/// implementation therefore *requires a single-row-height design*; calling
/// it on a design with multi-row cells reports failure, reproducing the
/// motivating claim. Used by bench_baselines.

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

struct AbacusOptions {
    /// How many rows above/below the gp row to examine per cell.
    SiteCoord row_search_radius = 16;
};

struct AbacusStats {
    bool success = false;
    bool rejected_multi_row = false;  ///< Design contained multi-row cells.
    std::size_t num_cells = 0;
    std::size_t unplaced = 0;
    double runtime_s = 0.0;
};

/// Legalizes a single-row-height design row by row with cluster collapse.
AbacusStats abacus_legalize(Database& db, SegmentGrid& grid,
                            const AbacusOptions& opts = {});

}  // namespace mrlg
