#include "legalize/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "eval/legality.hpp"
#include "util/timer.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

/// Nearest feasible x to px for a (w × h) footprint with bottom row y, or
/// nullopt. Merges the blocked intervals of all covered rows and scans the
/// free gaps.
std::optional<SiteCoord> nearest_free_x(const Database& db,
                                        const SegmentGrid& grid, SiteCoord y,
                                        double px, SiteCoord w, SiteCoord h,
                                        int region) {
    // Usable x range: intersection of covered rows' extents.
    SiteCoord x_lo = kSiteCoordMin;
    SiteCoord x_hi = kSiteCoordMax;
    for (SiteCoord r = y; r < y + h; ++r) {
        const Row& row = db.floorplan().row(r);
        x_lo = std::max(x_lo, row.x);
        x_hi = std::min(x_hi, static_cast<SiteCoord>(row.x + row.num_sites));
    }
    if (x_hi - x_lo < w) {
        return std::nullopt;
    }

    // Blocked spans: segment gaps (blockages) + placed cells.
    std::vector<Span> blocked;
    for (SiteCoord r = y; r < y + h; ++r) {
        SiteCoord cursor = x_lo;
        for (const SegmentId sid : grid.row_segments(r)) {
            const Segment& seg = grid.segment(sid);
            const Span s = intersect(seg.span, Span{x_lo, x_hi});
            if (s.empty()) {
                continue;
            }
            if (seg.region != region) {
                blocked.push_back(s);  // other regions are hard walls
                continue;
            }
            if (s.lo > cursor) {
                blocked.push_back(Span{cursor, s.lo});
            }
            cursor = std::max(cursor, s.hi);
            const auto [first, last] =
                grid.cells_overlapping(db, seg, Span{x_lo, x_hi});
            for (std::size_t i = first; i < last; ++i) {
                const Cell& c = db.cell(seg.cells[i]);
                blocked.push_back(Span{c.x(), c.x() + c.width()});
            }
        }
        if (cursor < x_hi) {
            blocked.push_back(Span{cursor, x_hi});
        }
    }
    std::sort(blocked.begin(), blocked.end(),
              [](const Span& a, const Span& b) { return a.lo < b.lo; });

    // Scan free gaps between merged blocked spans.
    std::optional<SiteCoord> best;
    double best_d = std::numeric_limits<double>::max();
    auto consider_gap = [&](SiteCoord lo, SiteCoord hi) {
        if (hi - lo < w) {
            return;
        }
        const double xc = std::clamp(px, static_cast<double>(lo),
                                     static_cast<double>(hi - w));
        const SiteCoord x = std::clamp<SiteCoord>(
            static_cast<SiteCoord>(std::lround(xc)), lo,
            static_cast<SiteCoord>(hi - w));
        const double d = std::abs(static_cast<double>(x) - px);
        if (d < best_d) {
            best_d = d;
            best = x;
        }
    };
    SiteCoord cursor = x_lo;
    for (const Span& b : blocked) {
        if (b.lo > cursor) {
            consider_gap(cursor, b.lo);
        }
        cursor = std::max(cursor, b.hi);
    }
    if (cursor < x_hi) {
        consider_gap(cursor, x_hi);
    }
    return best;
}

}  // namespace

std::optional<Point> find_nearest_free_position(const Database& db,
                                                const SegmentGrid& grid,
                                                CellId cell_id, double px,
                                                double py, bool check_rail) {
    const Cell& cell = db.cell(cell_id);
    const Floorplan& fp = db.floorplan();
    const double sw = fp.site_w_um();
    const double sh = fp.site_h_um();
    const SiteCoord h = cell.height();
    const SiteCoord max_y = std::max<SiteCoord>(0, fp.num_rows() - h);

    std::vector<SiteCoord> rows;
    rows.reserve(static_cast<std::size_t>(max_y) + 1);
    for (SiteCoord y = 0; y <= max_y; ++y) {
        if (!check_rail || rail_compatible(y, h, cell.rail_phase())) {
            rows.push_back(y);
        }
    }
    std::sort(rows.begin(), rows.end(), [&](SiteCoord a, SiteCoord b) {
        return std::abs(static_cast<double>(a) - py) <
               std::abs(static_cast<double>(b) - py);
    });

    double best_cost = std::numeric_limits<double>::max();
    std::optional<Point> best;
    for (const SiteCoord y : rows) {
        const double y_cost = std::abs(static_cast<double>(y) - py) * sh;
        if (y_cost >= best_cost) {
            break;  // rows sorted by |dy|; nothing further can win
        }
        const auto x = nearest_free_x(db, grid, y, px, cell.width(), h,
                                      cell.region());
        if (!x) {
            continue;
        }
        const double cost =
            y_cost + std::abs(static_cast<double>(*x) - px) * sw;
        if (cost < best_cost) {
            best_cost = cost;
            best = Point{*x, y};
        }
    }
    return best;
}

GreedyStats greedy_legalize(Database& db, SegmentGrid& grid,
                            const GreedyOptions& opts) {
    GridWriteScope grid_write;
    Timer timer;
    GreedyStats stats;
    std::vector<CellId> order = db.movable_cells();
    stats.num_cells = order.size();
    switch (opts.order) {
        case GreedyOptions::Order::kLeftToRight:
            std::stable_sort(order.begin(), order.end(),
                             [&](CellId a, CellId b) {
                                 return db.cell(a).gp_x() < db.cell(b).gp_x();
                             });
            break;
        case GreedyOptions::Order::kInputOrder:
            break;
        case GreedyOptions::Order::kAreaDescending:
            std::stable_sort(order.begin(), order.end(),
                             [&](CellId a, CellId b) {
                                 const auto& ca = db.cell(a);
                                 const auto& cb = db.cell(b);
                                 return ca.width() * ca.height() >
                                        cb.width() * cb.height();
                             });
            break;
    }

    for (const CellId c : order) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }

    for (const CellId c : order) {
        const Cell& cell = db.cell(c);
        const auto best = find_nearest_free_position(
            db, grid, c, cell.gp_x(), cell.gp_y(), opts.check_rail);
        if (best) {
            grid.place(db, c, best->x, best->y);
        } else {
            ++stats.unplaced;
        }
    }
    stats.success = stats.unplaced == 0;
    stats.runtime_s = timer.elapsed_s();
    return stats;
}

}  // namespace mrlg
