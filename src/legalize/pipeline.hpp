#pragma once
/// \file pipeline.hpp
/// Region-parallel plan/commit pipeline support for the legalizer.
///
/// The legalizer's retry rounds process a pending-cell queue. In the
/// region-parallel pipeline each round runs as a sequence of *waves*:
///
///   1. partition — walk the queue in order; each cell claims its
///      conservative AttemptFootprint in a FootprintLedger. A cell joins
///      the wave's batch iff its footprint is disjoint from every claim
///      made by *earlier* queue entries (batched or deferred); otherwise
///      it defers to the next wave, keeping its queue position.
///   2. plan — the batch's MLL problems are solved concurrently, read-only
///      against the wave-start grid (mll_plan, per-thread scratch).
///   3. commit — plans are applied serially in queue order (mll_commit).
///
/// Serial equivalence, by induction over the queue: a batched cell's
/// footprint is disjoint from every earlier pending cell's claim, and a
/// serial attempt only mutates state inside its own footprint (failed
/// attempts mutate nothing), so the state a batched cell's plan reads
/// equals the state its serial turn would have seen, and its commit writes
/// exactly what the serial attempt would have written. Deferred cells
/// re-enter the next wave against a grid identical to their serial-turn
/// state for the same reason. The outcome is therefore bit-identical to
/// the one-cell-at-a-time loop at every thread count — including the
/// degenerate dense case where every footprint conflicts and each wave
/// batches exactly one cell (serial order, serial speed).
///
/// Determinism contract: the partition walks the queue in index order and
/// the ledger is a fixed-layout bitmap — nothing here may iterate an
/// unordered container or depend on thread scheduling
/// (tools/lint_determinism.py pins this file down).

#include <cstdint>
#include <vector>

#include "legalize/local_region.hpp"
#include "legalize/mll.hpp"

namespace mrlg {

/// Bitmask ledger of claimed footprints: per die row, one bit per
/// kBucketSites-wide x bucket. Claims round *outward* to bucket
/// boundaries, so the ledger is conservative — it may report a conflict
/// for footprints up to kBucketSites-1 sites apart, which only defers a
/// cell by a wave, never lets a real overlap through. The payoff is that
/// conflict tests and claims are a handful of word-wide AND/OR operations;
/// the partition runs once per wave over every pending cell, so per-claim
/// cost dominates the pipeline's serial overhead.
class FootprintLedger {
public:
    /// Sites per conflict bucket (power of two; one bit per bucket).
    static constexpr SiteCoord kBucketSites = 8;

    /// Prepares the ledger for `num_rows` die rows spanning `x_extent`
    /// sites. Claims are clamped to the die on both axes: a footprint
    /// slice outside the rows or the x extent can hold no cell or segment,
    /// so two footprints overlapping only out there cannot interact.
    void reset(std::size_t num_rows, Span x_extent);

    /// True when `fp` overlaps any claimed footprint (bucket-conservative).
    bool conflicts(const AttemptFootprint& fp) const;

    /// Claims `fp`. Claimed even for deferred cells — later queue entries
    /// must yield to earlier ones regardless of whether those made it into
    /// the batch.
    void claim(const AttemptFootprint& fp);

private:
    Span x_extent_{0, 0};
    std::size_t num_rows_ = 0;
    std::size_t words_per_row_ = 0;
    /// Row-major bucket bitmap, words_per_row_ words per row.
    std::vector<std::uint64_t> bits_;
};

/// One pending cell's state across the waves of a round.
struct PlanTask {
    CellId cell;
    double px = 0.0;  ///< Preferred x for this round (gp + jitter).
    double py = 0.0;
    Rect fitted;      ///< nearest_aligned_position slot for (px, py).
    bool rail_ok = false;  ///< fitted row passes the rail-parity check.
    AttemptFootprint footprint;

    enum class State {
        kPending,   ///< Waiting for a wave.
        kInBatch,   ///< Selected by the current wave's partition.
        kPlaced,    ///< Committed (direct or MLL).
        kFailed,    ///< MLL failed this round; retry next round.
    };
    State state = State::kPending;

    /// Plan-phase result (filled by the wave's parallel plan pass).
    bool direct = false;  ///< fitted slot was free; no MLL plan needed.
    MllPlan plan;
};

/// Deterministic greedy interval-conflict partition: appends to `batch`
/// the indices (into `tasks`) of `pending` entries whose footprints are
/// pairwise disjoint *and* disjoint from every earlier pending claim, and
/// to `deferred` the rest, both in `pending` order. `ledger` must be
/// reset by the caller; on return it holds every pending claim.
void partition_wave(const std::vector<PlanTask>& tasks,
                    const std::vector<std::size_t>& pending,
                    FootprintLedger& ledger, std::vector<std::size_t>& batch,
                    std::vector<std::size_t>& deferred);

}  // namespace mrlg
