#include "legalize/realization.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mrlg {

namespace {

bool is_comb_row(const InsertionPoint& p, int k) {
    return k >= p.k0 && k < p.k0 + static_cast<int>(p.gaps.size());
}

}  // namespace

Realization realize_insertion(const LocalProblem& lp,
                              const InsertionPoint& point, SiteCoord xt,
                              SiteCoord target_w) {
    MRLG_ASSERT(xt >= point.lo && xt <= point.hi,
                "target x outside the insertion point's feasible range");
    Realization r;
    r.xt = xt;
    const std::size_t n = static_cast<std::size_t>(lp.num_cells());

    // Right side: ascending x. R starts at the current position; pushes
    // only ever increase it.
    std::vector<SiteCoord> R(n);
    for (std::size_t i = 0; i < n; ++i) {
        R[i] = lp.cell(static_cast<int>(i)).x;
    }
    for (const int ci : lp.by_x()) {
        const LpCell& c = lp.cell(ci);
        SiteCoord x = R[static_cast<std::size_t>(ci)];
        for (SiteCoord j = 0; j < c.h; ++j) {
            const int k = c.k0 + j;
            const int pos = c.pos_in_row[static_cast<std::size_t>(j)];
            if (is_comb_row(point, k) &&
                pos == point.gaps[static_cast<std::size_t>(k - point.k0)]) {
                x = std::max<SiteCoord>(x, xt + target_w);
            } else if (pos > 0) {
                const int l = lp.row(k).cells[static_cast<std::size_t>(pos - 1)];
                const LpCell& lc = lp.cell(l);
                x = std::max<SiteCoord>(
                    x, R[static_cast<std::size_t>(l)] + lc.w);
            }
        }
        R[static_cast<std::size_t>(ci)] = x;
    }

    // Left side: descending x.
    std::vector<SiteCoord> L(n);
    for (std::size_t i = 0; i < n; ++i) {
        L[i] = lp.cell(static_cast<int>(i)).x;
    }
    for (auto it = lp.by_x().rbegin(); it != lp.by_x().rend(); ++it) {
        const int ci = *it;
        const LpCell& c = lp.cell(ci);
        SiteCoord x = L[static_cast<std::size_t>(ci)];
        for (SiteCoord j = 0; j < c.h; ++j) {
            const int k = c.k0 + j;
            const int pos = c.pos_in_row[static_cast<std::size_t>(j)];
            const auto& row_cells = lp.row(k).cells;
            if (is_comb_row(point, k) &&
                pos + 1 ==
                    point.gaps[static_cast<std::size_t>(k - point.k0)]) {
                x = std::min<SiteCoord>(x, xt - c.w);
            } else if (pos + 1 < static_cast<int>(row_cells.size())) {
                const int rr = row_cells[static_cast<std::size_t>(pos + 1)];
                x = std::min<SiteCoord>(
                    x, L[static_cast<std::size_t>(rr)] - c.w);
            }
        }
        L[static_cast<std::size_t>(ci)] = x;
    }

    // Merge: a cell may move left or right, never both (valid insertion
    // points have disjoint push sets).
    r.new_x.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const LpCell& c = lp.cell(static_cast<int>(i));
        const bool moved_left = L[i] < c.x;
        const bool moved_right = R[i] > c.x;
        MRLG_ASSERT(!(moved_left && moved_right),
                    "cell pushed in both directions — invalid insertion "
                    "point slipped through enumeration");
        const SiteCoord nx = moved_left ? L[i] : R[i];
        MRLG_ASSERT(nx >= c.xl && nx <= c.xr,
                    "pushed cell left its feasible range");
        r.new_x[i] = nx;
        r.moved_sites += static_cast<double>(std::abs(nx - c.x));
    }
    r.ok = true;
    return r;
}

}  // namespace mrlg
