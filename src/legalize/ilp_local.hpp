#pragma once
/// \file ilp_local.hpp
/// ILP formulation of one local legalization problem (paper §6): the same
/// objective and constraints solved by MLL — fixed row assignment and
/// relative order for local cells, free gap choice for the target —
/// expressed as a MIP and solved with mrlg's own simplex + branch & bound
/// (the offline stand-in for lpsolve).
///
/// Variables (per candidate base row t, one MIP each):
///   x_i  ∈ [max row span lo, min row span hi - w_i]   local cell position
///   x_t                                              target position
///   d_i ≥ |x_i - x'_i|                                displacement
///   b_{r,g} ∈ {0,1}   target occupies gap g of combination row r
/// Constraints: per-row order chains x_next ≥ x_prev + w_prev; Σ_g b_{r,g}=1;
/// big-M gap activation for the target. Multi-row consistency is implicit
/// because a multi-row cell has one shared x variable.

#include "legalize/enumeration.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/target.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct IlpLocalResult {
    bool feasible = false;
    double cost_um = 0.0;  ///< Optimal displacement cost (locals + target).
    SiteCoord y_base = 0;  ///< Chosen absolute bottom row for the target.
    double x_target = 0.0;
    std::size_t nodes = 0;  ///< Total branch & bound nodes explored.
    /// Chosen insertion point of the optimum (local row index + gap per
    /// row, decoded from the binaries) — lets a caller realize/commit the
    /// MIP's solution through the regular realization machinery.
    int base_row_k = 0;
    std::vector<int> gaps;
};

/// Solves the local problem optimally via the MIP formulation. Used by
/// tests to validate solve_local_exact and by the Table 1 documentation
/// claim that the two agree.
MRLG_EFFECT_READONLY
IlpLocalResult solve_local_ilp(const LocalProblem& lp,
                               const TargetSpec& target,
                               const EnumerationOptions& opts = {});

}  // namespace mrlg
