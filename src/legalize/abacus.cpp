#include "legalize/abacus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "util/timer.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

/// One Abacus cluster: cells glued together, optimal position q/e.
struct Cluster {
    double e = 0.0;   ///< Total weight (Σ e_i).
    double q = 0.0;   ///< Σ e_i (x'_i - offset_i).
    SiteCoord w = 0;  ///< Total width.
    SiteCoord x = 0;  ///< Current (clamped) position.
    std::size_t first_cell = 0;  ///< Index into the row's cell sequence.
};

/// Per-segment Abacus state: the cells appended so far and their clusters.
struct SegmentState {
    Span span;
    SiteCoord y = 0;
    std::vector<CellId> cells;    ///< In insertion (x) order.
    std::vector<double> pref_x;   ///< Preferred x per cell.
    std::vector<SiteCoord> width;
    std::vector<Cluster> clusters;

    /// Appends a cell and collapses; returns the cell's final x, or
    /// nullopt when the segment is full.
    std::optional<SiteCoord> append(double px, SiteCoord w) {
        SiteCoord used = 0;
        for (const SiteCoord cw : width) {
            used += cw;
        }
        if (used + w > span.length()) {
            return std::nullopt;
        }
        cells.push_back(CellId{});  // id patched by caller
        pref_x.push_back(px);
        width.push_back(w);

        Cluster nc;
        nc.e = 1.0;
        nc.q = px;  // offset within its own cluster is 0
        nc.w = w;
        nc.first_cell = width.size() - 1;
        clusters.push_back(nc);
        collapse();
        // Final x of the appended cell = its cluster position + offset.
        const Cluster& last = clusters.back();
        SiteCoord off = 0;
        for (std::size_t i = last.first_cell; i + 1 < width.size(); ++i) {
            off += width[i];
        }
        return static_cast<SiteCoord>(last.x + off);
    }

    void collapse() {
        while (true) {
            Cluster& c = clusters.back();
            // Optimal unclamped position, then clamp into the segment.
            double x = c.q / c.e;
            x = std::clamp(x, static_cast<double>(span.lo),
                           static_cast<double>(span.hi - c.w));
            c.x = static_cast<SiteCoord>(std::lround(x));
            c.x = std::clamp<SiteCoord>(c.x, span.lo,
                                        static_cast<SiteCoord>(span.hi - c.w));
            if (clusters.size() < 2) {
                return;
            }
            Cluster& prev = clusters[clusters.size() - 2];
            if (prev.x + prev.w <= c.x) {
                return;
            }
            // Merge c into prev: offsets of c's cells shift by prev.w.
            prev.q += c.q - c.e * static_cast<double>(prev.w);
            prev.e += c.e;
            prev.w += c.w;
            clusters.pop_back();
        }
    }

    /// Positions of all cells from the cluster decomposition.
    void final_positions(std::vector<SiteCoord>& out) const {
        out.assign(width.size(), 0);
        for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
            const Cluster& c = clusters[ci];
            const std::size_t end = ci + 1 < clusters.size()
                                        ? clusters[ci + 1].first_cell
                                        : width.size();
            SiteCoord x = c.x;
            for (std::size_t i = c.first_cell; i < end; ++i) {
                out[i] = x;
                x += width[i];
            }
        }
    }
};

}  // namespace

AbacusStats abacus_legalize(Database& db, SegmentGrid& grid,
                            const AbacusOptions& opts) {
    GridWriteScope grid_write;
    Timer timer;
    AbacusStats stats;
    std::vector<CellId> order = db.movable_cells();
    stats.num_cells = order.size();

    for (const CellId c : order) {
        if (db.cell(c).height() > 1) {
            stats.rejected_multi_row = true;
            stats.unplaced = order.size();
            stats.runtime_s = timer.elapsed_s();
            return stats;  // multi-row cells unsupported by construction
        }
    }

    for (const CellId c : order) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
    // Abacus processes cells in x order.
    std::stable_sort(order.begin(), order.end(), [&](CellId a, CellId b) {
        return db.cell(a).gp_x() < db.cell(b).gp_x();
    });

    // One Abacus state per segment.
    std::vector<SegmentState> state(grid.num_segments());
    for (std::size_t i = 0; i < grid.num_segments(); ++i) {
        const Segment& s = grid.segments()[i];
        state[i].span = s.span;
        state[i].y = s.y;
    }

    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    std::vector<std::vector<CellId>> seg_assign(grid.num_segments());

    for (const CellId c : order) {
        const Cell& cell = db.cell(c);
        double best_cost = std::numeric_limits<double>::max();
        int best_seg = -1;
        SiteCoord best_x = 0;

        const SiteCoord y0 = static_cast<SiteCoord>(
            std::lround(std::clamp(cell.gp_y(), 0.0,
                                   static_cast<double>(
                                       db.floorplan().num_rows() - 1))));
        for (SiteCoord dy = 0; dy <= opts.row_search_radius; ++dy) {
            bool improved_possible = false;
            for (const SiteCoord y : {static_cast<SiteCoord>(y0 - dy),
                                      static_cast<SiteCoord>(y0 + dy)}) {
                if (y < 0 || y >= db.floorplan().num_rows() ||
                    (dy == 0 && y != y0)) {
                    continue;
                }
                const double y_cost =
                    std::abs(static_cast<double>(y) - cell.gp_y()) * sh;
                if (y_cost >= best_cost) {
                    continue;
                }
                improved_possible = true;
                for (const SegmentId sid : grid.row_segments(y)) {
                    // Trial insertion on a copy of the segment state.
                    SegmentState trial = state[sid.index()];
                    const auto x = trial.append(cell.gp_x(), cell.width());
                    if (!x) {
                        continue;
                    }
                    const double cost =
                        y_cost + std::abs(static_cast<double>(*x) -
                                          cell.gp_x()) *
                                     sw;
                    if (cost < best_cost) {
                        best_cost = cost;
                        best_seg = sid.value();
                        best_x = *x;
                    }
                }
            }
            if (!improved_possible && best_seg >= 0) {
                break;
            }
        }
        if (best_seg < 0) {
            ++stats.unplaced;
            continue;
        }
        SegmentState& s = state[static_cast<std::size_t>(best_seg)];
        s.append(cell.gp_x(), cell.width());
        s.cells.back() = c;
        seg_assign[static_cast<std::size_t>(best_seg)].push_back(c);
        static_cast<void>(best_x);
    }

    // Commit final per-segment positions.
    for (std::size_t i = 0; i < state.size(); ++i) {
        const SegmentState& s = state[i];
        if (s.cells.empty()) {
            continue;
        }
        std::vector<SiteCoord> xs;
        s.final_positions(xs);
        for (std::size_t j = 0; j < s.cells.size(); ++j) {
            grid.place(db, s.cells[j], xs[j], s.y);
        }
    }
    stats.success = stats.unplaced == 0;
    stats.runtime_s = timer.elapsed_s();
    return stats;
}

}  // namespace mrlg
