#include "legalize/local_region.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace mrlg {

namespace {

/// Distance from span to a point, in doubled coordinates (0 when inside).
SiteCoord span_distance2(const Span& s, SiteCoord cx2) {
    const SiteCoord lo2 = 2 * s.lo;
    const SiteCoord hi2 = 2 * s.hi;
    if (cx2 < lo2) {
        return lo2 - cx2;
    }
    if (cx2 > hi2) {
        return cx2 - hi2;
    }
    return 0;
}

/// Subtracts `cut` from every span in `pieces` (in place). `tmp` is a
/// caller-provided double-buffer so repeated calls reuse one allocation.
void subtract(std::vector<Span>& pieces, const Span& cut,
              std::vector<Span>& tmp) {
    tmp.clear();
    tmp.reserve(pieces.size() + 1);
    for (const Span& p : pieces) {
        if (!p.overlaps(cut)) {
            tmp.push_back(p);
            continue;
        }
        if (cut.lo > p.lo) {
            tmp.push_back(Span{p.lo, cut.lo});
        }
        if (cut.hi < p.hi) {
            tmp.push_back(Span{cut.hi, p.hi});
        }
    }
    pieces.swap(tmp);
}

/// Picks the piece closest to centre x (doubled coords); ties broken by
/// larger width then smaller lo, so the choice is deterministic.
std::optional<std::size_t> pick_piece(const std::vector<Span>& pieces,
                                      SiteCoord cx2) {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (pieces[i].empty()) {
            continue;
        }
        if (!best) {
            best = i;
            continue;
        }
        const Span& a = pieces[i];
        const Span& b = pieces[*best];
        const SiteCoord da = span_distance2(a, cx2);
        const SiteCoord db = span_distance2(b, cx2);
        if (da < db || (da == db && (a.length() > b.length() ||
                                     (a.length() == b.length() &&
                                      a.lo < b.lo)))) {
            best = i;
        }
    }
    return best;
}

}  // namespace

AttemptFootprint compute_attempt_footprint(const Rect& window,
                                           const Rect& fitted,
                                           SiteCoord max_cell_width) {
    const SiteCoord pad = std::max<SiteCoord>(max_cell_width - 1, 0);
    AttemptFootprint fp;
    fp.rows = Span{std::min(window.y, fitted.y),
                   std::max(window.y_hi(), fitted.y_hi())};
    fp.x = Span{static_cast<SiteCoord>(std::min(window.x, fitted.x) - pad),
                static_cast<SiteCoord>(
                    std::max(window.x_hi(), fitted.x_hi()) + pad)};
    return fp;
}

LocalRegion extract_local_region(const Database& db, const SegmentGrid& grid,
                                 const Rect& window, int fence_region,
                                 LocalRegionScratch* scratch) {
    const SiteCoord num_rows = db.floorplan().num_rows();
    const SiteCoord y_lo = std::max<SiteCoord>(window.y, 0);
    const SiteCoord y_hi = std::min<SiteCoord>(window.y_hi(), num_rows);
    const std::size_t height =
        y_hi > y_lo ? static_cast<std::size_t>(y_hi - y_lo) : 0;

    LocalRegion region(window, y_lo, height);
    if (height == 0) {
        return region;
    }
    const SiteCoord cx2 = window.center2().x;

    LocalRegionScratch local_scratch;
    LocalRegionScratch& s = scratch != nullptr ? *scratch : local_scratch;

    // Per row: candidate pieces (span within window, cut by blockers) and
    // the global segment each piece came from.
    using RowState = LocalRegionScratch::RowScratch;
    if (s.rows.size() < height) {
        s.rows.resize(height);
    }
    std::vector<RowState>& state = s.rows;
    for (std::size_t k = 0; k < height; ++k) {
        state[k].pieces.clear();
        state[k].piece_segment.clear();
        state[k].chosen.reset();
    }

    // `blockers` = cells currently known to be non-local. Initially: every
    // placed cell whose rect is not fully contained in the window.
    std::unordered_set<CellId>& blockers = s.blockers;
    blockers.clear();

    auto rebuild_row = [&](std::size_t k) {
        RowState& rs = state[k];
        rs.pieces.clear();
        rs.piece_segment.clear();
        const SiteCoord y = y_lo + static_cast<SiteCoord>(k);
        for (const SegmentId sid : grid.row_segments(y)) {
            const Segment& seg = grid.segment(sid);
            if (seg.region != fence_region) {
                continue;  // other fence regions are hard walls
            }
            const Span base = intersect(seg.span, window.x_span());
            if (base.empty()) {
                continue;
            }
            std::vector<Span>& pieces = s.seg_pieces;
            pieces.clear();
            pieces.push_back(base);
            // Cut by blocker cells on this segment.
            const auto [first, last] =
                grid.cells_overlapping(db, seg, base);
            for (std::size_t i = first; i < last; ++i) {
                const CellId c = seg.cells[i];
                if (blockers.count(c) != 0) {
                    const Cell& cell = db.cell(c);
                    subtract(pieces,
                             Span{cell.x(), cell.x() + cell.width()},
                             s.span_tmp);
                }
            }
            for (const Span& p : pieces) {
                rs.pieces.push_back(p);
                rs.piece_segment.push_back(sid);
            }
        }
        rs.chosen = pick_piece(rs.pieces, cx2);
    };

    // Seed initial blockers: any placed cell overlapping the window rows
    // whose rect is not contained in the window.
    for (SiteCoord y = y_lo; y < y_hi; ++y) {
        for (const SegmentId sid : grid.row_segments(y)) {
            const Segment& seg = grid.segment(sid);
            if (seg.region != fence_region) {
                continue;
            }
            const Span base = intersect(seg.span, window.x_span());
            if (base.empty()) {
                continue;
            }
            const auto [first, last] = grid.cells_overlapping(db, seg, base);
            for (std::size_t i = first; i < last; ++i) {
                const CellId c = seg.cells[i];
                if (!window.contains(db.cell(c).rect())) {
                    blockers.insert(c);
                }
            }
        }
    }

    for (std::size_t k = 0; k < height; ++k) {
        rebuild_row(k);
    }

    // Fixpoint: a cell is local iff every row slice lies inside the chosen
    // piece of that row. Any cell that overlaps a chosen piece without being
    // local becomes a blocker; blockers grow monotonically, so this
    // terminates (each iteration either adds a blocker or stops).
    auto cell_is_local = [&](CellId c) {
        const Cell& cell = db.cell(c);
        if (blockers.count(c) != 0) {
            return false;
        }
        const Span xs{cell.x(), cell.x() + cell.width()};
        for (SiteCoord y = cell.y(); y < cell.y() + cell.height(); ++y) {
            const SiteCoord k = y - y_lo;
            if (k < 0 || static_cast<std::size_t>(k) >= height) {
                return false;
            }
            const RowState& rs = state[static_cast<std::size_t>(k)];
            if (!rs.chosen || !rs.pieces[*rs.chosen].contains(xs)) {
                return false;
            }
        }
        return true;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t k = 0; k < height && !changed; ++k) {
            const RowState& rs = state[k];
            if (!rs.chosen) {
                continue;
            }
            const Span piece = rs.pieces[*rs.chosen];
            const SegmentId sid = rs.piece_segment[*rs.chosen];
            const Segment& seg = grid.segment(sid);
            const auto [first, last] = grid.cells_overlapping(db, seg, piece);
            for (std::size_t i = first; i < last; ++i) {
                const CellId c = seg.cells[i];
                const Cell& cell = db.cell(c);
                const Span xs{cell.x(), cell.x() + cell.width()};
                if (!xs.overlaps(piece)) {
                    continue;
                }
                if (!cell_is_local(c) && blockers.count(c) == 0) {
                    blockers.insert(c);
                    // Rebuild every row the blocker touches.
                    for (SiteCoord y = cell.y();
                         y < cell.y() + cell.height(); ++y) {
                        const SiteCoord kk = y - y_lo;
                        if (kk >= 0 &&
                            static_cast<std::size_t>(kk) < height) {
                            rebuild_row(static_cast<std::size_t>(kk));
                        }
                    }
                    changed = true;
                    break;
                }
            }
        }
    }

    // Emit final rows and local cell lists.
    std::vector<CellId>& locals = s.locals;
    locals.clear();
    for (std::size_t k = 0; k < height; ++k) {
        const RowState& rs = state[k];
        if (!rs.chosen) {
            continue;
        }
        const Span piece = rs.pieces[*rs.chosen];
        const SegmentId sid = rs.piece_segment[*rs.chosen];
        const Segment& seg = grid.segment(sid);
        LocalRow lr;
        lr.y = y_lo + static_cast<SiteCoord>(k);
        lr.span = piece;
        lr.global_segment = sid;
        const auto [first, last] = grid.cells_overlapping(db, seg, piece);
        for (std::size_t i = first; i < last; ++i) {
            const CellId c = seg.cells[i];
            if (cell_is_local(c)) {
                lr.cells.push_back(c);
                if (db.cell(c).y() == lr.y) {  // count each cell once
                    locals.push_back(c);
                }
            }
        }
        region.mutable_row(static_cast<int>(k)) = std::move(lr);
    }
    std::sort(locals.begin(), locals.end());
    // Copy (not move): `locals` may be scratch-owned and must keep its
    // capacity for the next extraction.
    region.set_local_cells(std::vector<CellId>(locals.begin(), locals.end()));
    return region;
}

}  // namespace mrlg
