#pragma once
/// \file target.hpp
/// Description of the cell MLL is trying to insert.

#include "db/types.hpp"
#include "util/geometry.hpp"

namespace mrlg {

struct TargetSpec {
    CellId id;          ///< The unplaced target cell.
    SiteCoord w = 0;    ///< Width in sites.
    SiteCoord h = 0;    ///< Height in rows.
    double pref_x = 0;  ///< Preferred x (fractional sites) — displacement 0 here.
    double pref_y = 0;  ///< Preferred bottom row (fractional rows).
    RailPhase rail_phase = RailPhase::kEven;
};

}  // namespace mrlg
