#include "legalize/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mrlg {

namespace {

/// Post-insertion right neighbour of local cell `ci` on local row `k`:
/// returns the neighbour cell index, or -2 when the neighbour is the
/// target, or -1 when there is none (segment wall).
int right_neighbor(const LocalProblem& lp, const InsertionPoint& p, int ci,
                   int k) {
    const LpCell& c = lp.cell(ci);
    const int pos = c.pos_in_row[static_cast<std::size_t>(k - c.k0)];
    const auto& row_cells = lp.row(k).cells;
    const bool comb_row =
        k >= p.k0 && k < p.k0 + static_cast<int>(p.gaps.size());
    if (comb_row && pos + 1 == p.gaps[static_cast<std::size_t>(k - p.k0)]) {
        return -2;  // target sits immediately to the right
    }
    if (pos + 1 < static_cast<int>(row_cells.size())) {
        return row_cells[static_cast<std::size_t>(pos + 1)];
    }
    return -1;
}

/// Post-insertion left neighbour; same encoding as right_neighbor.
int left_neighbor(const LocalProblem& lp, const InsertionPoint& p, int ci,
                  int k) {
    const LpCell& c = lp.cell(ci);
    const int pos = c.pos_in_row[static_cast<std::size_t>(k - c.k0)];
    const auto& row_cells = lp.row(k).cells;
    const bool comb_row =
        k >= p.k0 && k < p.k0 + static_cast<int>(p.gaps.size());
    if (comb_row && pos == p.gaps[static_cast<std::size_t>(k - p.k0)]) {
        return -2;  // target sits immediately to the left
    }
    if (pos > 0) {
        return row_cells[static_cast<std::size_t>(pos - 1)];
    }
    return -1;
}

double y_cost_um(const LocalProblem& lp, const InsertionPoint& p,
                 const TargetSpec& target) {
    const double y_abs = static_cast<double>(lp.y0() + p.k0);
    return std::abs(y_abs - target.pref_y) * lp.site_h_um();
}

}  // namespace

std::pair<SiteCoord, double> minimize_hinge_cost(const HingeSet& hinges,
                                                 SiteCoord lo, SiteCoord hi) {
    EvalScratch scratch;
    return minimize_hinge_cost(hinges, lo, hi, scratch);
}

std::pair<SiteCoord, double> minimize_hinge_cost(const HingeSet& hinges,
                                                 SiteCoord lo, SiteCoord hi,
                                                 EvalScratch& scratch) {
    MRLG_ASSERT(lo <= hi, "empty feasible range");
    std::vector<SiteCoord>& a = scratch.a_sorted;
    std::vector<SiteCoord>& b = scratch.b_sorted;
    a.assign(hinges.a.begin(), hinges.a.end());
    b.assign(hinges.b.begin(), hinges.b.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    // Suffix sums of a (for sum of a_i > x), prefix sums of b.
    std::vector<double>& a_suffix = scratch.a_suffix;
    a_suffix.assign(a.size() + 1, 0.0);
    for (std::size_t i = a.size(); i-- > 0;) {
        a_suffix[i] = a_suffix[i + 1] + static_cast<double>(a[i]);
    }
    std::vector<double>& b_prefix = scratch.b_prefix;
    b_prefix.assign(b.size() + 1, 0.0);
    for (std::size_t i = 0; i < b.size(); ++i) {
        b_prefix[i + 1] = b_prefix[i] + static_cast<double>(b[i]);
    }

    auto cost_at = [&](SiteCoord x) -> double {
        // sum over a_i > x of (a_i - x)
        const auto ita = std::upper_bound(a.begin(), a.end(), x);
        const std::size_t ia = static_cast<std::size_t>(ita - a.begin());
        const double ca = a_suffix[ia] - static_cast<double>(a.size() - ia) *
                                             static_cast<double>(x);
        // sum over b_j < x of (x - b_j)
        const auto itb = std::lower_bound(b.begin(), b.end(), x);
        const std::size_t ib = static_cast<std::size_t>(itb - b.begin());
        const double cb =
            static_cast<double>(ib) * static_cast<double>(x) - b_prefix[ib];
        return ca + cb + std::abs(static_cast<double>(x) - hinges.pref);
    };

    // Candidate positions: every breakpoint clamped into [lo, hi].
    std::vector<SiteCoord>& cand = scratch.cand;
    cand.clear();
    cand.push_back(lo);
    cand.push_back(hi);
    auto push_clamped = [&](double v) {
        const double c = std::clamp(v, static_cast<double>(lo),
                                    static_cast<double>(hi));
        cand.push_back(static_cast<SiteCoord>(std::floor(c)));
        cand.push_back(static_cast<SiteCoord>(std::ceil(c)));
    };
    for (const SiteCoord v : a) {
        push_clamped(static_cast<double>(v));
    }
    for (const SiteCoord v : b) {
        push_clamped(static_cast<double>(v));
    }
    push_clamped(hinges.pref);
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

    SiteCoord best_x = lo;
    double best_cost = std::numeric_limits<double>::max();
    for (const SiteCoord x : cand) {
        if (x < lo || x > hi) {
            continue;
        }
        const double c = cost_at(x);
        const double d_pref = std::abs(static_cast<double>(x) - hinges.pref);
        const double best_d_pref =
            std::abs(static_cast<double>(best_x) - hinges.pref);
        if (c < best_cost - 1e-9 ||
            (std::abs(c - best_cost) <= 1e-9 &&
             (d_pref < best_d_pref - 1e-9 ||
              (std::abs(d_pref - best_d_pref) <= 1e-9 && x < best_x)))) {
            best_cost = c;
            best_x = x;
        }
    }
    return {best_x, best_cost};
}

Evaluation evaluate_insertion_point_approx(const LocalProblem& lp,
                                           const InsertionPoint& point,
                                           const TargetSpec& target) {
    EvalScratch scratch;
    return evaluate_insertion_point_approx(lp, point, target, scratch);
}

Evaluation evaluate_insertion_point_approx(const LocalProblem& lp,
                                           const InsertionPoint& point,
                                           const TargetSpec& target,
                                           EvalScratch& scratch) {
    Evaluation ev;
    if (point.lo > point.hi) {
        return ev;
    }
    HingeSet& hinges = scratch.hinges;
    hinges.a.clear();
    hinges.b.clear();
    hinges.pref = target.pref_x;
    const int ht = static_cast<int>(point.gaps.size());
    // One hinge per neighbouring CELL, not per combination row: a
    // multi-row neighbour adjacent to the target in several rows still
    // moves only once, so per-row hinges would double-count its
    // displacement (and the estimate would stop being a lower bound on
    // the realized cost). ht is tiny; linear membership checks suffice.
    std::vector<int> seen_left;
    std::vector<int> seen_right;
    for (int j = 0; j < ht; ++j) {
        const int k = point.k0 + j;
        const LpRow& row = lp.row(k);
        const int gap = point.gaps[static_cast<std::size_t>(j)];
        if (gap > 0) {
            const int li = row.cells[static_cast<std::size_t>(gap - 1)];
            if (std::find(seen_left.begin(), seen_left.end(), li) ==
                seen_left.end()) {
                seen_left.push_back(li);
                const LpCell& left = lp.cell(li);
                hinges.a.push_back(left.x + left.w);
            }
        }
        if (gap < static_cast<int>(row.cells.size())) {
            const int ri = row.cells[static_cast<std::size_t>(gap)];
            if (std::find(seen_right.begin(), seen_right.end(), ri) ==
                seen_right.end()) {
                seen_right.push_back(ri);
                const LpCell& right = lp.cell(ri);
                hinges.b.push_back(right.x - target.w);
            }
        }
    }
    const auto [xt, cost_sites] =
        minimize_hinge_cost(hinges, point.lo, point.hi, scratch);
    ev.feasible = true;
    ev.xt = xt;
    ev.cost_um = cost_sites * lp.site_w_um() + y_cost_um(lp, point, target);
    return ev;
}

CriticalPositions compute_critical_positions(const LocalProblem& lp,
                                             const InsertionPoint& point,
                                             SiteCoord target_w) {
    CriticalPositions cp;
    compute_critical_positions(lp, point, target_w, cp);
    return cp;
}

void compute_critical_positions(const LocalProblem& lp,
                                const InsertionPoint& point,
                                SiteCoord target_w, CriticalPositions& cp) {
    const std::size_t n = static_cast<std::size_t>(lp.num_cells());
    cp.xa.assign(n, kSiteCoordMin);
    cp.xb.assign(n, kSiteCoordMax);

    // Push-left thresholds: process cells right-to-left; a cell is pushed
    // left when its post-insertion right neighbour (or the target) forces
    // it:  xa_k = x_k + w_k + max over pushers r of (xa_r - x_r),
    // with the target contributing 0.
    for (auto it = lp.by_x().rbegin(); it != lp.by_x().rend(); ++it) {
        const int ci = *it;
        const LpCell& c = lp.cell(ci);
        SiteCoord best = kSiteCoordMin;
        bool any = false;
        for (SiteCoord j = 0; j < c.h; ++j) {
            const int k = c.k0 + j;
            const int nb = right_neighbor(lp, point, ci, k);
            if (nb == -2) {
                best = std::max<SiteCoord>(best, 0);
                any = true;
            } else if (nb >= 0 &&
                       cp.xa[static_cast<std::size_t>(nb)] != kSiteCoordMin) {
                best = std::max<SiteCoord>(
                    best, cp.xa[static_cast<std::size_t>(nb)] -
                              lp.cell(nb).x);
                any = true;
            }
        }
        if (any) {
            cp.xa[static_cast<std::size_t>(ci)] = c.x + c.w + best;
        }
    }

    // Push-right thresholds, mirrored:  xb_k = x_k + min over pushers l of
    // (xb_l - x_l - w_l), target contributing -target_w.
    for (const int ci : lp.by_x()) {
        const LpCell& c = lp.cell(ci);
        SiteCoord best = kSiteCoordMax;
        bool any = false;
        for (SiteCoord j = 0; j < c.h; ++j) {
            const int k = c.k0 + j;
            const int nb = left_neighbor(lp, point, ci, k);
            if (nb == -2) {
                best = std::min<SiteCoord>(best, -target_w);
                any = true;
            } else if (nb >= 0 &&
                       cp.xb[static_cast<std::size_t>(nb)] != kSiteCoordMax) {
                const LpCell& l = lp.cell(nb);
                best = std::min<SiteCoord>(
                    best,
                    cp.xb[static_cast<std::size_t>(nb)] - l.x - l.w);
                any = true;
            }
        }
        if (any) {
            cp.xb[static_cast<std::size_t>(ci)] = c.x + best;
        }
    }
}

Evaluation evaluate_insertion_point_exact(const LocalProblem& lp,
                                          const InsertionPoint& point,
                                          const TargetSpec& target) {
    EvalScratch scratch;
    return evaluate_insertion_point_exact(lp, point, target, scratch);
}

Evaluation evaluate_insertion_point_exact(const LocalProblem& lp,
                                          const InsertionPoint& point,
                                          const TargetSpec& target,
                                          EvalScratch& scratch) {
    Evaluation ev;
    if (point.lo > point.hi) {
        return ev;
    }
    compute_critical_positions(lp, point, target.w, scratch.cp);
    const CriticalPositions& cp = scratch.cp;
    HingeSet& hinges = scratch.hinges;
    hinges.a.clear();
    hinges.b.clear();
    hinges.pref = target.pref_x;
    for (std::size_t i = 0; i < cp.xa.size(); ++i) {
        const bool has_a = cp.xa[i] != kSiteCoordMin;
        const bool has_b = cp.xb[i] != kSiteCoordMax;
        MRLG_ASSERT(!(has_a && has_b),
                    "cell reachable from both push directions — "
                    "inconsistent insertion point");
        if (has_a) {
            hinges.a.push_back(cp.xa[i]);
        } else if (has_b) {
            hinges.b.push_back(cp.xb[i]);
        }
    }
    const auto [xt, cost_sites] =
        minimize_hinge_cost(hinges, point.lo, point.hi, scratch);
    ev.feasible = true;
    ev.xt = xt;
    ev.cost_um = cost_sites * lp.site_w_um() + y_cost_um(lp, point, target);
    return ev;
}

}  // namespace mrlg
