#pragma once
/// \file greedy.hpp
/// Greedy ("Tetris"-style, Hill [7]) mixed-size legalizer baseline: cells
/// are processed once in a chosen order and snapped to the nearest free
/// legal position; *placed cells never move*. The paper's introduction
/// argues this class of legalizers suffers high displacement at high
/// design density — bench_baselines quantifies that claim against MLL.

#include <cstdint>
#include <optional>

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

struct GreedyOptions {
    bool check_rail = true;
    enum class Order {
        kLeftToRight,    ///< Classic Tetris order (by gp x).
        kInputOrder,
        kAreaDescending, ///< Big cells first — helps multi-row cells fit.
    };
    Order order = Order::kLeftToRight;
};

struct GreedyStats {
    bool success = false;
    std::size_t num_cells = 0;
    std::size_t unplaced = 0;
    double runtime_s = 0.0;
};

/// Legalizes every movable cell greedily. Cells that fit nowhere remain
/// unplaced (success = false).
GreedyStats greedy_legalize(Database& db, SegmentGrid& grid,
                            const GreedyOptions& opts = {});

/// Nearest completely free legal position for `cell` around the preferred
/// fractional position, without moving any placed cell (the greedy
/// baseline's inner search). Returns nullopt when no free slot exists.
/// Also used by the full legalizer as a deterministic fallback when the
/// randomized retry rounds of Algorithm 1 keep missing the remaining free
/// space on very dense designs.
std::optional<Point> find_nearest_free_position(const Database& db,
                                                const SegmentGrid& grid,
                                                CellId cell, double px,
                                                double py, bool check_rail);

}  // namespace mrlg
