#pragma once
/// \file legalizer.hpp
/// Full-design incremental legalization (paper §3, Algorithm 1):
/// first pass places every cell at (or MLL-legalizes around) its global
/// placement position; cells that could not be placed are retried with
/// uniformly random offsets whose range grows with the round number
/// (Rand_x(k) ∈ [-Rx·(k-1), Rx·(k-1)], likewise Rand_y).

#include <cstdint>

#include "check/audit.hpp"
#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/mll.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct LegalizerOptions {
    MllOptions mll;
    std::uint64_t seed = 1;
    /// Bound on retry rounds (Algorithm 1's while-loop runs until empty;
    /// we guard against infeasible inputs). A round whose offsets reach
    /// the die size effectively searches everywhere.
    int max_rounds = 64;
    enum class Order {
        kInputOrder,   ///< Paper: "arbitrary order".
        kLeftToRight,  ///< Sort by gp x.
        kAreaDescending,
        /// Multi-row cells first (input order within each group). Single-
        /// row cells can always squeeze into leftover gaps, but a late
        /// multi-row cell can be starved when earlier single-row cells
        /// consume the paired-row capacity (MLL never moves a placed cell
        /// across rows, §4). The paper leaves the order "arbitrary"; this
        /// is the robust arbitrary choice, and the default.
        kMultiRowFirst,
    };
    Order order = Order::kMultiRowFirst;
    /// Unplace all movable cells before starting (Algorithm 1 line 1).
    bool unplace_first = true;
    /// From this retry round on, a failed MLL attempt additionally falls
    /// back to the nearest completely free slot (deterministic; no cells
    /// moved). Algorithm 1's random offsets alone can keep missing the
    /// few remaining free pockets on very dense designs; the fallback
    /// bounds the tail. Set past max_rounds to disable.
    int free_slot_fallback_round = 6;
    /// Last resort, two rounds after the free-slot fallback: evict
    /// single-row cells under a candidate footprint, place the target and
    /// re-insert the evicted cells (transactional — see ripup.hpp).
    /// Rescues multi-row cells whose paired-row capacity was starved.
    bool enable_ripup = true;
    /// Worker threads for the parallel evaluation hot paths. Fills
    /// mll.num_threads when that is 0; 0 here means the MRLG_THREADS
    /// environment default. Results are bit-identical for any value (see
    /// thread_pool.hpp's determinism contract).
    int num_threads = 0;
    /// Main-loop parallelization strategy.
    enum class Pipeline {
        /// One cell at a time; parallelism only inside each MLL's
        /// insertion-point scan (the PR-1 intra-window layer).
        kSerial,
        /// Plan/commit waves over disjoint local-region footprints
        /// (legalize/pipeline.hpp): cells whose conservative footprints
        /// don't overlap are planned concurrently and committed serially
        /// in queue order. Bit-identical to kSerial at every thread count
        /// by construction; rounds that enable the free-slot fallback or
        /// rip-up (both have unbounded footprints) fall back to the
        /// serial loop automatically.
        kRegionParallel,
    };
    Pipeline pipeline = Pipeline::kRegionParallel;
    /// Invariant-audit level for the run; defaults to the MRLG_VALIDATE
    /// environment level (off when unset, so production runs pay nothing).
    /// kCheap audits the database and segment grid after setup, after
    /// every retry round, and once more at the end. kFull additionally
    /// audits after every committed placement and every rip-up
    /// transaction, checks each MLL extraction/packing (see MllOptions),
    /// and cross-checks the final state with the independent
    /// eval/legality sweep. Violations throw AssertionError.
    AuditLevel audit = audit_level_from_env();
};

/// Per-run statistics. Contract: every field here is surfaced verbatim in
/// the run report's `legalizer` block (obs/run_report.cpp stats_json —
/// keep the two in sync; test_obs.cpp RunReport.ContainsAllBlocks checks)
/// and mirrored as `legalize.*` obs counters at the end of a run.
struct LegalizerStats {
    bool success = false;       ///< Every movable cell placed.
    std::size_t num_cells = 0;
    std::size_t direct_placements = 0;  ///< Overlap-free at first try.
    std::size_t mll_successes = 0;
    std::size_t mll_failures = 0;  ///< Failed MLL attempts (incl. retries).
    std::size_t fallback_placements = 0;  ///< Free-slot fallback hits.
    std::size_t ripup_placements = 0;     ///< Rip-up transactions applied.
    std::size_t unplaced = 0;      ///< Cells still unplaced at the end.
    /// Insertion points evaluated across all direct MLL attempts (the
    /// parallel scan's per-point count, summed; rip-up internals excluded).
    std::size_t mll_points_evaluated = 0;
    /// Invariant audits executed by this run's hooks (0 when auditing is
    /// off); lets callers and tests confirm the hooks actually fired.
    std::size_t audits_run = 0;
    /// Plan/commit waves executed by the region-parallel pipeline (0 under
    /// Pipeline::kSerial). A round with no footprint conflicts is one
    /// wave; a fully-conflicting round degrades to one wave per cell.
    std::size_t waves = 0;
    /// Cells pushed to a later wave because their footprint overlapped an
    /// earlier pending cell's claim (plus the — by construction
    /// unreachable — commit-time invalidation requeues). Pipeline-health
    /// signal: high values mean the batches are thin and the round is
    /// effectively serial.
    std::size_t conflict_requeues = 0;
    int rounds = 0;
    double runtime_s = 0.0;
};

/// Legalizes every movable cell of `db`. Fixed cells must already be
/// frozen into the floorplan (Database::freeze_fixed_cells) and `grid`
/// built afterwards.
LegalizerStats legalize_placement(Database& db, SegmentGrid& grid,
                                  const LegalizerOptions& opts = {});

/// Rounds the preferred fractional position to the nearest site-aligned,
/// in-die, rail-compatible position for `cell` (paper §3 "nearest
/// site-aligned and power-rail matching position").
MRLG_EFFECT_READONLY
Point nearest_aligned_position(const Database& db, CellId cell, double px,
                               double py, bool check_rail);

}  // namespace mrlg
