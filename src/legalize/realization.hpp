#pragma once
/// \file realization.hpp
/// Legal placement realization (paper §5.3, Algorithm 2): with the target
/// committed at xt inside a chosen insertion point, push overlapped cells
/// minimally outward, cascading through the neighbour DAG.
///
/// Algorithm 2 is a BFS worklist; we implement the equivalent closed form:
/// right-side positions in one ascending-x sweep
///     R_k = max(x_k, max over left pushers (R_l + w_l), target: xt + w_t)
/// and left-side positions in one descending-x sweep
///     L_k = min(x_k, min over right pushers (L_r - w_k), target: xt - w_k).
/// Each cell is finalized exactly once, so the realization is O(|C_W|)
/// after the (shared, precomputed) x-sort — matching the paper's bound.

#include <vector>

#include "legalize/enumeration.hpp"
#include "legalize/local_problem.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct Realization {
    bool ok = false;
    SiteCoord xt = 0;  ///< Target x actually used.
    /// Final x per local cell index (== original x when unmoved).
    std::vector<SiteCoord> new_x;
    /// Σ |new_x - x| over local cells, site units.
    double moved_sites = 0.0;
};

/// Computes the pushed placement for target position `xt` inside `point`.
/// Preconditions: compute_minmax_placement has run; point is a valid
/// enumeration output and xt ∈ [point.lo, point.hi]. Under those
/// preconditions a legal result always exists (every pushed cell stays
/// within [xl, xr]); violations indicate a bug and are asserted.
MRLG_EFFECT_READONLY
Realization realize_insertion(const LocalProblem& lp,
                              const InsertionPoint& point, SiteCoord xt,
                              SiteCoord target_w);

}  // namespace mrlg
