#include "legalize/mll.hpp"

#include <cmath>
#include <limits>

#include "check/audit_local.hpp"
#include "legalize/evaluation.hpp"
#include "legalize/ilp_local.hpp"
#include "legalize/insertion_interval.hpp"
#include "legalize/local_region.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/realization.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace mrlg {

namespace {

constexpr std::size_t kNoPoint = static_cast<std::size_t>(-1);

/// Chunk-local (and final) state of the parallel candidate scan. Combined
/// in ascending chunk order with the deterministic tie-break
/// (cost, point index), which reproduces the serial "first strictly lower
/// cost wins" rule exactly.
struct ScanBest {
    Evaluation eval;
    std::size_t index = kNoPoint;
    std::size_t evaluated = 0;  ///< Points actually evaluated (not chunks).
};

/// Evaluates every enumerated point and returns the best feasible one.
/// Read-only over `lp`; evaluation order never affects the winner.
ScanBest scan_insertion_points(const LocalProblem& lp,
                               const EnumerationResult& enumr,
                               const TargetSpec& target,
                               const MllOptions& opts) {
    const auto map = [&](std::size_t begin, std::size_t end) {
        // One scratch per worker thread: steady-state evaluation allocates
        // nothing. Cleared by each evaluate call before use.
        thread_local EvalScratch scratch;
        ScanBest best;
        for (std::size_t i = begin; i < end; ++i) {
            const InsertionPoint& p = enumr.points[i];
            const Evaluation ev =
                opts.exact_evaluation
                    ? evaluate_insertion_point_exact(lp, p, target, scratch)
                    : evaluate_insertion_point_approx(lp, p, target,
                                                      scratch);
            ++best.evaluated;
            if (ev.feasible && (best.index == kNoPoint ||
                                ev.cost_um < best.eval.cost_um)) {
                best.eval = ev;
                best.index = i;
            }
        }
        return best;
    };
    const auto combine = [](ScanBest acc, ScanBest part) {
        acc.evaluated += part.evaluated;
        if (part.index != kNoPoint &&
            (acc.index == kNoPoint ||
             part.eval.cost_um < acc.eval.cost_um ||
             (part.eval.cost_um == acc.eval.cost_um &&
              part.index < acc.index))) {
            acc.eval = part.eval;
            acc.index = part.index;
        }
        return acc;
    };
    // Fixed grain: chunk boundaries must not depend on the thread count
    // (see thread_pool.hpp). Exact evaluation is O(|C_W|) per point, so it
    // amortizes the dispatch overhead at a finer grain.
    const std::size_t grain = opts.exact_evaluation ? 16 : 128;
    return parallel_reduce(enumr.points.size(), grain, opts.num_threads,
                           ScanBest{}, map, combine);
}

}  // namespace

MllPlan mll_plan(const Database& db, const SegmentGrid& grid,
                 CellId target_cell, double pref_x, double pref_y,
                 const MllOptions& opts, MllScratch* scratch) {
    MRLG_OBS_PHASE("mll");
    MRLG_OBS_COUNT("mll.attempts", 1);
    MllPlan res;
    const Cell& cell = db.cell(target_cell);
    MRLG_ASSERT(!cell.placed(), "MLL target must be unplaced");
    MRLG_ASSERT(!cell.fixed(), "MLL target must be movable");

    TargetSpec target;
    target.id = target_cell;
    target.w = cell.width();
    target.h = cell.height();
    target.pref_x = pref_x;
    target.pref_y = pref_y;
    target.rail_phase = cell.rail_phase();

    // Window of paper §3: lower-left (x - Rx, y - Ry), size
    // (2Rx + w) x (2Ry + h), anchored at the rounded preferred position.
    const SiteCoord ax = static_cast<SiteCoord>(std::lround(pref_x));
    const SiteCoord ay = static_cast<SiteCoord>(std::lround(pref_y));
    const Rect window{static_cast<SiteCoord>(ax - opts.rx),
                      static_cast<SiteCoord>(ay - opts.ry),
                      static_cast<SiteCoord>(2 * opts.rx + target.w),
                      static_cast<SiteCoord>(2 * opts.ry + target.h)};

    const LocalRegion region = extract_local_region(
        db, grid, window, cell.region(),
        scratch != nullptr ? &scratch->region : nullptr);
    if (region.height() == 0) {
        MRLG_OBS_COUNT("mll.no_region", 1);
        return res;
    }
    if (opts.audit >= AuditLevel::kFull) {
        enforce(audit_local_region(db, grid, region, cell.region()));
    }
    LocalProblem lp = LocalProblem::build(
        db, region, scratch != nullptr ? &scratch->problem : nullptr);
    res.num_local_cells = static_cast<std::size_t>(lp.num_cells());

    compute_minmax_placement(lp);
    if (opts.audit >= AuditLevel::kFull) {
        enforce(audit_local_problem(lp, /*minmax_filled=*/true));
    }
    const std::vector<InsertionInterval> intervals =
        build_insertion_intervals(lp, target.w);

    EnumerationOptions eopts;
    eopts.check_rail = opts.check_rail;
    eopts.max_points = opts.max_points;

    // Select the insertion point: MIP search, or enumeration + (exact |
    // approximate) evaluation.
    InsertionPoint mip_point;
    EnumerationResult enumr;  // must outlive best_point, which aliases it
    const InsertionPoint* best_point = nullptr;
    Evaluation best_eval;
    best_eval.cost_um = std::numeric_limits<double>::max();

    if (opts.use_mip) {
        const IlpLocalResult mip = solve_local_ilp(lp, target, eopts);
        if (!mip.feasible) {
            res.status = MllStatus::kNoInsertionPoint;
            return res;
        }
        res.num_points = 1;
        mip_point.k0 = mip.base_row_k;
        mip_point.gaps = mip.gaps;
        // Feasible x range from the per-row intervals of the chosen gaps.
        // Every row of the chosen combination must match an interval: a row
        // without one means the MIP picked a gap that interval construction
        // discarded, and the lo/hi sentinels would otherwise pass the
        // lo <= hi check and let an unconstrained x slip through.
        MRLG_ASSERT(bind_point_to_intervals(intervals, mip_point.k0,
                                            mip_point.gaps, mip_point.lo,
                                            mip_point.hi),
                    "MIP solution row has no matching insertion interval");
        MRLG_ASSERT(mip_point.lo <= mip_point.hi,
                    "MIP solution has no matching interval range");
        best_eval = evaluate_insertion_point_exact(lp, mip_point, target);
        MRLG_ASSERT(best_eval.feasible, "MIP point fails exact evaluation");
        best_point = &mip_point;
    } else {
        enumr = enumerate_insertion_points(lp, intervals, target, eopts);
        res.enumeration_truncated = enumr.truncated;
        if (enumr.truncated) {
            MRLG_OBS_COUNT("mll.enumerations_truncated", 1);
        }
        if (enumr.points.empty()) {
            MRLG_OBS_COUNT("mll.no_insertion_point", 1);
            res.status = MllStatus::kNoInsertionPoint;
            return res;
        }
        ScanBest best;
        {
            MRLG_OBS_PHASE("scan");
            best = scan_insertion_points(lp, enumr, target, opts);
        }
        // Per-point accounting: sum of points each chunk evaluated, exact
        // under any chunking (== points.size(); never the chunk count).
        res.num_points = best.evaluated;
        MRLG_OBS_COUNT("mll.points_evaluated", best.evaluated);
        MRLG_ASSERT(best.evaluated == enumr.points.size(),
                    "parallel scan must evaluate every enumerated point");
        if (best.index == kNoPoint) {
            MRLG_OBS_COUNT("mll.no_insertion_point", 1);
            res.status = MllStatus::kNoInsertionPoint;
            return res;
        }
        best_eval = best.eval;
        best_point = &enumr.points[best.index];
    }

    const Realization real =
        realize_insertion(lp, *best_point, best_eval.xt, target.w);
    MRLG_ASSERT(real.ok, "realization failed for an enumerated point");

    // Record the would-be commit: shifted local cells (row lists keep
    // their order) and the target slot. Nothing is mutated here.
    for (int i = 0; i < lp.num_cells(); ++i) {
        const LpCell& c = lp.cell(i);
        const SiteCoord nx = real.new_x[static_cast<std::size_t>(i)];
        if (nx != c.x) {
            res.moves.push_back(MllPlan::Move{c.id, c.x, nx});
        }
    }
    const SiteCoord y_abs = lp.y0() + best_point->k0;

    res.status = MllStatus::kSuccess;
    res.x = real.xt;
    res.y = y_abs;
    res.est_cost_um = best_eval.cost_um;
    res.real_cost_um =
        real.moved_sites * lp.site_w_um() +
        std::abs(static_cast<double>(real.xt) - pref_x) * lp.site_w_um() +
        std::abs(static_cast<double>(y_abs) - pref_y) * lp.site_h_um();
    return res;
}

MllResult mll_result_from_plan(const MllPlan& plan) {
    MllResult res;
    res.status = plan.status;
    res.x = plan.x;
    res.y = plan.y;
    res.est_cost_um = plan.est_cost_um;
    res.real_cost_um = plan.real_cost_um;
    res.num_points = plan.num_points;
    res.num_local_cells = plan.num_local_cells;
    res.enumeration_truncated = plan.enumeration_truncated;
    res.moved.reserve(plan.moves.size());
    for (const MllPlan::Move& m : plan.moves) {
        res.moved.emplace_back(m.id, m.old_x);
    }
    return res;
}

MllResult mll_commit(Database& db, SegmentGrid& grid, CellId target_cell,
                     const MllPlan& plan) {
    MRLG_ASSERT(plan.success(), "can only commit a successful MLL plan");
    const Cell& target = db.cell(target_cell);
    MRLG_ASSERT(!target.placed(), "MLL commit target must be unplaced");

    // Validation pass 1: every move base must still hold (a shifted base
    // means another commit touched this plan's footprint).
    bool stale = false;
    for (const MllPlan::Move& m : plan.moves) {
        const Cell& c = db.cell(m.id);
        if (!c.placed() || c.x() != m.old_x) {
            stale = true;
            break;
        }
    }
    if (!stale) {
        // Apply the shifts, then validation pass 2: the target slot must
        // be free. Shifts restore exactly on failure (set_x only).
        for (const MllPlan::Move& m : plan.moves) {
            db.cell(m.id).set_x(m.new_x);
        }
        const Rect slot{plan.x, plan.y, target.width(), target.height()};
        if (grid.placeable(db, slot, CellId{}, target.region())) {
            grid.place(db, target_cell, plan.x, plan.y);
            MllResult res = mll_result_from_plan(plan);
            MRLG_OBS_COUNT("mll.commits", 1);
            MRLG_OBS_COUNT("mll.cells_shifted", res.moved.size());
            return res;
        }
        for (const MllPlan::Move& m : plan.moves) {
            db.cell(m.id).set_x(m.old_x);
        }
    }
    MllResult res;
    res.status = MllStatus::kPlanInvalidated;
    res.num_points = plan.num_points;
    res.num_local_cells = plan.num_local_cells;
    res.enumeration_truncated = plan.enumeration_truncated;
    return res;
}

MllResult mll_place(Database& db, SegmentGrid& grid, CellId target_cell,
                    double pref_x, double pref_y, const MllOptions& opts,
                    MllScratch* scratch) {
    const MllPlan plan =
        mll_plan(db, grid, target_cell, pref_x, pref_y, opts, scratch);
    if (!plan.success()) {
        return mll_result_from_plan(plan);
    }
    MllResult res = mll_commit(db, grid, target_cell, plan);
    // With no interleaved mutation a plan can never be stale.
    MRLG_ASSERT(res.status != MllStatus::kPlanInvalidated,
                "mll plan invalidated immediately after planning");
    return res;
}

void mll_undo(Database& db, SegmentGrid& grid, CellId target_cell,
              const MllResult& result) {
    MRLG_ASSERT(result.success(), "can only undo a successful MLL commit");
    grid.remove(db, target_cell);
    // Restoring x values cannot change any row list's relative order:
    // shifted cells return to positions that were legal before the move.
    for (const auto& [id, old_x] : result.moved) {
        db.cell(id).set_x(old_x);
    }
}

}  // namespace mrlg
