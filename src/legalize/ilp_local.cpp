#include "legalize/ilp_local.hpp"

#include <cmath>
#include <limits>

#include "eval/legality.hpp"
#include "ilp/branch_bound.hpp"
#include "util/assert.hpp"

namespace mrlg {

namespace {

struct BaseRowSolution {
    double cost_sites;      ///< x-displacement cost (locals + target).
    double x_target;
    std::vector<int> gaps;  ///< Chosen gap per combination row.
};

/// Builds and solves the MIP for one base row, or nullopt when infeasible.
std::optional<BaseRowSolution> solve_for_base_row(
    const LocalProblem& lp, const TargetSpec& target, int t,
    std::size_t& nodes) {
    ilp::Model m;
    const int n = lp.num_cells();
    const int ht = static_cast<int>(target.h);

    // Variable bounds for local cells: intersection over spanned rows.
    std::vector<int> xv(static_cast<std::size_t>(n));
    std::vector<int> dv(static_cast<std::size_t>(n));
    double big_m = 1.0;
    for (int i = 0; i < n; ++i) {
        const LpCell& c = lp.cell(i);
        SiteCoord lo = kSiteCoordMin;
        SiteCoord hi = kSiteCoordMax;
        for (SiteCoord j = 0; j < c.h; ++j) {
            const LpRow& row = lp.row(c.k0 + j);
            lo = std::max(lo, row.span.lo);
            hi = std::min(hi, static_cast<SiteCoord>(row.span.hi - c.w));
        }
        // Positions are integer site coordinates (§2); leaving them
        // continuous lets the MIP beat the site-aligned optimum whenever
        // the preferred position is fractional.
        xv[static_cast<std::size_t>(i)] =
            m.add_var(lo, hi, 0.0, true, "x" + std::to_string(i));
        dv[static_cast<std::size_t>(i)] =
            m.add_var(0.0, 1e9, 1.0, false, "d" + std::to_string(i));
        big_m = std::max(big_m, static_cast<double>(hi - lo) +
                                    static_cast<double>(c.w));
    }

    // Target bounds over its combination rows.
    SiteCoord tlo = kSiteCoordMin;
    SiteCoord thi = kSiteCoordMax;
    for (int k = t; k < t + ht; ++k) {
        const LpRow& row = lp.row(k);
        tlo = std::max(tlo, row.span.lo);
        thi = std::min(thi, static_cast<SiteCoord>(row.span.hi - target.w));
    }
    if (tlo > thi) {
        return std::nullopt;
    }
    const int xt = m.add_var(tlo, thi, 0.0, true, "xt");
    const int dt = m.add_var(0.0, 1e9, 1.0, false, "dt");
    big_m = std::max(big_m, static_cast<double>(thi - tlo) +
                                static_cast<double>(target.w));
    big_m *= 4.0;

    // Displacement linearization.
    for (int i = 0; i < n; ++i) {
        const double ref = static_cast<double>(lp.cell(i).x);
        m.add_constraint({{dv[static_cast<std::size_t>(i)], 1.0},
                          {xv[static_cast<std::size_t>(i)], -1.0}},
                         ilp::Sense::kGe, -ref);
        m.add_constraint({{dv[static_cast<std::size_t>(i)], 1.0},
                          {xv[static_cast<std::size_t>(i)], 1.0}},
                         ilp::Sense::kGe, ref);
    }
    m.add_constraint({{dt, 1.0}, {xt, -1.0}}, ilp::Sense::kGe,
                     -target.pref_x);
    m.add_constraint({{dt, 1.0}, {xt, 1.0}}, ilp::Sense::kGe, target.pref_x);

    // Order chains per row.
    for (int k = 0; k < lp.num_rows(); ++k) {
        if (!lp.has_row(k)) {
            continue;
        }
        const auto& cells = lp.row(k).cells;
        for (std::size_t p = 1; p < cells.size(); ++p) {
            const LpCell& a = lp.cell(cells[p - 1]);
            m.add_constraint(
                {{xv[static_cast<std::size_t>(cells[p])], 1.0},
                 {xv[static_cast<std::size_t>(cells[p - 1])], -1.0}},
                ilp::Sense::kGe, static_cast<double>(a.w));
        }
    }

    // Gap binaries + big-M activation per combination row.
    std::vector<std::vector<int>> row_bvars;
    for (int k = t; k < t + ht; ++k) {
        const auto& cells = lp.row(k).cells;
        const int ngaps = static_cast<int>(cells.size()) + 1;
        std::vector<int> bvars(static_cast<std::size_t>(ngaps));
        std::vector<ilp::Term> sum;
        for (int g = 0; g < ngaps; ++g) {
            bvars[static_cast<std::size_t>(g)] = m.add_var(
                0.0, 1.0, 0.0, true,
                "b_" + std::to_string(k) + "_" + std::to_string(g));
            sum.push_back({bvars[static_cast<std::size_t>(g)], 1.0});
        }
        m.add_constraint(std::move(sum), ilp::Sense::kEq, 1.0);
        for (int g = 0; g < ngaps; ++g) {
            const int b = bvars[static_cast<std::size_t>(g)];
            if (g > 0) {
                // xt >= x_left + w_left - M(1-b)
                const int li = cells[static_cast<std::size_t>(g - 1)];
                m.add_constraint(
                    {{xt, 1.0},
                     {xv[static_cast<std::size_t>(li)], -1.0},
                     {b, -big_m}},
                    ilp::Sense::kGe,
                    static_cast<double>(lp.cell(li).w) - big_m);
            }
            if (g < ngaps - 1) {
                // x_right >= xt + w_t - M(1-b)
                const int ri = cells[static_cast<std::size_t>(g)];
                m.add_constraint(
                    {{xv[static_cast<std::size_t>(ri)], 1.0},
                     {xt, -1.0},
                     {b, -big_m}},
                    ilp::Sense::kGe,
                    static_cast<double>(target.w) - big_m);
            }
        }
        row_bvars.push_back(std::move(bvars));
    }

    ilp::MipOptions mo;
    const ilp::MipResult r = ilp::solve_mip(m, mo);
    nodes += r.nodes;
    if (r.status != ilp::MipStatus::kOptimal) {
        return std::nullopt;
    }
    BaseRowSolution sol;
    sol.cost_sites = r.obj;
    sol.x_target = r.x[static_cast<std::size_t>(xt)];
    for (const auto& bvars : row_bvars) {
        int chosen = 0;
        double best_b = -1.0;
        for (int g = 0; g < static_cast<int>(bvars.size()); ++g) {
            const double v = r.x[static_cast<std::size_t>(
                bvars[static_cast<std::size_t>(g)])];
            if (v > best_b) {
                best_b = v;
                chosen = g;
            }
        }
        sol.gaps.push_back(chosen);
    }
    return sol;
}

}  // namespace

IlpLocalResult solve_local_ilp(const LocalProblem& lp,
                               const TargetSpec& target,
                               const EnumerationOptions& opts) {
    IlpLocalResult best;
    double best_cost = std::numeric_limits<double>::max();
    const int ht = static_cast<int>(target.h);
    for (int t = 0; t + ht <= lp.num_rows(); ++t) {
        bool rows_ok = true;
        for (int k = t; k < t + ht; ++k) {
            if (!lp.has_row(k)) {
                rows_ok = false;
            }
        }
        if (!rows_ok) {
            continue;
        }
        const SiteCoord y_abs = lp.y0() + t;
        if (opts.check_rail &&
            !rail_compatible(y_abs, target.h, target.rail_phase)) {
            continue;
        }
        const double y_cost =
            std::abs(static_cast<double>(y_abs) - target.pref_y) *
            lp.site_h_um();
        if (y_cost >= best_cost) {
            continue;
        }
        const auto sol = solve_for_base_row(lp, target, t, best.nodes);
        if (!sol) {
            continue;
        }
        const double cost = sol->cost_sites * lp.site_w_um() + y_cost;
        if (cost < best_cost) {
            best_cost = cost;
            best.feasible = true;
            best.cost_um = cost;
            best.y_base = y_abs;
            best.x_target = sol->x_target;
            best.base_row_k = t;
            best.gaps = sol->gaps;
        }
    }
    return best;
}

}  // namespace mrlg
