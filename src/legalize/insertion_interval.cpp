#include "legalize/insertion_interval.hpp"

namespace mrlg {

std::vector<InsertionInterval> build_insertion_intervals(
    const LocalProblem& lp, SiteCoord target_w) {
    std::vector<InsertionInterval> out;
    for (int k = 0; k < lp.num_rows(); ++k) {
        if (!lp.has_row(k)) {
            continue;
        }
        const LpRow& row = lp.row(k);
        const int n = static_cast<int>(row.cells.size());
        for (int gap = 0; gap <= n; ++gap) {
            InsertionInterval iv;
            iv.k = k;
            iv.gap = gap;
            if (gap == 0) {
                iv.lo = row.span.lo;
            } else {
                const LpCell& left =
                    lp.cell(row.cells[static_cast<std::size_t>(gap - 1)]);
                iv.lo = left.xl + left.w;
            }
            if (gap == n) {
                iv.hi = row.span.hi - target_w;
            } else {
                const LpCell& right =
                    lp.cell(row.cells[static_cast<std::size_t>(gap)]);
                iv.hi = right.xr - target_w;
            }
            if (iv.hi >= iv.lo) {
                out.push_back(iv);
            }
        }
    }
    return out;
}

bool bind_point_to_intervals(const std::vector<InsertionInterval>& intervals,
                             int k0, const std::vector<int>& gaps,
                             SiteCoord& lo, SiteCoord& hi) {
    lo = kSiteCoordMin;
    hi = kSiteCoordMax;
    std::vector<bool> matched(gaps.size(), false);
    for (const InsertionInterval& iv : intervals) {
        const int j = iv.k - k0;
        if (j >= 0 && j < static_cast<int>(gaps.size()) &&
            iv.gap == gaps[static_cast<std::size_t>(j)]) {
            matched[static_cast<std::size_t>(j)] = true;
            lo = std::max(lo, iv.lo);
            hi = std::min(hi, iv.hi);
        }
    }
    for (const bool m : matched) {
        if (!m) {
            return false;
        }
    }
    return !gaps.empty();
}

}  // namespace mrlg
