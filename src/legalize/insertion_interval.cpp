#include "legalize/insertion_interval.hpp"

namespace mrlg {

std::vector<InsertionInterval> build_insertion_intervals(
    const LocalProblem& lp, SiteCoord target_w) {
    std::vector<InsertionInterval> out;
    for (int k = 0; k < lp.num_rows(); ++k) {
        if (!lp.has_row(k)) {
            continue;
        }
        const LpRow& row = lp.row(k);
        const int n = static_cast<int>(row.cells.size());
        for (int gap = 0; gap <= n; ++gap) {
            InsertionInterval iv;
            iv.k = k;
            iv.gap = gap;
            if (gap == 0) {
                iv.lo = row.span.lo;
            } else {
                const LpCell& left =
                    lp.cell(row.cells[static_cast<std::size_t>(gap - 1)]);
                iv.lo = left.xl + left.w;
            }
            if (gap == n) {
                iv.hi = row.span.hi - target_w;
            } else {
                const LpCell& right =
                    lp.cell(row.cells[static_cast<std::size_t>(gap)]);
                iv.hi = right.xr - target_w;
            }
            if (iv.hi >= iv.lo) {
                out.push_back(iv);
            }
        }
    }
    return out;
}

}  // namespace mrlg
