#include "legalize/legalizer.hpp"

#include <algorithm>
#include <cmath>

#include "check/audit.hpp"
#include "eval/legality.hpp"
#include "legalize/greedy.hpp"
#include "legalize/ripup.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mrlg {

Point nearest_aligned_position(const Database& db, CellId cell_id, double px,
                               double py, bool check_rail) {
    const Cell& cell = db.cell(cell_id);
    const Floorplan& fp = db.floorplan();
    const SiteCoord max_y =
        std::max<SiteCoord>(0, fp.num_rows() - cell.height());

    SiteCoord y = static_cast<SiteCoord>(std::lround(py));
    y = std::clamp<SiteCoord>(y, 0, max_y);
    if (check_rail && !rail_compatible(y, cell.height(), cell.rail_phase())) {
        // Even-height cell on the wrong parity: pick the closer adjacent
        // row of correct parity.
        const SiteCoord up = y + 1 <= max_y ? y + 1 : y - 1;
        const SiteCoord down = y - 1 >= 0 ? y - 1 : y + 1;
        const double du = std::abs(static_cast<double>(up) - py);
        const double dd = std::abs(static_cast<double>(down) - py);
        y = du <= dd ? up : down;
        y = std::clamp<SiteCoord>(y, 0, max_y);
        if (!rail_compatible(y, cell.height(), cell.rail_phase())) {
            // Die edge forced us to the wrong parity; step inward.
            y = std::clamp<SiteCoord>(y + (y == 0 ? 1 : -1), 0, max_y);
        }
    }

    // Clamp x into the intersection of the rows the cell will span.
    SiteCoord x_lo = kSiteCoordMin;
    SiteCoord x_hi = kSiteCoordMax;
    for (SiteCoord r = y; r < y + cell.height() && fp.has_row(r); ++r) {
        const Row& row = fp.row(r);
        x_lo = std::max(x_lo, row.x);
        x_hi = std::min(x_hi,
                        static_cast<SiteCoord>(row.x + row.num_sites -
                                               cell.width()));
    }
    SiteCoord x = static_cast<SiteCoord>(std::lround(px));
    if (x_lo <= x_hi) {
        x = std::clamp(x, x_lo, x_hi);
    }
    return Point{x, y};
}

LegalizerStats legalize_placement(Database& db, SegmentGrid& grid,
                                  const LegalizerOptions& opts) {
    MRLG_OBS_PHASE("legalize");
    Timer timer;
    LegalizerStats stats;
    Rng rng(opts.seed);

    // Effective MLL options: LegalizerOptions::num_threads fills the MLL
    // thread count unless the caller pinned it explicitly.
    MllOptions mll_opts = opts.mll;
    if (mll_opts.num_threads == 0) {
        mll_opts.num_threads = opts.num_threads;
    }
    if (mll_opts.audit < opts.audit) {
        mll_opts.audit = opts.audit;
    }
    MllScratch scratch;  // reused by every MLL attempt of this run

    // Invariant-audit hook (MRLG_VALIDATE / LegalizerOptions::audit):
    // structural grid audit at phase boundaries, and after every commit
    // at kFull. Failures throw AssertionError out of the legalizer.
    const AuditLevel audit = opts.audit;
    auto audit_grid = [&](AuditLevel at_least) {
        if (audit >= at_least) {
            ++stats.audits_run;
            enforce(audit_segment_grid(db, grid, AuditLevel::kCheap,
                                       mll_opts.check_rail));
        }
    };

    std::vector<CellId> unplaced;
    {
        MRLG_OBS_PHASE("setup");
        std::vector<CellId> order = db.movable_cells();
        stats.num_cells = order.size();
        switch (opts.order) {
            case LegalizerOptions::Order::kInputOrder:
                break;
            case LegalizerOptions::Order::kLeftToRight:
                std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
                    return db.cell(a).gp_x() < db.cell(b).gp_x();
                });
                break;
            case LegalizerOptions::Order::kAreaDescending:
                std::stable_sort(order.begin(), order.end(),
                                 [&](CellId a, CellId b) {
                                     const auto& ca = db.cell(a);
                                     const auto& cb = db.cell(b);
                                     return ca.width() * ca.height() >
                                            cb.width() * cb.height();
                                 });
                break;
            case LegalizerOptions::Order::kMultiRowFirst:
                std::stable_sort(order.begin(), order.end(),
                                 [&](CellId a, CellId b) {
                                     return db.cell(a).height() >
                                            db.cell(b).height();
                                 });
                break;
        }

        if (opts.unplace_first) {
            for (const CellId c : order) {
                if (db.cell(c).placed()) {
                    grid.remove(db, c);
                }
            }
        }

        for (const CellId c : order) {
            if (!db.cell(c).placed()) {
                unplaced.push_back(c);
            }
        }
        audit_grid(AuditLevel::kCheap);  // post-setup pre-condition
    }

    auto try_place = [&](CellId c, double px, double py,
                         bool allow_fallback, bool allow_ripup) -> bool {
        const Point p =
            nearest_aligned_position(db, c, px, py, mll_opts.check_rail);
        const Cell& cell = db.cell(c);
        const Rect fitted{p.x, p.y, cell.width(), cell.height()};
        if ((!mll_opts.check_rail ||
             rail_compatible(p.y, cell.height(), cell.rail_phase())) &&
            grid.placeable(db, fitted, CellId{}, cell.region())) {
            grid.place(db, c, p.x, p.y);
            ++stats.direct_placements;
            audit_grid(AuditLevel::kFull);
            return true;
        }
        const MllResult r =
            mll_place(db, grid, c, px, py, mll_opts, &scratch);
        stats.mll_points_evaluated += r.num_points;
        if (r.success()) {
            ++stats.mll_successes;
            MRLG_OBS_OBSERVE("legalize.mll_real_cost_um", r.real_cost_um);
            audit_grid(AuditLevel::kFull);  // post-realization/commit
            return true;
        }
        ++stats.mll_failures;
        if (allow_fallback) {
            // Deterministic tail handling: snap to the nearest free slot
            // around the *original* gp position (not the jittered one).
            const auto slot = find_nearest_free_position(
                db, grid, c, cell.gp_x(), cell.gp_y(),
                mll_opts.check_rail);
            if (slot) {
                grid.place(db, c, slot->x, slot->y);
                ++stats.fallback_placements;
                audit_grid(AuditLevel::kFull);
                return true;
            }
        }
        if (allow_ripup) {
            RipupOptions ropts;
            ropts.mll = mll_opts;
            ropts.audit = audit;
            const RipupResult rr = ripup_place(db, grid, c, cell.gp_x(),
                                               cell.gp_y(), ropts);
            if (rr.success) {
                ++stats.ripup_placements;
                audit_grid(AuditLevel::kFull);  // post-transaction
                return true;
            }
        }
        return false;
    };

    // Round 1: input positions (Algorithm 1 lines 2-7). Later rounds:
    // growing random offsets (lines 9-17).
    for (int round = 1; !unplaced.empty() && round <= opts.max_rounds;
         ++round) {
        MRLG_OBS_PHASE("round");
        stats.rounds = round;
        std::vector<CellId> still_unplaced;
        for (const CellId c : unplaced) {
            const Cell& cell = db.cell(c);
            double px = cell.gp_x();
            double py = cell.gp_y();
            if (round > 1) {
                const SiteCoord range_x =
                    static_cast<SiteCoord>(opts.mll.rx) * (round - 1);
                const SiteCoord range_y =
                    static_cast<SiteCoord>(opts.mll.ry) * (round - 1);
                px += static_cast<double>(rng.uniform(-range_x, range_x));
                py += static_cast<double>(rng.uniform(-range_y, range_y));
            }
            if (!try_place(c, px, py,
                           round >= opts.free_slot_fallback_round,
                           opts.enable_ripup &&
                               round >= opts.free_slot_fallback_round + 2)) {
                still_unplaced.push_back(c);
            }
        }
        unplaced = std::move(still_unplaced);
        audit_grid(AuditLevel::kCheap);  // post-round invariants
    }

    if (audit >= AuditLevel::kCheap) {
        // Final audit at the configured depth: kFull adds the independent
        // eval/legality overlap sweep and the blockage intrusion check.
        MRLG_OBS_PHASE("final_audit");
        ++stats.audits_run;
        enforce(audit_placement(db, grid, audit, mll_opts.check_rail));
    }

    stats.unplaced = unplaced.size();
    stats.success = unplaced.empty();
    stats.runtime_s = timer.elapsed_s();

    // Mirror the run's stats into the ambient tracer so a run report's
    // counter block is complete even when the caller drops the stats.
    MRLG_OBS_COUNT("legalize.runs", 1);
    MRLG_OBS_COUNT("legalize.cells", stats.num_cells);
    MRLG_OBS_COUNT("legalize.rounds", stats.rounds);
    MRLG_OBS_COUNT("legalize.direct_placements", stats.direct_placements);
    MRLG_OBS_COUNT("legalize.mll_successes", stats.mll_successes);
    MRLG_OBS_COUNT("legalize.mll_failures", stats.mll_failures);
    MRLG_OBS_COUNT("legalize.fallback_placements",
                   stats.fallback_placements);
    MRLG_OBS_COUNT("legalize.ripup_placements", stats.ripup_placements);
    MRLG_OBS_COUNT("legalize.unplaced", stats.unplaced);
    MRLG_OBS_COUNT("legalize.points_evaluated", stats.mll_points_evaluated);
    MRLG_OBS_COUNT("legalize.audits_run", stats.audits_run);
    if (!stats.success) {
        MRLG_LOG(kWarn) << "legalization left " << stats.unplaced
                        << " cells unplaced after " << stats.rounds
                        << " rounds";
    }
    return stats;
}

}  // namespace mrlg
