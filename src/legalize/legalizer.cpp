#include "legalize/legalizer.hpp"

#include <algorithm>
#include <cmath>

#include "check/audit.hpp"
#include "check/audit_plan.hpp"
#include "db/write_cap.hpp"
#include "eval/legality.hpp"
#include "legalize/greedy.hpp"
#include "legalize/pipeline.hpp"
#include "legalize/ripup.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mrlg {

Point nearest_aligned_position(const Database& db, CellId cell_id, double px,
                               double py, bool check_rail) {
    const Cell& cell = db.cell(cell_id);
    const Floorplan& fp = db.floorplan();
    const SiteCoord max_y =
        std::max<SiteCoord>(0, fp.num_rows() - cell.height());

    SiteCoord y = static_cast<SiteCoord>(std::lround(py));
    y = std::clamp<SiteCoord>(y, 0, max_y);
    if (check_rail && !rail_compatible(y, cell.height(), cell.rail_phase())) {
        // Even-height cell on the wrong parity: pick the closer adjacent
        // row of correct parity.
        const SiteCoord up = y + 1 <= max_y ? y + 1 : y - 1;
        const SiteCoord down = y - 1 >= 0 ? y - 1 : y + 1;
        const double du = std::abs(static_cast<double>(up) - py);
        const double dd = std::abs(static_cast<double>(down) - py);
        y = du <= dd ? up : down;
        y = std::clamp<SiteCoord>(y, 0, max_y);
        if (!rail_compatible(y, cell.height(), cell.rail_phase())) {
            // Die edge forced us to the wrong parity; step inward.
            y = std::clamp<SiteCoord>(y + (y == 0 ? 1 : -1), 0, max_y);
        }
    }

    // Clamp x into the intersection of the rows the cell will span.
    SiteCoord x_lo = kSiteCoordMin;
    SiteCoord x_hi = kSiteCoordMax;
    for (SiteCoord r = y; r < y + cell.height() && fp.has_row(r); ++r) {
        const Row& row = fp.row(r);
        x_lo = std::max(x_lo, row.x);
        x_hi = std::min(x_hi,
                        static_cast<SiteCoord>(row.x + row.num_sites -
                                               cell.width()));
    }
    SiteCoord x = static_cast<SiteCoord>(std::lround(px));
    if (x_lo <= x_hi) {
        x = std::clamp(x, x_lo, x_hi);
    }
    return Point{x, y};
}

LegalizerStats legalize_placement(Database& db, SegmentGrid& grid,
                                  const LegalizerOptions& opts) {
    MRLG_OBS_PHASE("legalize");
    // Serial orchestration entry: everything below may mutate db/grid
    // except the plan-phase fan-out, which deliberately does NOT
    // re-assert the capability (db/write_cap.hpp).
    GridWriteScope grid_write;
    Timer timer;
    LegalizerStats stats;
    Rng rng(opts.seed);

    // Wall-clock execution timeline (two-tracer model, obs/timeline.hpp):
    // hoisted once so worker lambdas receive the pointer by capture and
    // never read ambient state. nullptr (the default) keeps every probe a
    // single branch.
    obs::Timeline* const timeline = obs::current_timeline();

    // Effective MLL options: LegalizerOptions::num_threads fills the MLL
    // thread count unless the caller pinned it explicitly.
    MllOptions mll_opts = opts.mll;
    if (mll_opts.num_threads == 0) {
        mll_opts.num_threads = opts.num_threads;
    }
    if (mll_opts.audit < opts.audit) {
        mll_opts.audit = opts.audit;
    }
    MllScratch scratch;  // reused by every MLL attempt of this run

    // Invariant-audit hook (MRLG_VALIDATE / LegalizerOptions::audit):
    // structural grid audit at phase boundaries, and after every commit
    // at kFull. Failures throw AssertionError out of the legalizer.
    const AuditLevel audit = opts.audit;
    auto audit_grid = [&](AuditLevel at_least) {
        if (audit >= at_least) {
            ++stats.audits_run;
            enforce(audit_segment_grid(db, grid, AuditLevel::kCheap,
                                       mll_opts.check_rail));
        }
    };

    std::vector<CellId> unplaced;
    {
        MRLG_OBS_PHASE("setup");
        std::vector<CellId> order = db.movable_cells();
        stats.num_cells = order.size();
        switch (opts.order) {
            case LegalizerOptions::Order::kInputOrder:
                break;
            case LegalizerOptions::Order::kLeftToRight:
                std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
                    return db.cell(a).gp_x() < db.cell(b).gp_x();
                });
                break;
            case LegalizerOptions::Order::kAreaDescending:
                std::stable_sort(order.begin(), order.end(),
                                 [&](CellId a, CellId b) {
                                     const auto& ca = db.cell(a);
                                     const auto& cb = db.cell(b);
                                     return ca.width() * ca.height() >
                                            cb.width() * cb.height();
                                 });
                break;
            case LegalizerOptions::Order::kMultiRowFirst:
                std::stable_sort(order.begin(), order.end(),
                                 [&](CellId a, CellId b) {
                                     return db.cell(a).height() >
                                            db.cell(b).height();
                                 });
                break;
        }

        if (opts.unplace_first) {
            for (const CellId c : order) {
                if (db.cell(c).placed()) {
                    grid.remove(db, c);
                }
            }
        }

        for (const CellId c : order) {
            if (!db.cell(c).placed()) {
                unplaced.push_back(c);
            }
        }
        audit_grid(AuditLevel::kCheap);  // post-setup pre-condition
    }

    auto try_place = [&](CellId c, double px, double py,
                         bool allow_fallback, bool allow_ripup) -> bool {
        assert_grid_write_cap();  // serial path of the enclosing scope
        const Point p =
            nearest_aligned_position(db, c, px, py, mll_opts.check_rail);
        const Cell& cell = db.cell(c);
        const Rect fitted{p.x, p.y, cell.width(), cell.height()};
        if ((!mll_opts.check_rail ||
             rail_compatible(p.y, cell.height(), cell.rail_phase())) &&
            grid.placeable(db, fitted, CellId{}, cell.region())) {
            grid.place(db, c, p.x, p.y);
            ++stats.direct_placements;
            audit_grid(AuditLevel::kFull);
            return true;
        }
        const MllResult r =
            mll_place(db, grid, c, px, py, mll_opts, &scratch);
        stats.mll_points_evaluated += r.num_points;
        if (r.success()) {
            ++stats.mll_successes;
            MRLG_OBS_OBSERVE("legalize.mll_real_cost_um", r.real_cost_um);
            audit_grid(AuditLevel::kFull);  // post-realization/commit
            return true;
        }
        ++stats.mll_failures;
        if (allow_fallback) {
            // Deterministic tail handling: snap to the nearest free slot
            // around the *original* gp position (not the jittered one).
            const auto slot = find_nearest_free_position(
                db, grid, c, cell.gp_x(), cell.gp_y(),
                mll_opts.check_rail);
            if (slot) {
                grid.place(db, c, slot->x, slot->y);
                ++stats.fallback_placements;
                audit_grid(AuditLevel::kFull);
                return true;
            }
        }
        if (allow_ripup) {
            RipupOptions ropts;
            ropts.mll = mll_opts;
            ropts.audit = audit;
            const RipupResult rr = ripup_place(db, grid, c, cell.gp_x(),
                                               cell.gp_y(), ropts, &scratch);
            if (rr.success) {
                ++stats.ripup_placements;
                audit_grid(AuditLevel::kFull);  // post-transaction
                return true;
            }
        }
        return false;
    };

    // ---- region-parallel plan/commit pipeline state -----------------------
    // Footprint padding must cover any movable cell a plan might read (see
    // compute_attempt_footprint); fixed cells are frozen into the segments
    // and never appear in the lists, so the movable maximum suffices.
    SiteCoord max_cell_width = 1;
    for (const CellId c : db.movable_cells()) {
        max_cell_width = std::max(max_cell_width, db.cell(c).width());
    }
    // Ledger claims are clamped to the die: no cell or segment exists
    // outside it, so footprint slices out there cannot carry conflicts.
    const Rect die = db.floorplan().die();
    const Span die_x{die.x, static_cast<SiteCoord>(die.x + die.w)};
    // Planning runs many MLL problems concurrently, so each one scans its
    // insertion points serially — fan-out lives at the cell level here.
    MllOptions plan_opts = mll_opts;
    plan_opts.num_threads = 1;
    FootprintLedger ledger;
    std::vector<PlanTask> tasks;
    std::vector<std::size_t> pending;
    std::vector<std::size_t> batch;
    std::vector<std::size_t> deferred;

    // Re-emits the per-attempt mll.* counters a serial mll_place would
    // have produced for this (final) plan. The plan pass runs with the
    // tracer paused (workers must not touch it — see obs::TracerPause), so
    // the orchestrator replays the aggregate in commit order.
    auto emit_attempt_counters = [&](const MllPlan& plan) {
        MRLG_OBS_COUNT("mll.attempts", 1);
        if (plan.status == MllStatus::kNoRegion) {
            MRLG_OBS_COUNT("mll.no_region", 1);
            return;
        }
        if (plan.enumeration_truncated) {
            MRLG_OBS_COUNT("mll.enumerations_truncated", 1);
        }
        if (!plan_opts.use_mip && plan.num_points > 0) {
            MRLG_OBS_COUNT("mll.points_evaluated", plan.num_points);
        }
        if (plan.status == MllStatus::kNoInsertionPoint) {
            MRLG_OBS_COUNT("mll.no_insertion_point", 1);
        }
    };

    auto task_footprint = [](const PlanTask& t) {
        return PlannedFootprint{t.cell.value(), t.footprint.rows,
                                t.footprint.x};
    };

    // One retry round run as plan/commit waves (pipeline.hpp documents the
    // serial-equivalence argument). Returns the cells the round failed to
    // place, in queue order — exactly the serial loop's still_unplaced.
    auto run_pipelined_round = [&](int round,
                                   const std::vector<CellId>& queue) {
        assert_grid_write_cap();  // commit waves run on this serial thread
        const std::size_t points_before = stats.mll_points_evaluated;
        // Build the round's tasks in queue order. This draws the round's
        // jitter exactly as the serial loop would: two uniforms per cell,
        // queue order, so the Rng stream stays bit-identical.
        tasks.clear();
        tasks.reserve(queue.size());
        for (const CellId c : queue) {
            const Cell& cell = db.cell(c);
            PlanTask t;
            t.cell = c;
            t.px = cell.gp_x();
            t.py = cell.gp_y();
            if (round > 1) {
                const SiteCoord range_x =
                    static_cast<SiteCoord>(opts.mll.rx) * (round - 1);
                const SiteCoord range_y =
                    static_cast<SiteCoord>(opts.mll.ry) * (round - 1);
                t.px +=
                    static_cast<double>(rng.uniform(-range_x, range_x));
                t.py +=
                    static_cast<double>(rng.uniform(-range_y, range_y));
            }
            const Point p = nearest_aligned_position(db, c, t.px, t.py,
                                                     mll_opts.check_rail);
            t.fitted = Rect{p.x, p.y, cell.width(), cell.height()};
            t.rail_ok =
                !mll_opts.check_rail ||
                rail_compatible(p.y, cell.height(), cell.rail_phase());
            // The MLL window of paper §3, anchored like mll_plan's.
            const SiteCoord ax =
                static_cast<SiteCoord>(std::lround(t.px));
            const SiteCoord ay =
                static_cast<SiteCoord>(std::lround(t.py));
            const Rect window{
                static_cast<SiteCoord>(ax - mll_opts.rx),
                static_cast<SiteCoord>(ay - mll_opts.ry),
                static_cast<SiteCoord>(2 * mll_opts.rx + cell.width()),
                static_cast<SiteCoord>(2 * mll_opts.ry + cell.height())};
            t.footprint =
                compute_attempt_footprint(window, t.fitted, max_cell_width);
            tasks.push_back(std::move(t));
        }
        pending.resize(tasks.size());
        for (std::size_t i = 0; i < pending.size(); ++i) {
            pending[i] = i;
        }
        const std::size_t num_rows =
            static_cast<std::size_t>(db.floorplan().num_rows());

        while (!pending.empty()) {
            MRLG_OBS_PHASE("wave");
            ++stats.waves;
            // Timeline keys: the global wave sequence number is the stable
            // major key; slot/task come from the (deterministic) partition.
            const std::uint32_t wave_id =
                static_cast<std::uint32_t>(stats.waves);
            obs::TimelineSpan wave_span(timeline, "wave", {wave_id, 0, 0});
            {
                MRLG_OBS_PHASE("partition");
                obs::TimelineSpan partition_span(timeline, "partition",
                                                 {wave_id, 0, 0});
                ledger.reset(num_rows, die_x);
                partition_wave(tasks, pending, ledger, batch, deferred);
            }
            stats.conflict_requeues += deferred.size();
            MRLG_OBS_OBSERVE("legalize.batch_size",
                             static_cast<double>(batch.size()));
            for (const std::size_t idx : batch) {
                tasks[idx].state = PlanTask::State::kInBatch;
            }

            {
                MRLG_OBS_PHASE("plan");
                // Workers execute instrumented MLL code; the ambient
                // tracer is not thread-safe, so it pauses for the whole
                // fan-out — at every thread count, keeping the emitted
                // metrics configuration-independent.
                obs::TracerPause pause;
                obs::TimelineSpan plan_span(timeline, "plan",
                                            {wave_id, 0, 0});
                // Const views of the shared state: overload resolution
                // must pick the const accessors (db.cell) here — the
                // non-const ones require GridWriteCap, which the plan
                // fan-out deliberately does not hold.
                const Database& plan_db = db;
                const SegmentGrid& plan_grid = grid;
                parallel_for(
                    batch.size(), /*grain=*/1, opts.num_threads,
                    [&](std::size_t begin, std::size_t end) {
                        thread_local MllScratch plan_scratch;
                        for (std::size_t i = begin; i < end; ++i) {
                            // The wall-clock Timeline (NOT the paused
                            // Tracer) is the one observer workers may
                            // write: lock-free per-thread lanes.
                            obs::TimelineSpan task_span(
                                timeline, "plan.task",
                                {wave_id, static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(batch[i])});
                            PlanTask& t = tasks[batch[i]];
                            const Cell& cell = plan_db.cell(t.cell);
                            t.direct =
                                t.rail_ok &&
                                plan_grid.placeable(plan_db, t.fitted,
                                                    CellId{}, cell.region());
                            if (!t.direct) {
                                t.plan = mll_plan(plan_db, plan_grid, t.cell,
                                                  t.px, t.py, plan_opts,
                                                  &plan_scratch);
                            }
                        }
                    });
            }

            if (audit >= AuditLevel::kCheap) {
                // The partition promised these footprints are pairwise
                // disjoint; re-derive that from scratch before trusting
                // the plans (check/audit_plan.hpp).
                std::vector<PlannedFootprint> fps;
                fps.reserve(batch.size());
                for (const std::size_t idx : batch) {
                    fps.push_back(task_footprint(tasks[idx]));
                }
                ++stats.audits_run;
                enforce(audit_plan_batch(fps));
            }

            {
                MRLG_OBS_PHASE("commit");
                obs::TimelineSpan commit_span(timeline, "commit",
                                              {wave_id, 0, 0});
                std::size_t resolved = 0;
                for (std::size_t slot = 0; slot < batch.size(); ++slot) {
                    const std::size_t idx = batch[slot];
                    obs::TimelineSpan commit_task_span(
                        timeline, "commit.task",
                        {wave_id, static_cast<std::uint32_t>(slot),
                         static_cast<std::uint32_t>(idx)});
                    PlanTask& t = tasks[idx];
                    const Cell& cell = db.cell(t.cell);
                    if (t.direct) {
                        // Revalidate against the live grid (defensive:
                        // batch disjointness makes staleness impossible).
                        if (grid.placeable(db, t.fitted, CellId{},
                                           cell.region())) {
                            grid.place(db, t.cell, t.fitted.x, t.fitted.y);
                            ++stats.direct_placements;
                            t.state = PlanTask::State::kPlaced;
                            ++resolved;
                            audit_grid(AuditLevel::kFull);
                        } else {
                            t.state = PlanTask::State::kPending;
                            ++stats.conflict_requeues;
                            MRLG_OBS_COUNT("legalize.plan_invalidated", 1);
                        }
                        continue;
                    }
                    if (t.plan.success()) {
                        const MllResult r =
                            mll_commit(db, grid, t.cell, t.plan);
                        if (r.status == MllStatus::kPlanInvalidated) {
                            // Counters for this attempt stay unemitted —
                            // the cell re-plans next wave and only the
                            // final attempt is accounted, like serial.
                            t.state = PlanTask::State::kPending;
                            ++stats.conflict_requeues;
                            MRLG_OBS_COUNT("legalize.plan_invalidated", 1);
                            continue;
                        }
                        emit_attempt_counters(t.plan);
                        stats.mll_points_evaluated += t.plan.num_points;
                        ++stats.mll_successes;
                        MRLG_OBS_OBSERVE("legalize.mll_real_cost_um",
                                         r.real_cost_um);
                        if (audit >= AuditLevel::kFull) {
                            // Commit writes must stay inside the claimed
                            // footprint (the other half of the pipeline's
                            // correctness argument).
                            std::vector<Rect> writes;
                            writes.push_back(Rect{r.x, r.y, cell.width(),
                                                  cell.height()});
                            for (const MllPlan::Move& m : t.plan.moves) {
                                const Cell& mc = db.cell(m.id);
                                const SiteCoord lo =
                                    std::min(m.old_x, m.new_x);
                                const SiteCoord hi = static_cast<SiteCoord>(
                                    std::max(m.old_x, m.new_x) +
                                    mc.width());
                                writes.push_back(Rect{lo, mc.y(),
                                                      static_cast<SiteCoord>(
                                                          hi - lo),
                                                      mc.height()});
                            }
                            ++stats.audits_run;
                            enforce(audit_plan_writes(task_footprint(t),
                                                      writes));
                        }
                        t.state = PlanTask::State::kPlaced;
                        ++resolved;
                        audit_grid(AuditLevel::kFull);
                    } else {
                        emit_attempt_counters(t.plan);
                        stats.mll_points_evaluated += t.plan.num_points;
                        ++stats.mll_failures;
                        t.state = PlanTask::State::kFailed;
                        ++resolved;
                    }
                }
                MRLG_ASSERT(resolved > 0,
                            "plan/commit wave made no progress");
            }

            // Next wave: everything still pending (partition deferrals and
            // the defensive invalidation requeues), in queue order.
            std::vector<std::size_t> next;
            for (std::size_t i = 0; i < tasks.size(); ++i) {
                if (tasks[i].state == PlanTask::State::kPending) {
                    next.push_back(i);
                }
            }
            MRLG_ASSERT(next.size() < pending.size(),
                        "plan/commit waves must shrink the pending queue");
            pending = std::move(next);
        }

        // Round-level exactness: every insertion point the final plans
        // evaluated — and nothing else — entered the stats.
        std::size_t expected_points = 0;
        std::vector<CellId> still;
        for (const PlanTask& t : tasks) {
            if (!t.direct) {
                expected_points += t.plan.num_points;
            }
            if (t.state == PlanTask::State::kFailed) {
                still.push_back(t.cell);
            } else {
                MRLG_DCHECK(t.state == PlanTask::State::kPlaced,
                            "round left a task unresolved");
            }
        }
        MRLG_ASSERT(stats.mll_points_evaluated ==
                        points_before + expected_points,
                    "region-parallel pipeline lost insertion-point "
                    "accounting");
        return still;
    };

    // Round 1: input positions (Algorithm 1 lines 2-7). Later rounds:
    // growing random offsets (lines 9-17). Early rounds run as
    // region-parallel plan/commit waves; once the free-slot fallback (and
    // later rip-up) engages, footprints become unbounded and the round
    // falls back to the one-cell-at-a-time loop.
    for (int round = 1; !unplaced.empty() && round <= opts.max_rounds;
         ++round) {
        MRLG_OBS_PHASE("round");
        stats.rounds = round;
        const bool allow_fallback = round >= opts.free_slot_fallback_round;
        const bool allow_ripup =
            opts.enable_ripup &&
            round >= opts.free_slot_fallback_round + 2;
        const bool pipelined =
            opts.pipeline == LegalizerOptions::Pipeline::kRegionParallel &&
            !allow_fallback && !allow_ripup;
        std::vector<CellId> still_unplaced;
        if (pipelined) {
            still_unplaced = run_pipelined_round(round, unplaced);
        } else {
            for (const CellId c : unplaced) {
                const Cell& cell = db.cell(c);
                double px = cell.gp_x();
                double py = cell.gp_y();
                if (round > 1) {
                    const SiteCoord range_x =
                        static_cast<SiteCoord>(opts.mll.rx) * (round - 1);
                    const SiteCoord range_y =
                        static_cast<SiteCoord>(opts.mll.ry) * (round - 1);
                    px +=
                        static_cast<double>(rng.uniform(-range_x, range_x));
                    py +=
                        static_cast<double>(rng.uniform(-range_y, range_y));
                }
                if (!try_place(c, px, py, allow_fallback, allow_ripup)) {
                    still_unplaced.push_back(c);
                }
            }
        }
        unplaced = std::move(still_unplaced);
        audit_grid(AuditLevel::kCheap);  // post-round invariants
    }

    if (audit >= AuditLevel::kCheap) {
        // Final audit at the configured depth: kFull adds the independent
        // eval/legality overlap sweep and the blockage intrusion check.
        MRLG_OBS_PHASE("final_audit");
        ++stats.audits_run;
        enforce(audit_placement(db, grid, audit, mll_opts.check_rail));
    }

    stats.unplaced = unplaced.size();
    stats.success = unplaced.empty();
    stats.runtime_s = timer.elapsed_s();

    // Mirror the run's stats into the ambient tracer so a run report's
    // counter block is complete even when the caller drops the stats.
    MRLG_OBS_COUNT("legalize.runs", 1);
    MRLG_OBS_COUNT("legalize.cells", stats.num_cells);
    MRLG_OBS_COUNT("legalize.rounds", stats.rounds);
    MRLG_OBS_COUNT("legalize.direct_placements", stats.direct_placements);
    MRLG_OBS_COUNT("legalize.mll_successes", stats.mll_successes);
    MRLG_OBS_COUNT("legalize.mll_failures", stats.mll_failures);
    MRLG_OBS_COUNT("legalize.fallback_placements",
                   stats.fallback_placements);
    MRLG_OBS_COUNT("legalize.ripup_placements", stats.ripup_placements);
    MRLG_OBS_COUNT("legalize.unplaced", stats.unplaced);
    MRLG_OBS_COUNT("legalize.points_evaluated", stats.mll_points_evaluated);
    MRLG_OBS_COUNT("legalize.audits_run", stats.audits_run);
    MRLG_OBS_COUNT("legalize.waves", stats.waves);
    MRLG_OBS_COUNT("legalize.conflict_requeues", stats.conflict_requeues);
    if (!stats.success) {
        MRLG_LOG(kWarn) << "legalization left " << stats.unplaced
                        << " cells unplaced after " << stats.rounds
                        << " rounds";
    }
    return stats;
}

}  // namespace mrlg
