#include "legalize/pipeline.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mrlg {

namespace {

constexpr std::size_t kWordBits = 64;

}  // namespace

void FootprintLedger::reset(std::size_t num_rows, Span x_extent) {
    x_extent_ = x_extent;
    num_rows_ = num_rows;
    const std::size_t extent =
        x_extent.hi > x_extent.lo
            ? static_cast<std::size_t>(x_extent.hi - x_extent.lo)
            : 0;
    const std::size_t buckets =
        (extent + static_cast<std::size_t>(kBucketSites) - 1) /
        static_cast<std::size_t>(kBucketSites);
    words_per_row_ = (buckets + kWordBits - 1) / kWordBits;
    bits_.assign(num_rows_ * words_per_row_, 0);
}

bool FootprintLedger::conflicts(const AttemptFootprint& fp) const {
    const SiteCoord row_lo = std::max<SiteCoord>(fp.rows.lo, 0);
    const SiteCoord row_hi = std::min<SiteCoord>(
        fp.rows.hi, static_cast<SiteCoord>(num_rows_));
    const SiteCoord x_lo = std::max(fp.x.lo, x_extent_.lo);
    const SiteCoord x_hi = std::min(fp.x.hi, x_extent_.hi);
    if (row_lo >= row_hi || x_lo >= x_hi) {
        return false;
    }
    // Buckets touched by [x_lo, x_hi), rounded outward (conservative).
    const std::size_t b_lo =
        static_cast<std::size_t>(x_lo - x_extent_.lo) /
        static_cast<std::size_t>(kBucketSites);
    const std::size_t b_hi =
        (static_cast<std::size_t>(x_hi - x_extent_.lo) +
         static_cast<std::size_t>(kBucketSites) - 1) /
        static_cast<std::size_t>(kBucketSites);
    const std::size_t w_lo = b_lo / kWordBits;
    const std::size_t w_hi = (b_hi - 1) / kWordBits;
    for (SiteCoord r = row_lo; r < row_hi; ++r) {
        const std::uint64_t* row =
            bits_.data() + static_cast<std::size_t>(r) * words_per_row_;
        for (std::size_t w = w_lo; w <= w_hi; ++w) {
            std::uint64_t mask = ~std::uint64_t{0};
            if (w == w_lo) {
                mask &= ~std::uint64_t{0} << (b_lo % kWordBits);
            }
            if (w == w_hi && (b_hi % kWordBits) != 0) {
                mask &= ~std::uint64_t{0} >>
                        (kWordBits - (b_hi % kWordBits));
            }
            if ((row[w] & mask) != 0) {
                return true;
            }
        }
    }
    return false;
}

void FootprintLedger::claim(const AttemptFootprint& fp) {
    const SiteCoord row_lo = std::max<SiteCoord>(fp.rows.lo, 0);
    const SiteCoord row_hi = std::min<SiteCoord>(
        fp.rows.hi, static_cast<SiteCoord>(num_rows_));
    const SiteCoord x_lo = std::max(fp.x.lo, x_extent_.lo);
    const SiteCoord x_hi = std::min(fp.x.hi, x_extent_.hi);
    if (row_lo >= row_hi || x_lo >= x_hi) {
        return;
    }
    const std::size_t b_lo =
        static_cast<std::size_t>(x_lo - x_extent_.lo) /
        static_cast<std::size_t>(kBucketSites);
    const std::size_t b_hi =
        (static_cast<std::size_t>(x_hi - x_extent_.lo) +
         static_cast<std::size_t>(kBucketSites) - 1) /
        static_cast<std::size_t>(kBucketSites);
    const std::size_t w_lo = b_lo / kWordBits;
    const std::size_t w_hi = (b_hi - 1) / kWordBits;
    for (SiteCoord r = row_lo; r < row_hi; ++r) {
        std::uint64_t* row =
            bits_.data() + static_cast<std::size_t>(r) * words_per_row_;
        for (std::size_t w = w_lo; w <= w_hi; ++w) {
            std::uint64_t mask = ~std::uint64_t{0};
            if (w == w_lo) {
                mask &= ~std::uint64_t{0} << (b_lo % kWordBits);
            }
            if (w == w_hi && (b_hi % kWordBits) != 0) {
                mask &= ~std::uint64_t{0} >>
                        (kWordBits - (b_hi % kWordBits));
            }
            row[w] |= mask;
        }
    }
}

void partition_wave(const std::vector<PlanTask>& tasks,
                    const std::vector<std::size_t>& pending,
                    FootprintLedger& ledger, std::vector<std::size_t>& batch,
                    std::vector<std::size_t>& deferred) {
    batch.clear();
    deferred.clear();
    for (const std::size_t idx : pending) {
        const PlanTask& t = tasks[idx];
        MRLG_DCHECK(t.state == PlanTask::State::kPending,
                    "partition input must be pending");
        if (ledger.conflicts(t.footprint)) {
            deferred.push_back(idx);
        } else {
            batch.push_back(idx);
        }
        // Claim either way: later queue entries must wait for this cell's
        // serial turn even when it could not join the batch itself.
        ledger.claim(t.footprint);
    }
}

}  // namespace mrlg
