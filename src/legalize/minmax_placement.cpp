#include "legalize/minmax_placement.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mrlg {

void compute_minmax_placement(LocalProblem& lp) {
    auto& cells = lp.mutable_cells();
    const int num_rows = lp.num_rows();

    // Leftmost: sweep cells in ascending x; each row keeps the frontier
    // (first free site). A cell's leftmost x is the max frontier over the
    // rows it spans.
    std::vector<SiteCoord> frontier(static_cast<std::size_t>(num_rows), 0);
    for (int k = 0; k < num_rows; ++k) {
        if (lp.has_row(k)) {
            frontier[static_cast<std::size_t>(k)] = lp.row(k).span.lo;
        }
    }
    for (const int ci : lp.by_x()) {
        LpCell& c = cells[static_cast<std::size_t>(ci)];
        SiteCoord xl = kSiteCoordMin;
        for (SiteCoord j = 0; j < c.h; ++j) {
            xl = std::max(frontier[static_cast<std::size_t>(c.k0 + j)], xl);
        }
        c.xl = xl;
        MRLG_ASSERT(c.xl <= c.x, "leftmost packing exceeds current position "
                                 "(input placement not legal?)");
        for (SiteCoord j = 0; j < c.h; ++j) {
            frontier[static_cast<std::size_t>(c.k0 + j)] = c.xl + c.w;
        }
    }

    // Rightmost: mirror sweep in descending x.
    for (int k = 0; k < num_rows; ++k) {
        if (lp.has_row(k)) {
            frontier[static_cast<std::size_t>(k)] = lp.row(k).span.hi;
        }
    }
    for (auto it = lp.by_x().rbegin(); it != lp.by_x().rend(); ++it) {
        LpCell& c = cells[static_cast<std::size_t>(*it)];
        SiteCoord hi = kSiteCoordMax;
        for (SiteCoord j = 0; j < c.h; ++j) {
            hi = std::min(frontier[static_cast<std::size_t>(c.k0 + j)], hi);
        }
        c.xr = hi - c.w;
        MRLG_ASSERT(c.xr >= c.x, "rightmost packing below current position "
                                 "(input placement not legal?)");
        for (SiteCoord j = 0; j < c.h; ++j) {
            frontier[static_cast<std::size_t>(c.k0 + j)] = c.xr;
        }
    }
}

}  // namespace mrlg
