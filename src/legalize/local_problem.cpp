#include "legalize/local_problem.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace mrlg {

LocalProblem LocalProblem::build(const Database& db,
                                 const LocalRegion& region,
                                 LocalProblemScratch* scratch) {
    LocalProblem lp;
    lp.y0_ = region.y0();
    lp.site_w_um_ = db.floorplan().site_w_um();
    lp.site_h_um_ = db.floorplan().site_h_um();
    lp.rows_.resize(static_cast<std::size_t>(region.height()));

    LocalProblemScratch local_scratch;
    std::unordered_map<CellId, int>& index_of =
        (scratch != nullptr ? *scratch : local_scratch).index_of;
    index_of.clear();
    index_of.reserve(region.local_cells().size());
    for (const CellId id : region.local_cells()) {
        const Cell& c = db.cell(id);
        const int idx = static_cast<int>(lp.cells_.size());
        index_of.emplace(id, idx);
        LpCell lc;
        lc.id = id;
        lc.x = c.x();
        lc.w = c.width();
        lc.y = c.y();
        lc.h = c.height();
        lc.k0 = region.row_index(c.y());
        MRLG_ASSERT(lc.k0 >= 0, "local cell outside region rows");
        lc.pos_in_row.assign(static_cast<std::size_t>(lc.h), -1);
        lp.cells_.push_back(std::move(lc));
    }

    for (int k = 0; k < region.height(); ++k) {
        LpRow& row = lp.rows_[static_cast<std::size_t>(k)];
        if (!region.has_row(k)) {
            continue;
        }
        const LocalRow& lr = region.row(k);
        row.present = true;
        row.y = lr.y;
        row.span = lr.span;
        row.cells.reserve(lr.cells.size());
        for (const CellId id : lr.cells) {
            const auto it = index_of.find(id);
            MRLG_ASSERT(it != index_of.end(),
                        "row lists a cell missing from local set");
            const int ci = it->second;
            LpCell& lc = lp.cells_[static_cast<std::size_t>(ci)];
            const int j = k - lc.k0;
            MRLG_ASSERT(j >= 0 && j < lc.h, "cell listed on a row outside "
                                            "its footprint");
            lc.pos_in_row[static_cast<std::size_t>(j)] =
                static_cast<int>(row.cells.size());
            row.cells.push_back(ci);
        }
    }

    for (const LpCell& c : lp.cells_) {
        for (const int pos : c.pos_in_row) {
            MRLG_ASSERT(pos >= 0, "local cell missing from a row list");
        }
        static_cast<void>(c);
    }

    lp.by_x_.resize(lp.cells_.size());
    for (std::size_t i = 0; i < lp.cells_.size(); ++i) {
        lp.by_x_[i] = static_cast<int>(i);
    }
    std::sort(lp.by_x_.begin(), lp.by_x_.end(), [&](int a, int b) {
        const LpCell& ca = lp.cells_[static_cast<std::size_t>(a)];
        const LpCell& cb = lp.cells_[static_cast<std::size_t>(b)];
        return ca.x < cb.x || (ca.x == cb.x && a < b);
    });
    return lp;
}

}  // namespace mrlg
