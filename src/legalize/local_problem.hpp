#pragma once
/// \file local_problem.hpp
/// Dense, index-based view of one localized legalization problem. All MLL
/// stages (min/max placement, interval construction, enumeration,
/// evaluation, realization) operate on this structure; the Database is only
/// touched when a chosen solution is committed.
///
/// Concurrency contract: build() reads the Database/SegmentGrid without
/// mutating them, and every buffer it fills lives in the LocalProblem or
/// the caller-supplied scratch. The legalizer's region-parallel plan phase
/// relies on this to build many LocalProblems concurrently against the
/// shared grid — one LocalProblem + scratch per worker thread, never
/// shared across threads.

#include <unordered_map>
#include <vector>

#include "db/database.hpp"
#include "legalize/local_region.hpp"
#include "util/annotations.hpp"

namespace mrlg {

/// Reusable buffers for LocalProblem::build (one build per MLL attempt).
struct LocalProblemScratch {
    std::unordered_map<CellId, int> index_of;
};

/// A local cell, indexed 0..num_cells-1 within the problem.
struct LpCell {
    CellId id;
    SiteCoord x = 0;  ///< Current x (site units).
    SiteCoord w = 0;
    SiteCoord y = 0;  ///< Current bottom row (absolute).
    SiteCoord h = 0;
    SiteCoord xl = 0;  ///< Leftmost feasible x (filled by compute_minmax).
    SiteCoord xr = 0;  ///< Rightmost feasible x (filled by compute_minmax).
    int k0 = 0;        ///< Local row index of the bottom row.
    /// pos_in_row[j] = index of this cell in row (k0+j)'s cell list.
    std::vector<int> pos_in_row;
};

/// A local row: its span and the local cells crossing it, in x order.
struct LpRow {
    bool present = false;
    SiteCoord y = 0;  ///< Absolute row index.
    Span span;        ///< Usable x range (walls at both ends).
    std::vector<int> cells;  ///< Local-cell indices, ordered by x.
};

/// The extracted local problem. Row k corresponds to absolute row y0 + k.
class LocalProblem {
public:
    MRLG_EFFECT_READONLY
    static LocalProblem build(const Database& db, const LocalRegion& region,
                              LocalProblemScratch* scratch = nullptr);

    int num_rows() const { return static_cast<int>(rows_.size()); }
    bool has_row(int k) const {
        return k >= 0 && k < num_rows() &&
               rows_[static_cast<std::size_t>(k)].present;
    }
    const LpRow& row(int k) const { return rows_[static_cast<std::size_t>(k)]; }
    SiteCoord y0() const { return y0_; }

    const std::vector<LpCell>& cells() const { return cells_; }
    std::vector<LpCell>& mutable_cells() { return cells_; }
    const LpCell& cell(int i) const {
        return cells_[static_cast<std::size_t>(i)];
    }
    int num_cells() const { return static_cast<int>(cells_.size()); }

    /// Cell indices sorted by current x ascending (ties by index). Shared
    /// by min/max placement and realization.
    const std::vector<int>& by_x() const { return by_x_; }

    double site_w_um() const { return site_w_um_; }
    double site_h_um() const { return site_h_um_; }

private:
    SiteCoord y0_ = 0;
    std::vector<LpRow> rows_;
    std::vector<LpCell> cells_;
    std::vector<int> by_x_;
    double site_w_um_ = 1.0;
    double site_h_um_ = 1.0;
};

}  // namespace mrlg
