#pragma once
/// \file minmax_placement.hpp
/// Leftmost/rightmost placements of the local cells (paper §5.1.1, Fig. 6):
/// the legal placements that pack every local cell as far left (right) as
/// possible while keeping each row's relative order. Multi-row cells couple
/// rows, so packing is a sweep over cells in global x order with one
/// frontier per row — equivalent to longest-path over the neighbour DAG.

#include "legalize/local_problem.hpp"

namespace mrlg {

/// Fills LpCell::xl and LpCell::xr for every cell of `lp`.
/// Precondition: the current positions in `lp` are legal (which the MLL
/// caller guarantees), so both packings exist; asserts otherwise.
void compute_minmax_placement(LocalProblem& lp);

}  // namespace mrlg
