#pragma once
/// \file enumeration.hpp
/// Valid insertion-point enumeration (paper §5.1.2–5.1.3).
///
/// An insertion point is one gap per row for h_t vertically consecutive
/// rows, such that a common target x exists (common cutline) and no
/// multi-row local cell is straddled (intervals on opposite sides of a
/// multi-row cell cannot combine — Fig. 8).
///
/// The scanline algorithm sorts interval endpoints; a queue Q[a][s] holds
/// the currently-open intervals of row s that row-a intervals may combine
/// with. Processing a left endpoint of interval I on row a emits
/// {I} × Π_s Q[a][s] for every window of h_t consecutive rows containing a
/// (Eq. (2)); gaps whose left cell is a multi-row cell clear the queues
/// Q[a][s] for every row s that cell occupies.

#include <vector>

#include "legalize/insertion_interval.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/target.hpp"
#include "util/annotations.hpp"

namespace mrlg {

struct InsertionPoint {
    int k0 = 0;             ///< Bottom local row index.
    std::vector<int> gaps;  ///< Gap index for rows k0 .. k0+h_t-1.
    SiteCoord lo = 0;       ///< Feasible target x range (inclusive).
    SiteCoord hi = 0;

    friend bool operator==(const InsertionPoint&,
                           const InsertionPoint&) = default;
};

struct EnumerationOptions {
    /// Enforce power-rail parity on the target's bottom row.
    bool check_rail = true;
    /// Safety cap; enumeration stops (truncated=true) past this.
    std::size_t max_points = 1u << 20;
};

struct EnumerationResult {
    std::vector<InsertionPoint> points;
    bool truncated = false;
};

/// Scanline enumeration — O(#points) after sorting the endpoints.
MRLG_EFFECT_READONLY
EnumerationResult enumerate_insertion_points(
    const LocalProblem& lp, const std::vector<InsertionInterval>& intervals,
    const TargetSpec& target, const EnumerationOptions& opts = {});

/// Reference implementation: all interval combinations per base row,
/// filtered. Exponential in the worst case; used by tests and the
/// enumeration ablation bench (§5.1.3 "computationally impractical").
EnumerationResult naive_enumerate_insertion_points(
    const LocalProblem& lp, const std::vector<InsertionInterval>& intervals,
    const TargetSpec& target, const EnumerationOptions& opts = {});

/// True when no multi-row local cell lies on different sides of the chosen
/// gaps in different rows of the combination.
bool insertion_point_consistent(const LocalProblem& lp,
                                const InsertionPoint& point);

}  // namespace mrlg
