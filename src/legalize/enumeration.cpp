#include "legalize/enumeration.hpp"

#include <algorithm>

#include "eval/legality.hpp"
#include "util/assert.hpp"

namespace mrlg {

namespace {

/// Multi-row cells only; single-row cells can never be straddled.
std::vector<int> multi_row_cells(const LocalProblem& lp) {
    std::vector<int> out;
    for (int i = 0; i < lp.num_cells(); ++i) {
        if (lp.cell(i).h > 1) {
            out.push_back(i);
        }
    }
    return out;
}

bool consistent_impl(const LocalProblem& lp, const InsertionPoint& p,
                     const std::vector<int>& multi_cells) {
    const int t = p.k0;
    const int top = t + static_cast<int>(p.gaps.size());  // exclusive
    for (const int ci : multi_cells) {
        const LpCell& c = lp.cell(ci);
        const int c_lo = std::max(c.k0, t);
        const int c_hi = std::min(c.k0 + c.h, top);
        if (c_hi - c_lo < 2) {
            continue;  // spans < 2 combination rows — cannot be straddled
        }
        int side = 0;  // -1 left of gap, +1 right of gap
        for (int k = c_lo; k < c_hi; ++k) {
            const int pos =
                c.pos_in_row[static_cast<std::size_t>(k - c.k0)];
            const int gap = p.gaps[static_cast<std::size_t>(k - t)];
            const int s = pos < gap ? -1 : 1;
            if (side == 0) {
                side = s;
            } else if (side != s) {
                return false;
            }
        }
    }
    return true;
}

bool base_row_ok(const LocalProblem& lp, int t, const TargetSpec& target,
                 const EnumerationOptions& opts) {
    if (t < 0 || t + target.h > lp.num_rows()) {
        return false;
    }
    for (int k = t; k < t + target.h; ++k) {
        if (!lp.has_row(k)) {
            return false;
        }
    }
    if (opts.check_rail &&
        !rail_compatible(lp.y0() + t, target.h, target.rail_phase)) {
        return false;
    }
    return true;
}

}  // namespace

bool insertion_point_consistent(const LocalProblem& lp,
                                const InsertionPoint& point) {
    return consistent_impl(lp, point, multi_row_cells(lp));
}

EnumerationResult enumerate_insertion_points(
    const LocalProblem& lp, const std::vector<InsertionInterval>& intervals,
    const TargetSpec& target, const EnumerationOptions& opts) {
    EnumerationResult result;
    const int H = lp.num_rows();
    const int ht = static_cast<int>(target.h);
    MRLG_ASSERT(ht >= 1, "target height must be positive");
    if (H < ht) {
        return result;
    }
    const std::vector<int> multi_cells = multi_row_cells(lp);

    // Q[a][s]: open intervals of row s that may combine with row-a
    // intervals; only pairs with |a-s| <= ht-1 are ever touched.
    std::vector<std::vector<std::vector<int>>> Q(
        static_cast<std::size_t>(H),
        std::vector<std::vector<int>>(static_cast<std::size_t>(H)));

    enum class EvType : int { kClear = 0, kLeft = 1, kRight = 2 };
    struct Event {
        SiteCoord x;
        EvType type;
        int payload;  // interval index, or cell index for kClear
        int row;      // row a owning the event (kClear: the gap's row)
    };
    std::vector<Event> events;
    events.reserve(intervals.size() * 2 + multi_cells.size() * 4);

    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const InsertionInterval& iv = intervals[i];
        events.push_back(
            Event{iv.lo, EvType::kLeft, static_cast<int>(i), iv.k});
        events.push_back(
            Event{iv.hi, EvType::kRight, static_cast<int>(i), iv.k});
    }
    // Clear events: one per (multi-row cell, row it occupies), at the
    // left edge of the gap immediately to the cell's right. Emitted for
    // every such gap — including gaps whose interval was discarded for
    // negative length, which still separate left from right.
    for (const int ci : multi_cells) {
        const LpCell& c = lp.cell(ci);
        for (SiteCoord j = 0; j < c.h; ++j) {
            events.push_back(Event{static_cast<SiteCoord>(c.xl + c.w),
                                   EvType::kClear, ci, c.k0 + j});
        }
    }

    std::sort(events.begin(), events.end(), [](const Event& a,
                                               const Event& b) {
        if (a.x != b.x) {
            return a.x < b.x;
        }
        if (a.type != b.type) {
            return static_cast<int>(a.type) < static_cast<int>(b.type);
        }
        return a.payload < b.payload;
    });

    // Recursive cartesian product over the ht-1 partner queues.
    std::vector<int> combo_gaps(static_cast<std::size_t>(ht));
    auto emit_products = [&](int a, const InsertionInterval& iv, int t,
                             auto&& self, int k, SiteCoord lo,
                             SiteCoord hi) -> void {
        if (result.truncated) {
            return;
        }
        if (k == t + ht) {
            InsertionPoint p;
            p.k0 = t;
            p.gaps.assign(combo_gaps.begin(), combo_gaps.end());
            p.lo = lo;
            p.hi = hi;
            if (lo <= hi && consistent_impl(lp, p, multi_cells)) {
                if (result.points.size() >= opts.max_points) {
                    result.truncated = true;
                    return;
                }
                result.points.push_back(std::move(p));
            }
            return;
        }
        if (k == a) {
            combo_gaps[static_cast<std::size_t>(k - t)] = iv.gap;
            self(a, iv, t, self, k + 1, lo, hi);
            return;
        }
        for (const int other_idx : Q[static_cast<std::size_t>(a)]
                                    [static_cast<std::size_t>(k)]) {
            const InsertionInterval& ov =
                intervals[static_cast<std::size_t>(other_idx)];
            combo_gaps[static_cast<std::size_t>(k - t)] = ov.gap;
            self(a, iv, t, self, k + 1, std::max(lo, ov.lo),
                 std::min(hi, ov.hi));
            if (result.truncated) {
                return;
            }
        }
    };

    for (const Event& ev : events) {
        if (result.truncated) {
            break;
        }
        switch (ev.type) {
            case EvType::kClear: {
                const LpCell& c = lp.cell(ev.payload);
                for (SiteCoord j = 0; j < c.h; ++j) {
                    const int s = c.k0 + j;
                    if (s != ev.row) {
                        Q[static_cast<std::size_t>(ev.row)]
                         [static_cast<std::size_t>(s)]
                             .clear();
                    }
                }
                break;
            }
            case EvType::kLeft: {
                const InsertionInterval& iv =
                    intervals[static_cast<std::size_t>(ev.payload)];
                const int a = iv.k;
                for (int t = std::max(0, a - ht + 1);
                     t <= std::min(H - ht, a); ++t) {
                    if (!base_row_ok(lp, t, target, opts)) {
                        continue;
                    }
                    emit_products(a, iv, t, emit_products, t, iv.lo, iv.hi);
                }
                // Open this interval for later rows.
                for (int r = std::max(0, a - ht + 1);
                     r <= std::min(H - 1, a + ht - 1); ++r) {
                    if (r != a) {
                        Q[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(a)]
                            .push_back(ev.payload);
                    }
                }
                break;
            }
            case EvType::kRight: {
                const int a = ev.row;
                for (int r = std::max(0, a - ht + 1);
                     r <= std::min(H - 1, a + ht - 1); ++r) {
                    if (r == a) {
                        continue;
                    }
                    auto& q = Q[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(a)];
                    q.erase(std::remove(q.begin(), q.end(), ev.payload),
                            q.end());
                }
                break;
            }
        }
    }
    return result;
}

EnumerationResult naive_enumerate_insertion_points(
    const LocalProblem& lp, const std::vector<InsertionInterval>& intervals,
    const TargetSpec& target, const EnumerationOptions& opts) {
    EnumerationResult result;
    const int H = lp.num_rows();
    const int ht = static_cast<int>(target.h);
    if (H < ht) {
        return result;
    }
    const std::vector<int> multi_cells = multi_row_cells(lp);

    // Bucket intervals per row.
    std::vector<std::vector<int>> per_row(static_cast<std::size_t>(H));
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        per_row[static_cast<std::size_t>(intervals[i].k)].push_back(
            static_cast<int>(i));
    }

    std::vector<int> combo(static_cast<std::size_t>(ht));
    for (int t = 0; t + ht <= H; ++t) {
        if (!base_row_ok(lp, t, target, opts)) {
            continue;
        }
        // Odometer over per_row[t..t+ht-1].
        bool any_empty = false;
        for (int k = t; k < t + ht; ++k) {
            if (per_row[static_cast<std::size_t>(k)].empty()) {
                any_empty = true;
            }
        }
        if (any_empty) {
            continue;
        }
        std::vector<std::size_t> odo(static_cast<std::size_t>(ht), 0);
        while (true) {
            SiteCoord lo = kSiteCoordMin;
            SiteCoord hi = kSiteCoordMax;
            InsertionPoint p;
            p.k0 = t;
            p.gaps.resize(static_cast<std::size_t>(ht));
            for (int j = 0; j < ht; ++j) {
                const int idx = per_row[static_cast<std::size_t>(t + j)]
                                       [odo[static_cast<std::size_t>(j)]];
                const InsertionInterval& iv =
                    intervals[static_cast<std::size_t>(idx)];
                lo = std::max(lo, iv.lo);
                hi = std::min(hi, iv.hi);
                p.gaps[static_cast<std::size_t>(j)] = iv.gap;
                combo[static_cast<std::size_t>(j)] = idx;
            }
            p.lo = lo;
            p.hi = hi;
            if (lo <= hi && consistent_impl(lp, p, multi_cells)) {
                if (result.points.size() >= opts.max_points) {
                    result.truncated = true;
                    return result;
                }
                result.points.push_back(std::move(p));
            }
            // Advance odometer.
            int j = 0;
            for (; j < ht; ++j) {
                auto& d = odo[static_cast<std::size_t>(j)];
                if (++d < per_row[static_cast<std::size_t>(t + j)].size()) {
                    break;
                }
                d = 0;
            }
            if (j == ht) {
                break;
            }
        }
    }
    return result;
}

}  // namespace mrlg
