#pragma once
/// \file exact_local.hpp
/// Optimal solver for one extracted local legalization problem: enumerate
/// every valid insertion point and evaluate each exactly. Because exact
/// evaluation returns the true minimal total displacement of a point (the
/// realization achieves exactly the hinge cost), the minimum over all
/// points is the optimum of the local subproblem — the same problem the
/// paper solves with an ILP (§6). Table 1's "ILP" columns are produced by
/// running the legalizer with MllOptions::exact_evaluation = true, which
/// routes through this evaluation; this header additionally exposes the
/// single-problem oracle for tests and the src/ilp cross-validation.

#include "legalize/enumeration.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/target.hpp"

namespace mrlg {

struct ExactLocalSolution {
    bool feasible = false;
    InsertionPoint point;
    SiteCoord xt = 0;
    double cost_um = 0.0;
    std::size_t num_points = 0;
};

/// Solves `lp` to optimality for inserting `target`. Runs the min/max
/// packing itself (hence the mutable problem).
ExactLocalSolution solve_local_exact(LocalProblem& lp,
                                     const TargetSpec& target,
                                     const EnumerationOptions& opts = {});

}  // namespace mrlg
