#pragma once
/// \file mll.hpp
/// Multi-row Local Legalization (paper §4): insert one unplaced target cell
/// near a preferred position, shifting local cells minimally in x.
///
/// Pipeline: window → local region extraction → leftmost/rightmost packing
/// → insertion intervals → scanline enumeration → per-point evaluation
/// (neighbour approximation by default, exact optionally) → realization of
/// the best point → commit to the database/segment grid.
/// On failure nothing is modified (the paper's abort semantics).
///
/// The operation is split into a read-only planning half (mll_plan) and a
/// mutating commit half (mll_commit) so the legalizer's region-parallel
/// pipeline can compute many plans concurrently against a frozen grid and
/// apply them serially in queue order. mll_place composes the two and is
/// the drop-in serial entry point.

#include "check/audit.hpp"
#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/enumeration.hpp"

namespace mrlg {

struct MllOptions {
    SiteCoord rx = 30;  ///< Window half-width (paper: Rx = 30).
    SiteCoord ry = 5;   ///< Window half-height (paper: Ry = 5).
    bool check_rail = true;
    /// Evaluate insertion points exactly (O(|C_W|) each) instead of the
    /// paper's O(h_t) neighbour approximation. With exact evaluation the
    /// chosen solution is optimal for the local subproblem — this is the
    /// "ILP" configuration of Table 1 (see DESIGN.md substitution notes).
    bool exact_evaluation = false;
    /// Solve each local problem with the actual MIP formulation (our
    /// simplex + branch & bound, the lpsolve stand-in) instead of
    /// enumeration. Equally optimal, orders of magnitude slower — used to
    /// reproduce the paper's 185x ILP runtime ratio (bench_table1
    /// --true-ilp). Takes precedence over exact_evaluation.
    bool use_mip = false;
    std::size_t max_points = 1u << 20;
    /// Invariant-audit level for this attempt. At kFull every extraction
    /// is checked against the §2.1.3 post-conditions and every min/max
    /// packing against the §5.1.1 bounds (audit_local.hpp) before the
    /// result is trusted; violations throw AssertionError. kOff/kCheap
    /// skip the per-attempt audits (the legalizer still audits the grid
    /// at phase boundaries).
    AuditLevel audit = AuditLevel::kOff;
    /// Worker threads for the insertion-point evaluation scan. 0 = the
    /// MRLG_THREADS environment default (hardware concurrency when unset);
    /// 1 = serial. Any value yields the bit-identical chosen point: the
    /// scan merges chunk-local bests with the deterministic tie-break
    /// (cost, point index) that matches the serial first-strictly-better
    /// rule.
    int num_threads = 0;
};

/// Reusable buffers shared by successive mll_place calls (the legalizer
/// holds one for its whole run). Optional — pass nullptr for one-off calls.
struct MllScratch {
    LocalRegionScratch region;
    LocalProblemScratch problem;
};

enum class MllStatus {
    kSuccess,
    kNoInsertionPoint,  ///< Region extracted but no feasible point.
    kNoRegion,          ///< Window contains no usable rows.
    /// Commit-time validation found the grid changed since the plan was
    /// computed (stale move base or occupied target slot). Nothing was
    /// modified; the caller re-plans from live state. Unreachable when
    /// plans are confined to pairwise-disjoint footprints (the pipeline's
    /// partition rule), so this is a defensive status, not a normal path.
    kPlanInvalidated,
};

struct MllResult {
    MllStatus status = MllStatus::kNoRegion;
    SiteCoord x = 0;  ///< Committed target position (success only).
    SiteCoord y = 0;
    double est_cost_um = 0.0;   ///< Evaluator cost of the chosen point.
    double real_cost_um = 0.0;  ///< Realized displacement cost, microns.
    std::size_t num_points = 0;
    std::size_t num_local_cells = 0;
    bool enumeration_truncated = false;
    /// Local cells the commit shifted, with their pre-move x. MLL only
    /// ever changes x (rows and orders are invariant), so an exact undo is
    /// "restore these x values and remove the target".
    std::vector<std::pair<CellId, SiteCoord>> moved;

    bool success() const { return status == MllStatus::kSuccess; }
};

/// Exactly reverts a successful mll_place: removes the target and restores
/// every shifted cell. The grid must not have been modified in between.
void mll_undo(Database& db, SegmentGrid& grid, CellId target_cell,
              const MllResult& result) MRLG_REQUIRES(grid_write_cap());

/// A fully-computed MLL solution that has not touched the database or the
/// segment grid. Produced by mll_plan (read-only over db/grid), applied by
/// mll_commit. Plans carry everything MllResult reports so a failed plan
/// converts losslessly (mll_result_from_plan).
struct MllPlan {
    MllStatus status = MllStatus::kNoRegion;
    SiteCoord x = 0;  ///< Planned target position (success only).
    SiteCoord y = 0;
    double est_cost_um = 0.0;
    double real_cost_um = 0.0;
    std::size_t num_points = 0;
    std::size_t num_local_cells = 0;
    bool enumeration_truncated = false;
    /// One shifted local cell. `old_x` is the position the plan was
    /// computed against; commit validates it before applying `new_x`.
    struct Move {
        CellId id;
        SiteCoord old_x = 0;
        SiteCoord new_x = 0;
    };
    std::vector<Move> moves;  ///< Shifted cells, row-list order.

    bool success() const { return status == MllStatus::kSuccess; }
};

/// Read-only planning half of MLL: computes where `target_cell` (must be
/// unplaced) would be inserted near (pref_x, pref_y) and which local cells
/// would shift, without mutating `db` or `grid`. Safe to run concurrently
/// with other mll_plan calls on the same db/grid as long as nothing
/// mutates them; pass a per-thread scratch.
MRLG_EFFECT_READONLY
MllPlan mll_plan(const Database& db, const SegmentGrid& grid,
                 CellId target_cell, double pref_x, double pref_y,
                 const MllOptions& opts = {}, MllScratch* scratch = nullptr);

/// Applies a successful plan: validates it against the live grid (every
/// move base unchanged, target slot placeable after the shifts), then
/// shifts the moved cells and registers the target. On stale state nothing
/// is modified and the result carries MllStatus::kPlanInvalidated.
MllResult mll_commit(Database& db, SegmentGrid& grid, CellId target_cell,
                     const MllPlan& plan) MRLG_REQUIRES(grid_write_cap());

/// Converts a plan (typically a failed one) to the equivalent MllResult.
MllResult mll_result_from_plan(const MllPlan& plan);

/// Places `target_cell` (must be unplaced) as close as possible to the
/// preferred fractional position (pref_x, pref_y), legalizing the local
/// neighbourhood. Commits on success; leaves everything untouched on
/// failure. Equivalent to mll_plan immediately followed by mll_commit.
MllResult mll_place(Database& db, SegmentGrid& grid, CellId target_cell,
                    double pref_x, double pref_y,
                    const MllOptions& opts = {},
                    MllScratch* scratch = nullptr)
    MRLG_REQUIRES(grid_write_cap());

}  // namespace mrlg
