#include "legalize/exact_local.hpp"

#include <limits>

#include "legalize/evaluation.hpp"
#include "legalize/insertion_interval.hpp"
#include "legalize/minmax_placement.hpp"

namespace mrlg {

ExactLocalSolution solve_local_exact(LocalProblem& lp,
                                     const TargetSpec& target,
                                     const EnumerationOptions& opts) {
    ExactLocalSolution sol;
    compute_minmax_placement(lp);
    const auto intervals = build_insertion_intervals(lp, target.w);
    const EnumerationResult enumr =
        enumerate_insertion_points(lp, intervals, target, opts);
    sol.num_points = enumr.points.size();

    double best = std::numeric_limits<double>::max();
    for (const InsertionPoint& p : enumr.points) {
        const Evaluation ev = evaluate_insertion_point_exact(lp, p, target);
        if (ev.feasible && ev.cost_um < best) {
            best = ev.cost_um;
            sol.feasible = true;
            sol.point = p;
            sol.xt = ev.xt;
            sol.cost_um = ev.cost_um;
        }
    }
    return sol;
}

}  // namespace mrlg
