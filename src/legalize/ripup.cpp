#include "legalize/ripup.hpp"

#include <algorithm>
#include <cmath>

#include "check/audit.hpp"
#include "eval/legality.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mrlg {

namespace {

/// One reversible sub-step of the transaction.
struct Step {
    enum class Kind { kEvict, kPlaceDirect, kMll } kind;
    CellId cell;
    SiteCoord old_x = 0;  ///< kEvict: position the cell was removed from.
    SiteCoord old_y = 0;
    MllResult mll;        ///< kMll: commit record for mll_undo.
};

void rollback(Database& db, SegmentGrid& grid, std::vector<Step>& steps)
    MRLG_REQUIRES(grid_write_cap()) {
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
        switch (it->kind) {
            case Step::Kind::kEvict:
                grid.place(db, it->cell, it->old_x, it->old_y);
                break;
            case Step::Kind::kPlaceDirect:
                grid.remove(db, it->cell);
                break;
            case Step::Kind::kMll:
                mll_undo(db, grid, it->cell, it->mll);
                break;
        }
    }
    steps.clear();
}

}  // namespace

RipupResult ripup_place(Database& db, SegmentGrid& grid, CellId target,
                        double pref_x, double pref_y,
                        const RipupOptions& opts, MllScratch* scratch) {
    MRLG_OBS_PHASE("ripup");
    MRLG_OBS_COUNT("ripup.attempts", 1);
    RipupResult res;
    const Cell& cell = db.cell(target);
    MRLG_ASSERT(!cell.placed() && !cell.fixed(),
                "rip-up target must be an unplaced movable cell");
    const Floorplan& fp = db.floorplan();
    const SiteCoord h = cell.height();
    const SiteCoord w = cell.width();
    const SiteCoord max_y = std::max<SiteCoord>(0, fp.num_rows() - h);
    const double sw = fp.site_w_um();
    const double sh = fp.site_h_um();

    // Candidate footprints: rows by |dy| (parity-filtered), a few x
    // offsets around the preferred x each.
    std::vector<SiteCoord> rows;
    for (SiteCoord y = 0; y <= max_y; ++y) {
        if (!opts.mll.check_rail ||
            rail_compatible(y, h, cell.rail_phase())) {
            rows.push_back(y);
        }
    }
    std::sort(rows.begin(), rows.end(), [&](SiteCoord a, SiteCoord b) {
        return std::abs(static_cast<double>(a) - pref_y) <
               std::abs(static_cast<double>(b) - pref_y);
    });
    const SiteCoord x0 = static_cast<SiteCoord>(std::lround(pref_x));
    const std::vector<SiteCoord> x_offsets = {0, -w, w, -3 * w, 3 * w};

    int tried = 0;
    for (const SiteCoord y : rows) {
        for (const SiteCoord dx : x_offsets) {
            if (tried >= opts.max_candidates) {
                return res;
            }
            const SiteCoord x = x0 + dx;
            const Rect fot{x, y, w, h};
            // Footprint must sit on real sites (contained in segments).
            bool contained = true;
            for (SiteCoord r = y; r < y + h; ++r) {
                if (!grid.containing_segment(r, fot.x_span(), cell.region())
                         .valid()) {
                    contained = false;
                    break;
                }
            }
            if (!contained) {
                continue;
            }
            ++tried;
            ++res.candidates_tried;

            // Victims: placed cells overlapping the footprint. Only
            // single-row cells are evicted (multi-row victims would just
            // move the problem around).
            std::vector<CellId> victims;
            bool viable = true;
            for (SiteCoord r = y; r < y + h && viable; ++r) {
                for (const SegmentId sid : grid.row_segments(r)) {
                    const Segment& seg = grid.segment(sid);
                    const auto [first, last] =
                        grid.cells_overlapping(db, seg, fot.x_span());
                    for (std::size_t i = first; i < last; ++i) {
                        const CellId v = seg.cells[i];
                        const Cell& vc = db.cell(v);
                        if (vc.height() > 1) {
                            viable = false;
                            break;
                        }
                        victims.push_back(v);
                    }
                    if (!viable) {
                        break;
                    }
                }
            }
            if (!viable) {
                continue;
            }
            // Dedup before applying the eviction cap: a victim collected
            // once per overlapped (row, segment) slot must count once, or
            // viable candidates get rejected by inflated raw counts.
            std::sort(victims.begin(), victims.end());
            victims.erase(std::unique(victims.begin(), victims.end()),
                          victims.end());
            if (victims.size() > opts.max_evictions) {
                continue;
            }

            // --- transaction -------------------------------------------------
            std::vector<Step> steps;
            for (const CellId v : victims) {
                Step s;
                s.kind = Step::Kind::kEvict;
                s.cell = v;
                s.old_x = db.cell(v).x();
                s.old_y = db.cell(v).y();
                grid.remove(db, v);
                steps.push_back(std::move(s));
            }
            MRLG_DCHECK(grid.placeable(db, fot),
                        "footprint still blocked after eviction");
            grid.place(db, target, x, y);
            {
                Step s;
                s.kind = Step::Kind::kPlaceDirect;
                s.cell = target;
                steps.push_back(std::move(s));
            }
            double cost =
                std::abs(static_cast<double>(x) - pref_x) * sw +
                std::abs(static_cast<double>(y) - pref_y) * sh;

            bool all_back = true;
            for (const CellId v : victims) {
                const Cell& vc = db.cell(v);
                const double vx = vc.gp_x();
                const double vy = vc.gp_y();
                MllResult r = mll_place(db, grid, v, vx, vy, opts.mll, scratch);
                if (!r.success()) {
                    all_back = false;
                    break;
                }
                cost += r.real_cost_um;
                Step s;
                s.kind = Step::Kind::kMll;
                s.cell = v;
                s.mll = std::move(r);
                steps.push_back(std::move(s));
            }
            if (!all_back) {
                MRLG_OBS_COUNT("ripup.rollbacks", 1);
                rollback(db, grid, steps);
                if (opts.audit >= AuditLevel::kFull) {
                    enforce(audit_segment_grid(db, grid, AuditLevel::kCheap,
                                               opts.mll.check_rail));
                }
                continue;
            }
            if (opts.audit >= AuditLevel::kFull) {
                enforce(audit_segment_grid(db, grid, AuditLevel::kCheap,
                                           opts.mll.check_rail));
            }
            res.success = true;
            res.x = x;
            res.y = y;
            res.evicted = victims.size();
            res.cost_um = cost;
            MRLG_OBS_COUNT("ripup.commits", 1);
            MRLG_OBS_COUNT("ripup.evictions", res.evicted);
            MRLG_OBS_OBSERVE("ripup.cost_um", res.cost_um);
            return res;
        }
    }
    return res;
}

}  // namespace mrlg
