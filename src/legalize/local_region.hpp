#pragma once
/// \file local_region.hpp
/// Local region extraction (paper §2.1.3): given a window W, select one
/// "local segment" per row (the non-blocked, non-local-cell-free run
/// closest to the window centre) and classify cells into local (free to
/// shift in x during MLL) and non-local (frozen, acting as obstacles).

#include <optional>
#include <unordered_set>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "util/annotations.hpp"

namespace mrlg {

/// One row's selected local segment.
struct LocalRow {
    SiteCoord y = 0;           ///< Absolute row index.
    Span span;                 ///< Absolute x range of the local segment.
    SegmentId global_segment;  ///< Enclosing SegmentGrid segment.
    /// Local cells whose footprint crosses this row, ordered by x.
    std::vector<CellId> cells;
};

/// Extracted localized placement problem. Row k of the region corresponds
/// to absolute row y0() + k; a row may be absent (no usable segment).
class LocalRegion {
public:
    LocalRegion(Rect window, SiteCoord y0, std::size_t height)
        : window_(window), y0_(y0), rows_(height) {}

    const Rect& window() const { return window_; }
    SiteCoord y0() const { return y0_; }
    int height() const { return static_cast<int>(rows_.size()); }

    bool has_row(int k) const {
        return k >= 0 && k < height() && rows_[static_cast<std::size_t>(k)];
    }
    const LocalRow& row(int k) const { return *rows_[static_cast<std::size_t>(k)]; }

    /// All distinct local cells (a multi-row cell is listed once).
    const std::vector<CellId>& local_cells() const { return local_cells_; }

    /// Local row index for absolute row y, or -1 when outside the region.
    int row_index(SiteCoord y) const {
        const SiteCoord k = y - y0_;
        return (k >= 0 && k < static_cast<SiteCoord>(rows_.size()))
                   ? static_cast<int>(k)
                   : -1;
    }

    // Builder access (used by extract_local_region).
    std::optional<LocalRow>& mutable_row(int k) {
        return rows_[static_cast<std::size_t>(k)];
    }
    void set_local_cells(std::vector<CellId> cells) {
        local_cells_ = std::move(cells);
    }

private:
    Rect window_;
    SiteCoord y0_;
    std::vector<std::optional<LocalRow>> rows_;
    std::vector<CellId> local_cells_;
};

/// Reusable buffers for extract_local_region. The legalizer extracts one
/// region per MLL attempt (thousands per run); passing the same scratch to
/// every call keeps the per-row piece vectors, the blocker set and the
/// local-cell list at their high-water capacity instead of reallocating
/// them each time. A default-constructed scratch is always valid.
struct LocalRegionScratch {
    struct RowScratch {
        std::vector<Span> pieces;
        std::vector<SegmentId> piece_segment;
        std::optional<std::size_t> chosen;
    };
    std::vector<RowScratch> rows;
    std::unordered_set<CellId> blockers;
    std::vector<CellId> locals;
    std::vector<Span> seg_pieces;  ///< per-segment piece accumulator.
    std::vector<Span> span_tmp;    ///< subtract() double-buffer.
};

/// Conservative bound on everything one legalization attempt (direct
/// placement try + MLL plan/commit) may read or write, as row/x spans in
/// site units. Two attempts whose footprints are disjoint can be planned
/// against the same frozen grid and committed in either order with
/// identical results — the invariant behind the legalizer's region-parallel
/// pipeline (see legalize/pipeline.hpp for the ledger that enforces it).
struct AttemptFootprint {
    Span rows;  ///< Absolute row range [lo, hi).
    Span x;     ///< Site range [lo, hi).

    bool overlaps(const AttemptFootprint& o) const {
        return rows.overlaps(o.rows) && x.overlaps(o.x);
    }
};

/// Computes the footprint of an attempt with MLL window `window` and
/// direct-placement rectangle `fitted` (the nearest_aligned_position slot,
/// which clamping can push outside the window).
///
/// Why this bounds the attempt:
///  * Rows: extraction reads only segments of rows intersecting `window`
///    (extract_local_region clips to it) and the direct try reads only
///    `fitted`'s rows; realization shifts cells whose slices lie in chosen
///    pieces, i.e. inside the window, and the commit registers the target
///    inside window ∪ fitted. No read or write leaves hull(window, fitted)
///    vertically.
///  * X: every piece is clipped to the window x-span and the direct try is
///    confined to fitted's x-span, but *reads* include any cell whose
///    slice overlaps those spans — a cell of width ≤ max_cell_width
///    overlapping [lo, hi) has its origin in [lo - (max_cell_width - 1),
///    hi), and its full slice lies in [lo - (max_cell_width - 1),
///    hi + (max_cell_width - 1)). Padding the hull by max_cell_width - 1
///    on both sides therefore covers the read set; writes are a subset.
AttemptFootprint compute_attempt_footprint(const Rect& window,
                                           const Rect& fitted,
                                           SiteCoord max_cell_width);

/// Extracts the localized problem inside `window`.
///
/// Implementation note: the paper defines non-local cells in two layers
/// (cells not fully inside W, then cells inside W but not contained in the
/// chosen local segments). A cell of the second kind that overlaps a chosen
/// local segment must additionally *cut* it (it will not move, so its sites
/// are unusable). We run the selection to a fixpoint: blockers accumulate
/// monotonically, so this terminates.
MRLG_EFFECT_READONLY
LocalRegion extract_local_region(const Database& db, const SegmentGrid& grid,
                                 const Rect& window, int fence_region = 0,
                                 LocalRegionScratch* scratch = nullptr);

}  // namespace mrlg
