#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mrlg {

namespace {

/// Pin position in microns under the chosen source.
struct PinPos {
    double x_um;
    double y_um;
};

PinPos pin_position(const Database& db, const Pin& pin,
                    PositionSource source) {
    const Cell& cell = db.cell(pin.cell);
    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    double cx;
    double cy;
    if (cell.fixed() || source == PositionSource::kLegalized) {
        cx = static_cast<double>(cell.x());
        cy = static_cast<double>(cell.y());
    } else {
        cx = cell.gp_x();
        cy = cell.gp_y();
    }
    return PinPos{(cx + pin.offset_x) * sw, (cy + pin.offset_y) * sh};
}

}  // namespace

double hpwl_um(const Database& db, PositionSource source, int num_threads) {
    MRLG_OBS_PHASE("eval.hpwl");
    const std::vector<Net>& nets = db.nets();
    // Fixed grain: chunk boundaries (and thus the floating-point summation
    // order) depend only on the net count, never on the thread count.
    constexpr std::size_t kGrain = 512;
    const auto map = [&](std::size_t begin, std::size_t end) {
        double partial = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
            const Net& net = nets[i];
            if (net.degree() < 2) {
                continue;
            }
            double x_lo = std::numeric_limits<double>::max();
            double x_hi = std::numeric_limits<double>::lowest();
            double y_lo = std::numeric_limits<double>::max();
            double y_hi = std::numeric_limits<double>::lowest();
            for (const PinId pid : net.pins()) {
                const PinPos p = pin_position(db, db.pin(pid), source);
                x_lo = std::min(x_lo, p.x_um);
                x_hi = std::max(x_hi, p.x_um);
                y_lo = std::min(y_lo, p.y_um);
                y_hi = std::max(y_hi, p.y_um);
            }
            partial += (x_hi - x_lo) + (y_hi - y_lo);
        }
        return partial;
    };
    return parallel_reduce(nets.size(), kGrain, num_threads, 0.0, map,
                           [](double acc, double p) { return acc + p; });
}

double hpwl_delta(const Database& db, int num_threads) {
    const double gp =
        hpwl_um(db, PositionSource::kGlobalPlacement, num_threads);
    if (gp <= 0.0) {
        return 0.0;
    }
    const double legal =
        hpwl_um(db, PositionSource::kLegalized, num_threads);
    return (legal - gp) / gp;
}

DisplacementStats displacement_stats(const Database& db) {
    MRLG_OBS_PHASE("eval.displacement");
    DisplacementStats stats;
    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    for (const Cell& cell : db.cells()) {
        if (cell.fixed() || !cell.placed()) {
            continue;
        }
        const double dx = std::abs(static_cast<double>(cell.x()) - cell.gp_x());
        const double dy = std::abs(static_cast<double>(cell.y()) - cell.gp_y());
        const double um = dx * sw + dy * sh;
        stats.total_um += um;
        stats.max_sites = std::max(stats.max_sites, um / sw);
        ++stats.num_cells;
    }
    if (stats.num_cells > 0) {
        stats.avg_sites =
            stats.total_um / sw / static_cast<double>(stats.num_cells);
    }
    return stats;
}

}  // namespace mrlg
