#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "obs/trace.hpp"

namespace mrlg {

namespace {

std::size_t bucket_of(double disp_sites) {
    if (disp_sites < 1) return 0;
    if (disp_sites < 2) return 1;
    if (disp_sites < 4) return 2;
    if (disp_sites < 8) return 3;
    if (disp_sites < 16) return 4;
    return 5;
}

}  // namespace

const char* QualityReport::histogram_label(std::size_t bucket) {
    switch (bucket) {
        case 0: return "[ 0,  1)";
        case 1: return "[ 1,  2)";
        case 2: return "[ 2,  4)";
        case 3: return "[ 4,  8)";
        case 4: return "[ 8, 16)";
        default: return "[16,  +)";
    }
}

QualityReport make_quality_report(const Database& db, const SegmentGrid& grid,
                                  bool check_rail) {
    MRLG_OBS_PHASE("eval.quality_report");
    QualityReport rep;
    rep.disp_histogram.assign(6, 0);
    rep.disp_by_height.assign(4, 0.0);
    rep.count_by_height.assign(4, 0);

    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();
    std::vector<double> disps;
    for (const Cell& c : db.cells()) {
        if (c.fixed()) {
            continue;
        }
        ++rep.num_cells;
        if (!c.placed()) {
            ++rep.num_unplaced;
            continue;
        }
        const double d = (std::abs(c.x() - c.gp_x()) * sw +
                          std::abs(c.y() - c.gp_y()) * sh) /
                         sw;
        disps.push_back(d);
        rep.disp_histogram[bucket_of(d)] += 1;
        const std::size_t hclass =
            std::min<std::size_t>(static_cast<std::size_t>(c.height()), 4) -
            1;
        rep.disp_by_height[hclass] += d;
        rep.count_by_height[hclass] += 1;
    }
    if (!disps.empty()) {
        std::sort(disps.begin(), disps.end());
        double sum = 0.0;
        for (const double d : disps) {
            sum += d;
        }
        rep.disp_avg = sum / static_cast<double>(disps.size());
        rep.disp_median = disps[disps.size() / 2];
        rep.disp_p95 = disps[disps.size() * 95 / 100 == disps.size()
                                 ? disps.size() - 1
                                 : disps.size() * 95 / 100];
        rep.disp_max = disps.back();
    }
    for (std::size_t h = 0; h < 4; ++h) {
        if (rep.count_by_height[h] > 0) {
            rep.disp_by_height[h] /=
                static_cast<double>(rep.count_by_height[h]);
        }
    }

    rep.gp_hpwl_m = hpwl_m(db, PositionSource::kGlobalPlacement);
    rep.legal_hpwl_m = hpwl_m(db, PositionSource::kLegalized);
    rep.dhpwl_pct = rep.gp_hpwl_m > 0
                        ? (rep.legal_hpwl_m / rep.gp_hpwl_m - 1.0) * 100.0
                        : 0.0;

    LegalityOptions lopts;
    lopts.check_rail_alignment = check_rail;
    rep.legal = check_legality(db, grid, lopts).legal;
    return rep;
}

void print_quality_report(const QualityReport& rep, std::ostream& os) {
    os << "placement quality report\n"
       << "  cells               : " << rep.num_cells << " ("
       << rep.num_unplaced << " unplaced)\n"
       << "  legal               : " << (rep.legal ? "yes" : "NO") << "\n"
       << std::fixed << std::setprecision(3)
       << "  displacement (sites): avg " << rep.disp_avg << ", median "
       << rep.disp_median << ", p95 " << rep.disp_p95 << ", max "
       << rep.disp_max << "\n";
    const std::size_t placed = rep.num_cells - rep.num_unplaced;
    if (placed > 0) {
        os << "  histogram:\n";
        for (std::size_t b = 0; b < rep.disp_histogram.size(); ++b) {
            const double frac =
                static_cast<double>(rep.disp_histogram[b]) /
                static_cast<double>(placed);
            os << "    " << QualityReport::histogram_label(b) << " "
               << std::setw(7) << rep.disp_histogram[b] << "  "
               << std::string(static_cast<std::size_t>(frac * 40.0), '#')
               << "\n";
        }
    }
    os << "  by height (avg sites):";
    for (std::size_t h = 0; h < rep.disp_by_height.size(); ++h) {
        if (rep.count_by_height[h] > 0) {
            os << "  " << (h + 1) << (h == 3 ? "+" : "") << "r="
               << rep.disp_by_height[h];
        }
    }
    os << "\n"
       << std::setprecision(4) << "  HPWL                : "
       << rep.gp_hpwl_m << " m -> " << rep.legal_hpwl_m << " m ("
       << std::setprecision(2) << rep.dhpwl_pct << " %)\n";
}

}  // namespace mrlg
