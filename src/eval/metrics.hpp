#pragma once
/// \file metrics.hpp
/// Quality metrics reported in the paper's Table 1: HPWL (metres),
/// average displacement (site widths), and their deltas.

#include "db/database.hpp"

namespace mrlg {

/// Which coordinates to evaluate a cell at.
enum class PositionSource {
    kGlobalPlacement,  ///< Cell::gp_x/gp_y (fractional sites).
    kLegalized,        ///< Cell::x/y (site-aligned).
};

/// Half-perimeter wirelength in microns, summed over all nets with >= 2
/// pins. Pins on fixed cells use the fixed position regardless of source.
/// Parallel reduce over nets; partial sums are always combined in fixed
/// chunk order, so the result is bit-identical for every `num_threads`
/// (0 = MRLG_THREADS environment default, 1 = serial).
double hpwl_um(const Database& db, PositionSource source,
               int num_threads = 0);

/// HPWL in metres (the unit of Table 1's "GP HPWL(m)" column).
inline double hpwl_m(const Database& db, PositionSource source,
                     int num_threads = 0) {
    return hpwl_um(db, source, num_threads) * 1e-6;
}

/// Relative wirelength change of the legalized placement vs the global
/// placement: (legal - gp) / gp. Matches Table 1's ΔHPWL column.
double hpwl_delta(const Database& db, int num_threads = 0);

struct DisplacementStats {
    double total_um = 0.0;    ///< Σ |dx|·site_w + |dy|·site_h over cells.
    double avg_sites = 0.0;   ///< total_um / site_w / #placed movable cells.
    double max_sites = 0.0;   ///< max per-cell displacement, site widths.
    std::size_t num_cells = 0;
};

/// Displacement of the legalized placement from the global placement
/// (paper objective, §2). Unplaced cells are skipped.
DisplacementStats displacement_stats(const Database& db);

}  // namespace mrlg
