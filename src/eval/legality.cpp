#include "eval/legality.hpp"

#include <algorithm>

namespace mrlg {

bool rail_compatible(SiteCoord y, SiteCoord height, RailPhase p) {
    if (height % 2 != 0) {
        return true;  // odd-height cells flip onto either parity
    }
    const RailPhase row_phase =
        (y % 2 == 0) ? RailPhase::kEven : RailPhase::kOdd;
    return row_phase == p;
}

bool position_legal_for_cell(const Database& db, const SegmentGrid& grid,
                             CellId c, SiteCoord x, SiteCoord y,
                             bool check_rail_alignment) {
    const Cell& cell = db.cell(c);
    if (y < 0 || y + cell.height() > db.floorplan().num_rows()) {
        return false;
    }
    if (check_rail_alignment &&
        !rail_compatible(y, cell.height(), cell.rail_phase())) {
        return false;
    }
    const Span xs{x, x + cell.width()};
    for (SiteCoord row = y; row < y + cell.height(); ++row) {
        if (!grid.containing_segment(row, xs, cell.region()).valid()) {
            return false;
        }
    }
    return true;
}

LegalityReport check_legality(const Database& db, const SegmentGrid& grid,
                              const LegalityOptions& opts) {
    LegalityReport rep;
    auto note = [&](std::string msg) {
        rep.legal = false;
        if (rep.messages.size() < opts.max_messages) {
            rep.messages.push_back(std::move(msg));
        }
    };

    // Per-row slices of every placed movable cell, for the overlap sweep.
    struct Slice {
        SiteCoord x;
        SiteCoord x_hi;
        CellId cell;
    };
    const SiteCoord num_rows = db.floorplan().num_rows();
    std::vector<std::vector<Slice>> per_row(
        static_cast<std::size_t>(std::max<SiteCoord>(num_rows, 0)));

    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const Cell& cell = db.cells()[i];
        const CellId id{static_cast<CellId::underlying>(i)};
        if (cell.fixed()) {
            continue;
        }
        if (!cell.placed()) {
            if (opts.require_all_placed) {
                ++rep.num_unplaced;
                note("cell " + cell.name() + " is unplaced");
            }
            continue;
        }
        // Constraint 2+3: aligned, contained in segments row by row.
        if (!position_legal_for_cell(db, grid, id, cell.x(), cell.y(),
                                     /*check_rail_alignment=*/false)) {
            ++rep.num_out_of_rows;
            note("cell " + cell.name() + " outside rows/segments");
        }
        // Constraint 4.
        if (opts.check_rail_alignment &&
            !rail_compatible(cell.y(), cell.height(), cell.rail_phase())) {
            ++rep.num_rail_violations;
            note("cell " + cell.name() + " violates power-rail parity");
        }
        for (SiteCoord row = cell.y();
             row < cell.y() + cell.height(); ++row) {
            if (row >= 0 && row < num_rows) {
                per_row[static_cast<std::size_t>(row)].push_back(
                    Slice{cell.x(),
                          static_cast<SiteCoord>(cell.x() + cell.width()),
                          id});
            }
        }
    }

    // Constraint 1: per-row sweep; within a row, sorted slices must not
    // overlap. Cross-row overlap of multi-row cells is covered because a
    // multi-row cell contributes a slice to every row it crosses.
    for (auto& row : per_row) {
        std::sort(row.begin(), row.end(), [](const Slice& a, const Slice& b) {
            return a.x < b.x || (a.x == b.x && a.cell < b.cell);
        });
        for (std::size_t i = 1; i < row.size(); ++i) {
            if (row[i].x < row[i - 1].x_hi) {
                ++rep.num_overlaps;
                note("overlap between " + db.cell(row[i - 1].cell).name() +
                     " and " + db.cell(row[i].cell).name());
            }
        }
    }

    static_cast<void>(grid);
    return rep;
}

}  // namespace mrlg
