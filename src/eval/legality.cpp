#include "eval/legality.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mrlg {

bool rail_compatible(SiteCoord y, SiteCoord height, RailPhase p) {
    if (height % 2 != 0) {
        return true;  // odd-height cells flip onto either parity
    }
    const RailPhase row_phase =
        (y % 2 == 0) ? RailPhase::kEven : RailPhase::kOdd;
    return row_phase == p;
}

bool position_legal_for_cell(const Database& db, const SegmentGrid& grid,
                             CellId c, SiteCoord x, SiteCoord y,
                             bool check_rail_alignment) {
    const Cell& cell = db.cell(c);
    if (y < 0 || y + cell.height() > db.floorplan().num_rows()) {
        return false;
    }
    if (check_rail_alignment &&
        !rail_compatible(y, cell.height(), cell.rail_phase())) {
        return false;
    }
    const Span xs{x, x + cell.width()};
    for (SiteCoord row = y; row < y + cell.height(); ++row) {
        if (!grid.containing_segment(row, xs, cell.region()).valid()) {
            return false;
        }
    }
    return true;
}

namespace {

/// A violation found by a parallel chunk, recorded id-only so message
/// strings are built serially (and only up to the message cap).
struct Violation {
    enum class Kind { kUnplaced, kOutOfRows, kRail, kOverlap };
    Kind kind;
    CellId a;
    CellId b;  ///< Second party of an overlap.
};

}  // namespace

LegalityReport check_legality(const Database& db, const SegmentGrid& grid,
                              const LegalityOptions& opts) {
    MRLG_OBS_PHASE("eval.legality");
    MRLG_OBS_COUNT("eval.legality_checks", 1);
    LegalityReport rep;
    auto note = [&](const Violation& v) {
        rep.legal = false;
        switch (v.kind) {
            case Violation::Kind::kUnplaced:
                ++rep.num_unplaced;
                break;
            case Violation::Kind::kOutOfRows:
                ++rep.num_out_of_rows;
                break;
            case Violation::Kind::kRail:
                ++rep.num_rail_violations;
                break;
            case Violation::Kind::kOverlap:
                ++rep.num_overlaps;
                break;
        }
        if (rep.messages.size() >= opts.max_messages) {
            return;
        }
        switch (v.kind) {
            case Violation::Kind::kUnplaced:
                rep.messages.push_back("cell " + db.cell(v.a).name() +
                                       " is unplaced");
                break;
            case Violation::Kind::kOutOfRows:
                rep.messages.push_back("cell " + db.cell(v.a).name() +
                                       " outside rows/segments");
                break;
            case Violation::Kind::kRail:
                rep.messages.push_back("cell " + db.cell(v.a).name() +
                                       " violates power-rail parity");
                break;
            case Violation::Kind::kOverlap:
                rep.messages.push_back("overlap between " +
                                       db.cell(v.a).name() + " and " +
                                       db.cell(v.b).name());
                break;
        }
    };

    // Per-row slices of every placed movable cell, for the overlap sweep.
    struct Slice {
        SiteCoord x;
        SiteCoord x_hi;
        CellId cell;
    };
    const SiteCoord num_rows = db.floorplan().num_rows();
    std::vector<std::vector<Slice>> per_row(
        static_cast<std::size_t>(std::max<SiteCoord>(num_rows, 0)));

    // Phase 1 — per-cell checks (constraints 2-4), parallel over fixed
    // cell chunks; each chunk gathers id-only violation records in cell
    // order. Combining in chunk order reproduces the serial report.
    struct CellChunk {
        std::vector<Violation> violations;
    };
    constexpr std::size_t kCellGrain = 256;
    const auto cell_map = [&](std::size_t begin, std::size_t end) {
        CellChunk out;
        for (std::size_t i = begin; i < end; ++i) {
            const Cell& cell = db.cells()[i];
            const CellId id{static_cast<CellId::underlying>(i)};
            if (cell.fixed()) {
                continue;
            }
            if (!cell.placed()) {
                if (opts.require_all_placed) {
                    out.violations.push_back(
                        {Violation::Kind::kUnplaced, id, id});
                }
                continue;
            }
            // Constraint 2+3: aligned, contained in segments row by row.
            if (!position_legal_for_cell(db, grid, id, cell.x(), cell.y(),
                                         /*check_rail_alignment=*/false)) {
                out.violations.push_back(
                    {Violation::Kind::kOutOfRows, id, id});
            }
            // Constraint 4.
            if (opts.check_rail_alignment &&
                !rail_compatible(cell.y(), cell.height(),
                                 cell.rail_phase())) {
                out.violations.push_back({Violation::Kind::kRail, id, id});
            }
        }
        return out;
    };
    const auto cell_combine = [&](CellChunk acc, CellChunk part) {
        acc.violations.insert(acc.violations.end(), part.violations.begin(),
                              part.violations.end());
        return acc;
    };
    const CellChunk cell_result =
        parallel_reduce(db.num_cells(), kCellGrain, opts.num_threads,
                        CellChunk{}, cell_map, cell_combine);
    for (const Violation& v : cell_result.violations) {
        note(v);
    }

    // Slice scatter stays serial: it is a cheap pass, and the resulting
    // per-row order is canonicalized by the sort below anyway.
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const Cell& cell = db.cells()[i];
        if (cell.fixed() || !cell.placed()) {
            continue;
        }
        const CellId id{static_cast<CellId::underlying>(i)};
        for (SiteCoord row = cell.y();
             row < cell.y() + cell.height(); ++row) {
            if (row >= 0 && row < num_rows) {
                per_row[static_cast<std::size_t>(row)].push_back(
                    Slice{cell.x(),
                          static_cast<SiteCoord>(cell.x() + cell.width()),
                          id});
            }
        }
    }

    // Phase 2 — constraint 1: per-row sweep, parallel over fixed row
    // chunks (rows are disjoint, so sorting in place is race-free).
    // Within a row, sorted slices must not overlap. The sweep carries the
    // running maximum right edge (and its owning cell), not just the
    // previous slice: a wide cell can fully cover several later, disjoint
    // slices, and comparing adjacent slices only would miss every covered
    // slice after the first. Cross-row overlap of multi-row cells is
    // covered because a multi-row cell contributes a slice to every row it
    // crosses.
    struct RowChunk {
        std::vector<Violation> violations;
        std::vector<std::pair<CellId, CellId>> pairs;
    };
    constexpr std::size_t kRowGrain = 16;
    const auto row_map = [&](std::size_t begin, std::size_t end) {
        RowChunk out;
        for (std::size_t r = begin; r < end; ++r) {
            std::vector<Slice>& row = per_row[r];
            std::sort(row.begin(), row.end(),
                      [](const Slice& a, const Slice& b) {
                          return a.x < b.x || (a.x == b.x && a.cell < b.cell);
                      });
            if (row.empty()) {
                continue;
            }
            SiteCoord run_hi = row[0].x_hi;
            CellId run_cell = row[0].cell;
            for (std::size_t i = 1; i < row.size(); ++i) {
                if (row[i].x < run_hi) {
                    out.violations.push_back(
                        {Violation::Kind::kOverlap, run_cell, row[i].cell});
                }
                if (row[i].x_hi > run_hi) {
                    run_hi = row[i].x_hi;
                    run_cell = row[i].cell;
                }
            }
            if (opts.collect_overlap_pairs) {
                // Complete pair enumeration needs more than the running
                // max: under a covering cell, two covered slices may also
                // overlap each other. Output-sensitive active-interval
                // scan: every slice still open at x overlaps the new one.
                std::vector<Slice> active;
                for (const Slice& s : row) {
                    std::erase_if(active, [&](const Slice& a) {
                        return a.x_hi <= s.x;
                    });
                    for (const Slice& a : active) {
                        out.pairs.emplace_back(a.cell, s.cell);
                    }
                    active.push_back(s);
                }
            }
        }
        return out;
    };
    const auto row_combine = [&](RowChunk acc, RowChunk part) {
        acc.violations.insert(acc.violations.end(), part.violations.begin(),
                              part.violations.end());
        acc.pairs.insert(acc.pairs.end(), part.pairs.begin(),
                         part.pairs.end());
        return acc;
    };
    RowChunk row_result =
        parallel_reduce(per_row.size(), kRowGrain, opts.num_threads,
                        RowChunk{}, row_map, row_combine);
    for (const Violation& v : row_result.violations) {
        note(v);
    }
    rep.overlap_pairs = std::move(row_result.pairs);

    return rep;
}

}  // namespace mrlg
