#pragma once
/// \file report.hpp
/// Human-readable placement quality report: the summary block a production
/// legalizer prints at the end of a run — displacement statistics with a
/// histogram, per-height-class breakdown, HPWL, and legality counts.

#include <ostream>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

struct QualityReport {
    // Displacement (site widths), over placed movable cells.
    double disp_avg = 0.0;
    double disp_median = 0.0;
    double disp_p95 = 0.0;
    double disp_max = 0.0;
    /// Histogram buckets: [0,1), [1,2), [2,4), [4,8), [8,16), [16,inf).
    std::vector<std::size_t> disp_histogram;
    static const char* histogram_label(std::size_t bucket);

    /// Per-height-class average displacement: index = height-1 (capped
    /// at 4+); entries with zero cells hold 0.
    std::vector<double> disp_by_height;
    std::vector<std::size_t> count_by_height;

    double gp_hpwl_m = 0.0;
    double legal_hpwl_m = 0.0;
    double dhpwl_pct = 0.0;

    std::size_t num_cells = 0;
    std::size_t num_unplaced = 0;
    bool legal = false;
};

/// Gathers the report (runs the legality checker with default options but
/// the given rail mode).
QualityReport make_quality_report(const Database& db, const SegmentGrid& grid,
                                  bool check_rail = true);

/// Pretty-prints the report.
void print_quality_report(const QualityReport& report, std::ostream& os);

}  // namespace mrlg
