#pragma once
/// \file legality.hpp
/// Checker for the four legality constraints of paper §2:
///   1. cells pairwise overlap-free,
///   2. cells aligned to placement sites on rows,
///   3. every row slice of a cell contained in a non-blocked row span,
///   4. even-row-height cells on rows of matching power-rail parity.
/// The checker is independent of SegmentGrid's internal lists (it re-derives
/// overlaps with a per-row sweep), so it can catch grid bookkeeping bugs;
/// a separate SegmentGrid::audit() validates the lists themselves.

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

struct LegalityOptions {
    /// Enforce constraint 4 (power-rail parity). Disabled for the paper's
    /// "Power Line Not Aligned" experiment.
    bool check_rail_alignment = true;
    /// Require every movable cell to be placed.
    bool require_all_placed = true;
    /// Stop collecting messages after this many violations.
    std::size_t max_messages = 32;
    /// Record every overlapping cell pair in LegalityReport::overlap_pairs
    /// (uncapped, complete per-row pair enumeration). Off by default —
    /// used by the qa/ differential oracle to compare the sweep against an
    /// independent O(n²) reference.
    bool collect_overlap_pairs = false;
    /// Worker threads for the per-cell checks and the per-row overlap
    /// sweep. 0 = MRLG_THREADS environment default, 1 = serial. Violations
    /// are gathered per fixed chunk and merged in chunk order, so counters
    /// and messages are bit-identical for every thread count.
    int num_threads = 0;
};

struct LegalityReport {
    bool legal = true;
    std::size_t num_overlaps = 0;
    std::size_t num_out_of_rows = 0;
    std::size_t num_rail_violations = 0;
    std::size_t num_unplaced = 0;
    std::vector<std::string> messages;
    /// All overlapping pairs, (earlier-starting cell, later cell), when
    /// LegalityOptions::collect_overlap_pairs is set — complete within each
    /// row (not just covering/covered attribution); a pair overlapping in
    /// h common rows appears h times. Deterministic order.
    std::vector<std::pair<CellId, CellId>> overlap_pairs;

    explicit operator bool() const { return legal; }
};

/// Full-design legality audit.
LegalityReport check_legality(const Database& db, const SegmentGrid& grid,
                              const LegalityOptions& opts = {});

/// Single-cell check: would placing `c` at (x, y) be legal w.r.t. rows,
/// blockages and rail parity (geometry only — no overlap test; use
/// SegmentGrid::placeable for that)?
bool position_legal_for_cell(const Database& db, const SegmentGrid& grid,
                             CellId c, SiteCoord x, SiteCoord y,
                             bool check_rail_alignment = true);

/// True when an even-height cell with phase `p` may rest its bottom edge on
/// row `y` (or any cell when `h` is odd).
bool rail_compatible(SiteCoord y, SiteCoord height, RailPhase p);

}  // namespace mrlg
