#pragma once
/// \file snapshot.hpp
/// Full placement-state snapshot for transaction oracles.
///
/// MLL undo and the rip-up rollback both promise bit-for-bit restoration
/// of the database positions *and* the segment-grid bookkeeping. The
/// invariant auditors (check/audit.hpp) can only say the state is
/// structurally sound; a snapshot taken before the transaction and
/// compared after it proves the state is the *same* one. Capture is O(n)
/// and allocation-heavy, so this lives in the QA layer, never on the
/// legalizer's hot path.

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg::qa {

struct PlacementSnapshot {
    struct CellState {
        bool placed = false;
        SiteCoord x = 0;
        SiteCoord y = 0;
        Orient orient = Orient::kN;
        double gp_x = 0.0;
        double gp_y = 0.0;

        friend bool operator==(const CellState&,
                               const CellState&) = default;
    };

    /// One entry per Database cell, in id order.
    std::vector<CellState> cells;
    /// One list per segment, in segment-id order — the grid's bookkeeping,
    /// including list order (an invariant the transactions must preserve).
    std::vector<std::vector<CellId>> segment_cells;

    friend bool operator==(const PlacementSnapshot&,
                           const PlacementSnapshot&) = default;
};

/// Captures every cell's placement state and every segment's cell list.
PlacementSnapshot capture_snapshot(const Database& db,
                                   const SegmentGrid& grid);

/// Human-readable first-differences between two snapshots ("" when equal):
/// names the first few cells whose state changed and the first segment
/// whose list diverged. `db` supplies cell names for the message.
std::string describe_snapshot_diff(const PlacementSnapshot& before,
                                   const PlacementSnapshot& after,
                                   const Database& db);

}  // namespace mrlg::qa
