#include "qa/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/legality.hpp"
#include "obs/trace.hpp"
#include "io/bookshelf.hpp"
#include "legalize/legalizer.hpp"
#include "legalize/mll.hpp"
#include "legalize/ripup.hpp"
#include "qa/shrink.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "db/write_cap.hpp"

namespace mrlg::qa {

namespace {

/// Window half-extents for the local-solver battery. Deliberately smaller
/// than MllOptions defaults so the naive exponential enumeration and the
/// MIP stay affordable and actually get consulted.
constexpr SiteCoord kFuzzRx = 10;
constexpr SiteCoord kFuzzRy = 3;

std::string legality_battery(Database& db, const SegmentGrid& grid) {
    LegalityOptions opts;
    opts.require_all_placed = false;
    return diff_legality(db, grid, opts);
}

std::string local_battery(Database& db, const SegmentGrid& grid,
                          const LocalDiffOptions& lopts) {
    for (const CellId id : db.movable_cells()) {
        const Cell& c = db.cell(id);
        if (c.placed()) {
            continue;
        }
        const SiteCoord ax = static_cast<SiteCoord>(std::lround(c.gp_x()));
        const SiteCoord ay = static_cast<SiteCoord>(std::lround(c.gp_y()));
        const Rect window{static_cast<SiteCoord>(ax - kFuzzRx),
                          static_cast<SiteCoord>(ay - kFuzzRy),
                          static_cast<SiteCoord>(2 * kFuzzRx + c.width()),
                          static_cast<SiteCoord>(2 * kFuzzRy + c.height())};
        const std::string diff = diff_local_solvers(db, grid, id, c.gp_x(),
                                                    c.gp_y(), window, lopts);
        if (!diff.empty()) {
            return "target " + c.name() + ": " + diff;
        }
    }
    return {};
}

std::string mll_battery(Database& db, SegmentGrid& grid, int num_threads) {
    GridWriteScope grid_write;
    int idx = 0;
    for (const CellId id : db.movable_cells()) {
        const Cell& c = db.cell(id);
        if (c.placed()) {
            continue;
        }
        MllOptions mopts;
        mopts.num_threads = num_threads;
        mopts.exact_evaluation = (idx++ % 2) == 1;  // alternate both paths
        const std::string diff = diff_mll_roundtrip(db, grid, id, c.gp_x(),
                                                    c.gp_y(), mopts);
        if (!diff.empty()) {
            return "target " + c.name() + " (" +
                   (mopts.exact_evaluation ? "exact" : "approx") +
                   "): " + diff;
        }
    }
    return {};
}

std::string ripup_battery(Database& db, SegmentGrid& grid, int num_threads) {
    GridWriteScope grid_write;
    int idx = 0;
    for (const CellId id : db.movable_cells()) {
        const Cell& c = db.cell(id);
        if (c.placed()) {
            continue;
        }
        RipupOptions ropts;
        ropts.mll.num_threads = num_threads;
        // Tight eviction caps force the rollback path often.
        ropts.max_evictions = 1 + static_cast<std::size_t>(idx++ % 4);
        const std::string diff = diff_ripup_rollback(db, grid, id, c.gp_x(),
                                                     c.gp_y(), ropts);
        if (!diff.empty()) {
            return "target " + c.name() + ": " + diff;
        }
    }
    return {};
}

std::string design_battery(Database& db, SegmentGrid& grid,
                           int num_threads) {
    LegalizerOptions lopts;
    lopts.mll.num_threads = num_threads;
    const LegalizerStats stats = legalize_placement(db, grid, lopts);
    const std::string audit = grid.audit(db);
    if (!audit.empty()) {
        return "post-legalize grid audit: " + audit;
    }
    LegalityOptions checks;
    checks.require_all_placed = stats.success;
    const std::string diff = diff_legality(db, grid, checks);
    if (!diff.empty()) {
        return "post-legalize legality: " + diff;
    }
    return {};
}

/// Per-iteration RNG: splitmix-style stream derived from (seed, iter) so
/// a failing iteration replays without running its predecessors.
Rng iteration_rng(std::uint64_t seed, int iter) {
    return Rng(seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<std::uint64_t>(iter) + 1));
}

Database make_case(FuzzScenario scenario, std::uint64_t seed, int iter) {
    Rng rng = iteration_rng(seed, iter);
    switch (scenario) {
        case FuzzScenario::kLegality:
            return gen_overlapping_case(rng);
        case FuzzScenario::kLocal:
            return gen_packed_case(rng, 1 + iter % 3);
        case FuzzScenario::kMllRoundtrip:
            return gen_packed_case(rng, 2 + iter % 3);
        case FuzzScenario::kRipup:
            return gen_saturated_case(rng, 1 + iter % 2);
        case FuzzScenario::kWholeDesign:
            return gen_whole_design_case(rng);
    }
    MRLG_ASSERT(false, "unknown scenario");
    return Database{};
}

std::string sidecar_path_for(const std::string& aux_path) {
    std::string base = aux_path;
    const std::string ext = ".aux";
    if (base.size() > ext.size() &&
        base.compare(base.size() - ext.size(), ext.size(), ext) == 0) {
        base.resize(base.size() - ext.size());
    }
    return base + ".scenario";
}

}  // namespace

std::string check_case(Database& db, FuzzScenario scenario,
                       const LocalDiffOptions& lopts, int num_threads) {
    SegmentGrid grid = materialize_case(db);
    switch (scenario) {
        case FuzzScenario::kLegality:
            return legality_battery(db, grid);
        case FuzzScenario::kLocal:
            return local_battery(db, grid, lopts);
        case FuzzScenario::kMllRoundtrip:
            return mll_battery(db, grid, num_threads);
        case FuzzScenario::kRipup:
            return ripup_battery(db, grid, num_threads);
        case FuzzScenario::kWholeDesign:
            return design_battery(db, grid, num_threads);
    }
    return "unknown scenario";
}

std::string dump_repro(const Database& db, FuzzScenario scenario,
                       const std::string& dir, const std::string& name) {
    GridWriteScope grid_write;
    // Blockages do not survive a Bookshelf round-trip as floorplan rects;
    // encode them as fixed terminal nodes (freeze_fixed_cells turns them
    // back into blockages on replay).
    Database dump = db;
    int bi = 0;
    for (const Rect& b : db.floorplan().blockages()) {
        const CellId id = dump.add_cell(
            Cell("mrlgblk" + std::to_string(bi++), b.w, b.h,
                 RailPhase::kEven, /*fixed=*/true));
        dump.cell(id).set_pos(b.x, b.y);
    }
    std::filesystem::create_directories(dir);
    write_bookshelf(dump, dir, name, /*use_gp_positions=*/true);

    // Rail phases have no Bookshelf representation either; the sidecar
    // names the scenario plus every odd-phase cell.
    std::ofstream side(dir + "/" + name + ".scenario");
    side << "scenario " << to_string(scenario) << "\n";
    for (const Cell& c : dump.cells()) {
        if (c.rail_phase() == RailPhase::kOdd) {
            side << "odd " << c.name() << "\n";
        }
    }
    return dir + "/" + name + ".aux";
}

std::string replay_repro(const std::string& aux_path,
                         const LocalDiffOptions& lopts) {
    GridWriteScope grid_write;
    BookshelfReadResult rr = read_bookshelf(aux_path);

    FuzzScenario scenario = FuzzScenario::kLegality;
    std::vector<std::string> odd_names;
    {
        std::ifstream side(sidecar_path_for(aux_path));
        if (!side) {
            return "missing sidecar " + sidecar_path_for(aux_path);
        }
        std::string key;
        std::string value;
        while (side >> key >> value) {
            if (key == "scenario") {
                if (!scenario_from_string(value, scenario)) {
                    return "sidecar names unknown scenario '" + value + "'";
                }
            } else if (key == "odd") {
                odd_names.push_back(value);
            }
        }
    }

    // Cell rail phases are constructor-only; rebuild the database with the
    // sidecar's phase assignment.
    Database db{rr.db.floorplan()};
    for (const Cell& src : rr.db.cells()) {
        const bool odd = std::find(odd_names.begin(), odd_names.end(),
                                   src.name()) != odd_names.end();
        Cell copy(src.name(), src.width(), src.height(),
                  odd ? RailPhase::kOdd : RailPhase::kEven, src.fixed());
        copy.set_region(src.region());
        copy.set_gp(src.gp_x(), src.gp_y());
        if (src.placed()) {
            copy.set_pos(src.x(), src.y());
        }
        db.add_cell(std::move(copy));
    }
    db.freeze_fixed_cells();
    return check_case(db, scenario, lopts);
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
    MRLG_OBS_PHASE("fuzz");
    std::vector<FuzzScenario> scens = opts.scenarios;
    if (scens.empty()) {
        scens = {FuzzScenario::kLegality, FuzzScenario::kLocal,
                 FuzzScenario::kMllRoundtrip, FuzzScenario::kRipup,
                 FuzzScenario::kWholeDesign};
    }
    LocalDiffOptions lopts;
    lopts.run_ilp = opts.exercise_ilp;

    FuzzReport report;
    const int total = opts.iters * static_cast<int>(scens.size());
    for (int iter = 0; iter < total; ++iter) {
        if (static_cast<int>(report.failures.size()) >= opts.max_failures) {
            break;
        }
        const FuzzScenario scen =
            scens[static_cast<std::size_t>(iter) % scens.size()];
        Database pristine = make_case(scen, opts.seed, iter);
        Database db = pristine;
        const std::string detail =
            check_case(db, scen, lopts, opts.num_threads);
        ++report.iterations_run;
        MRLG_OBS_COUNT("fuzz.iterations", 1);
        if (detail.empty()) {
            continue;
        }

        FuzzFailure f;
        f.scenario = scen;
        f.seed = opts.seed;
        f.iteration = iter;
        f.detail = detail;
        f.cells_before = pristine.num_cells();
        Database minimal = std::move(pristine);
        if (opts.shrink) {
            const ShrinkResult shrunk = shrink_case(
                minimal, [&](Database& d) {
                    return check_case(d, scen, lopts, opts.num_threads);
                });
            minimal = shrunk.db;
            f.detail = shrunk.failure;
            f.cells_after = shrunk.cells_after;
        } else {
            f.cells_after = f.cells_before;
        }
        f.uses_fences = case_uses_fences(minimal);
        if (!opts.repro_dir.empty()) {
            std::ostringstream name;
            name << "repro_" << to_string(scen) << "_s" << opts.seed << "_i"
                 << iter;
            f.repro_path =
                dump_repro(minimal, scen, opts.repro_dir, name.str());
        }
        MRLG_OBS_COUNT("fuzz.failures", 1);
        report.failures.push_back(std::move(f));
    }
    return report;
}

std::string FuzzReport::summary() const {
    std::ostringstream os;
    os << iterations_run << " iteration(s), " << failures.size()
       << " failure(s)\n";
    for (const FuzzFailure& f : failures) {
        os << "  [" << to_string(f.scenario) << "] iter " << f.iteration
           << " seed " << f.seed << ": " << f.detail << "\n"
           << "    shrunk " << f.cells_before << " -> " << f.cells_after
           << " cells\n";
        if (!f.repro_path.empty()) {
            os << "    repro: " << f.repro_path
               << (f.uses_fences ? " (uses fences; Bookshelf replay is"
                                   " approximate — prefer seed+iter)"
                                 : "")
               << "\n";
        }
    }
    return os.str();
}

}  // namespace mrlg::qa
