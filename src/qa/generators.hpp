#pragma once
/// \file generators.hpp
/// Seeded case generators for the differential fuzz harness.
///
/// A "case" is a plain Database that encodes everything an oracle needs:
///   * placed cells carry their position AND an integral gp mirror of it;
///   * target cells (the ones an MLL/rip-up oracle will try to insert) are
///     unplaced and carry a deliberately non-integral gp position.
/// That convention survives a Bookshelf round-trip (positions ride in the
/// .pl file as gp), so a dumped repro replays exactly like the in-memory
/// case — see materialize_case / fuzz.hpp.
///
/// Beyond uniform-random cases the generators produce the adversarial
/// structure the paper's stack is most likely to get wrong: nested and
/// exactly-abutting cells (strict-inequality bugs), blockage-fractured
/// segments, parity-hostile even-height mixes, and fence regions.

#include <cstdint>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "util/rng.hpp"

namespace mrlg::qa {

/// Scenario catalogue — which oracle battery a case feeds.
enum class FuzzScenario {
    kLegality,      ///< Overlapping placement; sweep vs naive checker.
    kLocal,         ///< Legal placement + targets; solver cross-checks.
    kMllRoundtrip,  ///< Legal placement + targets; place/undo snapshots.
    kRipup,         ///< Saturated placement + targets; rollback snapshots.
    kWholeDesign,   ///< benchmark_gen design; legalize end-to-end.
};

const char* to_string(FuzzScenario s);

/// Parses a scenario name ("legality", "local", "mll", "ripup", "design");
/// returns false on an unknown name.
bool scenario_from_string(const std::string& name, FuzzScenario& out);

/// Random die + cells placed at random *contained* positions with no
/// overlap avoidance (grid placement when contained, raw position when a
/// sub-case wants out-of-rows violations). Sub-cases roll nested/abutting
/// clusters, blockages, fences and rail-hostile mixes. For kLegality.
Database gen_overlapping_case(Rng& rng);

/// Random legal packed design (greedy-legalized) plus `num_targets`
/// unplaced target cells with fractional gp. For kLocal / kMllRoundtrip.
/// Sub-cases roll blockage fracturing and parity-hostile height mixes.
Database gen_packed_case(Rng& rng, int num_targets);

/// Near-saturated design (high density) plus multi-row targets that
/// usually need evictions — and often cannot complete, exercising the
/// rollback path. For kRipup.
Database gen_saturated_case(Rng& rng, int num_targets);

/// Whole-design case via io/benchmark_gen with randomized adversarial
/// profile (tall cells, blockages, fences, parity-hostile noise). All
/// movables unplaced; the oracle legalizes end-to-end. For kWholeDesign.
Database gen_whole_design_case(Rng& rng);

/// Re-derives grid state from the case encoding: unplaces every movable,
/// then places those whose gp is integral (the "placed" convention above)
/// through the grid when contained, or by raw position when not (keeping
/// deliberate out-of-rows violations representable). Returns the freshly
/// built grid.
SegmentGrid materialize_case(Database& db);

/// True when `db` uses features a Bookshelf dump cannot represent (fence
/// regions); such repros replay only approximately and are flagged.
bool case_uses_fences(const Database& db);

}  // namespace mrlg::qa
