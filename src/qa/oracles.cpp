#include "qa/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "legalize/enumeration.hpp"
#include "legalize/evaluation.hpp"
#include "legalize/exact_local.hpp"
#include "legalize/ilp_local.hpp"
#include "legalize/insertion_interval.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/local_region.hpp"
#include "legalize/minmax_placement.hpp"
#include "legalize/realization.hpp"
#include "qa/snapshot.hpp"
#include "db/write_cap.hpp"

namespace mrlg::qa {

namespace {

/// Fence region of one site, straight off the floorplan (fences of
/// distinct regions are disjoint, so the first hit is the answer).
int site_region(const Floorplan& fp, SiteCoord x, SiteCoord y) {
    const Rect site{x, y, 1, 1};
    for (const Floorplan::Fence& f : fp.fences()) {
        if (f.rect.overlaps(site)) {
            return f.region;
        }
    }
    return 0;
}

bool site_blocked(const Floorplan& fp, SiteCoord x, SiteCoord y) {
    const Rect site{x, y, 1, 1};
    for (const Rect& b : fp.blockages()) {
        if (b.overlaps(site)) {
            return true;
        }
    }
    return false;
}

/// Every site of the footprint on a real row, unblocked, in the cell's
/// fence region — the naive restatement of constraints 2+3 (+ fences).
bool naive_footprint_ok(const Floorplan& fp, const Cell& cell) {
    for (SiteCoord y = cell.y(); y < cell.y() + cell.height(); ++y) {
        if (!fp.has_row(y)) {
            return false;
        }
        const Span row_span = fp.row(y).x_span();
        for (SiteCoord x = cell.x(); x < cell.x() + cell.width(); ++x) {
            if (!row_span.contains(x) || site_blocked(fp, x, y) ||
                site_region(fp, x, y) != cell.region()) {
                return false;
            }
        }
    }
    return true;
}

std::string cell_name(const Database& db, CellId id) {
    return db.cell(id).name();
}

std::string pair_names(const Database& db,
                       const std::pair<CellId, CellId>& p) {
    return "(" + cell_name(db, p.first) + "," + cell_name(db, p.second) +
           ")";
}

/// Serial insertion-point scan with mll.cpp's tie-break (first strictly
/// lower cost wins, index order) — the reference the parallel scan and the
/// whole-problem solvers are compared against.
struct ScanResult {
    bool feasible = false;
    std::size_t index = 0;
    Evaluation eval;
};

ScanResult scan_points(const LocalProblem& lp, const EnumerationResult& er,
                       const TargetSpec& target, bool exact) {
    ScanResult out;
    for (std::size_t i = 0; i < er.points.size(); ++i) {
        const Evaluation ev =
            exact ? evaluate_insertion_point_exact(lp, er.points[i], target)
                  : evaluate_insertion_point_approx(lp, er.points[i],
                                                    target);
        if (ev.feasible &&
            (!out.feasible || ev.cost_um < out.eval.cost_um)) {
            out.feasible = true;
            out.index = i;
            out.eval = ev;
        }
    }
    return out;
}

/// Realized displacement cost (microns) of placing the target at
/// (xt, y0+k0) inside `point`: local pushes + target x and y moves.
double realized_cost_um(const LocalProblem& lp, const InsertionPoint& point,
                        SiteCoord xt, const TargetSpec& target,
                        const Realization& real) {
    const double y_abs = static_cast<double>(lp.y0() + point.k0);
    return real.moved_sites * lp.site_w_um() +
           std::abs(static_cast<double>(xt) - target.pref_x) *
               lp.site_w_um() +
           std::abs(y_abs - target.pref_y) * lp.site_h_um();
}

bool same_point_set(std::vector<InsertionPoint> a,
                    std::vector<InsertionPoint> b) {
    const auto key = [](const InsertionPoint& p) {
        return std::tuple<int, std::vector<int>, SiteCoord, SiteCoord>(
            p.k0, p.gaps, p.lo, p.hi);
    };
    const auto less = [&](const InsertionPoint& x, const InsertionPoint& y) {
        return key(x) < key(y);
    };
    std::sort(a.begin(), a.end(), less);
    std::sort(b.begin(), b.end(), less);
    return a == b;
}

}  // namespace

std::vector<std::pair<CellId, CellId>> canonical_pairs(
    std::vector<std::pair<CellId, CellId>> pairs) {
    for (auto& p : pairs) {
        if (p.second < p.first) {
            std::swap(p.first, p.second);
        }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
}

NaiveLegality naive_check_legality(const Database& db,
                                   const LegalityOptions& opts) {
    NaiveLegality out;
    const Floorplan& fp = db.floorplan();
    std::vector<CellId> placed;
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const Cell& cell = db.cells()[i];
        const CellId id{static_cast<CellId::underlying>(i)};
        if (cell.fixed()) {
            continue;
        }
        if (!cell.placed()) {
            if (opts.require_all_placed) {
                ++out.num_unplaced;
            }
            continue;
        }
        placed.push_back(id);
        if (!naive_footprint_ok(fp, cell)) {
            ++out.num_out_of_rows;
        }
        if (opts.check_rail_alignment &&
            !rail_compatible(cell.y(), cell.height(), cell.rail_phase())) {
            ++out.num_rail_violations;
        }
    }
    for (std::size_t i = 0; i < placed.size(); ++i) {
        const Rect ri = db.cell(placed[i]).rect();
        for (std::size_t j = i + 1; j < placed.size(); ++j) {
            if (ri.overlaps(db.cell(placed[j]).rect())) {
                out.overlap_pairs.emplace_back(placed[i], placed[j]);
            }
        }
    }
    out.overlap_pairs = canonical_pairs(std::move(out.overlap_pairs));
    out.legal = out.overlap_pairs.empty() && out.num_out_of_rows == 0 &&
                out.num_rail_violations == 0 && out.num_unplaced == 0;
    return out;
}

std::string diff_legality(const Database& db, const SegmentGrid& grid,
                          const LegalityOptions& opts) {
    LegalityOptions sweep_opts = opts;
    sweep_opts.collect_overlap_pairs = true;
    const LegalityReport rep = check_legality(db, grid, sweep_opts);
    const NaiveLegality ref = naive_check_legality(db, opts);

    std::ostringstream os;
    if (rep.legal != ref.legal) {
        os << "verdict mismatch: sweep says "
           << (rep.legal ? "legal" : "illegal") << ", naive says "
           << (ref.legal ? "legal" : "illegal") << "; ";
    }
    const auto sweep_pairs = canonical_pairs(rep.overlap_pairs);
    if (sweep_pairs != ref.overlap_pairs) {
        os << "overlap pair sets differ (sweep " << sweep_pairs.size()
           << ", naive " << ref.overlap_pairs.size() << "):";
        std::vector<std::pair<CellId, CellId>> only_sweep;
        std::set_difference(sweep_pairs.begin(), sweep_pairs.end(),
                            ref.overlap_pairs.begin(),
                            ref.overlap_pairs.end(),
                            std::back_inserter(only_sweep));
        std::vector<std::pair<CellId, CellId>> only_naive;
        std::set_difference(ref.overlap_pairs.begin(),
                            ref.overlap_pairs.end(), sweep_pairs.begin(),
                            sweep_pairs.end(),
                            std::back_inserter(only_naive));
        constexpr std::size_t kMax = 4;
        for (std::size_t i = 0; i < only_sweep.size() && i < kMax; ++i) {
            os << " sweep-only" << pair_names(db, only_sweep[i]);
        }
        for (std::size_t i = 0; i < only_naive.size() && i < kMax; ++i) {
            os << " naive-only" << pair_names(db, only_naive[i]);
        }
        os << "; ";
    }
    if (rep.num_out_of_rows != ref.num_out_of_rows) {
        os << "out-of-rows " << rep.num_out_of_rows << " vs naive "
           << ref.num_out_of_rows << "; ";
    }
    if (rep.num_rail_violations != ref.num_rail_violations) {
        os << "rail " << rep.num_rail_violations << " vs naive "
           << ref.num_rail_violations << "; ";
    }
    if (rep.num_unplaced != ref.num_unplaced) {
        os << "unplaced " << rep.num_unplaced << " vs naive "
           << ref.num_unplaced << "; ";
    }
    return os.str();
}

std::string diff_local_solvers(const Database& db, const SegmentGrid& grid,
                               CellId target, double pref_x, double pref_y,
                               const Rect& window,
                               const LocalDiffOptions& opts) {
    const Cell& cell = db.cell(target);
    TargetSpec t;
    t.id = target;
    t.w = cell.width();
    t.h = cell.height();
    t.pref_x = pref_x;
    t.pref_y = pref_y;
    t.rail_phase = cell.rail_phase();

    const LocalRegion region =
        extract_local_region(db, grid, window, cell.region());
    if (region.height() == 0) {
        return {};
    }
    LocalProblem lp = LocalProblem::build(db, region);
    LocalProblem lp_for_exact = lp;  // solve_local_exact mutates its copy
    compute_minmax_placement(lp);
    const std::vector<InsertionInterval> intervals =
        build_insertion_intervals(lp, t.w);
    EnumerationOptions eopts;
    eopts.check_rail = opts.check_rail;
    const EnumerationResult enumr =
        enumerate_insertion_points(lp, intervals, t, eopts);
    if (enumr.truncated) {
        return {};  // capped enumeration: winners are not comparable
    }

    std::ostringstream os;

    // Enumeration vs the exponential reference (small problems only).
    if (lp.num_cells() <= opts.max_naive_cells) {
        const EnumerationResult naive =
            naive_enumerate_insertion_points(lp, intervals, t, eopts);
        if (!naive.truncated &&
            !same_point_set(enumr.points, naive.points)) {
            os << "enumeration mismatch: scanline " << enumr.points.size()
               << " points, naive " << naive.points.size() << "; ";
        }
    }
    for (const InsertionPoint& p : enumr.points) {
        if (!insertion_point_consistent(lp, p)) {
            os << "enumerated point (k0=" << p.k0
               << ") straddles a multi-row cell; ";
            break;
        }
    }

    const ScanResult approx = scan_points(lp, enumr, t, /*exact=*/false);
    const ScanResult exact = scan_points(lp, enumr, t, /*exact=*/true);
    if (approx.feasible != exact.feasible) {
        os << "feasibility mismatch: approx "
           << (approx.feasible ? "yes" : "no") << ", exact "
           << (exact.feasible ? "yes" : "no") << "; ";
        return os.str();
    }

    const ExactLocalSolution sol = solve_local_exact(lp_for_exact, t, eopts);
    if (sol.feasible != exact.feasible) {
        os << "solve_local_exact feasibility "
           << (sol.feasible ? "yes" : "no") << " vs scan "
           << (exact.feasible ? "yes" : "no") << "; ";
        return os.str();
    }

    if (exact.feasible) {
        // Identical winner under the deterministic tie-break.
        const InsertionPoint& win = enumr.points[exact.index];
        if (!(win == sol.point) || exact.eval.xt != sol.xt ||
            std::abs(exact.eval.cost_um - sol.cost_um) > opts.eps_um) {
            os << "exact-scan winner (k0=" << win.k0
               << ", xt=" << exact.eval.xt << ", cost=" << exact.eval.cost_um
               << ") != solve_local_exact (k0=" << sol.point.k0
               << ", xt=" << sol.xt << ", cost=" << sol.cost_um << "); ";
        }

        // Estimates vs realized displacement.
        const Realization real_exact =
            realize_insertion(lp, win, exact.eval.xt, t.w);
        if (!real_exact.ok) {
            os << "realization failed for the exact winner; ";
        } else {
            const double rc =
                realized_cost_um(lp, win, exact.eval.xt, t, real_exact);
            if (std::abs(rc - exact.eval.cost_um) > opts.eps_um) {
                os << "exact est " << exact.eval.cost_um
                   << " != realized " << rc << "; ";
            }
        }
        const InsertionPoint& awin = enumr.points[approx.index];
        const Realization real_approx =
            realize_insertion(lp, awin, approx.eval.xt, t.w);
        if (!real_approx.ok) {
            os << "realization failed for the approx winner; ";
        } else {
            const double rc =
                realized_cost_um(lp, awin, approx.eval.xt, t, real_approx);
            if (approx.eval.cost_um > rc + opts.eps_um) {
                os << "approx est " << approx.eval.cost_um
                   << " exceeds realized " << rc
                   << " (the neighbour approximation must be a lower "
                      "bound); ";
            }
            if (exact.eval.cost_um > rc + opts.eps_um) {
                os << "exact optimum " << exact.eval.cost_um
                   << " exceeds approx realized " << rc << "; ";
            }
        }
    }

    if (opts.run_ilp && lp.num_cells() <= opts.max_ilp_cells &&
        enumr.points.size() <= opts.max_ilp_points) {
        const IlpLocalResult mip = solve_local_ilp(lp, t, eopts);
        if (mip.feasible != exact.feasible) {
            os << "ILP feasibility " << (mip.feasible ? "yes" : "no")
               << " vs enumeration " << (exact.feasible ? "yes" : "no")
               << "; ";
        } else if (mip.feasible &&
                   std::abs(mip.cost_um - exact.eval.cost_um) >
                       opts.eps_um) {
            os << "ILP cost " << mip.cost_um << " != exact optimum "
               << exact.eval.cost_um << "; ";
        }
    }
    return os.str();
}

std::string diff_mll_roundtrip(Database& db, SegmentGrid& grid,
                               CellId target, double pref_x, double pref_y,
                               const MllOptions& opts) {
    GridWriteScope grid_write;
    const PlacementSnapshot before = capture_snapshot(db, grid);
    const MllResult r = mll_place(db, grid, target, pref_x, pref_y, opts);
    std::ostringstream os;
    if (!r.success()) {
        const std::string diff =
            describe_snapshot_diff(before, capture_snapshot(db, grid), db);
        if (!diff.empty()) {
            os << "failed mll_place modified state: " << diff << "; ";
        }
        return os.str();
    }

    const std::string grid_audit = grid.audit(db);
    if (!grid_audit.empty()) {
        os << "grid audit after commit: " << grid_audit << "; ";
    }
    LegalityOptions lopts;
    lopts.require_all_placed = false;
    lopts.check_rail_alignment = opts.check_rail;
    const std::string leg = diff_legality(db, grid, lopts);
    if (!leg.empty()) {
        os << "legality diff after commit: " << leg;
    } else {
        const LegalityReport rep = check_legality(db, grid, lopts);
        if (!rep.legal) {
            os << "committed state illegal: "
               << (rep.messages.empty() ? "?" : rep.messages[0]) << "; ";
        }
    }
    if (opts.exact_evaluation) {
        if (std::abs(r.est_cost_um - r.real_cost_um) > 1e-6) {
            os << "exact est_cost " << r.est_cost_um << " != real_cost "
               << r.real_cost_um << "; ";
        }
    } else if (r.est_cost_um > r.real_cost_um + 1e-6) {
        os << "approx est_cost " << r.est_cost_um << " exceeds real_cost "
           << r.real_cost_um << "; ";
    }

    mll_undo(db, grid, target, r);
    const std::string diff =
        describe_snapshot_diff(before, capture_snapshot(db, grid), db);
    if (!diff.empty()) {
        os << "mll_undo did not restore state: " << diff << "; ";
    }
    return os.str();
}

std::string diff_ripup_rollback(Database& db, SegmentGrid& grid,
                                CellId target, double pref_x, double pref_y,
                                const RipupOptions& opts) {
    GridWriteScope grid_write;
    const PlacementSnapshot before = capture_snapshot(db, grid);
    const RipupResult r = ripup_place(db, grid, target, pref_x, pref_y, opts);
    std::ostringstream os;
    if (!r.success) {
        const std::string diff =
            describe_snapshot_diff(before, capture_snapshot(db, grid), db);
        if (!diff.empty()) {
            os << "failed rip-up left residue: " << diff << "; ";
        }
        return os.str();
    }
    if (r.evicted > opts.max_evictions) {
        os << "rip-up evicted " << r.evicted << " > cap "
           << opts.max_evictions << "; ";
    }
    const std::string grid_audit = grid.audit(db);
    if (!grid_audit.empty()) {
        os << "grid audit after rip-up: " << grid_audit << "; ";
    }
    LegalityOptions lopts;
    lopts.require_all_placed = false;
    lopts.check_rail_alignment = opts.mll.check_rail;
    const std::string leg = diff_legality(db, grid, lopts);
    if (!leg.empty()) {
        os << "legality diff after rip-up: " << leg;
    } else {
        const LegalityReport rep = check_legality(db, grid, lopts);
        if (!rep.legal) {
            os << "rip-up committed an illegal state: "
               << (rep.messages.empty() ? "?" : rep.messages[0]) << "; ";
        }
    }
    return os.str();
}

}  // namespace mrlg::qa
