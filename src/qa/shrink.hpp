#pragma once
/// \file shrink.hpp
/// Delta-debugging minimizer for failing fuzz cases.
///
/// Given a case Database whose oracle battery reports a mismatch, the
/// shrinker searches for a minimal cell subset that still reproduces *a*
/// failure (ddmin: any failure counts, so a shrink step may surface a
/// simpler bug hiding behind the original one — that is a feature). The
/// resulting database keeps the original floorplan, blockages and fences;
/// only cells are removed. Fully deterministic: fixed partition order, no
/// randomness.

#include <functional>
#include <string>
#include <vector>

#include "db/database.hpp"

namespace mrlg::qa {

/// Copies `db` keeping only the cells with keep[i] == true (i indexes the
/// cell id space). Floorplan, blockages and fences are copied verbatim;
/// nets and pins are dropped (no oracle consults them). Cell names, sizes,
/// rail phases, regions, gp and placement state are preserved.
Database subset_design(const Database& db, const std::vector<bool>& keep);

/// Re-runs the oracle battery on a candidate case; returns "" when it
/// passes and a mismatch description when it fails. The callback owns any
/// scenario-specific setup (materialize_case etc.) and must be
/// deterministic. It receives a fresh copy it may freely mutate.
using CaseCheck = std::function<std::string(Database&)>;

struct ShrinkOptions {
    /// Upper bound on oracle re-runs; the shrinker returns its best
    /// result so far when exhausted.
    std::size_t max_checks = 2000;
};

struct ShrinkResult {
    Database db;          ///< Minimal failing case found.
    std::string failure;  ///< Failure reported on the minimal case.
    std::size_t checks = 0;   ///< Oracle re-runs spent.
    std::size_t cells_before = 0;
    std::size_t cells_after = 0;
};

/// ddmin over the cell set: repeatedly tries dropping chunks of cells,
/// keeping any reduction that still fails `check`, refining the chunk
/// granularity until single-cell removals no longer help. `db` itself is
/// not modified. Requires that check(copy of db) fails (asserts).
ShrinkResult shrink_case(const Database& db, const CaseCheck& check,
                         const ShrinkOptions& opts = {});

}  // namespace mrlg::qa
