#include "qa/generators.hpp"

#include <cmath>
#include <string>

#include "io/benchmark_gen.hpp"
#include "legalize/greedy.hpp"
#include "db/write_cap.hpp"

namespace mrlg::qa {

namespace {

/// Fractional gp in [lo, hi) guaranteed to stay off the integer lattice,
/// so the cell reads back as a target after a Bookshelf round-trip.
double fractional_pref(Rng& rng, SiteCoord lo, SiteCoord hi) {
    const SiteCoord base = static_cast<SiteCoord>(
        rng.uniform(lo, std::max<SiteCoord>(lo, hi - 1)));
    return static_cast<double>(base) + 0.25 + rng.uniform01() * 0.5;
}

bool is_integral(double v) {
    return std::abs(v - std::round(v)) < 1e-9;
}

/// Marks a cell as placed-by-convention: position plus its integral gp
/// mirror (see generators.hpp).
void set_case_position(Cell& cell, SiteCoord x, SiteCoord y)
    MRLG_REQUIRES(grid_write_cap()) {
    cell.set_pos(x, y);
    cell.set_gp(static_cast<double>(x), static_cast<double>(y));
}

RailPhase random_phase(Rng& rng) {
    return rng.chance(0.5) ? RailPhase::kEven : RailPhase::kOdd;
}

/// Adds 1..max_count random blockages fracturing the rows.
void add_random_blockages(Rng& rng, Floorplan& fp, int max_count) {
    const SiteCoord rows = fp.num_rows();
    const SiteCoord sites = fp.rows().empty() ? 0 : fp.row(0).num_sites;
    const int count = static_cast<int>(rng.uniform(1, max_count));
    for (int i = 0; i < count; ++i) {
        const SiteCoord bw =
            static_cast<SiteCoord>(rng.uniform(2, std::max<SiteCoord>(2, sites / 6)));
        const SiteCoord bh = static_cast<SiteCoord>(
            rng.uniform(1, std::max<SiteCoord>(1, rows / 2)));
        const SiteCoord bx =
            static_cast<SiteCoord>(rng.uniform(0, std::max<SiteCoord>(0, sites - bw)));
        const SiteCoord by =
            static_cast<SiteCoord>(rng.uniform(0, std::max<SiteCoord>(0, rows - bh)));
        fp.add_blockage(Rect{bx, by, bw, bh});
    }
}

}  // namespace

const char* to_string(FuzzScenario s) {
    switch (s) {
        case FuzzScenario::kLegality:
            return "legality";
        case FuzzScenario::kLocal:
            return "local";
        case FuzzScenario::kMllRoundtrip:
            return "mll";
        case FuzzScenario::kRipup:
            return "ripup";
        case FuzzScenario::kWholeDesign:
            return "design";
    }
    return "?";
}

bool scenario_from_string(const std::string& name, FuzzScenario& out) {
    if (name == "legality") {
        out = FuzzScenario::kLegality;
    } else if (name == "local") {
        out = FuzzScenario::kLocal;
    } else if (name == "mll") {
        out = FuzzScenario::kMllRoundtrip;
    } else if (name == "ripup") {
        out = FuzzScenario::kRipup;
    } else if (name == "design") {
        out = FuzzScenario::kWholeDesign;
    } else {
        return false;
    }
    return true;
}

Database gen_overlapping_case(Rng& rng) {
    GridWriteScope grid_write;
    const SiteCoord rows = static_cast<SiteCoord>(rng.uniform(3, 10));
    const SiteCoord sites = static_cast<SiteCoord>(rng.uniform(24, 64));
    Database db{Floorplan(rows, sites)};
    if (rng.chance(0.4)) {
        add_random_blockages(rng, db.floorplan(), 2);
    }
    const bool with_fence = rng.chance(0.2);
    if (with_fence) {
        // Full-height strip at the right edge, ISPD2015 style.
        const SiteCoord fw = std::max<SiteCoord>(4, sites / 4);
        db.floorplan().add_fence(1, Rect{static_cast<SiteCoord>(sites - fw),
                                         0, fw, rows});
    }

    int counter = 0;
    const auto add_at = [&](SiteCoord x, SiteCoord y, SiteCoord w,
                            SiteCoord h) {
        assert_grid_write_cap();
        const CellId id = db.add_cell(Cell("q" + std::to_string(counter++),
                                           w, h, random_phase(rng)));
        Cell& cell = db.cell(id);
        if (with_fence && rng.chance(0.3)) {
            cell.set_region(1);
        }
        set_case_position(cell, x, y);
    };

    const int num_cells = static_cast<int>(rng.uniform(8, 36));
    for (int i = 0; i < num_cells; ++i) {
        const double mode = rng.uniform01();
        const SiteCoord h =
            rng.chance(0.3) ? static_cast<SiteCoord>(rng.uniform(2, 3)) : 1;
        const SiteCoord y = static_cast<SiteCoord>(
            rng.uniform(0, std::max<SiteCoord>(0, rows - h)));
        if (mode < 0.15) {
            // Nested cluster: one wide cell covering 2 short ones.
            const SiteCoord w = static_cast<SiteCoord>(rng.uniform(8, 14));
            const SiteCoord x = static_cast<SiteCoord>(
                rng.uniform(0, std::max<SiteCoord>(0, sites - w)));
            add_at(x, y, w, 1);
            add_at(static_cast<SiteCoord>(x + 1), y, 2, 1);
            add_at(static_cast<SiteCoord>(x + w - 3), y, 2, 1);
        } else if (mode < 0.3) {
            // Exactly-abutting chain (legal; strict-inequality probe).
            SiteCoord x = static_cast<SiteCoord>(
                rng.uniform(0, std::max<SiteCoord>(0, sites - 9)));
            for (int c = 0; c < 3; ++c) {
                const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 3));
                add_at(x, y, w, 1);
                x = static_cast<SiteCoord>(x + w);
            }
        } else {
            const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 8));
            const SiteCoord x = static_cast<SiteCoord>(
                rng.uniform(0, std::max<SiteCoord>(0, sites - w)));
            add_at(x, y, w, h);
        }
    }
    return db;
}

Database gen_packed_case(Rng& rng, int num_targets) {
    GridWriteScope grid_write;
    const SiteCoord rows = static_cast<SiteCoord>(2 * rng.uniform(3, 7));
    const SiteCoord sites = static_cast<SiteCoord>(rng.uniform(40, 100));
    Database db{Floorplan(rows, sites)};
    if (rng.chance(0.35)) {
        add_random_blockages(rng, db.floorplan(), 3);
    }
    // Parity-hostile mix: a burst of even-height cells sharing one phase
    // starves half the rows and squeezes the enumeration window.
    const bool parity_hostile = rng.chance(0.25);
    const RailPhase hostile_phase = random_phase(rng);

    const double density = 0.35 + rng.uniform01() * 0.35;
    const double capacity =
        static_cast<double>(db.floorplan().free_site_area()) * density;
    double used = 0.0;
    int counter = 0;
    while (used < capacity) {
        SiteCoord h = 1;
        RailPhase phase = random_phase(rng);
        if (parity_hostile && rng.chance(0.6)) {
            h = 2;
            phase = hostile_phase;
        } else if (rng.chance(0.25)) {
            h = static_cast<SiteCoord>(rng.uniform(2, 3));
        }
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 6));
        const CellId id = db.add_cell(
            Cell("p" + std::to_string(counter++), w, h, phase));
        db.cell(id).set_gp(
            rng.uniform01() * static_cast<double>(sites - w),
            rng.uniform01() * static_cast<double>(rows - h));
        used += static_cast<double>(w) * static_cast<double>(h);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    GreedyOptions gopts;
    gopts.order = GreedyOptions::Order::kAreaDescending;
    greedy_legalize(db, grid, gopts);  // leftovers simply become targets

    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        Cell& cell = db.cell(CellId{static_cast<CellId::underlying>(i)});
        if (cell.fixed()) {
            continue;
        }
        if (cell.placed()) {
            set_case_position(cell, cell.x(), cell.y());
        } else {
            cell.set_gp(fractional_pref(rng, 0, sites),
                        fractional_pref(rng, 0, rows));
        }
    }
    for (int i = 0; i < num_targets; ++i) {
        const SiteCoord h =
            rng.chance(0.4) ? static_cast<SiteCoord>(rng.uniform(2, 3)) : 1;
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 6));
        const CellId id = db.add_cell(Cell("t" + std::to_string(i), w, h,
                                           random_phase(rng)));
        db.cell(id).set_gp(fractional_pref(rng, 0, sites - w),
                           fractional_pref(rng, 0, rows - h));
    }
    return db;
}

Database gen_saturated_case(Rng& rng, int num_targets) {
    GridWriteScope grid_write;
    const SiteCoord rows = static_cast<SiteCoord>(2 * rng.uniform(2, 4));
    const SiteCoord sites = static_cast<SiteCoord>(rng.uniform(20, 40));
    Database db{Floorplan(rows, sites)};
    const double density = 0.85 + rng.uniform01() * 0.1;
    const double capacity =
        static_cast<double>(db.floorplan().free_site_area()) * density;
    double used = 0.0;
    int counter = 0;
    while (used < capacity) {
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        const CellId id = db.add_cell(
            Cell("s" + std::to_string(counter++), w, 1, random_phase(rng)));
        db.cell(id).set_gp(
            rng.uniform01() * static_cast<double>(sites - w),
            rng.uniform01() * static_cast<double>(rows - 1));
        used += static_cast<double>(w);
    }
    SegmentGrid grid = SegmentGrid::build(db);
    GreedyOptions gopts;
    gopts.order = GreedyOptions::Order::kAreaDescending;
    greedy_legalize(db, grid, gopts);
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        Cell& cell = db.cell(CellId{static_cast<CellId::underlying>(i)});
        if (cell.fixed()) {
            continue;
        }
        if (cell.placed()) {
            set_case_position(cell, cell.x(), cell.y());
        } else {
            cell.set_gp(fractional_pref(rng, 0, sites),
                        fractional_pref(rng, 0, rows));
        }
    }
    for (int i = 0; i < num_targets; ++i) {
        const SiteCoord h = static_cast<SiteCoord>(rng.uniform(2, 3));
        const SiteCoord w = static_cast<SiteCoord>(rng.uniform(1, 4));
        const CellId id = db.add_cell(Cell("t" + std::to_string(i), w, h,
                                           random_phase(rng)));
        db.cell(id).set_gp(fractional_pref(rng, 0, sites - w),
                           fractional_pref(rng, 0, rows - h));
    }
    return db;
}

Database gen_whole_design_case(Rng& rng) {
    GridWriteScope grid_write;
    GenProfile p;
    p.name = "fuzz-design";
    p.num_single = static_cast<std::size_t>(rng.uniform(60, 180));
    p.num_double = static_cast<std::size_t>(rng.uniform(8, 30));
    if (rng.chance(0.3)) {
        p.num_triple = static_cast<std::size_t>(rng.uniform(1, 8));
    }
    if (rng.chance(0.2)) {
        p.num_quad = static_cast<std::size_t>(rng.uniform(1, 5));
    }
    p.density = 0.4 + rng.uniform01() * 0.3;
    if (rng.chance(0.35)) {
        p.num_blockages = static_cast<int>(rng.uniform(1, 3));
        p.blockage_area_frac = 0.03 + rng.uniform01() * 0.05;
    }
    if (rng.chance(0.2)) {
        p.fence_cell_frac = 0.05 + rng.uniform01() * 0.1;
    }
    p.seed = rng.next_u64();
    GenResult gen = generate_benchmark(p);
    return std::move(gen.db);
}

SegmentGrid materialize_case(Database& db) {
    GridWriteScope grid_write;
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        Cell& cell = db.cell(CellId{static_cast<CellId::underlying>(i)});
        if (!cell.fixed()) {
            cell.unplace();
        }
    }
    SegmentGrid grid = SegmentGrid::build(db);
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const CellId id{static_cast<CellId::underlying>(i)};
        Cell& cell = db.cell(id);
        if (cell.fixed() || !is_integral(cell.gp_x()) ||
            !is_integral(cell.gp_y())) {
            continue;
        }
        const SiteCoord x = static_cast<SiteCoord>(std::llround(cell.gp_x()));
        const SiteCoord y = static_cast<SiteCoord>(std::llround(cell.gp_y()));
        bool contained = y >= 0 && y + cell.height() <= db.floorplan().num_rows();
        const Span xs{x, static_cast<SiteCoord>(x + cell.width())};
        for (SiteCoord r = y; contained && r < y + cell.height(); ++r) {
            contained = grid.containing_segment(r, xs, cell.region()).valid();
        }
        if (contained) {
            grid.place(db, id, x, y);
        } else {
            // Deliberate out-of-rows violation: position without grid
            // registration (the legality oracle re-derives from the db).
            cell.set_pos(x, y);
        }
    }
    return grid;
}

bool case_uses_fences(const Database& db) {
    return !db.floorplan().fences().empty();
}

}  // namespace mrlg::qa
