#pragma once
/// \file fuzz.hpp
/// Seeded differential fuzz harness: generate → oracle battery → shrink →
/// dump replayable Bookshelf repro. Drives everything in src/qa; the
/// tools/mrlg_fuzz CLI and the ctest repro replayer are thin wrappers.
///
/// Determinism contract: run_fuzz(opts) with the same options produces the
/// same report (byte for byte) at any thread count. Each iteration uses a
/// fresh Rng derived from (seed, iteration), so any single failing
/// iteration replays in isolation.

#include <cstdint>
#include <string>
#include <vector>

#include "qa/generators.hpp"
#include "qa/oracles.hpp"

namespace mrlg::qa {

struct FuzzOptions {
    std::uint64_t seed = 1;
    /// Iterations per scenario battery round-robin.
    int iters = 50;
    /// Worker threads for MLL evaluation scans (0 = MRLG_THREADS env
    /// default, 1 = serial). Results are identical either way — that is
    /// one of the properties under test.
    int num_threads = 0;
    /// Cross-check the MIP solver on small local problems.
    bool exercise_ilp = true;
    /// Run the ddmin shrinker on failures.
    bool shrink = true;
    /// When non-empty, dump each (shrunk) failing case as a Bookshelf
    /// design under this directory.
    std::string repro_dir;
    /// Stop after this many failures.
    int max_failures = 8;
    /// Scenarios to run; empty = all of them.
    std::vector<FuzzScenario> scenarios;
};

struct FuzzFailure {
    FuzzScenario scenario = FuzzScenario::kLegality;
    std::uint64_t seed = 0;   ///< Master seed of the run.
    int iteration = 0;        ///< Failing iteration (replays standalone).
    std::string detail;       ///< Oracle mismatch description.
    std::string repro_path;   ///< .aux path when dumped, else "".
    std::size_t cells_before = 0;  ///< Case size pre-shrink.
    std::size_t cells_after = 0;   ///< Case size post-shrink.
    /// Case uses fence regions, which Bookshelf cannot represent: the
    /// dumped repro replays only approximately — use seed + iteration.
    bool uses_fences = false;
};

struct FuzzReport {
    int iterations_run = 0;
    std::vector<FuzzFailure> failures;
    bool ok() const { return failures.empty(); }
    /// Human-readable multi-line summary (stable across runs).
    std::string summary() const;
};

/// Runs one oracle battery over an in-memory case. Returns "" when every
/// oracle agrees, else the first mismatch description. Mutates `db` (the
/// ripup battery commits successful transactions; others restore state).
std::string check_case(Database& db, FuzzScenario scenario,
                       const LocalDiffOptions& lopts = {},
                       int num_threads = 0);

/// The full loop: generate cases round-robin over the scenario list,
/// check, shrink failures, dump repros.
FuzzReport run_fuzz(const FuzzOptions& opts);

/// Writes `db` as a replayable Bookshelf repro under `dir` (design files
/// <name>.aux/.nodes/.nets/.pl/.scl plus a <name>.scenario sidecar naming
/// the oracle battery). Floorplan blockages are emitted as fixed terminal
/// nodes so they survive the round-trip. Returns the .aux path.
std::string dump_repro(const Database& db, FuzzScenario scenario,
                       const std::string& dir, const std::string& name);

/// Replays a dumped repro: reads the design, re-freezes terminals into
/// blockages, re-materializes placement state from the gp convention and
/// runs the oracle battery named by the .scenario sidecar (or `scenario`
/// when the sidecar is absent). Returns "" when the case passes.
std::string replay_repro(const std::string& aux_path,
                         const LocalDiffOptions& lopts = {});

}  // namespace mrlg::qa
