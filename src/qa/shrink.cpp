#include "qa/shrink.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "db/write_cap.hpp"

namespace mrlg::qa {

Database subset_design(const Database& db, const std::vector<bool>& keep) {
    GridWriteScope grid_write;
    MRLG_ASSERT(keep.size() == db.num_cells(),
                "subset_design: mask size mismatch");
    Database out{db.floorplan()};
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        if (!keep[i]) {
            continue;
        }
        const Cell& src = db.cell(CellId{static_cast<CellId::underlying>(i)});
        Cell copy(src.name(), src.width(), src.height(), src.rail_phase(),
                  src.fixed());
        copy.set_region(src.region());
        copy.set_gp(src.gp_x(), src.gp_y());
        if (src.placed()) {
            copy.set_pos(src.x(), src.y());
            copy.set_orient(src.orient());
        }
        out.add_cell(std::move(copy));
    }
    return out;
}

namespace {

std::string run_on_subset(const Database& db, const std::vector<bool>& keep,
                          const CaseCheck& check) {
    Database candidate = subset_design(db, keep);
    return check(candidate);
}

}  // namespace

ShrinkResult shrink_case(const Database& db, const CaseCheck& check,
                         const ShrinkOptions& opts) {
    const std::size_t n = db.num_cells();
    std::vector<bool> keep(n, true);

    ShrinkResult result;
    result.cells_before = n;
    result.failure = run_on_subset(db, keep, check);
    ++result.checks;
    MRLG_ASSERT(!result.failure.empty(),
                "shrink_case: the input case does not fail");

    // Classic ddmin over the indices currently kept.
    std::size_t granularity = 2;
    while (true) {
        std::vector<std::size_t> kept;
        for (std::size_t i = 0; i < n; ++i) {
            if (keep[i]) {
                kept.push_back(i);
            }
        }
        if (kept.size() <= 1) {
            break;
        }
        granularity = std::min(granularity, kept.size());

        bool reduced = false;
        const std::size_t chunk =
            (kept.size() + granularity - 1) / granularity;
        for (std::size_t start = 0;
             start < kept.size() && result.checks < opts.max_checks;
             start += chunk) {
            const std::size_t end = std::min(start + chunk, kept.size());
            std::vector<bool> trial = keep;
            for (std::size_t j = start; j < end; ++j) {
                trial[kept[j]] = false;
            }
            const std::string failure = run_on_subset(db, trial, check);
            ++result.checks;
            if (!failure.empty()) {
                keep = std::move(trial);
                result.failure = failure;
                reduced = true;
                break;  // re-partition against the smaller kept set
            }
        }
        if (result.checks >= opts.max_checks) {
            break;
        }
        if (reduced) {
            granularity = 2;
            continue;
        }
        if (granularity >= kept.size()) {
            break;  // single-cell removals no longer help: 1-minimal
        }
        granularity = std::min(kept.size(), granularity * 2);
    }

    result.db = subset_design(db, keep);
    result.cells_after = result.db.num_cells();
    return result;
}

}  // namespace mrlg::qa
