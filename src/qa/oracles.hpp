#pragma once
/// \file oracles.hpp
/// Differential oracles: independent implementations answering the same
/// question are run against each other, and any disagreement is a bug in
/// one of them — no hand-written expected value required. The oracle
/// matrix (see DESIGN.md "QA subsystem"):
///
///   check_legality        vs  naive O(n²) re-derivation from first
///                             principles (floorplan rows, blockages,
///                             fences — never the segment grid);
///   approx MLL evaluation vs  exact evaluation vs solve_local_exact vs
///                             the solve_local_ilp MIP (same feasibility,
///                             exact == ILP cost, approx within its proven
///                             lower-bound relation, identical winner
///                             under the deterministic tie-break);
///   scanline enumeration  vs  the naive exponential enumeration (small
///                             problems only);
///   mll_place + mll_undo  vs  a full before snapshot (byte-identical
///                             restore);
///   ripup_place rollback  vs  a full before snapshot.
///
/// Every diff_* function returns "" when the implementations agree and a
/// human-readable mismatch description otherwise. All are deterministic:
/// same inputs, same string, at any thread count.

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "eval/legality.hpp"
#include "legalize/mll.hpp"
#include "legalize/ripup.hpp"
#include "legalize/target.hpp"

namespace mrlg::qa {

/// Reference legality result, re-derived O(n²) from the floorplan alone.
struct NaiveLegality {
    bool legal = true;
    /// Canonical overlapping pairs: (smaller id, larger id), sorted,
    /// deduplicated (one entry per pair regardless of shared row count).
    std::vector<std::pair<CellId, CellId>> overlap_pairs;
    std::size_t num_out_of_rows = 0;
    std::size_t num_rail_violations = 0;
    std::size_t num_unplaced = 0;
};

/// O(n²) reference oracle. Honors require_all_placed /
/// check_rail_alignment from `opts`; ignores the sweep-only knobs.
/// Intentionally never consults the SegmentGrid: rows, blockages and
/// fences are read straight off the Floorplan so grid bookkeeping bugs
/// cannot leak into the reference.
NaiveLegality naive_check_legality(const Database& db,
                                   const LegalityOptions& opts = {});

/// check_legality (per-row sweep over the grid's view) vs the naive
/// reference: same verdict, same violation counts per category, same
/// canonical overlap pair set.
std::string diff_legality(const Database& db, const SegmentGrid& grid,
                          const LegalityOptions& opts = {});

/// Knobs for the local-problem cross-check.
struct LocalDiffOptions {
    bool check_rail = true;
    /// Run the MIP cross-check when the problem is small enough.
    bool run_ilp = true;
    /// Problem-size gates: the ILP and the naive exponential enumeration
    /// are only consulted below these bounds.
    int max_ilp_cells = 8;
    std::size_t max_ilp_points = 64;
    int max_naive_cells = 10;
    double eps_um = 1e-6;
};

/// Cross-checks every independent local-problem solver on the window
/// around (pref_x, pref_y) for inserting `target` (an unplaced movable
/// cell): approx vs exact evaluation, scanline vs naive enumeration,
/// solve_local_exact vs solve_local_ilp, evaluation estimates vs realized
/// displacement. Read-only: the database is never modified.
std::string diff_local_solvers(const Database& db, const SegmentGrid& grid,
                               CellId target, double pref_x, double pref_y,
                               const Rect& window,
                               const LocalDiffOptions& opts = {});

/// mll_place then (on success) mll_undo must restore the database and the
/// segment grid byte-identically; a failed mll_place must not have touched
/// anything. On success also audits the committed state (grid bookkeeping
/// + full legality) and checks the est/real cost relation: est == real for
/// exact evaluation, est <= real for the §5.2 neighbour approximation.
/// Leaves the design exactly as found (commit is always undone).
std::string diff_mll_roundtrip(Database& db, SegmentGrid& grid,
                               CellId target, double pref_x, double pref_y,
                               const MllOptions& opts = {});

/// ripup_place: a failed transaction must restore the state
/// byte-identically (including gp-driven victim re-insertion positions); a
/// successful one must leave a legal, audit-clean placement with no more
/// than max_evictions victims. On success the placement legitimately
/// changes and stays committed.
std::string diff_ripup_rollback(Database& db, SegmentGrid& grid,
                                CellId target, double pref_x, double pref_y,
                                const RipupOptions& opts = {});

/// Canonicalizes a pair list to (min,max), sorted, unique — shared by the
/// legality diff and its tests.
std::vector<std::pair<CellId, CellId>> canonical_pairs(
    std::vector<std::pair<CellId, CellId>> pairs);

}  // namespace mrlg::qa
