#include "qa/snapshot.hpp"

#include <sstream>

namespace mrlg::qa {

PlacementSnapshot capture_snapshot(const Database& db,
                                   const SegmentGrid& grid) {
    PlacementSnapshot snap;
    snap.cells.reserve(db.num_cells());
    for (const Cell& c : db.cells()) {
        // x/y/orient are documented as meaningless while unplaced — a
        // transaction that parks stale coordinates there is not a leak.
        snap.cells.push_back(PlacementSnapshot::CellState{
            c.placed(), c.placed() ? c.x() : 0, c.placed() ? c.y() : 0,
            c.placed() ? c.orient() : Orient::kN, c.gp_x(), c.gp_y()});
    }
    snap.segment_cells.reserve(grid.num_segments());
    for (const Segment& s : grid.segments()) {
        snap.segment_cells.push_back(s.cells);
    }
    return snap;
}

std::string describe_snapshot_diff(const PlacementSnapshot& before,
                                   const PlacementSnapshot& after,
                                   const Database& db) {
    if (before == after) {
        return {};
    }
    std::ostringstream os;
    constexpr std::size_t kMaxReported = 4;
    std::size_t reported = 0;

    if (before.cells.size() != after.cells.size()) {
        os << "cell count changed " << before.cells.size() << " -> "
           << after.cells.size() << "; ";
    }
    const std::size_t n = std::min(before.cells.size(), after.cells.size());
    for (std::size_t i = 0; i < n && reported < kMaxReported; ++i) {
        const auto& b = before.cells[i];
        const auto& a = after.cells[i];
        if (b == a) {
            continue;
        }
        ++reported;
        os << "cell " << db.cell(CellId{static_cast<CellId::underlying>(i)})
                  .name()
           << ": ";
        if (b.placed != a.placed) {
            os << (a.placed ? "became placed" : "became unplaced");
        } else {
            os << "(" << b.x << "," << b.y << ") -> (" << a.x << "," << a.y
               << ")";
        }
        if (b.gp_x != a.gp_x || b.gp_y != a.gp_y) {
            os << " [gp moved]";
        }
        os << "; ";
    }

    if (before.segment_cells.size() != after.segment_cells.size()) {
        os << "segment count changed " << before.segment_cells.size()
           << " -> " << after.segment_cells.size() << "; ";
    }
    const std::size_t m =
        std::min(before.segment_cells.size(), after.segment_cells.size());
    for (std::size_t s = 0; s < m; ++s) {
        if (before.segment_cells[s] != after.segment_cells[s]) {
            os << "segment " << s << " list changed ("
               << before.segment_cells[s].size() << " -> "
               << after.segment_cells[s].size() << " cells)";
            break;
        }
    }
    return os.str();
}

}  // namespace mrlg::qa
