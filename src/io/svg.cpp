#include "io/svg.hpp"

#include <fstream>

namespace mrlg {

namespace {

/// Fill colour per row height (colour-blind-safe-ish qualitative set).
const char* height_color(SiteCoord h) {
    switch (h) {
        case 1: return "#7eb0d5";
        case 2: return "#fd7f6f";
        case 3: return "#b2e061";
        case 4: return "#bd7ebe";
        default: return "#ffb55a";
    }
}

}  // namespace

bool write_svg(const Database& db, const std::string& path,
               const SvgOptions& opts) {
    if (db.num_cells() > opts.max_cells) {
        return false;
    }
    const Floorplan& fp = db.floorplan();
    const Rect die = fp.die();
    const double sx = opts.px_per_site;
    const double sy = opts.px_per_row;
    const double width = (die.w + 2) * sx;
    const double height = (die.h + 2) * sy;
    // SVG y grows downward; flip so row 0 is at the bottom.
    auto X = [&](double x) { return (x - die.x + 1) * sx; };
    auto Y = [&](double y_top) { return (die.y_hi() + 1 - y_top) * sy; };

    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
        << "' height='" << height << "'>\n";
    out << "<rect x='0' y='0' width='" << width << "' height='" << height
        << "' fill='#fafafa'/>\n";

    // Rows.
    for (const Row& r : fp.rows()) {
        out << "<rect x='" << X(r.x) << "' y='" << Y(r.y + 1) << "' width='"
            << r.num_sites * sx << "' height='" << sy
            << "' fill='none' stroke='#dddddd' stroke-width='0.5'/>\n";
    }
    // Fence regions (tinted background + boundary).
    for (const Floorplan::Fence& f : fp.fences()) {
        out << "<rect x='" << X(f.rect.x) << "' y='" << Y(f.rect.y_hi())
            << "' width='" << f.rect.w * sx << "' height='"
            << f.rect.h * sy
            << "' fill='#ffe9b3' fill-opacity='0.5' stroke='#cc8800' "
               "stroke-width='1' stroke-dasharray='4,2'/>\n";
    }
    // Blockages.
    for (const Rect& b : fp.blockages()) {
        out << "<rect x='" << X(b.x) << "' y='" << Y(b.y_hi())
            << "' width='" << b.w * sx << "' height='" << b.h * sy
            << "' fill='#999999' fill-opacity='0.6'/>\n";
    }
    // Cells.
    for (const Cell& c : db.cells()) {
        if (c.fixed()) {
            continue;  // already drawn as blockage when frozen
        }
        if (c.placed()) {
            out << "<rect x='" << X(c.x()) << "' y='"
                << Y(c.y() + c.height()) << "' width='" << c.width() * sx
                << "' height='" << c.height() * sy << "' fill='"
                << height_color(c.height())
                << "' fill-opacity='0.85' stroke='#555555' "
                   "stroke-width='0.4'/>\n";
            if (opts.draw_gp_arrows) {
                out << "<line x1='" << X(c.gp_x() + c.width() / 2.0)
                    << "' y1='" << Y(c.gp_y() + c.height() / 2.0)
                    << "' x2='" << X(c.x() + c.width() / 2.0) << "' y2='"
                    << Y(c.y() + c.height() / 2.0)
                    << "' stroke='#cc3333' stroke-width='0.6' "
                       "stroke-opacity='0.5'/>\n";
            }
        } else {
            out << "<rect x='" << X(c.gp_x()) << "' y='"
                << Y(c.gp_y() + c.height()) << "' width='"
                << c.width() * sx << "' height='" << c.height() * sy
                << "' fill='none' stroke='" << height_color(c.height())
                << "' stroke-width='0.8' stroke-dasharray='2,1'/>\n";
        }
        if (opts.label_cells) {
            const double lx = c.placed() ? c.x() : c.gp_x();
            const double ly = c.placed() ? c.y() : c.gp_y();
            out << "<text x='" << X(lx + 0.2) << "' y='" << Y(ly) - 2
                << "' font-size='" << sy * 0.5 << "' fill='#333333'>"
                << c.name() << "</text>\n";
        }
    }
    out << "</svg>\n";
    return true;
}

}  // namespace mrlg
