#pragma once
/// \file benchmark_gen.hpp
/// Synthetic ISPD2015-like benchmark generator (DESIGN.md substitution for
/// the contest benchmarks). Produces a Database with:
///  * the requested mix of single-row and double-row-height cells (the
///    paper's modification: sequential cells doubled in height, halved in
///    width — here the double-height population is generated directly);
///  * a die sized so the movable-area / free-area ratio hits the requested
///    density, with optional macro blockages;
///  * a hidden legal packing, which seeds the global-placement input as
///    (legal position + Gaussian noise) — i.e. a well-distributed,
///    overlapping, off-site GP, exactly what legalization consumes;
///  * a spatially local netlist so HPWL deltas behave realistically.

#include <cstdint>
#include <string>

#include "db/database.hpp"

namespace mrlg {

struct GenProfile {
    std::string name = "synthetic";
    std::size_t num_single = 1000;  ///< Single-row-height movable cells.
    std::size_t num_double = 100;   ///< Double-row-height movable cells.
    /// Taller cells — beyond the paper's double-height benchmarks but
    /// fully supported by the algorithm (§2 allows any multiple of the
    /// row height). Triples are odd-height (any row, flipped); quads are
    /// even-height (parity-constrained like doubles).
    std::size_t num_triple = 0;
    std::size_t num_quad = 0;
    double density = 0.5;           ///< Movable area / free site area.
    std::uint64_t seed = 1;

    // --- cell geometry (sites) ---------------------------------------------
    SiteCoord single_w_min = 2;
    SiteCoord single_w_max = 8;
    SiteCoord double_w_min = 1;  ///< Paper: halved widths.
    SiteCoord double_w_max = 4;

    // --- die / blockages -----------------------------------------------------
    double aspect_sites_per_row = 8.55;  ///< site_h/site_w for a square die.
    int num_blockages = 0;
    double blockage_area_frac = 0.0;  ///< Die fraction covered by blockages.

    // --- fence regions (ISPD2015 feature) -------------------------------
    /// Fraction of cells assigned to fence region 1 (0 disables fences).
    /// The generator carves a full-height strip at the right die edge
    /// sized so the fence's internal density matches `density`. Combine
    /// with blockages at your own risk (blockages may eat fence sites).
    double fence_cell_frac = 0.0;

    // --- global placement noise ---------------------------------------------
    // Calibrated so the legalized average displacement lands in the
    // paper's 0.3-3 site-width band: most cells stay in their row with a
    // small x error, a tail of cells crosses rows.
    double gp_sigma_x = 0.9;  ///< Sites.
    double gp_sigma_y = 0.18; ///< Rows.
    /// Double-height cells get a larger y noise: the contest global
    /// placers the paper legalizes are parity-unaware, so a double-height
    /// cell's preferred row has the wrong power-rail parity about half the
    /// time. This is what makes the paper's "Power Line Not Aligned"
    /// experiment (38-42 % lower displacement) reproducible.
    double gp_sigma_y_double = 1.1;

    // --- netlist ---------------------------------------------------------------
    double nets_per_cell = 1.1;
    SiteCoord net_radius = 40;  ///< Spatial locality of net pins (sites).

    double site_w_um = 0.2;
    double site_h_um = 1.71;
};

struct GenResult {
    Database db;
    /// True when the hidden legal packing placed every cell (always the
    /// case for density <= ~0.95; asserted in tests).
    bool packed_ok = false;
};

/// Generates the design. On return every movable cell is *unplaced* and
/// carries its GP position in gp_x/gp_y; fixed blockages are frozen into
/// the floorplan.
GenResult generate_benchmark(const GenProfile& profile);

}  // namespace mrlg
