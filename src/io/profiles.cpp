#include "io/profiles.hpp"

#include <algorithm>
#include <cmath>

namespace mrlg {

namespace {

Table1Entry make(const char* name, std::size_t s_cells, std::size_t d_cells,
                 double density, Table1Paper paper, std::uint64_t seed) {
    Table1Entry e;
    e.profile.name = name;
    e.profile.num_single = s_cells;
    e.profile.num_double = d_cells;
    e.profile.density = density;
    e.profile.seed = seed;
    // A few macro blockages, scaled with design size, as in the contest
    // floorplans.
    e.profile.num_blockages =
        2 + static_cast<int>((s_cells + d_cells) / 100000);
    e.profile.blockage_area_frac = 0.03;
    e.paper = paper;
    return e;
}

}  // namespace

std::vector<Table1Entry> table1_benchmarks(double scale) {
    // Columns from Table 1 ("Power Line Aligned"):
    // {GP HPWL(m), Disp ILP, Disp Ours, dHPWL% ILP, dHPWL% Ours,
    //  RT ILP, RT Ours}
    std::vector<Table1Entry> all;
    all.push_back(make("des_perf_1", 103842, 8802, 0.91,
                       {1.43, 2.13, 3.32, 2.61, 2.85, 4098.7, 7.2}, 101));
    all.push_back(make("des_perf_a", 99775, 8513, 0.43,
                       {2.57, 0.66, 0.96, 0.11, 0.28, 193.8, 2.6}, 102));
    all.push_back(make("des_perf_b", 103842, 8802, 0.50,
                       {2.13, 0.62, 0.85, 0.12, 0.31, 250.8, 2.4}, 103));
    all.push_back(make("edit_dist_a", 121913, 5500, 0.46,
                       {5.25, 0.45, 0.47, 0.09, 0.10, 206.0, 1.9}, 104));
    all.push_back(make("fft_1", 30297, 1984, 0.84,
                       {0.46, 1.58, 1.81, 2.25, 1.66, 776.8, 1.1}, 105));
    all.push_back(make("fft_2", 30297, 1984, 0.50,
                       {0.46, 0.66, 0.86, 0.55, 0.87, 72.7, 0.4}, 106));
    all.push_back(make("fft_a", 28718, 1907, 0.25,
                       {0.75, 0.60, 0.64, 0.32, 0.33, 38.2, 0.3}, 107));
    all.push_back(make("fft_b", 28718, 1907, 0.28,
                       {0.95, 0.73, 0.80, 0.32, 0.33, 61.9, 0.4}, 108));
    all.push_back(make("matrix_mult_1", 152427, 2898, 0.80,
                       {2.39, 0.49, 0.53, 0.36, 0.28, 967.4, 3.9}, 109));
    all.push_back(make("matrix_mult_2", 152427, 2898, 0.79,
                       {2.59, 0.45, 0.49, 0.30, 0.22, 825.0, 4.0}, 110));
    all.push_back(make("matrix_mult_a", 146837, 2813, 0.42,
                       {3.77, 0.27, 0.33, 0.09, 0.14, 150.7, 1.6}, 111));
    all.push_back(make("matrix_mult_b", 143695, 2740, 0.31,
                       {3.43, 0.25, 0.30, 0.09, 0.13, 127.8, 1.3}, 112));
    all.push_back(make("matrix_mult_c", 143695, 2740, 0.31,
                       {3.29, 0.27, 0.29, 0.11, 0.11, 139.0, 1.4}, 113));
    all.push_back(make("pci_bridge32_a", 26268, 3249, 0.38,
                       {0.46, 0.88, 0.95, 0.52, 0.58, 49.4, 0.3}, 114));
    all.push_back(make("pci_bridge32_b", 25734, 3180, 0.14,
                       {0.98, 0.95, 0.96, 0.12, 0.13, 15.3, 0.2}, 115));
    all.push_back(make("superblue11_a", 861314, 64302, 0.43,
                       {42.94, 1.85, 1.94, 0.15, 0.15, 3073.6, 23.4}, 116));
    all.push_back(make("superblue12", 1172586, 114362, 0.45,
                       {39.23, 1.45, 1.63, 0.18, 0.22, 5079.0, 106.5}, 117));
    all.push_back(make("superblue14", 564769, 47474, 0.56,
                       {27.98, 2.56, 2.62, 0.22, 0.22, 3360.6, 17.1}, 118));
    all.push_back(make("superblue16_a", 625419, 55031, 0.48,
                       {31.35, 1.61, 1.73, 0.10, 0.12, 2470.7, 21.7}, 119));
    all.push_back(make("superblue19", 478109, 27988, 0.52,
                       {20.76, 1.52, 1.60, 0.14, 0.14, 1848.8, 10.9}, 120));

    for (Table1Entry& e : all) {
        e.profile.num_single = std::max<std::size_t>(
            400, static_cast<std::size_t>(
                     std::llround(static_cast<double>(e.profile.num_single) *
                                  scale)));
        e.profile.num_double = std::max<std::size_t>(
            40, static_cast<std::size_t>(
                    std::llround(static_cast<double>(e.profile.num_double) *
                                 scale)));
    }
    return all;
}

bool parallel_profile(const std::string& name, double scale,
                      int seed_offset, GenProfile& out) {
    struct Spec {
        const char* name;
        std::size_t num_single;
        std::size_t num_double;
        double density;
    };
    static constexpr Spec kSpecs[] = {
        {"parallel_s", 2000, 200, 0.70},
        {"parallel_m", 8000, 800, 0.72},
        {"parallel_l", 24000, 2400, 0.75},
    };
    for (const Spec& spec : kSpecs) {
        if (name == spec.name) {
            out.name = spec.name;
            out.num_single = static_cast<std::size_t>(
                static_cast<double>(spec.num_single) * scale);
            out.num_double = static_cast<std::size_t>(
                static_cast<double>(spec.num_double) * scale);
            out.density = spec.density;
            out.seed = 11 + static_cast<std::uint64_t>(seed_offset);
            return true;
        }
    }
    return false;
}

std::vector<std::string> parallel_profile_names() {
    return {"parallel_s", "parallel_m", "parallel_l"};
}

}  // namespace mrlg
