#pragma once
/// \file bookshelf.hpp
/// Reader/writer for the academic Bookshelf placement format
/// (.aux / .nodes / .nets / .pl / .scl), the lingua franca of ISPD
/// placement benchmarks. Designs round-trip: write(read(x)) == x up to
/// formatting.
///
/// Mapping to mrlg's site-unit model:
///  * .scl rows must share one height; that height becomes Site_h, and the
///    row's Sitewidth becomes Site_w. Cell heights must be multiples of
///    the row height (height in rows = bookshelf height / row height).
///  * Node widths are in site widths (Sitespacing must equal Sitewidth).
///  * .pl positions are in bookshelf units; fractional positions are kept
///    as global-placement input, movable nodes also seed gp_x/gp_y.
///  * Terminals become fixed cells (frozen to blockages by the caller).
///  * Bookshelf pin offsets are measured from the node centre; mrlg stores
///    lower-left offsets.

#include <string>

#include "db/database.hpp"

namespace mrlg {

struct BookshelfReadResult {
    Database db;
    std::string design_name;
};

/// Parses the design referenced by an .aux file. Throws ParseError on
/// malformed input.
BookshelfReadResult read_bookshelf(const std::string& aux_path);

/// Writes `db` as <dir>/<design>.aux (+ .nodes/.nets/.pl/.scl).
/// `use_gp_positions` writes Cell::gp coordinates instead of the legalized
/// ones for movable cells.
void write_bookshelf(const Database& db, const std::string& dir,
                     const std::string& design,
                     bool use_gp_positions = false);

class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace mrlg
