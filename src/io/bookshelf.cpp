#include "io/bookshelf.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>

#include "util/str.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

namespace fs = std::filesystem;

/// Reads all meaningful lines (comments '#' stripped, blanks dropped).
std::vector<std::string> read_lines(const fs::path& path) {
    std::ifstream in(path);
    if (!in) {
        throw ParseError("cannot open " + path.string());
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        const auto t = trim(line);
        if (!t.empty()) {
            lines.emplace_back(t);
        }
    }
    return lines;
}

double to_double(std::string_view tok, const std::string& ctx) {
    try {
        return std::stod(std::string(tok));
    } catch (const std::exception&) {
        throw ParseError("bad number '" + std::string(tok) + "' in " + ctx);
    }
}

long to_long(std::string_view tok, const std::string& ctx) {
    try {
        return std::stol(std::string(tok));
    } catch (const std::exception&) {
        throw ParseError("bad integer '" + std::string(tok) + "' in " + ctx);
    }
}

struct SclRow {
    double coord_y = 0;
    double height = 0;
    double site_width = 1;
    double subrow_origin = 0;
    long num_sites = 0;
};

}  // namespace

BookshelfReadResult read_bookshelf(const std::string& aux_path) {
    GridWriteScope grid_write;
    const fs::path aux(aux_path);
    const fs::path dir = aux.parent_path();

    // ---- .aux -------------------------------------------------------------
    const auto aux_lines = read_lines(aux);
    if (aux_lines.empty()) {
        throw ParseError("empty aux file: " + aux_path);
    }
    std::string nodes_file;
    std::string nets_file;
    std::string pl_file;
    std::string scl_file;
    for (const auto tok_view : split_ws(aux_lines[0])) {
        const std::string tok(tok_view);
        if (tok.ends_with(".nodes")) {
            nodes_file = tok;
        } else if (tok.ends_with(".nets")) {
            nets_file = tok;
        } else if (tok.ends_with(".pl")) {
            pl_file = tok;
        } else if (tok.ends_with(".scl")) {
            scl_file = tok;
        }
    }
    if (nodes_file.empty() || pl_file.empty() || scl_file.empty()) {
        throw ParseError("aux file must reference .nodes, .pl and .scl: " +
                         aux_path);
    }

    // ---- .scl -------------------------------------------------------------
    std::vector<SclRow> scl_rows;
    {
        const auto lines = read_lines(dir / scl_file);
        SclRow cur;
        bool in_row = false;
        for (const auto& line : lines) {
            const auto toks = split_ws(line);
            if (toks.empty()) {
                continue;
            }
            if (iequals(toks[0], "CoreRow")) {
                in_row = true;
                cur = SclRow{};
                continue;
            }
            if (!in_row) {
                continue;
            }
            if (iequals(toks[0], "End")) {
                scl_rows.push_back(cur);
                in_row = false;
                continue;
            }
            // "Key : value" pairs; a line may hold several.
            for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
                if (toks[i + 1] != ":") {
                    continue;
                }
                const std::string_view key = toks[i];
                const std::string_view val = toks[i + 2];
                if (iequals(key, "Coordinate")) {
                    cur.coord_y = to_double(val, "scl");
                } else if (iequals(key, "Height")) {
                    cur.height = to_double(val, "scl");
                } else if (iequals(key, "Sitewidth")) {
                    cur.site_width = to_double(val, "scl");
                } else if (iequals(key, "SubrowOrigin")) {
                    cur.subrow_origin = to_double(val, "scl");
                } else if (iequals(key, "NumSites")) {
                    cur.num_sites = to_long(val, "scl");
                }
            }
        }
    }
    if (scl_rows.empty()) {
        throw ParseError("no rows in scl");
    }
    std::sort(scl_rows.begin(), scl_rows.end(),
              [](const SclRow& a, const SclRow& b) {
                  return a.coord_y < b.coord_y;
              });
    const double row_h = scl_rows[0].height;
    const double site_w = scl_rows[0].site_width;
    const double y0 = scl_rows[0].coord_y;
    for (std::size_t i = 0; i < scl_rows.size(); ++i) {
        const SclRow& r = scl_rows[i];
        if (std::abs(r.height - row_h) > 1e-6 ||
            std::abs(r.site_width - site_w) > 1e-6) {
            throw ParseError("non-uniform row height / site width");
        }
        const double expect_y = y0 + static_cast<double>(i) * row_h;
        if (std::abs(r.coord_y - expect_y) > 1e-6) {
            throw ParseError("rows are not contiguous in scl");
        }
    }

    Floorplan fp;
    fp.set_site_dims_um(site_w, row_h);
    for (std::size_t i = 0; i < scl_rows.size(); ++i) {
        const SclRow& r = scl_rows[i];
        fp.add_row(Row{static_cast<SiteCoord>(i),
                       static_cast<SiteCoord>(
                           std::llround(r.subrow_origin / site_w)),
                       static_cast<SiteCoord>(r.num_sites)});
    }
    Database db(std::move(fp));

    // ---- .nodes -----------------------------------------------------------
    {
        const auto lines = read_lines(dir / nodes_file);
        for (const auto& line : lines) {
            const auto toks = split_ws(line);
            if (toks.empty() || starts_with(line, "UCLA") ||
                iequals(toks[0], "NumNodes") ||
                iequals(toks[0], "NumTerminals")) {
                continue;
            }
            if (toks.size() < 3) {
                throw ParseError("bad node line: " + line);
            }
            const std::string name(toks[0]);
            const double wd = to_double(toks[1], "nodes");
            const double hd = to_double(toks[2], "nodes");
            const bool terminal =
                toks.size() > 3 && (iequals(toks[3], "terminal") ||
                                    iequals(toks[3], "terminal_NI"));
            const double w_sites = wd / site_w;
            const double h_rows = hd / row_h;
            if (std::abs(w_sites - std::round(w_sites)) > 1e-6 ||
                std::abs(h_rows - std::round(h_rows)) > 1e-6) {
                throw ParseError("node " + name +
                                 " is not site/row aligned in size");
            }
            db.add_cell(Cell(name,
                             static_cast<SiteCoord>(std::llround(w_sites)),
                             static_cast<SiteCoord>(std::llround(h_rows)),
                             RailPhase::kEven, terminal));
        }
    }

    // ---- .pl --------------------------------------------------------------
    {
        const auto lines = read_lines(dir / pl_file);
        for (const auto& line : lines) {
            const auto toks = split_ws(line);
            if (toks.empty() || starts_with(line, "UCLA")) {
                continue;
            }
            if (toks.size() < 3) {
                throw ParseError("bad pl line: " + line);
            }
            const std::string name(toks[0]);
            const CellId id = db.find_cell(name);
            if (!id.valid()) {
                throw ParseError("pl references unknown node " + name);
            }
            const double x = to_double(toks[1], "pl") / site_w;
            const double y = (to_double(toks[2], "pl") - y0) / row_h;
            Cell& cell = db.cell(id);
            cell.set_gp(x, y);
            bool fixed_marker = false;
            for (const auto& t : toks) {
                if (iequals(t, "/FIXED") || iequals(t, "/FIXED_NI")) {
                    fixed_marker = true;
                }
            }
            if (cell.fixed() || fixed_marker) {
                cell.set_pos(static_cast<SiteCoord>(std::llround(x)),
                             static_cast<SiteCoord>(std::llround(y)));
            }
        }
    }

    // ---- .nets ------------------------------------------------------------
    if (!nets_file.empty() && fs::exists(dir / nets_file)) {
        const auto lines = read_lines(dir / nets_file);
        NetId cur_net;
        int net_counter = 0;
        for (const auto& line : lines) {
            const auto toks = split_ws(line);
            if (toks.empty() || starts_with(line, "UCLA") ||
                iequals(toks[0], "NumNets") || iequals(toks[0], "NumPins")) {
                continue;
            }
            if (iequals(toks[0], "NetDegree")) {
                std::string net_name =
                    toks.size() >= 4 ? std::string(toks[3])
                                     : "net_" + std::to_string(net_counter);
                ++net_counter;
                cur_net = db.add_net(std::move(net_name));
                continue;
            }
            if (!cur_net.valid()) {
                throw ParseError("pin line before NetDegree: " + line);
            }
            // "nodename I/O/B : dx dy" — offsets from the node centre.
            const std::string name(toks[0]);
            const CellId id = db.find_cell(name);
            if (!id.valid()) {
                throw ParseError("nets references unknown node " + name);
            }
            double dx = 0;
            double dy = 0;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                if (toks[i] == ":") {
                    if (i + 1 < toks.size()) {
                        dx = to_double(toks[i + 1], "nets");
                    }
                    if (i + 2 < toks.size()) {
                        dy = to_double(toks[i + 2], "nets");
                    }
                    break;
                }
            }
            const Cell& cell = db.cell(id);
            db.add_pin(id, cur_net,
                       static_cast<double>(cell.width()) / 2.0 + dx / site_w,
                       static_cast<double>(cell.height()) / 2.0 +
                           dy / row_h);
        }
    }

    return BookshelfReadResult{std::move(db), aux.stem().string()};
}

void write_bookshelf(const Database& db, const std::string& dir,
                     const std::string& design, bool use_gp_positions) {
    fs::create_directories(dir);
    const double site_w = db.floorplan().site_w_um();
    const double row_h = db.floorplan().site_h_um();

    {
        std::ofstream aux(fs::path(dir) / (design + ".aux"));
        aux << "RowBasedPlacement : " << design << ".nodes " << design
            << ".nets " << design << ".pl " << design << ".scl\n";
    }
    {
        std::ofstream nodes(fs::path(dir) / (design + ".nodes"));
        nodes << "UCLA nodes 1.0\n";
        std::size_t terminals = 0;
        for (const Cell& c : db.cells()) {
            terminals += c.fixed() ? 1 : 0;
        }
        nodes << "NumNodes : " << db.num_cells() << "\n";
        nodes << "NumTerminals : " << terminals << "\n";
        for (const Cell& c : db.cells()) {
            nodes << c.name() << ' '
                  << static_cast<double>(c.width()) * site_w << ' '
                  << static_cast<double>(c.height()) * row_h
                  << (c.fixed() ? " terminal" : "") << "\n";
        }
    }
    {
        std::ofstream pl(fs::path(dir) / (design + ".pl"));
        pl << "UCLA pl 1.0\n";
        for (const Cell& c : db.cells()) {
            double x;
            double y;
            if (c.fixed() || (!use_gp_positions && c.placed())) {
                x = static_cast<double>(c.x());
                y = static_cast<double>(c.y());
            } else {
                x = c.gp_x();
                y = c.gp_y();
            }
            pl << c.name() << ' ' << x * site_w << ' ' << y * row_h
               << " : N" << (c.fixed() ? " /FIXED" : "") << "\n";
        }
    }
    {
        std::ofstream nets(fs::path(dir) / (design + ".nets"));
        nets << "UCLA nets 1.0\n";
        nets << "NumNets : " << db.nets().size() << "\n";
        nets << "NumPins : " << db.pins().size() << "\n";
        for (const Net& n : db.nets()) {
            nets << "NetDegree : " << n.degree() << ' ' << n.name() << "\n";
            for (const PinId pid : n.pins()) {
                const Pin& p = db.pin(pid);
                const Cell& c = db.cell(p.cell);
                const double dx =
                    (p.offset_x - static_cast<double>(c.width()) / 2.0) *
                    site_w;
                const double dy =
                    (p.offset_y - static_cast<double>(c.height()) / 2.0) *
                    row_h;
                nets << "  " << c.name() << " B : " << dx << ' ' << dy
                     << "\n";
            }
        }
    }
    {
        std::ofstream scl(fs::path(dir) / (design + ".scl"));
        scl << "UCLA scl 1.0\n";
        scl << "NumRows : " << db.floorplan().num_rows() << "\n";
        for (const Row& r : db.floorplan().rows()) {
            scl << "CoreRow Horizontal\n";
            scl << "  Coordinate : " << static_cast<double>(r.y) * row_h
                << "\n";
            scl << "  Height : " << row_h << "\n";
            scl << "  Sitewidth : " << site_w << "\n";
            scl << "  Sitespacing : " << site_w << "\n";
            scl << "  Siteorient : 1\n";
            scl << "  Sitesymmetry : 1\n";
            scl << "  SubrowOrigin : " << static_cast<double>(r.x) * site_w
                << "  NumSites : " << r.num_sites << "\n";
        scl << "End\n";
        }
    }
}

}  // namespace mrlg
