#include "io/benchmark_gen.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "db/segment.hpp"
#include "legalize/greedy.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

SiteCoord sample_width(Rng& rng, SiteCoord lo, SiteCoord hi) {
    return static_cast<SiteCoord>(rng.uniform(lo, hi));
}

/// Net degree distribution loosely matching real netlists (most nets are
/// 2-3 pins, a thin tail of wider fanout).
std::size_t sample_degree(Rng& rng) {
    const double u = rng.uniform01();
    if (u < 0.50) return 2;
    if (u < 0.72) return 3;
    if (u < 0.84) return 4;
    if (u < 0.91) return 5;
    if (u < 0.95) return 6;
    return static_cast<std::size_t>(rng.uniform(7, 12));
}

}  // namespace

GenResult generate_benchmark(const GenProfile& p) {
    GridWriteScope grid_write;
    Rng rng(p.seed);

    // ---- cells -----------------------------------------------------------
    std::vector<Cell> protos;
    protos.reserve(p.num_single + p.num_double);
    std::int64_t cell_area = 0;
    for (std::size_t i = 0; i < p.num_single; ++i) {
        const SiteCoord w = sample_width(rng, p.single_w_min, p.single_w_max);
        protos.emplace_back("s" + std::to_string(i), w, 1);
        cell_area += w;
    }
    for (std::size_t i = 0; i < p.num_double; ++i) {
        const SiteCoord w = sample_width(rng, p.double_w_min, p.double_w_max);
        // All double-height cells share one rail phase, as a real library
        // would (paper §2: even-height cells restricted to alternate rows).
        protos.emplace_back("d" + std::to_string(i), w, 2, RailPhase::kEven);
        cell_area += 2 * w;
    }
    for (std::size_t i = 0; i < p.num_triple; ++i) {
        const SiteCoord w = sample_width(rng, p.double_w_min, p.double_w_max);
        protos.emplace_back("t" + std::to_string(i), w, 3, RailPhase::kEven);
        cell_area += 3 * w;
    }
    for (std::size_t i = 0; i < p.num_quad; ++i) {
        const SiteCoord w = sample_width(rng, p.double_w_min, p.double_w_max);
        protos.emplace_back("q" + std::to_string(i), w, 4, RailPhase::kEven);
        cell_area += 4 * w;
    }

    // ---- die -------------------------------------------------------------
    MRLG_ASSERT(p.density > 0.0 && p.density < 0.96,
                "density must be in (0, 0.96)");
    const double free_needed =
        static_cast<double>(cell_area) / p.density;
    const double die_area = free_needed / (1.0 - p.blockage_area_frac);
    SiteCoord rows = static_cast<SiteCoord>(
        std::ceil(std::sqrt(die_area / p.aspect_sites_per_row)));
    rows = std::max<SiteCoord>(rows, 8);
    if (rows % 2 != 0) {
        ++rows;  // even row count keeps both parities equally available
    }
    const SiteCoord sites = static_cast<SiteCoord>(
        std::ceil(die_area / static_cast<double>(rows)));
    Floorplan fp(rows, sites, p.site_w_um, p.site_h_um);

    // ---- blockages ---------------------------------------------------------
    if (p.num_blockages > 0 && p.blockage_area_frac > 0.0) {
        const double per_blockage =
            p.blockage_area_frac * die_area /
            static_cast<double>(p.num_blockages);
        for (int b = 0; b < p.num_blockages; ++b) {
            SiteCoord bh = static_cast<SiteCoord>(std::clamp<std::int64_t>(
                rng.uniform(rows / 8, rows / 3), 2, rows - 2));
            SiteCoord bw = static_cast<SiteCoord>(std::clamp<std::int64_t>(
                static_cast<std::int64_t>(per_blockage /
                                          static_cast<double>(bh)),
                4, sites / 2));
            const SiteCoord bx = static_cast<SiteCoord>(
                rng.uniform(0, std::max<std::int64_t>(0, sites - bw)));
            const SiteCoord by = static_cast<SiteCoord>(
                rng.uniform(0, std::max<std::int64_t>(0, rows - bh)));
            fp.add_blockage(Rect{bx, by, bw, bh});
        }
    }

    Database db(std::move(fp));
    for (Cell& c : protos) {
        db.add_cell(std::move(c));
    }

    // Fence region 1: a right-edge strip with matching internal density;
    // the last `fence_cell_frac` of each height class becomes a member.
    if (p.fence_cell_frac > 0.0) {
        std::int64_t member_area = 0;
        const std::size_t num_members = static_cast<std::size_t>(
            p.fence_cell_frac * static_cast<double>(db.num_cells()));
        for (std::size_t i = db.num_cells() - num_members;
             i < db.num_cells(); ++i) {
            Cell& c = db.cell(CellId{static_cast<CellId::underlying>(i)});
            c.set_region(1);
            member_area +=
                static_cast<std::int64_t>(c.width()) * c.height();
        }
        const SiteCoord die_rows0 = db.floorplan().num_rows();
        const SiteCoord die_sites0 = db.floorplan().die().w;
        SiteCoord strip_w = static_cast<SiteCoord>(
            std::ceil(static_cast<double>(member_area) / p.density /
                      static_cast<double>(die_rows0)));
        strip_w = std::min<SiteCoord>(strip_w, die_sites0 / 2);
        db.floorplan().add_fence(
            1, Rect{static_cast<SiteCoord>(die_sites0 - strip_w), 0,
                    strip_w, die_rows0});
    }

    // ---- hidden legal packing → GP positions --------------------------------
    // Seed a uniform scatter and run the greedy (Tetris) legalizer; the
    // result is a well-distributed legal placement.
    SegmentGrid grid = SegmentGrid::build(db);
    const SiteCoord die_rows = db.floorplan().num_rows();
    const SiteCoord die_sites = db.floorplan().die().w;
    for (const CellId c : db.movable_cells()) {
        Cell& cell = db.cell(c);
        // Scatter within the cell's own fence region (the whole die for
        // core cells) so the packing converges.
        double x_lo = 0.0;
        double x_hi = static_cast<double>(die_sites);
        if (cell.region() != 0) {
            for (const Floorplan::Fence& f : db.floorplan().fences()) {
                if (f.region == cell.region()) {
                    x_lo = static_cast<double>(f.rect.x);
                    x_hi = static_cast<double>(f.rect.x_hi());
                    break;
                }
            }
        }
        cell.set_gp(x_lo + rng.uniform01() *
                               (x_hi - x_lo -
                                static_cast<double>(cell.width())),
                    rng.uniform01() *
                        static_cast<double>(die_rows - cell.height()));
    }
    GreedyOptions gopts;
    gopts.order = GreedyOptions::Order::kAreaDescending;
    const GreedyStats gstats = greedy_legalize(db, grid, gopts);
    GenResult result{Database(), gstats.success};
    if (!gstats.success) {
        MRLG_LOG(kWarn) << "generator packing left " << gstats.unplaced
                        << " cells unplaced (density too high?)";
    }

    // ---- netlist (before noise, from the legal packing) ---------------------
    // Spatial buckets over cell centres.
    const SiteCoord bucket = std::max<SiteCoord>(p.net_radius, 8);
    // Rows are much coarser than sites, so y uses a finer bucket to get
    // genuine two-dimensional locality.
    const SiteCoord bucket_y = std::max<SiteCoord>(2, bucket / 8);
    std::unordered_map<std::int64_t, std::vector<CellId>> buckets;
    auto bucket_key = [&](SiteCoord x, SiteCoord y) {
        return (static_cast<std::int64_t>(x / bucket) << 32) |
               static_cast<std::int64_t>(
                   static_cast<std::uint32_t>(y / bucket_y));
    };
    std::vector<CellId> placed_cells;
    for (const CellId c : db.movable_cells()) {
        const Cell& cell = db.cell(c);
        if (cell.placed()) {
            buckets[bucket_key(cell.x(), cell.y())].push_back(c);
            placed_cells.push_back(c);
        }
    }
    const std::size_t num_nets = static_cast<std::size_t>(
        p.nets_per_cell * static_cast<double>(placed_cells.size()));
    for (std::size_t n = 0; n < num_nets && !placed_cells.empty(); ++n) {
        const CellId seed = placed_cells[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(placed_cells.size()) - 1))];
        const Cell& sc = db.cell(seed);
        // Candidate pool: 3x3 bucket neighbourhood around the seed.
        std::vector<CellId> pool;
        for (SiteCoord dx = -1; dx <= 1; ++dx) {
            for (SiteCoord dy = -1; dy <= 1; ++dy) {
                const auto it = buckets.find(bucket_key(
                    sc.x() + dx * bucket, sc.y() + dy * bucket_y));
                if (it != buckets.end()) {
                    pool.insert(pool.end(), it->second.begin(),
                                it->second.end());
                }
            }
        }
        const std::size_t degree = sample_degree(rng);
        std::vector<CellId> members{seed};
        for (std::size_t k = 1; k < degree; ++k) {
            const auto& src = pool.size() > 1 ? pool : placed_cells;
            const CellId cand = src[static_cast<std::size_t>(rng.uniform(
                0, static_cast<std::int64_t>(src.size()) - 1))];
            if (std::find(members.begin(), members.end(), cand) ==
                members.end()) {
                members.push_back(cand);
            }
        }
        if (members.size() < 2) {
            continue;
        }
        const NetId net = db.add_net("n" + std::to_string(n));
        for (const CellId m : members) {
            const Cell& mc = db.cell(m);
            const double ox =
                (0.1 + 0.8 * rng.uniform01()) *
                static_cast<double>(mc.width());
            const double oy =
                (0.1 + 0.8 * rng.uniform01()) *
                static_cast<double>(mc.height());
            db.add_pin(m, net, ox, oy);
        }
    }

    // ---- GP = legal + noise; then unplace -----------------------------------
    for (const CellId c : db.movable_cells()) {
        Cell& cell = db.cell(c);
        if (!cell.placed()) {
            continue;  // keep the scatter position as gp
        }
        const double sigma_y =
            cell.even_height() ? p.gp_sigma_y_double : p.gp_sigma_y;
        const double gx = std::clamp(
            static_cast<double>(cell.x()) + rng.normal(0.0, p.gp_sigma_x),
            0.0, static_cast<double>(die_sites - cell.width()));
        const double gy = std::clamp(
            static_cast<double>(cell.y()) + rng.normal(0.0, sigma_y),
            0.0, static_cast<double>(die_rows - cell.height()));
        cell.set_gp(gx, gy);
        grid.remove(db, c);
    }

    result.db = std::move(db);
    return result;
}

}  // namespace mrlg
