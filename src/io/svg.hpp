#pragma once
/// \file svg.hpp
/// SVG renderings of a placement — the debugging view every placement
/// project grows sooner or later. Rows, blockages and cells are drawn to
/// scale; cells are coloured by row height, and displacement arrows from
/// the global-placement position can be overlaid.

#include <string>

#include "db/database.hpp"

namespace mrlg {

struct SvgOptions {
    double px_per_site = 4.0;   ///< Horizontal pixels per site.
    double px_per_row = 14.0;   ///< Vertical pixels per row.
    bool draw_gp_arrows = false;
    bool label_cells = false;   ///< Cell names (readable only when few).
    std::size_t max_cells = 200000;  ///< Refuse absurd files.
};

/// Writes the current placement to `path`. Unplaced movable cells are
/// drawn hollow at their gp position. Returns false when the design
/// exceeds max_cells (nothing is written).
bool write_svg(const Database& db, const std::string& path,
               const SvgOptions& opts = {});

}  // namespace mrlg
