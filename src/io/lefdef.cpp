#include "io/lefdef.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/str.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

/// Whitespace tokenizer with ';', '(' and ')' as standalone tokens and
/// '#'-to-end-of-line comments stripped.
std::vector<std::string> tokenize_file(const std::string& path,
                                       const char* what) {
    std::ifstream in(path);
    if (!in) {
        throw LefDefError(std::string("cannot open ") + what + " file: " +
                          path);
    }
    std::vector<std::string> tokens;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        std::string cur;
        auto flush = [&] {
            if (!cur.empty()) {
                tokens.push_back(cur);
                cur.clear();
            }
        };
        for (const char c : line) {
            if (c == ' ' || c == '\t' || c == '\r') {
                flush();
            } else if (c == ';' || c == '(' || c == ')') {
                flush();
                tokens.push_back(std::string(1, c));
            } else {
                cur.push_back(c);
            }
        }
        flush();
    }
    return tokens;
}

/// Cursor over the token stream with checked accessors.
class Cursor {
public:
    Cursor(std::vector<std::string> tokens, const char* what)
        : tokens_(std::move(tokens)), what_(what) {}

    bool done() const { return pos_ >= tokens_.size(); }
    const std::string& peek() const {
        check(!done(), "unexpected end of file");
        return tokens_[pos_];
    }
    std::string next() {
        check(!done(), "unexpected end of file");
        return tokens_[pos_++];
    }
    double next_num() {
        const std::string t = next();
        try {
            return std::stod(t);
        } catch (const std::exception&) {
            fail("expected a number, got '" + t + "'");
        }
    }
    void expect(const std::string& tok) {
        const std::string t = next();
        check(t == tok, "expected '" + tok + "', got '" + t + "'");
    }
    /// Skips tokens until (and including) the next ';'.
    void skip_statement() {
        while (!done() && next() != ";") {
        }
    }
    void check(bool ok, const std::string& msg) const {
        if (!ok) {
            fail(msg);
        }
    }
    [[noreturn]] void fail(const std::string& msg) const {
        std::ostringstream oss;
        oss << what_ << " parse error near token " << pos_ << ": " << msg;
        throw LefDefError(oss.str());
    }

private:
    std::vector<std::string> tokens_;
    std::size_t pos_ = 0;
    const char* what_;
};

/// Simple glob: '*' matches any suffix (the form ISPD GROUPS use).
bool pattern_matches(const std::string& pattern, const std::string& name) {
    const std::size_t star = pattern.find('*');
    if (star == std::string::npos) {
        return pattern == name;
    }
    return name.size() >= star &&
           name.compare(0, star, pattern, 0, star) == 0;
}

SiteCoord to_sites(double um, double site_um, const char* ctx) {
    const double v = um / site_um;
    if (std::abs(v - std::round(v)) > 1e-4) {
        throw LefDefError(std::string(ctx) +
                          " is not an integral number of sites");
    }
    return static_cast<SiteCoord>(std::llround(v));
}

}  // namespace

LefLibrary read_lef(const std::string& path) {
    Cursor cur(tokenize_file(path, "LEF"), "LEF");
    LefLibrary lib;
    while (!cur.done()) {
        const std::string tok = cur.next();
        if (tok == "UNITS") {
            // UNITS DATABASE MICRONS <n> ; END UNITS
            while (!cur.done()) {
                const std::string t = cur.next();
                if (t == "END" && !cur.done() && cur.peek() == "UNITS") {
                    cur.next();
                    break;
                }
                if (t == "MICRONS") {
                    lib.dbu_per_micron = cur.next_num();
                }
            }
        } else if (tok == "SITE") {
            const std::string name = cur.next();
            while (true) {
                const std::string t = cur.next();
                if (t == "END" && cur.peek() == name) {
                    cur.next();
                    break;
                }
                if (t == "SIZE") {
                    lib.site_w_um = cur.next_num();
                    cur.expect("BY");
                    lib.site_h_um = cur.next_num();
                }
            }
        } else if (tok == "MACRO") {
            LefMacro macro;
            macro.name = cur.next();
            while (true) {
                const std::string t = cur.next();
                // Bare "END" tokens close nested PORT/OBS blocks; the
                // macro itself closes with "END <name>".
                if (t == "END" && cur.peek() == macro.name) {
                    cur.next();
                    break;
                }
                if (t == "CLASS") {
                    macro.is_core = cur.next() == "CORE";
                } else if (t == "SIZE") {
                    macro.w_um = cur.next_num();
                    cur.expect("BY");
                    macro.h_um = cur.next_num();
                } else if (t == "PIN") {
                    LefPin pin;
                    pin.name = cur.next();
                    bool have_rect = false;
                    while (true) {
                        const std::string pt = cur.next();
                        if (pt == "END" && cur.peek() == pin.name) {
                            cur.next();
                            break;
                        }
                        if (pt == "RECT" && !have_rect) {
                            const double x1 = cur.next_num();
                            const double y1 = cur.next_num();
                            const double x2 = cur.next_num();
                            const double y2 = cur.next_num();
                            pin.offset_x_um = (x1 + x2) / 2.0;
                            pin.offset_y_um = (y1 + y2) / 2.0;
                            have_rect = true;
                        }
                    }
                    macro.pins.emplace(pin.name, pin);
                }
            }
            lib.macros.emplace(macro.name, std::move(macro));
        }
        // Unknown top-level tokens are skipped token-by-token.
    }
    if (lib.site_w_um <= 0 || lib.site_h_um <= 0) {
        throw LefDefError("LEF defines no SITE with a SIZE");
    }
    return lib;
}

DefReadResult read_def(const std::string& path, const LefLibrary& lef) {
    GridWriteScope grid_write;
    Cursor cur(tokenize_file(path, "DEF"), "DEF");
    DefReadResult result;
    double dbu = lef.dbu_per_micron;
    const double site_w = lef.site_w_um;
    const double site_h = lef.site_h_um;

    struct DefRow {
        double x_dbu, y_dbu;
        long num_sites;
    };
    std::vector<DefRow> rows;
    struct DefComp {
        std::string inst, macro, status;
        double x_dbu = 0, y_dbu = 0;
    };
    std::vector<DefComp> comps;
    struct DefRegion {
        std::string name;
        std::vector<std::array<double, 4>> rects;  ///< DBU (x1,y1,x2,y2).
    };
    std::vector<DefRegion> regions;
    struct DefGroup {
        std::vector<std::string> patterns;
        std::string region;
    };
    std::vector<DefGroup> groups;
    struct DefNet {
        std::string name;
        std::vector<std::pair<std::string, std::string>> pins;
    };
    std::vector<DefNet> nets;

    while (!cur.done()) {
        const std::string tok = cur.next();
        if (tok == "DESIGN" && result.design_name.empty()) {
            result.design_name = cur.next();
            cur.skip_statement();
        } else if (tok == "UNITS") {
            cur.expect("DISTANCE");
            cur.expect("MICRONS");
            dbu = cur.next_num();
            cur.skip_statement();
        } else if (tok == "ROW") {
            cur.next();  // row name
            cur.next();  // site name
            DefRow r{};
            r.x_dbu = cur.next_num();
            r.y_dbu = cur.next_num();
            cur.next();  // orient
            r.num_sites = 1;
            if (cur.peek() == "DO") {
                cur.next();
                r.num_sites = static_cast<long>(cur.next_num());
                cur.expect("BY");
                cur.next_num();  // rows in y (1)
            }
            cur.skip_statement();
            rows.push_back(r);
        } else if (tok == "COMPONENTS") {
            cur.next_num();
            cur.expect(";");
            while (cur.peek() == "-") {
                cur.next();
                DefComp c;
                c.inst = cur.next();
                c.macro = cur.next();
                c.status = "UNPLACED";
                while (cur.peek() != ";") {
                    const std::string t = cur.next();
                    if (t == "PLACED" || t == "FIXED") {
                        c.status = t;
                        cur.expect("(");
                        c.x_dbu = cur.next_num();
                        c.y_dbu = cur.next_num();
                        cur.expect(")");
                    }
                }
                cur.expect(";");
                comps.push_back(std::move(c));
            }
            cur.expect("END");
            cur.expect("COMPONENTS");
        } else if (tok == "REGIONS") {
            cur.next_num();
            cur.expect(";");
            while (cur.peek() == "-") {
                cur.next();
                DefRegion r;
                r.name = cur.next();
                while (cur.peek() == "(") {
                    cur.next();
                    const double x1 = cur.next_num();
                    const double y1 = cur.next_num();
                    cur.expect(")");
                    cur.expect("(");
                    const double x2 = cur.next_num();
                    const double y2 = cur.next_num();
                    cur.expect(")");
                    r.rects.push_back({x1, y1, x2, y2});
                }
                cur.skip_statement();
                regions.push_back(std::move(r));
            }
            cur.expect("END");
            cur.expect("REGIONS");
        } else if (tok == "GROUPS") {
            cur.next_num();
            cur.expect(";");
            while (cur.peek() == "-") {
                cur.next();
                DefGroup g;
                cur.next();  // group name
                while (cur.peek() != ";") {
                    const std::string t = cur.next();
                    if (t == "+") {
                        if (cur.next() == "REGION") {
                            g.region = cur.next();
                        }
                    } else {
                        g.patterns.push_back(t);
                    }
                }
                cur.expect(";");
                groups.push_back(std::move(g));
            }
            cur.expect("END");
            cur.expect("GROUPS");
        } else if (tok == "NETS") {
            cur.next_num();
            cur.expect(";");
            while (cur.peek() == "-") {
                cur.next();
                DefNet n;
                n.name = cur.next();
                while (cur.peek() != ";") {
                    if (cur.next() == "(") {
                        const std::string inst = cur.next();
                        const std::string pin = cur.next();
                        cur.expect(")");
                        if (inst != "PIN") {  // die-level I/O pins skipped
                            n.pins.emplace_back(inst, pin);
                        }
                    }
                }
                cur.expect(";");
                nets.push_back(std::move(n));
            }
            cur.expect("END");
            cur.expect("NETS");
        }
    }

    // ---- build the floorplan ------------------------------------------------
    if (rows.empty()) {
        throw LefDefError("DEF has no ROW statements");
    }
    std::sort(rows.begin(), rows.end(),
              [](const DefRow& a, const DefRow& b) {
                  return a.y_dbu < b.y_dbu;
              });
    const double site_w_dbu = site_w * dbu;
    const double site_h_dbu = site_h * dbu;
    const double y0 = rows.front().y_dbu;
    Floorplan fp;
    fp.set_site_dims_um(site_w, site_h);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double expect_y = y0 + static_cast<double>(i) * site_h_dbu;
        if (std::abs(rows[i].y_dbu - expect_y) > 0.5) {
            throw LefDefError("DEF rows are not contiguous/uniform");
        }
        fp.add_row(Row{static_cast<SiteCoord>(i),
                       static_cast<SiteCoord>(
                           std::llround(rows[i].x_dbu / site_w_dbu)),
                       static_cast<SiteCoord>(rows[i].num_sites)});
    }

    // Fence regions.
    int next_region = 1;
    for (const DefRegion& r : regions) {
        const int id = next_region++;
        result.region_ids.emplace(r.name, id);
        for (const auto& q : r.rects) {
            const SiteCoord x1 = static_cast<SiteCoord>(
                std::llround(q[0] / site_w_dbu));
            const SiteCoord y1 = static_cast<SiteCoord>(
                std::llround((q[1] - y0) / site_h_dbu));
            const SiteCoord x2 = static_cast<SiteCoord>(
                std::llround(q[2] / site_w_dbu));
            const SiteCoord y2 = static_cast<SiteCoord>(
                std::llround((q[3] - y0) / site_h_dbu));
            fp.add_fence(id, Rect{x1, y1, static_cast<SiteCoord>(x2 - x1),
                                  static_cast<SiteCoord>(y2 - y1)});
        }
    }

    Database db(std::move(fp));

    // Components.
    for (const DefComp& c : comps) {
        const LefMacro* macro = lef.find_macro(c.macro);
        if (macro == nullptr) {
            throw LefDefError("DEF references unknown macro " + c.macro);
        }
        const SiteCoord w = to_sites(macro->w_um, site_w, "macro width");
        const SiteCoord h = to_sites(macro->h_um, site_h, "macro height");
        Cell cell(c.inst, w, h, RailPhase::kEven,
                  c.status == "FIXED");
        const double gx = c.x_dbu / site_w_dbu;
        const double gy = (c.y_dbu - y0) / site_h_dbu;
        cell.set_gp(gx, gy);
        if (c.status == "FIXED") {
            cell.set_pos(static_cast<SiteCoord>(std::llround(gx)),
                         static_cast<SiteCoord>(std::llround(gy)));
        }
        db.add_cell(std::move(cell));
    }

    // Group membership → cell regions.
    for (const DefGroup& g : groups) {
        const auto rit = result.region_ids.find(g.region);
        if (rit == result.region_ids.end()) {
            continue;
        }
        for (std::size_t i = 0; i < db.num_cells(); ++i) {
            Cell& cell = db.cell(CellId{static_cast<CellId::underlying>(i)});
            for (const std::string& pat : g.patterns) {
                if (pattern_matches(pat, cell.name())) {
                    cell.set_region(rit->second);
                    break;
                }
            }
        }
    }

    // Nets.
    for (const DefNet& n : nets) {
        const NetId net = db.add_net(n.name);
        for (const auto& [inst, pin_name] : n.pins) {
            const CellId cid = db.find_cell(inst);
            if (!cid.valid()) {
                throw LefDefError("NET " + n.name +
                                  " references unknown component " + inst);
            }
            // Pin offset from the LEF macro (centre of the cell if the
            // pin is unknown — robust to trimmed libraries).
            double ox = db.cell(cid).width() / 2.0;
            double oy = db.cell(cid).height() / 2.0;
            // Re-find the macro via the cell's dimensions is ambiguous, so
            // look the component's macro up again by name.
            for (const DefComp& c : comps) {
                if (c.inst == inst) {
                    const LefMacro* macro = lef.find_macro(c.macro);
                    if (macro != nullptr) {
                        const auto pit = macro->pins.find(pin_name);
                        if (pit != macro->pins.end()) {
                            ox = pit->second.offset_x_um / site_w;
                            oy = pit->second.offset_y_um / site_h;
                        }
                    }
                    break;
                }
            }
            db.add_pin(cid, net, ox, oy);
        }
    }

    result.db = std::move(db);
    return result;
}

void write_def(const Database& db, const LefLibrary& lef,
               const std::string& path, const std::string& design) {
    std::ofstream out(path);
    MRLG_ASSERT(static_cast<bool>(out), "cannot open DEF for writing: " +
                                            path);
    const double dbu = lef.dbu_per_micron;
    const double site_w_dbu = lef.site_w_um * dbu;
    const double site_h_dbu = lef.site_h_um * dbu;
    const Rect die = db.floorplan().die();

    out << "VERSION 5.8 ;\nDESIGN " << design << " ;\n"
        << "UNITS DISTANCE MICRONS " << static_cast<long>(dbu) << " ;\n";
    out << "DIEAREA ( " << static_cast<long>(die.x * site_w_dbu) << " 0 ) ( "
        << static_cast<long>(die.x_hi() * site_w_dbu) << " "
        << static_cast<long>(die.h * site_h_dbu) << " ) ;\n";
    for (const Row& r : db.floorplan().rows()) {
        out << "ROW row_" << r.y << " core "
            << static_cast<long>(r.x * site_w_dbu) << " "
            << static_cast<long>(r.y * site_h_dbu) << " N DO "
            << r.num_sites << " BY 1 STEP "
            << static_cast<long>(site_w_dbu) << " 0 ;\n";
    }
    out << "COMPONENTS " << db.num_cells() << " ;\n";
    for (const Cell& c : db.cells()) {
        out << "- " << c.name() << " " << c.name() << "_master + ";
        if (c.fixed()) {
            out << "FIXED ( " << static_cast<long>(c.x() * site_w_dbu)
                << " " << static_cast<long>(c.y() * site_h_dbu) << " ) N";
        } else if (c.placed()) {
            out << "PLACED ( " << static_cast<long>(c.x() * site_w_dbu)
                << " " << static_cast<long>(c.y() * site_h_dbu) << " ) "
                << (c.orient() == Orient::kN ? "N" : "FS");
        } else {
            out << "UNPLACED";
        }
        out << " ;\n";
    }
    out << "END COMPONENTS\n";
    out << "NETS " << db.nets().size() << " ;\n";
    for (const Net& n : db.nets()) {
        out << "- " << n.name();
        for (const PinId pid : n.pins()) {
            out << " ( " << db.cell(db.pin(pid).cell).name() << " p" << pid
                << " )";
        }
        out << " ;\n";
    }
    out << "END NETS\nEND DESIGN\n";
}

}  // namespace mrlg
