#pragma once
/// \file profiles.hpp
/// The 20 ISPD2015 benchmark profiles of the paper's Table 1 (name,
/// single-/double-row cell counts, design density), plus the paper's
/// published results for side-by-side reporting in the bench harness and
/// EXPERIMENTS.md.

#include <vector>

#include "io/benchmark_gen.hpp"

namespace mrlg {

/// Published Table 1 numbers for one benchmark (aligned experiment).
struct Table1Paper {
    double gp_hpwl_m;      ///< "GP HPWL(m)".
    double disp_ilp;       ///< Avg displacement (sites), ILP.
    double disp_ours;      ///< Avg displacement (sites), Ours.
    double dhpwl_ilp_pct;  ///< ΔHPWL %, ILP.
    double dhpwl_ours_pct; ///< ΔHPWL %, Ours.
    double rt_ilp_s;       ///< Runtime (s), ILP.
    double rt_ours_s;      ///< Runtime (s), Ours.
};

struct Table1Entry {
    GenProfile profile;   ///< Generator profile at scale 1.0.
    Table1Paper paper;    ///< Power-line-aligned published results.
};

/// All 20 Table 1 rows. `scale` scales the cell counts (1.0 = paper size;
/// benches default to a laptop-friendly fraction). Counts are floored at
/// 400 single / 40 double cells so small scales stay meaningful.
std::vector<Table1Entry> table1_benchmarks(double scale = 1.0);

/// The synthetic thread-scaling design family shared by bench_parallel
/// and tools/mrlg_profile: parallel_s (2.2k cells), parallel_m (8.8k),
/// parallel_l (26.4k), generator seed 11 + `seed_offset`. Returns false
/// when `name` is not one of the family (out is untouched).
bool parallel_profile(const std::string& name, double scale,
                      int seed_offset, GenProfile& out);

/// The family's names, smallest design first.
std::vector<std::string> parallel_profile_names();

}  // namespace mrlg
