#pragma once
/// \file lefdef.hpp
/// LEF/DEF-lite reader and DEF writer — the formats the ISPD2015 contest
/// actually shipped (the paper's §6 benchmarks). This is deliberately a
/// subset: enough grammar to ingest a detailed-placement benchmark and
/// emit a legal DEF back.
///
/// Supported LEF:  UNITS DATABASE MICRONS, SITE (SIZE), MACRO (CLASS,
///   SIZE, PIN/PORT/RECT — pin offset = centre of the first rect).
/// Supported DEF:  VERSION, DESIGN, UNITS, DIEAREA, ROW, COMPONENTS
///   (PLACED / FIXED / UNPLACED), REGIONS + GROUPS (fence regions), NETS
///   (component pins only; PIN-to-die I/O pins are skipped).
///
/// Geometry is converted to mrlg's site units on load: LEF sizes must be
/// integral multiples of the site; DEF placements snap from DBU.

#include <string>
#include <unordered_map>

#include "db/database.hpp"

namespace mrlg {

struct LefPin {
    std::string name;
    double offset_x_um = 0.0;  ///< From macro lower-left.
    double offset_y_um = 0.0;
};

struct LefMacro {
    std::string name;
    double w_um = 0.0;
    double h_um = 0.0;
    bool is_core = true;
    std::unordered_map<std::string, LefPin> pins;
};

struct LefLibrary {
    double site_w_um = 0.0;
    double site_h_um = 0.0;
    double dbu_per_micron = 1000.0;
    std::unordered_map<std::string, LefMacro> macros;

    const LefMacro* find_macro(const std::string& name) const {
        const auto it = macros.find(name);
        return it == macros.end() ? nullptr : &it->second;
    }
};

/// Parses the LEF subset. Throws ParseError (from bookshelf.hpp's family —
/// re-declared here to avoid the include) on malformed input.
class LefDefError : public std::runtime_error {
public:
    explicit LefDefError(const std::string& msg)
        : std::runtime_error(msg) {}
};

LefLibrary read_lef(const std::string& path);

struct DefReadResult {
    Database db;
    std::string design_name;
    /// DEF group name → mrlg region id (>= 1).
    std::unordered_map<std::string, int> region_ids;
};

/// Parses the DEF subset against `lef`. Component positions become gp
/// positions (and fixed cells are frozen); REGIONS/GROUPS become fence
/// regions. The caller still runs Database::freeze_fixed_cells().
DefReadResult read_def(const std::string& path, const LefLibrary& lef);

/// Writes the current placement as DEF (components PLACED at legalized
/// positions, or UNPLACED when a movable cell has none).
void write_def(const Database& db, const LefLibrary& lef,
               const std::string& path, const std::string& design);

}  // namespace mrlg
