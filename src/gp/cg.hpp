#pragma once
/// \file cg.hpp
/// Sparse symmetric positive-definite linear algebra for the quadratic
/// placer: COO-assembled matrix + Jacobi-preconditioned conjugate gradient.

#include <cstddef>
#include <vector>

namespace mrlg::gp {

/// Symmetric sparse matrix assembled from (i, j, v) triplets; only the
/// structure needed by CG (matrix-vector product) is provided.
class SpdMatrix {
public:
    explicit SpdMatrix(std::size_t n) : n_(n), diag_(n, 0.0) {}

    std::size_t size() const { return n_; }

    /// Adds v to A[i][j] and A[j][i] (i != j), typically negative laplacian
    /// off-diagonals.
    void add_offdiag(std::size_t i, std::size_t j, double v);
    /// Adds v to A[i][i].
    void add_diag(std::size_t i, double v) { diag_[i] += v; }

    /// Finalizes assembly (sorts/merges triplets). Must be called before
    /// multiply().
    void finalize();

    /// y = A x.
    void multiply(const std::vector<double>& x,
                  std::vector<double>& y) const;

    const std::vector<double>& diag() const { return diag_; }

private:
    struct Entry {
        std::size_t i;
        std::size_t j;
        double v;
    };
    std::size_t n_;
    std::vector<double> diag_;
    std::vector<Entry> off_;  ///< Upper triangle (i < j) after finalize.
    bool finalized_ = false;
};

struct CgResult {
    int iterations = 0;
    double residual = 0.0;
};

/// Solves A x = b by Jacobi-PCG, starting from the passed-in x.
CgResult solve_pcg(const SpdMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, int max_iters = 300,
                   double tol = 1e-6);

}  // namespace mrlg::gp
