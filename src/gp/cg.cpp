#include "gp/cg.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mrlg::gp {

void SpdMatrix::add_offdiag(std::size_t i, std::size_t j, double v) {
    MRLG_ASSERT(i < n_ && j < n_ && i != j, "bad off-diagonal index");
    if (i > j) {
        std::swap(i, j);
    }
    off_.push_back(Entry{i, j, v});
    finalized_ = false;
}

void SpdMatrix::finalize() {
    std::sort(off_.begin(), off_.end(), [](const Entry& a, const Entry& b) {
        return a.i < b.i || (a.i == b.i && a.j < b.j);
    });
    std::vector<Entry> merged;
    merged.reserve(off_.size());
    for (const Entry& e : off_) {
        if (!merged.empty() && merged.back().i == e.i &&
            merged.back().j == e.j) {
            merged.back().v += e.v;
        } else {
            merged.push_back(e);
        }
    }
    off_ = std::move(merged);
    finalized_ = true;
}

void SpdMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
    MRLG_ASSERT(finalized_, "finalize() before multiply()");
    MRLG_ASSERT(x.size() == n_, "dimension mismatch");
    y.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        y[i] = diag_[i] * x[i];
    }
    for (const Entry& e : off_) {
        y[e.i] += e.v * x[e.j];
        y[e.j] += e.v * x[e.i];
    }
}

CgResult solve_pcg(const SpdMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, int max_iters, double tol) {
    const std::size_t n = a.size();
    MRLG_ASSERT(b.size() == n, "rhs dimension mismatch");
    if (x.size() != n) {
        x.assign(n, 0.0);
    }
    std::vector<double> r(n);
    std::vector<double> z(n);
    std::vector<double> p(n);
    std::vector<double> ap(n);

    a.multiply(x, ap);
    double bnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - ap[i];
        bnorm += b[i] * b[i];
    }
    bnorm = std::sqrt(std::max(bnorm, 1e-30));

    auto precond = [&](const std::vector<double>& rin,
                       std::vector<double>& zout) {
        for (std::size_t i = 0; i < n; ++i) {
            const double d = a.diag()[i];
            zout[i] = d > 1e-12 ? rin[i] / d : rin[i];
        }
    };

    precond(r, z);
    p = z;
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        rz += r[i] * z[i];
    }

    CgResult result;
    for (int it = 0; it < max_iters; ++it) {
        a.multiply(p, ap);
        double pap = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            pap += p[i] * ap[i];
        }
        if (std::abs(pap) < 1e-30) {
            break;
        }
        const double alpha = rz / pap;
        double rnorm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            rnorm += r[i] * r[i];
        }
        result.iterations = it + 1;
        result.residual = std::sqrt(rnorm) / bnorm;
        if (result.residual < tol) {
            break;
        }
        precond(r, z);
        double rz_new = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            rz_new += r[i] * z[i];
        }
        const double beta = rz_new / rz;
        rz = rz_new;
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = z[i] + beta * p[i];
        }
    }
    return result;
}

}  // namespace mrlg::gp
