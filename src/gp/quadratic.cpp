#include "gp/quadratic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gp/cg.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "db/write_cap.hpp"

namespace mrlg::gp {

namespace {

struct PinPos {
    int cell_idx;   ///< Movable index, or -1 for fixed.
    double pos;     ///< Pin coordinate in the current dimension.
    double offset;  ///< Pin offset from cell origin in this dimension.
};

/// Adds a B2B connection between two pins of one net.
void connect(SpdMatrix& a, std::vector<double>& b, const PinPos& p,
             const PinPos& q, double w) {
    if (p.cell_idx < 0 && q.cell_idx < 0) {
        return;
    }
    if (p.cell_idx >= 0 && q.cell_idx >= 0) {
        if (p.cell_idx == q.cell_idx) {
            return;  // two pins of the same cell — rigid, no force
        }
        const auto i = static_cast<std::size_t>(p.cell_idx);
        const auto j = static_cast<std::size_t>(q.cell_idx);
        a.add_diag(i, w);
        a.add_diag(j, w);
        a.add_offdiag(i, j, -w);
        b[i] += w * (q.offset - p.offset);
        b[j] += w * (p.offset - q.offset);
        return;
    }
    const PinPos& mov = p.cell_idx >= 0 ? p : q;
    const PinPos& fix = p.cell_idx >= 0 ? q : p;
    const auto i = static_cast<std::size_t>(mov.cell_idx);
    a.add_diag(i, w);
    b[i] += w * (fix.pos - mov.offset);
}

}  // namespace

QuadraticStats quadratic_place(Database& db, const QuadraticOptions& opts) {
    GridWriteScope grid_write;
    MRLG_OBS_PHASE("gp.place");
    QuadraticStats stats;
    const Rect die = db.floorplan().die();
    const double die_x0 = static_cast<double>(die.x);
    const double die_x1 = static_cast<double>(die.x_hi());
    const double die_y0 = 0.0;
    const double die_y1 = static_cast<double>(db.floorplan().num_rows());

    // Movable index mapping.
    const std::vector<CellId> movable = db.movable_cells();
    const std::size_t n = movable.size();
    if (n == 0) {
        return stats;
    }
    std::vector<int> idx_of(db.num_cells(), -1);
    for (std::size_t i = 0; i < n; ++i) {
        idx_of[movable[i].index()] = static_cast<int>(i);
    }

    // Current positions (cell origins).
    std::vector<double> x(n);
    std::vector<double> y(n);
    Rng rng(opts.seed);
    for (std::size_t i = 0; i < n; ++i) {
        const Cell& c = db.cell(movable[i]);
        // Start from existing gp if sensible, else a centre-biased scatter.
        if (c.gp_x() != 0.0 || c.gp_y() != 0.0) {
            x[i] = c.gp_x();
            y[i] = c.gp_y();
        } else {
            x[i] = die_x0 + (0.3 + 0.4 * rng.uniform01()) * (die_x1 - die_x0);
            y[i] = die_y0 + (0.3 + 0.4 * rng.uniform01()) * (die_y1 - die_y0);
        }
    }

    // Spreading targets via 1-D area-CDF flattening: map each coordinate so
    // that cell area is uniform along the axis, then blend with the current
    // position. Cheap, stable, good enough to de-cluster a quadratic
    // solution.
    const double bin_w = std::max(4.0, opts.bin_rows *
                                           db.floorplan().site_h_um() /
                                           db.floorplan().site_w_um());
    auto flatten_targets = [&](const std::vector<double>& pos, double lo,
                               double hi, std::vector<double>& target,
                               double blend) {
        const int nbins = std::max(
            4, static_cast<int>((hi - lo) / bin_w));
        std::vector<double> area(static_cast<std::size_t>(nbins), 0.0);
        auto bin_of = [&](double v) {
            int bi = static_cast<int>((v - lo) / (hi - lo) *
                                      static_cast<double>(nbins));
            return std::clamp(bi, 0, nbins - 1);
        };
        for (std::size_t i = 0; i < n; ++i) {
            const Cell& c = db.cell(movable[i]);
            area[static_cast<std::size_t>(bin_of(pos[i]))] +=
                static_cast<double>(c.width()) *
                static_cast<double>(c.height());
        }
        std::vector<double> cdf(static_cast<std::size_t>(nbins) + 1, 0.0);
        for (int bi = 0; bi < nbins; ++bi) {
            cdf[static_cast<std::size_t>(bi) + 1] =
                cdf[static_cast<std::size_t>(bi)] +
                area[static_cast<std::size_t>(bi)];
        }
        const double total = std::max(cdf.back(), 1e-9);
        target.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            const int bi = bin_of(pos[i]);
            const double within =
                (pos[i] - (lo + (hi - lo) * bi / nbins)) /
                ((hi - lo) / nbins);
            const double cum =
                (cdf[static_cast<std::size_t>(bi)] +
                 std::clamp(within, 0.0, 1.0) *
                     area[static_cast<std::size_t>(bi)]) /
                total;
            const double flat = lo + cum * (hi - lo);
            target[i] = blend * flat + (1.0 - blend) * pos[i];
        }
    };

    double anchor_w = opts.anchor_weight0;
    for (int iter = 0; iter < opts.iterations; ++iter) {
        MRLG_OBS_PHASE("gp.iteration");
        MRLG_OBS_COUNT("gp.iterations", 1);
        for (int dim = 0; dim < 2; ++dim) {
            std::vector<double>& pos = dim == 0 ? x : y;
            const double lo = dim == 0 ? die_x0 : die_y0;
            const double hi = dim == 0 ? die_x1 : die_y1;

            SpdMatrix a(n);
            std::vector<double> b(n, 0.0);

            // B2B net model at current positions.
            for (const Net& net : db.nets()) {
                if (net.degree() < 2) {
                    continue;
                }
                std::vector<PinPos> pins;
                pins.reserve(net.degree());
                for (const PinId pid : net.pins()) {
                    const Pin& pin = db.pin(pid);
                    const Cell& c = db.cell(pin.cell);
                    const double off =
                        dim == 0 ? pin.offset_x : pin.offset_y;
                    double base;
                    const int mi = c.fixed() ? -1 : idx_of[pin.cell.index()];
                    if (mi >= 0) {
                        base = pos[static_cast<std::size_t>(mi)];
                    } else {
                        base = dim == 0 ? static_cast<double>(c.x())
                                        : static_cast<double>(c.y());
                    }
                    pins.push_back(PinPos{mi, base + off, off});
                }
                std::size_t lo_i = 0;
                std::size_t hi_i = 0;
                for (std::size_t i = 1; i < pins.size(); ++i) {
                    if (pins[i].pos < pins[lo_i].pos) {
                        lo_i = i;
                    }
                    if (pins[i].pos > pins[hi_i].pos) {
                        hi_i = i;
                    }
                }
                if (lo_i == hi_i) {
                    hi_i = (lo_i + 1) % pins.size();
                }
                const double k = static_cast<double>(pins.size());
                for (std::size_t i = 0; i < pins.size(); ++i) {
                    for (const std::size_t bnd : {lo_i, hi_i}) {
                        if (i == bnd) {
                            continue;
                        }
                        if (i < bnd && i == (bnd == lo_i ? hi_i : lo_i)) {
                            // boundary-boundary pair handled once below
                        }
                        const double d =
                            std::max(std::abs(pins[i].pos - pins[bnd].pos),
                                     0.5);
                        connect(a, b, pins[i], pins[bnd],
                                2.0 / ((k - 1.0) * d));
                    }
                }
            }

            // Spreading anchors (also regularize the system).
            std::vector<double> target;
            const double blend = std::min(0.7, 0.25 + 0.05 * iter);
            flatten_targets(pos, lo, hi, target, iter == 0 ? 0.0 : blend);
            for (std::size_t i = 0; i < n; ++i) {
                a.add_diag(i, anchor_w);
                b[i] += anchor_w * target[i];
            }

            a.finalize();
            solve_pcg(a, b, pos, opts.cg_max_iters);
            for (std::size_t i = 0; i < n; ++i) {
                const Cell& c = db.cell(movable[i]);
                const double extent =
                    dim == 0 ? static_cast<double>(c.width())
                             : static_cast<double>(c.height());
                pos[i] = std::clamp(pos[i], lo, hi - extent);
            }
        }
        anchor_w *= opts.anchor_growth;
        stats.iterations_run = iter + 1;
    }

    // Commit and measure.
    for (std::size_t i = 0; i < n; ++i) {
        db.cell(movable[i]).set_gp(x[i], y[i]);
    }
    // Max bin utilization (reporting only).
    {
        const int nb = 16;
        std::vector<double> area(static_cast<std::size_t>(nb * nb), 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const Cell& c = db.cell(movable[i]);
            const int bx = std::clamp(
                static_cast<int>((x[i] - die_x0) / (die_x1 - die_x0) * nb),
                0, nb - 1);
            const int by = std::clamp(
                static_cast<int>((y[i] - die_y0) / (die_y1 - die_y0) * nb),
                0, nb - 1);
            area[static_cast<std::size_t>(by * nb + bx)] +=
                static_cast<double>(c.width()) *
                static_cast<double>(c.height());
        }
        const double bin_cap = (die_x1 - die_x0) * (die_y1 - die_y0) /
                               static_cast<double>(nb * nb);
        for (const double v : area) {
            stats.final_max_util = std::max(stats.final_max_util,
                                            v / bin_cap);
        }
    }
    // HPWL of the produced GP (microns).
    {
        const double sw = db.floorplan().site_w_um();
        const double sh = db.floorplan().site_h_um();
        double total = 0.0;
        for (const Net& net : db.nets()) {
            if (net.degree() < 2) {
                continue;
            }
            double xl = std::numeric_limits<double>::max();
            double xh = std::numeric_limits<double>::lowest();
            double yl = xl;
            double yh = xh;
            for (const PinId pid : net.pins()) {
                const Pin& pin = db.pin(pid);
                const Cell& c = db.cell(pin.cell);
                const double px =
                    (c.fixed() ? static_cast<double>(c.x()) : c.gp_x()) +
                    pin.offset_x;
                const double py =
                    (c.fixed() ? static_cast<double>(c.y()) : c.gp_y()) +
                    pin.offset_y;
                xl = std::min(xl, px);
                xh = std::max(xh, px);
                yl = std::min(yl, py);
                yh = std::max(yh, py);
            }
            total += (xh - xl) * sw + (yh - yl) * sh;
        }
        stats.hpwl_um = total;
    }
    return stats;
}

}  // namespace mrlg::gp
