#pragma once
/// \file quadratic.hpp
/// Bound-to-bound (B2B) quadratic global placer with iterative density
/// spreading — the substrate standing in for the contest global placer the
/// paper's Table 1 inputs came from (see DESIGN.md substitutions).
///
/// Each iteration rebuilds the B2B net model at the current positions,
/// adds spreading anchors derived from per-bin utilization, and solves the
/// two independent 1-D systems with Jacobi-PCG. The result is written to
/// Cell::gp_x / gp_y (fractional site units): a well-distributed,
/// overlapping, off-site placement — exactly what legalization consumes.

#include "db/database.hpp"

namespace mrlg::gp {

struct QuadraticOptions {
    int iterations = 12;          ///< Outer placement/spreading rounds.
    int cg_max_iters = 200;
    double anchor_weight0 = 0.02; ///< Spreading anchor weight, first round.
    double anchor_growth = 1.35;  ///< Multiplied each round.
    double bin_rows = 4.0;        ///< Bin height in rows.
    double target_util = 0.9;     ///< Bin utilization ceiling for spreading.
    std::uint64_t seed = 7;       ///< Initial scatter when no fixed pins.
};

struct QuadraticStats {
    int iterations_run = 0;
    double final_max_util = 0.0;  ///< Max bin utilization at exit.
    double hpwl_um = 0.0;         ///< HPWL of the produced GP.
};

/// Runs the placer over all movable cells of `db`, using nets for
/// attraction and fixed cells as anchors. Overwrites gp positions.
QuadraticStats quadratic_place(Database& db,
                               const QuadraticOptions& opts = {});

}  // namespace mrlg::gp
