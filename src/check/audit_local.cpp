#include "check/audit_local.hpp"

#include <algorithm>
#include <sstream>

namespace mrlg {

namespace {

std::string lr_who(const Database& db, CellId id) {
    std::ostringstream os;
    os << "cell '" << db.cell(id).name() << "' (#" << id << ")";
    return os.str();
}

}  // namespace

AuditReport audit_local_region(const Database& db, const SegmentGrid& grid,
                               const LocalRegion& region, int fence_region) {
    AuditReport r;
    r.scope = "local-region";
    const std::vector<CellId>& locals = region.local_cells();

    if (!std::is_sorted(locals.begin(), locals.end()) ||
        std::adjacent_find(locals.begin(), locals.end()) != locals.end()) {
        r.add("lr-locals-sorted",
              "local_cells() not sorted or contains duplicates");
    }
    const auto is_local = [&](CellId c) {
        return std::binary_search(locals.begin(), locals.end(), c);
    };

    std::size_t listed = 0;
    for (int k = 0; k < region.height(); ++k) {
        if (!region.has_row(k)) {
            continue;
        }
        const LocalRow& row = region.row(k);
        const SiteCoord y = region.y0() + static_cast<SiteCoord>(k);
        if (row.y != y) {
            std::ostringstream os;
            os << "local row " << k << " claims absolute row " << row.y
               << ", expected " << y;
            r.add("lr-row-index", os.str());
        }
        if (row.span.empty()) {
            std::ostringstream os;
            os << "local row " << k << " has empty span " << row.span;
            r.add("lr-span", os.str());
        }
        if (!region.window().x_span().contains(row.span)) {
            std::ostringstream os;
            os << "local row " << k << " span " << row.span
               << " leaves the window " << region.window().x_span();
            r.add("lr-span", os.str());
        }
        if (!row.global_segment.valid()) {
            std::ostringstream os;
            os << "local row " << k << " has no enclosing segment";
            r.add("lr-segment", os.str());
            continue;
        }
        const Segment& seg = grid.segment(row.global_segment);
        if (seg.y != row.y || !seg.span.contains(row.span) ||
            seg.region != fence_region) {
            std::ostringstream os;
            os << "local row " << k << " span " << row.span
               << " not enclosed by segment #" << seg.id << " (row " << seg.y
               << " span " << seg.span << " region " << seg.region << ")";
            r.add("lr-segment", os.str());
        }

        SiteCoord prev_end = row.span.lo;
        for (const CellId cid : row.cells) {
            const Cell& c = db.cell(cid);
            ++listed;
            if (!c.placed()) {
                r.add("lr-cell-placed",
                      "unplaced " + lr_who(db, cid) + " listed as local");
                continue;
            }
            if (c.y() > row.y || c.y() + c.height() <= row.y) {
                std::ostringstream os;
                os << lr_who(db, cid) << " does not cross local row " << k;
                r.add("lr-cell-row", os.str());
            }
            if (c.x() < row.span.lo || c.x() + c.width() > row.span.hi) {
                std::ostringstream os;
                os << lr_who(db, cid) << " outside local row " << k
                   << " span " << row.span;
                r.add("lr-cell-span", os.str());
            }
            if (!region.window().contains(c.rect())) {
                r.add("lr-cell-window",
                      lr_who(db, cid) + " not fully inside the window");
            }
            if (c.x() < prev_end) {
                r.add("lr-cell-order",
                      "overlap or order violation before " + lr_who(db, cid) +
                          " on local row " + std::to_string(k));
            }
            prev_end = c.x() + c.width();
            if (!is_local(cid)) {
                r.add("lr-locals-list",
                      lr_who(db, cid) + " listed on a row but missing from "
                                        "local_cells()");
            }
        }

        // Frozen non-local cells act as obstacles: none may intersect the
        // chosen span (their sites would have been subtracted in §2.1.3).
        const auto [first, last] = grid.cells_overlapping(db, seg, row.span);
        for (std::size_t i = first; i < last; ++i) {
            const CellId cid = seg.cells[i];
            const Cell& c = db.cell(cid);
            const Span xs{c.x(), c.x() + c.width()};
            if (xs.overlaps(row.span) && !is_local(cid)) {
                std::ostringstream os;
                os << "non-local " << lr_who(db, cid)
                   << " intersects local row " << k << " span " << row.span;
                r.add("lr-nonlocal-free", os.str());
            }
        }
    }

    // Every local cell must be listed on each region row it crosses, and
    // the per-row lists must not mention anyone else.
    std::size_t expected_listed = 0;
    for (const CellId cid : locals) {
        const Cell& c = db.cell(cid);
        if (!c.placed()) {
            r.add("lr-cell-placed",
                  "unplaced " + lr_who(db, cid) + " in local_cells()");
            continue;
        }
        for (SiteCoord y = c.y(); y < c.y() + c.height(); ++y) {
            const int k = region.row_index(y);
            ++expected_listed;
            if (k < 0 || !region.has_row(k)) {
                std::ostringstream os;
                os << lr_who(db, cid) << " crosses row " << y
                   << " which has no local segment";
                r.add("lr-cell-rows", os.str());
                continue;
            }
            const auto& cells = region.row(k).cells;
            if (std::find(cells.begin(), cells.end(), cid) == cells.end()) {
                std::ostringstream os;
                os << lr_who(db, cid) << " missing from local row " << k
                   << "'s cell list";
                r.add("lr-cell-rows", os.str());
            }
        }
    }
    if (listed != expected_listed && !r.has("lr-cell-rows") &&
        !r.has("lr-locals-list")) {
        std::ostringstream os;
        os << "row lists hold " << listed << " entries, expected "
           << expected_listed;
        r.add("lr-cell-rows", os.str());
    }
    return r;
}

AuditReport audit_local_problem(const LocalProblem& lp, bool minmax_filled) {
    AuditReport r;
    r.scope = "local-problem";
    const int n = lp.num_cells();

    for (int k = 0; k < lp.num_rows(); ++k) {
        if (!lp.has_row(k)) {
            continue;
        }
        const LpRow& row = lp.row(k);
        if (row.y != lp.y0() + static_cast<SiteCoord>(k)) {
            std::ostringstream os;
            os << "lp row " << k << " claims absolute row " << row.y;
            r.add("lp-row-index", os.str());
        }
        if (row.span.empty()) {
            std::ostringstream os;
            os << "lp row " << k << " has empty span " << row.span;
            r.add("lp-row-span", os.str());
        }
        SiteCoord prev_end = row.span.lo;
        for (std::size_t pos = 0; pos < row.cells.size(); ++pos) {
            const int i = row.cells[pos];
            if (i < 0 || i >= n) {
                std::ostringstream os;
                os << "lp row " << k << " references invalid cell index "
                   << i;
                r.add("lp-ref", os.str());
                continue;
            }
            const LpCell& c = lp.cell(i);
            if (c.x < row.span.lo || c.x + c.w > row.span.hi) {
                std::ostringstream os;
                os << "lp cell " << i << " outside lp row " << k << " span "
                   << row.span;
                r.add("lp-span", os.str());
            }
            if (c.x < prev_end) {
                std::ostringstream os;
                os << "overlap or order violation before lp cell " << i
                   << " on lp row " << k;
                r.add("lp-order", os.str());
            }
            prev_end = c.x + c.w;
            const int j = k - c.k0;
            if (j < 0 || j >= static_cast<int>(c.pos_in_row.size()) ||
                c.pos_in_row[static_cast<std::size_t>(j)] !=
                    static_cast<int>(pos)) {
                std::ostringstream os;
                os << "lp cell " << i << " pos_in_row inconsistent on lp row "
                   << k;
                r.add("lp-pos", os.str());
            }
        }
    }

    for (int i = 0; i < n; ++i) {
        const LpCell& c = lp.cell(i);
        if (c.w <= 0 || c.h <= 0) {
            std::ostringstream os;
            os << "lp cell " << i << " has non-positive size " << c.w << "x"
               << c.h;
            r.add("lp-cell-geometry", os.str());
        }
        if (c.y != lp.y0() + static_cast<SiteCoord>(c.k0)) {
            std::ostringstream os;
            os << "lp cell " << i << " k0 " << c.k0
               << " disagrees with its row " << c.y;
            r.add("lp-cell-row", os.str());
        }
        if (static_cast<SiteCoord>(c.pos_in_row.size()) != c.h) {
            std::ostringstream os;
            os << "lp cell " << i << " has " << c.pos_in_row.size()
               << " row positions for height " << c.h;
            r.add("lp-pos-size", os.str());
        }
        for (SiteCoord j = 0; j < c.h; ++j) {
            if (!lp.has_row(c.k0 + static_cast<int>(j))) {
                std::ostringstream os;
                os << "lp cell " << i << " crosses absent lp row "
                   << c.k0 + static_cast<int>(j);
                r.add("lp-cell-rows", os.str());
            }
        }
        if (minmax_filled) {
            // §5.1.1: the current (legal) position lies between the
            // leftmost and rightmost packings.
            if (!(c.xl <= c.x && c.x <= c.xr)) {
                std::ostringstream os;
                os << "lp cell " << i << " x " << c.x
                   << " outside min/max bounds [" << c.xl << ", " << c.xr
                   << "]";
                r.add("lp-minmax", os.str());
            }
            for (SiteCoord j = 0; j < c.h; ++j) {
                const int k = c.k0 + static_cast<int>(j);
                if (!lp.has_row(k)) {
                    continue;
                }
                const Span span = lp.row(k).span;
                if (c.xl < span.lo || c.xr + c.w > span.hi) {
                    std::ostringstream os;
                    os << "lp cell " << i << " packing bounds [" << c.xl
                       << ", " << c.xr << "] leave lp row " << k << " span "
                       << span;
                    r.add("lp-minmax-span", os.str());
                }
            }
        }
    }

    if (minmax_filled) {
        // Both packings must preserve each row's cell order without
        // overlap — they are legal placements by construction (Fig. 6).
        for (int k = 0; k < lp.num_rows(); ++k) {
            if (!lp.has_row(k)) {
                continue;
            }
            const auto& cells = lp.row(k).cells;
            for (std::size_t pos = 1; pos < cells.size(); ++pos) {
                const LpCell& a = lp.cell(cells[pos - 1]);
                const LpCell& b = lp.cell(cells[pos]);
                if (a.xl + a.w > b.xl || a.xr + a.w > b.xr) {
                    std::ostringstream os;
                    os << "packing overlap between lp cells "
                       << cells[pos - 1] << " and " << cells[pos]
                       << " on lp row " << k;
                    r.add("lp-minmax-order", os.str());
                }
            }
        }
    }

    // by_x: a permutation of all indices, sorted by (x, index).
    const std::vector<int>& by_x = lp.by_x();
    if (static_cast<int>(by_x.size()) != n) {
        r.add("lp-by-x", "by_x() is not a permutation of the cell indices");
    } else {
        std::vector<bool> seen(static_cast<std::size_t>(n), false);
        bool order_ok = true;
        for (std::size_t pos = 0; pos < by_x.size(); ++pos) {
            const int i = by_x[pos];
            if (i < 0 || i >= n || seen[static_cast<std::size_t>(i)]) {
                r.add("lp-by-x",
                      "by_x() is not a permutation of the cell indices");
                order_ok = false;
                break;
            }
            seen[static_cast<std::size_t>(i)] = true;
            if (pos > 0) {
                const LpCell& a = lp.cell(by_x[pos - 1]);
                const LpCell& b = lp.cell(i);
                if (a.x > b.x || (a.x == b.x && by_x[pos - 1] > i)) {
                    order_ok = false;
                }
            }
        }
        if (!order_ok && !r.has("lp-by-x")) {
            r.add("lp-by-x", "by_x() not sorted by (x, index)");
        }
    }
    return r;
}

}  // namespace mrlg
