#include "check/audit.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "eval/legality.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mrlg {

const char* to_string(AuditLevel level) {
    switch (level) {
        case AuditLevel::kOff:
            return "off";
        case AuditLevel::kCheap:
            return "cheap";
        case AuditLevel::kFull:
            return "full";
    }
    return "off";
}

AuditLevel audit_level_from_env() {
    const char* raw = std::getenv("MRLG_VALIDATE");
    if (raw == nullptr || *raw == '\0') {
        return AuditLevel::kOff;
    }
    std::string v(raw);
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (v == "off" || v == "0" || v == "none") {
        return AuditLevel::kOff;
    }
    if (v == "cheap" || v == "1") {
        return AuditLevel::kCheap;
    }
    if (v == "full" || v == "2") {
        return AuditLevel::kFull;
    }
    MRLG_LOG(kWarn) << "MRLG_VALIDATE=" << raw
                    << " not recognized (want off|cheap|full); auditing off";
    return AuditLevel::kOff;
}

bool AuditReport::has(const std::string& check) const {
    for (const AuditIssue& issue : issues) {
        if (issue.check == check) {
            return true;
        }
    }
    return false;
}

void AuditReport::add(std::string check, std::string message) {
    if (issues.size() >= kMaxIssues) {
        ++suppressed;
        return;
    }
    issues.push_back(AuditIssue{std::move(check), std::move(message)});
}

void AuditReport::merge(const AuditReport& other) {
    for (const AuditIssue& issue : other.issues) {
        add(issue.check, issue.message);
    }
    suppressed += other.suppressed;
}

std::string AuditReport::to_string() const {
    std::ostringstream os;
    os << "audit[" << scope << "]: ";
    if (ok()) {
        os << "ok";
        return os.str();
    }
    os << issues.size() + suppressed << " violation(s)";
    for (const AuditIssue& issue : issues) {
        os << "\n  " << issue.check << ": " << issue.message;
    }
    if (suppressed > 0) {
        os << "\n  ... " << suppressed << " further violation(s) suppressed";
    }
    return os.str();
}

void enforce(const AuditReport& report) {
    if (!report.ok()) {
        throw AssertionError(report.to_string());
    }
}

namespace {

/// "cell 'name' (#id)" — every issue names its object this way so messages
/// stay greppable and deterministic.
std::string who(const Database& db, CellId id) {
    std::ostringstream os;
    if (id.valid() && id.index() < db.num_cells()) {
        os << "cell '" << db.cell(id).name() << "' (#" << id << ")";
    } else {
        os << "cell #" << id;
    }
    return os.str();
}

std::string seg_str(const Segment& s) {
    std::ostringstream os;
    os << "segment #" << s.id << " row " << s.y << " span " << s.span;
    return os.str();
}

}  // namespace

AuditReport audit_database(const Database& db) {
    MRLG_OBS_COUNT("audit.database", 1);
    AuditReport r;
    r.scope = "database";
    const Floorplan& fp = db.floorplan();

    // Rows: bottom-up, y == index, positive width (floorplan.hpp contract).
    for (SiteCoord y = 0; y < fp.num_rows(); ++y) {
        const Row& row = fp.rows()[static_cast<std::size_t>(y)];
        if (row.y != y) {
            std::ostringstream os;
            os << "row at index " << y << " has y " << row.y;
            r.add("row-index", os.str());
        }
        if (row.num_sites <= 0) {
            std::ostringstream os;
            os << "row " << y << " has non-positive width " << row.num_sites;
            r.add("row-width", os.str());
        }
    }

    // Cells: positive geometry, sane region, name lookup round-trips.
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const CellId id{static_cast<CellId::underlying>(i)};
        const Cell& c = db.cells()[i];
        if (c.width() <= 0 || c.height() <= 0) {
            std::ostringstream os;
            os << who(db, id) << " has non-positive size " << c.width() << "x"
               << c.height();
            r.add("cell-geometry", os.str());
        }
        if (c.region() < 0) {
            r.add("cell-region", who(db, id) + " has negative fence region");
        }
        const CellId found = db.find_cell(c.name());
        if (!found.valid()) {
            r.add("name-map", who(db, id) + " missing from the name map");
        } else if (found != id && db.cell(found).name() == c.name()) {
            r.add("name-dup", who(db, id) + " shares its name with " +
                                  who(db, found));
        }
    }

    // Pins: valid references, cross-linked from both the cell and the net.
    for (std::size_t i = 0; i < db.pins().size(); ++i) {
        const Pin& p = db.pins()[i];
        const bool cell_ok =
            p.cell.valid() && p.cell.index() < db.num_cells();
        const bool net_ok = p.net.valid() && p.net.index() < db.nets().size();
        if (!cell_ok || !net_ok) {
            std::ostringstream os;
            os << "pin #" << i << " references "
               << (cell_ok ? "" : "an invalid cell ")
               << (net_ok ? "" : "an invalid net");
            r.add("pin-ref", os.str());
            continue;
        }
        const PinId pid{static_cast<PinId::underlying>(i)};
        const auto& cell_pins = db.cell(p.cell).pins();
        if (std::find(cell_pins.begin(), cell_pins.end(), pid) ==
            cell_pins.end()) {
            std::ostringstream os;
            os << "pin #" << i << " not listed by its " << who(db, p.cell);
            r.add("pin-link", os.str());
        }
        const auto& net_pins = db.net(p.net).pins();
        if (std::find(net_pins.begin(), net_pins.end(), pid) ==
            net_pins.end()) {
            std::ostringstream os;
            os << "pin #" << i << " not listed by its net '"
               << db.net(p.net).name() << "'";
            r.add("pin-link", os.str());
        }
    }

    // Fences: positive region ids; rects of distinct regions disjoint
    // (floorplan.hpp: "fences of different regions must not overlap").
    const auto& fences = fp.fences();
    for (std::size_t i = 0; i < fences.size(); ++i) {
        if (fences[i].region <= 0) {
            std::ostringstream os;
            os << "fence rect #" << i << " has non-positive region "
               << fences[i].region;
            r.add("fence-region", os.str());
        }
        for (std::size_t j = i + 1; j < fences.size(); ++j) {
            if (fences[i].region != fences[j].region &&
                fences[i].rect.overlaps(fences[j].rect)) {
                std::ostringstream os;
                os << "fence rects #" << i << " (region " << fences[i].region
                   << ") and #" << j << " (region " << fences[j].region
                   << ") overlap";
                r.add("fence-overlap", os.str());
            }
        }
    }
    return r;
}

AuditReport audit_segment_grid(const Database& db, const SegmentGrid& grid,
                               AuditLevel level, bool check_rail) {
    MRLG_OBS_COUNT("audit.segment_grid", 1);
    AuditReport r;
    r.scope = "segment-grid";
    if (level == AuditLevel::kOff) {
        return r;
    }
    const Floorplan& fp = db.floorplan();

    // Per-row segment structure: sorted by x, pairwise disjoint, inside the
    // row span, tagged with the right row.
    for (SiteCoord y = 0; y < fp.num_rows(); ++y) {
        SiteCoord prev_hi = kSiteCoordMin;
        for (const SegmentId sid : grid.row_segments(y)) {
            const Segment& s = grid.segment(sid);
            if (s.y != y) {
                r.add("row-order", seg_str(s) + " indexed under the wrong row");
            }
            if (s.span.empty()) {
                r.add("segment-span", seg_str(s) + " has an empty span");
            }
            if (!fp.row(y).x_span().contains(s.span)) {
                r.add("segment-row",
                      seg_str(s) + " sticks out of its floorplan row");
            }
            if (s.span.lo < prev_hi) {
                r.add("row-order",
                      seg_str(s) + " overlaps or precedes its left neighbour");
            }
            prev_hi = s.span.hi;
        }
    }

    // Per-segment cell lists (§2.1.2): placed movable cells, x-sorted,
    // overlap-free, inside the span, crossing the row, matching the region.
    std::vector<int> appearances(db.num_cells(), 0);
    for (const Segment& s : grid.segments()) {
        SiteCoord prev_end = s.span.lo;
        for (const CellId cid : s.cells) {
            if (!cid.valid() || cid.index() >= db.num_cells()) {
                std::ostringstream os;
                os << "invalid cell id #" << cid << " in " << seg_str(s);
                r.add("list-ref", os.str());
                continue;
            }
            const Cell& c = db.cell(cid);
            if (c.fixed()) {
                r.add("list-fixed",
                      "fixed " + who(db, cid) + " in " + seg_str(s));
            }
            if (!c.placed()) {
                r.add("list-placed",
                      "unplaced " + who(db, cid) + " in " + seg_str(s));
                continue;
            }
            appearances[cid.index()] += 1;
            if (c.y() > s.y || c.y() + c.height() <= s.y) {
                r.add("list-row",
                      who(db, cid) + " does not cross " + seg_str(s));
            }
            if (c.x() < s.span.lo || c.x() + c.width() > s.span.hi) {
                r.add("list-span",
                      who(db, cid) + " outside the span of " + seg_str(s));
            }
            if (c.region() != s.region) {
                std::ostringstream os;
                os << who(db, cid) << " (region " << c.region() << ") in "
                   << seg_str(s) << " of region " << s.region;
                r.add("list-region", os.str());
            }
            if (c.x() < prev_end) {
                r.add("list-order", "overlap or order violation before " +
                                        who(db, cid) + " in " + seg_str(s));
            }
            prev_end = c.x() + c.width();
        }
    }

    // Coverage and the per-cell constraints of §2: an h-row cell sits in
    // exactly h lists; even-height cells on parity-matching rows with the
    // orientation SegmentGrid::place assigns.
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const CellId id{static_cast<CellId::underlying>(i)};
        const Cell& c = db.cells()[i];
        if (c.fixed()) {
            continue;
        }
        const int expected = c.placed() ? static_cast<int>(c.height()) : 0;
        if (appearances[i] != expected) {
            std::ostringstream os;
            os << who(db, id) << " appears in " << appearances[i]
               << " segment lists, expected " << expected;
            r.add("coverage", os.str());
        }
        if (!c.placed()) {
            continue;
        }
        if (c.y() < 0 || c.y() + c.height() > fp.num_rows()) {
            r.add("die-bounds", who(db, id) + " placed outside the die rows");
        }
        if (check_rail &&
            !rail_compatible(c.y(), c.height(), c.rail_phase())) {
            std::ostringstream os;
            os << who(db, id) << " (height " << c.height() << ", phase "
               << mrlg::to_string(c.rail_phase()) << ") on row " << c.y()
               << " violates power-rail parity";
            r.add("rail-parity", os.str());
        }
        if (check_rail && c.height() % 2 == 1) {
            // Odd-height cells flip to match the row's rail phase
            // (SegmentGrid::place); re-derive the expected orientation.
            const bool phase_match =
                (c.y() % 2 == 0) == (c.rail_phase() == RailPhase::kEven);
            const Orient expected_orient =
                phase_match ? Orient::kN : Orient::kFS;
            if (c.orient() != expected_orient) {
                std::ostringstream os;
                os << who(db, id) << " on row " << c.y() << " has orient "
                   << mrlg::to_string(c.orient()) << ", expected "
                   << mrlg::to_string(expected_orient);
                r.add("orient", os.str());
            }
        }
    }

    if (level >= AuditLevel::kFull) {
        // Independent cross-check: eval/legality re-derives overlaps with a
        // per-row sweep that never reads the segment lists, so it catches
        // classes of corruption the list checks above cannot see (and vice
        // versa). Serial on purpose: audits must not depend on a pool.
        LegalityOptions lopts;
        lopts.check_rail_alignment = check_rail;
        lopts.require_all_placed = false;
        lopts.num_threads = 1;
        const LegalityReport lr = check_legality(db, grid, lopts);
        if (!lr.legal) {
            for (const std::string& msg : lr.messages) {
                r.add("legality", msg);
            }
        }
        // Segments are built by cutting rows at blockages; any intersection
        // means the grid is stale w.r.t. the floorplan.
        for (const Segment& s : grid.segments()) {
            const Rect seg_rect{s.span.lo, s.y, s.span.length(), 1};
            for (const Rect& b : fp.blockages()) {
                if (seg_rect.overlaps(b)) {
                    std::ostringstream os;
                    os << seg_str(s) << " intersects blockage " << b;
                    r.add("blockage", os.str());
                }
            }
        }
    }
    return r;
}

AuditReport audit_placement(const Database& db, const SegmentGrid& grid,
                            AuditLevel level, bool check_rail) {
    MRLG_OBS_COUNT("audit.placement", 1);
    AuditReport r;
    r.scope = "placement";
    if (level == AuditLevel::kOff) {
        return r;
    }
    r.merge(audit_database(db));
    r.merge(audit_segment_grid(db, grid, level, check_rail));
    return r;
}

}  // namespace mrlg
