#pragma once
/// \file audit_plan.hpp
/// Invariant audits for the legalizer's region-parallel plan/commit
/// pipeline (legalize/pipeline.hpp). The pipeline's serial-equivalence
/// argument rests on two geometric invariants, re-checked here from
/// scratch so a footprint-construction bug is caught at the wave that
/// introduced it:
///
///  * batch disjointness — the footprints of one wave's batch are pairwise
///    disjoint (checked at kCheap and above);
///  * write containment — every rectangle a committed plan writes lies
///    inside the footprint the cell claimed (checked at kFull).
///
/// Kept geometry-only (spans/rects, no legalizer types) so check/ stays
/// below legalize/ in the layering.

#include <vector>

#include "check/audit.hpp"
#include "util/geometry.hpp"

namespace mrlg {

/// One batched cell's claimed footprint, as absolute row/x spans.
struct PlannedFootprint {
    std::int32_t cell = -1;  ///< CellId value, for the audit message.
    Span rows;
    Span x;
};

/// Verifies the batch's footprints are pairwise disjoint (a footprint
/// overlaps another iff both the row and x spans overlap). Sweep over
/// x-sorted footprints, so typical batches audit in O(n log n).
AuditReport audit_plan_batch(const std::vector<PlannedFootprint>& batch);

/// Verifies every write rectangle of one committed plan lies inside the
/// footprint its cell claimed.
AuditReport audit_plan_writes(const PlannedFootprint& fp,
                              const std::vector<Rect>& writes);

}  // namespace mrlg
