#pragma once
/// \file audit_local.hpp
/// Auditors for the extracted local problem: window extraction
/// pre/post-conditions of §2.1.3 and the min/max placement bounds of
/// §5.1.1. Split from audit.hpp so that the core auditors do not pull the
/// legalize headers into every client (mrlg_check uses only inline members
/// of LocalRegion/LocalProblem and therefore does not link mrlg_legalize).

#include "check/audit.hpp"
#include "legalize/local_problem.hpp"
#include "legalize/local_region.hpp"

namespace mrlg {

/// Post-conditions of extract_local_region (§2.1.3):
///  * row k describes absolute row y0+k with a non-empty span contained in
///    both the window and its enclosing SegmentGrid segment (of the
///    requested fence region);
///  * local cells are placed, x-sorted and overlap-free per row, fully
///    inside the window, and listed on every region row they cross;
///  * local_cells() is sorted, duplicate-free and equals the union of the
///    per-row lists;
///  * no non-local cell intersects a chosen local span (non-local cells
///    are frozen obstacles — their sites must have been subtracted).
AuditReport audit_local_region(const Database& db, const SegmentGrid& grid,
                               const LocalRegion& region,
                               int fence_region = 0);

/// Structural invariants of a built LocalProblem, plus (when
/// `minmax_filled`) the §5.1.1 bounds: xl <= x <= xr for every cell, both
/// packings inside the row spans, and each packing preserving the per-row
/// cell order without overlap.
AuditReport audit_local_problem(const LocalProblem& lp, bool minmax_filled);

}  // namespace mrlg
