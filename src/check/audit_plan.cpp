#include "check/audit_plan.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mrlg {

namespace {

std::string footprint_str(const PlannedFootprint& fp) {
    std::ostringstream os;
    os << "cell " << fp.cell << " rows " << fp.rows << " x " << fp.x;
    return os.str();
}

}  // namespace

AuditReport audit_plan_batch(const std::vector<PlannedFootprint>& batch) {
    AuditReport report;
    report.scope = "plan-batch";
    // Sweep over footprints sorted by x.lo: a pair can only overlap while
    // the earlier one's x.hi reaches past the later one's x.lo, so each
    // footprint is compared against a shrinking active set.
    std::vector<std::size_t> order(batch.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return batch[a].x.lo < batch[b].x.lo ||
               (batch[a].x.lo == batch[b].x.lo && a < b);
    });
    std::vector<std::size_t> active;
    for (const std::size_t i : order) {
        const PlannedFootprint& fp = batch[i];
        std::size_t keep = 0;
        for (const std::size_t j : active) {
            const PlannedFootprint& other = batch[j];
            if (other.x.hi <= fp.x.lo) {
                continue;  // retire: cannot overlap anything further right
            }
            active[keep++] = j;
            if (other.rows.overlaps(fp.rows)) {
                std::ostringstream os;
                os << footprint_str(other) << " overlaps "
                   << footprint_str(fp);
                report.add("plan-batch-disjoint", os.str());
            }
        }
        active.resize(keep);
        active.push_back(i);
    }
    return report;
}

AuditReport audit_plan_writes(const PlannedFootprint& fp,
                              const std::vector<Rect>& writes) {
    AuditReport report;
    report.scope = "plan-writes";
    for (const Rect& w : writes) {
        if (w.empty()) {
            continue;
        }
        if (!fp.rows.contains(w.y_span()) || !fp.x.contains(w.x_span())) {
            std::ostringstream os;
            os << "write " << w << " escapes footprint of "
               << footprint_str(fp);
            report.add("plan-write-containment", os.str());
        }
    }
    return report;
}

}  // namespace mrlg
