#pragma once
/// \file audit.hpp
/// Leveled invariant audits for the database and the segment grid.
///
/// The paper's correctness argument rests on structural invariants that the
/// algorithms maintain implicitly: an h-row cell appears in exactly the h
/// segment lists it crosses (§2.1.2), every list stays x-sorted and
/// overlap-free, and legalization preserves constraints 1-4 of §2. The
/// auditors here re-derive those invariants from scratch and report every
/// violation with a stable check id, so a silent bookkeeping break (or a
/// nondeterministic container leaking into an output path) is caught at the
/// step that introduced it instead of corrupting results downstream.
///
/// Levels (environment variable MRLG_VALIDATE=off|cheap|full):
///  * off   — no auditing; zero overhead.
///  * cheap — O(design) structural audits at phase boundaries.
///  * full  — cheap plus an independent full-legality cross-check
///            (eval/legality re-derives overlaps without the segment
///            lists), blockage intrusion tests, and per-step audits inside
///            the legalizer (after every commit / rip-up transaction).

#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

enum class AuditLevel { kOff = 0, kCheap = 1, kFull = 2 };

const char* to_string(AuditLevel level);

/// Parses MRLG_VALIDATE (case-insensitive "off" | "cheap" | "full").
/// Unset or empty means kOff; an unrecognized value logs one warning and
/// falls back to kOff rather than silently validating at the wrong level.
AuditLevel audit_level_from_env();

/// One invariant violation. `check` is a stable machine-readable id
/// (e.g. "list-order", "coverage", "rail-parity"); `message` names the
/// offending object so the report is actionable.
struct AuditIssue {
    std::string check;
    std::string message;
};

/// Result of one audit pass. Issue order is deterministic: auditors walk
/// containers in index order only, never by address or hash order.
struct AuditReport {
    /// Cap on recorded issues; further violations only bump `suppressed`
    /// so a badly corrupted design still yields a readable report.
    static constexpr std::size_t kMaxIssues = 64;

    std::string scope;  ///< What was audited ("database", "segment-grid", ...).
    std::vector<AuditIssue> issues;
    std::size_t suppressed = 0;

    bool ok() const { return issues.empty() && suppressed == 0; }
    /// True when some recorded issue has the given check id.
    bool has(const std::string& check) const;
    void add(std::string check, std::string message);
    /// Appends `other`'s issues (prefixing nothing; check ids are global).
    void merge(const AuditReport& other);
    /// Multi-line human-readable rendering; deterministic.
    std::string to_string() const;
};

/// Database-level invariants: rows indexed bottom-up (row i at y == i) with
/// positive widths, positive cell geometry, name lookup consistent and
/// unambiguous, pins referencing valid cells/nets (and cross-linked both
/// ways), fences of distinct regions disjoint.
AuditReport audit_database(const Database& db);

/// Segment-grid invariants of §2.1.2 against `db`:
///  * per row: segments x-sorted, pairwise disjoint, inside the row span;
///  * per segment list: cells placed, movable, x-sorted and overlap-free,
///    inside the segment span, crossing the segment's row, matching the
///    segment's fence region;
///  * coverage: every placed movable cell of height h appears in exactly h
///    lists (unplaced/fixed cells in zero);
///  * power-rail parity and orientation cross-checked against
///    eval/legality's rail_compatible (constraint 4 of §2).
/// kFull additionally runs the independent check_legality sweep (which
/// re-derives overlaps without the lists) and verifies no segment
/// intersects a floorplan blockage.
AuditReport audit_segment_grid(const Database& db, const SegmentGrid& grid,
                               AuditLevel level = AuditLevel::kCheap,
                               bool check_rail = true);

/// Umbrella audit used by the legalizer hooks and the mrlg_audit CLI:
/// audit_database + audit_segment_grid at the given level. kOff returns an
/// empty (ok) report.
AuditReport audit_placement(const Database& db, const SegmentGrid& grid,
                            AuditLevel level, bool check_rail = true);

/// Throws AssertionError carrying the full report when it is not ok.
void enforce(const AuditReport& report);

}  // namespace mrlg
