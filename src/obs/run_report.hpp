#pragma once
/// \file run_report.hpp
/// The canonical machine-readable "run report": one JSON document carrying
/// everything the paper's Table 1 reports per run (HPWL delta, average/max
/// displacement, runtime, legality) plus the obs tracer's phase tree,
/// counters, and histograms, the resolved options, and design statistics.
/// Schema: docs/REPORT.md (`schema_version` gates golden compatibility).
///
/// Every reporting surface emits this one shape: `tools/mrlg_legalize
/// --report`, `mrlg_audit --report`, `mrlg_fuzz --report`, and the golden
/// regression suite (tests/test_golden.cpp). With a deterministic clock
/// (obs/clock.hpp TickClock) a report is byte-for-byte reproducible across
/// runs and thread counts; wall-clock reports add physical `runtime_s`.

#include <string>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/legalizer.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace mrlg::obs {

struct RunReportSpec {
    std::string tool;    ///< Producing binary / harness name.
    std::string design;  ///< Design or benchmark name.
    /// Design under report; when null the design/quality blocks are
    /// omitted (e.g. a fuzz campaign has no single design).
    const Database* db = nullptr;
    const SegmentGrid* grid = nullptr;
    /// Rail mode the run used (quality block re-checks legality with it).
    bool check_rail = true;
    /// Resolved evaluation thread count (0 = environment default).
    int num_threads = 0;
    /// Options/stats of the legalization run; null omits their blocks.
    const LegalizerOptions* options = nullptr;
    const LegalizerStats* stats = nullptr;
    /// Metrics source; null falls back to the ambient current_tracer(),
    /// and when that is also null the metrics block is omitted.
    Tracer* tracer = nullptr;
    /// Wall-clock execution timeline; null falls back to the ambient
    /// current_timeline(). Only consulted under a wall clock — the
    /// derived `timeline` block (schema v2) is excluded from
    /// deterministic reports, like `environment`.
    const Timeline* timeline = nullptr;
    /// Emit the wall-clock-only `memory` block (process RSS/heap plus the
    /// db/grid arena breakdowns when db/grid are present).
    bool include_memory = true;
};

/// Current report schema (docs/REPORT.md). v2 adds the wall-clock-only
/// `timeline` and `memory` blocks and `environment.pool_workers_active`;
/// every v1 field is unchanged, so v1 consumers read v2 reports as-is.
inline constexpr int kRunReportSchemaVersion = 2;

/// Assembles the report. Runs the legality checker and quality metrics
/// over `db`/`grid` when present (read-only).
Json make_run_report(const RunReportSpec& spec);

/// Convenience: make_run_report + write_json_file.
bool write_run_report(const std::string& path, const RunReportSpec& spec);

}  // namespace mrlg::obs
