#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace mrlg::obs {

namespace {
/// Ambient tracer. Deliberately not thread_local: the determinism contract
/// keeps every tracer access on the orchestrating thread, and one process
/// traces one run at a time (nesting is handled by ScopedTracer's
/// save/restore).
Tracer* g_current_tracer = nullptr;
}  // namespace

Tracer* current_tracer() { return g_current_tracer; }

void set_current_tracer(Tracer* tracer) { g_current_tracer = tracer; }

PhaseNode* PhaseNode::child(std::string_view child_name) {
    for (const auto& c : children) {
        if (c->name == child_name) {
            return c.get();
        }
    }
    children.push_back(std::make_unique<PhaseNode>());
    children.back()->name = std::string(child_name);
    return children.back().get();
}

Tracer::Tracer(Clock* clock)
    : clock_(clock != nullptr ? clock : &default_clock_) {
    root_.name = "run";
    root_.calls = 1;
    stack_.emplace_back(&root_, clock_->now_ns());
}

void Tracer::phase_begin(std::string_view name) {
    PhaseNode* node = stack_.back().first->child(name);
    ++node->calls;
    stack_.emplace_back(node, clock_->now_ns());
}

void Tracer::phase_end() {
    MRLG_ASSERT(stack_.size() > 1, "phase_end without matching phase_begin");
    auto [node, begin_ns] = stack_.back();
    stack_.pop_back();
    node->total_ns += clock_->now_ns() - begin_ns;
}

void Tracer::count(std::string_view name, std::uint64_t n) {
    if (const auto it = counters_.find(name); it != counters_.end()) {
        it->second += n;
    } else {
        counters_.emplace(std::string(name), n);
    }
}

void Tracer::observe(std::string_view name, double v) {
    if (const auto it = hists_.find(name); it != hists_.end()) {
        it->second.observe(v);
    } else {
        hists_.emplace(std::string(name), Histogram{}).first->second
            .observe(v);
    }
}

std::uint64_t Tracer::counter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it != counters_.end() ? it->second : 0;
}

const Histogram* Tracer::histogram(std::string_view name) const {
    const auto it = hists_.find(name);
    return it != hists_.end() ? &it->second : nullptr;
}

bool Tracer::deterministic() const {
    return std::strcmp(clock_->kind(), "wall") != 0;
}

namespace {

Json phase_to_json(const PhaseNode& node) {
    Json j = Json::object();
    j.set("name", Json::str(node.name));
    j.set("time_s", Json::num(static_cast<double>(node.total_ns) * 1e-9));
    j.set("calls", Json::num(node.calls));
    if (!node.children.empty()) {
        Json kids = Json::array();
        for (const auto& c : node.children) {
            kids.push(phase_to_json(*c));
        }
        j.set("children", std::move(kids));
    }
    return j;
}

}  // namespace

Json Tracer::to_json() {
    MRLG_ASSERT(stack_.size() == 1,
                "Tracer::to_json with phases still open");
    // Close the root span: its total covers construction to serialization.
    root_.total_ns = clock_->now_ns() - stack_.front().second;

    Json j = Json::object();
    j.set("clock", Json::str(clock_->kind()));

    Json counters = Json::object();
    for (const auto& [name, value] : counters_) {
        counters.set(name, Json::num(value));
    }
    j.set("counters", std::move(counters));

    Json hists = Json::object();
    for (const auto& [name, h] : hists_) {
        hists.set(name, histogram_json(h));
    }
    j.set("histograms", std::move(hists));

    j.set("phases", phase_to_json(root_));
    return j;
}

}  // namespace mrlg::obs
