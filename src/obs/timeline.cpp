#include "obs/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/assert.hpp"

namespace mrlg::obs {

namespace {

/// Ambient timeline. Atomic (unlike the Tracer's plain global) because the
/// install/read sides may legitimately be different threads; recording
/// code still hoists one load per scope (TimelineSpan takes the pointer).
std::atomic<Timeline*> g_current_timeline{nullptr};

/// Process-unique timeline ids back the thread-local lane cache: a cache
/// entry is valid only for the timeline id it was created against, so a
/// destroyed timeline's address being reused can never alias a lane.
std::atomic<std::uint64_t> g_next_timeline_id{1};

struct LaneCache {
    std::uint64_t timeline_id = 0;
    std::uint32_t lane = 0;
    bool unlaned = false;  ///< Thread arrived after every lane was taken.
};
thread_local LaneCache t_lane_cache;

}  // namespace

Timeline* current_timeline() {
    return g_current_timeline.load(std::memory_order_acquire);
}

void set_current_timeline(Timeline* timeline) {
    g_current_timeline.store(timeline, std::memory_order_release);
}

/// One thread's ring. Single writer (the owning thread); readers only run
/// after the writers have quiesced. alignas keeps neighbouring lanes off a
/// shared cache line.
struct alignas(64) Timeline::Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    std::vector<TimelineEvent> ring;
    /// Total events ever written; the ring holds the last
    /// min(count, ring.size()) of them.
    std::uint64_t count = 0;
};

Timeline::Timeline(std::size_t max_lanes, std::size_t lane_capacity)
    : lane_capacity_(std::max<std::size_t>(1, lane_capacity)),
      id_(g_next_timeline_id.fetch_add(1, std::memory_order_relaxed)) {
    const std::size_t n = std::max<std::size_t>(1, max_lanes);
    lanes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        lanes_.emplace_back(lane_capacity_);
    }
}

Timeline::~Timeline() = default;

std::uint64_t Timeline::now_ns() const {
    // Wall-clock by design: timeline data never feeds deterministic
    // output (see the header's two-tracer contract).
    const auto now =
        std::chrono::steady_clock::now();  // mrlg-lint: allow(wall-clock)
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

Timeline::Lane* Timeline::lane_for_this_thread() {
    LaneCache& cache = t_lane_cache;
    if (cache.timeline_id != id_) {
        const std::uint32_t lane =
            next_lane_.fetch_add(1, std::memory_order_relaxed);
        cache.timeline_id = id_;
        cache.lane = lane;
        cache.unlaned = lane >= lanes_.size();
    }
    return cache.unlaned ? nullptr : &lanes_[cache.lane];
}

void Timeline::record(const TimelineEvent& ev) {
    Lane* lane = lane_for_this_thread();
    if (lane == nullptr) {
        unlaned_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    lane->ring[lane->count % lane->ring.size()] = ev;
    ++lane->count;
}

void Timeline::span(const char* name, TimelineKey key, std::uint64_t begin_ns,
                    std::uint64_t end_ns) {
    record({name, TimelineEventKind::kSpan, key, begin_ns, end_ns});
}

void Timeline::instant(const char* name, TimelineKey key) {
    const std::uint64_t t = now_ns();
    record({name, TimelineEventKind::kInstant, key, t, t});
}

std::size_t Timeline::num_lanes() const {
    return std::min<std::size_t>(
        next_lane_.load(std::memory_order_relaxed), lanes_.size());
}

std::uint64_t Timeline::dropped_events() const {
    std::uint64_t dropped = unlaned_dropped_.load(std::memory_order_relaxed);
    for (const Lane& lane : lanes_) {
        if (lane.count > lane.ring.size()) {
            dropped += lane.count - lane.ring.size();
        }
    }
    return dropped;
}

std::size_t Timeline::num_events() const {
    std::size_t total = 0;
    for (const Lane& lane : lanes_) {
        total += static_cast<std::size_t>(
            std::min<std::uint64_t>(lane.count, lane.ring.size()));
    }
    return total;
}

std::vector<Timeline::MergedEvent> Timeline::merge() const {
    std::vector<MergedEvent> out;
    out.reserve(num_events());
    for (std::uint32_t li = 0; li < lanes_.size(); ++li) {
        const Lane& lane = lanes_[li];
        const std::uint64_t cap = lane.ring.size();
        const std::uint64_t n = std::min(lane.count, cap);
        // Oldest retained event first, so equal-key events keep their
        // single-lane recording order through the stable sort below.
        const std::uint64_t start = lane.count > cap ? lane.count % cap : 0;
        for (std::uint64_t k = 0; k < n; ++k) {
            out.push_back({lane.ring[(start + k) % cap], li});
        }
    }
    std::stable_sort(
        out.begin(), out.end(),
        [](const MergedEvent& a, const MergedEvent& b) {
            const TimelineKey& ka = a.ev.key;
            const TimelineKey& kb = b.ev.key;
            if (ka.wave != kb.wave) {
                return ka.wave < kb.wave;
            }
            if (ka.slot != kb.slot) {
                return ka.slot < kb.slot;
            }
            if (ka.task != kb.task) {
                return ka.task < kb.task;
            }
            const int c = std::strcmp(a.ev.name, b.ev.name);
            if (c != 0) {
                return c < 0;
            }
            return static_cast<int>(a.ev.kind) < static_cast<int>(b.ev.kind);
        });
    return out;
}

// ---------------------------------------------------------------------------
// Derived scheduling metrics.

ScheduleReport derive_schedule_report(const Timeline& timeline, int threads) {
    ScheduleReport report;
    report.threads = std::max(1, threads);
    report.lanes = timeline.num_lanes();
    report.dropped_events = timeline.dropped_events();

    // The merge is wave-major, so per-wave accounting is one sequential
    // grouping pass. Wave 0 is the "no wave" key (run-level events) and is
    // excluded from schedule math.
    std::vector<WaveSchedule> waves;
    for (const Timeline::MergedEvent& me : timeline.merge()) {
        const TimelineEvent& ev = me.ev;
        if (ev.key.wave == 0 || ev.kind != TimelineEventKind::kSpan) {
            continue;
        }
        if (waves.empty() || waves.back().wave != ev.key.wave) {
            waves.push_back(WaveSchedule{});
            waves.back().wave = ev.key.wave;
        }
        WaveSchedule& w = waves.back();
        const std::uint64_t dur =
            ev.end_ns > ev.begin_ns ? ev.end_ns - ev.begin_ns : 0;
        if (std::strcmp(ev.name, "wave") == 0) {
            w.wall_ns += dur;
        } else if (std::strcmp(ev.name, "partition") == 0) {
            w.partition_ns += dur;
        } else if (std::strcmp(ev.name, "plan") == 0) {
            w.plan_ns += dur;
        } else if (std::strcmp(ev.name, "commit") == 0) {
            w.commit_ns += dur;
        } else if (std::strcmp(ev.name, "plan.task") == 0) {
            w.task_sum_ns += dur;
            w.task_max_ns = std::max(w.task_max_ns, dur);
            ++w.tasks;
            report.task_us.observe(static_cast<double>(dur) * 1e-3);
        }
    }

    const double t = static_cast<double>(report.threads);
    double straggler_ns = 0.0;
    for (const WaveSchedule& w : waves) {
        report.wave_wall_ns += w.wall_ns;
        report.partition_ns += w.partition_ns;
        report.plan_ns += w.plan_ns;
        report.commit_ns += w.commit_ns;
        report.task_sum_ns += w.task_sum_ns;
        report.critical_path_ns += w.task_max_ns;
        report.tasks_total += w.tasks;
        if (w.plan_ns > 0) {
            const double plan = static_cast<double>(w.plan_ns);
            const double busy = static_cast<double>(w.task_sum_ns);
            const double idle_pct =
                std::clamp(100.0 * (1.0 - busy / (plan * t)), 0.0, 100.0);
            report.wave_idle_pct.observe(idle_pct);
            const double balanced = busy / t;
            straggler_ns += std::max(
                0.0, static_cast<double>(w.task_max_ns) - balanced);
        }
    }
    report.waves_total = waves.size();
    if (waves.size() > ScheduleReport::kMaxWaveDetail) {
        waves.resize(ScheduleReport::kMaxWaveDetail);
    }
    report.waves = std::move(waves);

    if (report.plan_ns > 0) {
        const double plan = static_cast<double>(report.plan_ns);
        report.pool_utilization = std::clamp(
            static_cast<double>(report.task_sum_ns) / (plan * t), 0.0, 1.0);
        report.straggler_share = std::clamp(straggler_ns / plan, 0.0, 1.0);
    }
    if (report.wave_wall_ns > 0) {
        const double wall = static_cast<double>(report.wave_wall_ns);
        report.commit_serial_share = std::clamp(
            static_cast<double>(report.commit_ns) / wall, 0.0, 1.0);
        report.partition_share = std::clamp(
            static_cast<double>(report.partition_ns) / wall, 0.0, 1.0);
    }
    return report;
}

Json schedule_report_json(const ScheduleReport& report) {
    Json j = Json::object();
    j.set("threads", Json::num(report.threads));
    j.set("lanes", Json::num(report.lanes));
    j.set("dropped_events", Json::num(report.dropped_events));
    j.set("waves_total", Json::num(report.waves_total));
    j.set("tasks_total", Json::num(report.tasks_total));
    j.set("wave_wall_ns", Json::num(report.wave_wall_ns));
    j.set("partition_ns", Json::num(report.partition_ns));
    j.set("plan_ns", Json::num(report.plan_ns));
    j.set("commit_ns", Json::num(report.commit_ns));
    j.set("task_sum_ns", Json::num(report.task_sum_ns));
    j.set("critical_path_ns", Json::num(report.critical_path_ns));
    j.set("pool_utilization", Json::num(report.pool_utilization));
    j.set("straggler_share", Json::num(report.straggler_share));
    j.set("commit_serial_share", Json::num(report.commit_serial_share));
    j.set("partition_share", Json::num(report.partition_share));
    j.set("task_us", histogram_json(report.task_us));
    j.set("wave_idle_pct", histogram_json(report.wave_idle_pct));

    Json waves = Json::array();
    for (const WaveSchedule& w : report.waves) {
        Json wj = Json::object();
        wj.set("wave", Json::num(static_cast<std::size_t>(w.wave)));
        wj.set("wall_ns", Json::num(w.wall_ns));
        wj.set("partition_ns", Json::num(w.partition_ns));
        wj.set("plan_ns", Json::num(w.plan_ns));
        wj.set("commit_ns", Json::num(w.commit_ns));
        wj.set("task_sum_ns", Json::num(w.task_sum_ns));
        wj.set("task_max_ns", Json::num(w.task_max_ns));
        wj.set("tasks", Json::num(static_cast<std::size_t>(w.tasks)));
        waves.push(std::move(wj));
    }
    j.set("waves", std::move(waves));
    return j;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

Json chrome_trace_json(const Timeline& timeline,
                       const std::string& process_name) {
    const std::vector<Timeline::MergedEvent> merged = timeline.merge();

    std::uint64_t t0 = 0;
    bool have_t0 = false;
    for (const Timeline::MergedEvent& me : merged) {
        if (!have_t0 || me.ev.begin_ns < t0) {
            t0 = me.ev.begin_ns;
            have_t0 = true;
        }
    }

    Json events = Json::array();

    Json process_meta = Json::object();
    process_meta.set("name", Json::str("process_name"));
    process_meta.set("ph", Json::str("M"));
    process_meta.set("pid", Json::num(1));
    process_meta.set("tid", Json::num(0));
    Json process_args = Json::object();
    process_args.set("name", Json::str(process_name));
    process_meta.set("args", std::move(process_args));
    events.push(std::move(process_meta));

    for (std::size_t lane = 0; lane < timeline.num_lanes(); ++lane) {
        Json thread_meta = Json::object();
        thread_meta.set("name", Json::str("thread_name"));
        thread_meta.set("ph", Json::str("M"));
        thread_meta.set("pid", Json::num(1));
        thread_meta.set("tid", Json::num(lane + 1));
        Json thread_args = Json::object();
        // Lane 0 is whichever thread recorded first — in the legalizer
        // pipeline that is always the orchestrator.
        thread_args.set("name",
                        Json::str(lane == 0
                                      ? std::string("orchestrator")
                                      : "worker-" + std::to_string(lane)));
        thread_meta.set("args", std::move(thread_args));
        events.push(std::move(thread_meta));
    }

    for (const Timeline::MergedEvent& me : merged) {
        const TimelineEvent& ev = me.ev;
        Json ej = Json::object();
        ej.set("name", Json::str(ev.name));
        if (ev.kind == TimelineEventKind::kSpan) {
            ej.set("ph", Json::str("X"));
        } else {
            ej.set("ph", Json::str("i"));
            ej.set("s", Json::str("t"));
        }
        ej.set("ts", Json::num(static_cast<double>(ev.begin_ns - t0) * 1e-3));
        if (ev.kind == TimelineEventKind::kSpan) {
            const std::uint64_t dur =
                ev.end_ns > ev.begin_ns ? ev.end_ns - ev.begin_ns : 0;
            ej.set("dur", Json::num(static_cast<double>(dur) * 1e-3));
        }
        ej.set("pid", Json::num(1));
        ej.set("tid", Json::num(static_cast<std::size_t>(me.lane) + 1));
        Json args = Json::object();
        args.set("wave", Json::num(static_cast<std::size_t>(ev.key.wave)));
        args.set("slot", Json::num(static_cast<std::size_t>(ev.key.slot)));
        args.set("task", Json::num(static_cast<std::size_t>(ev.key.task)));
        ej.set("args", std::move(args));
        events.push(std::move(ej));
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", Json::str("ms"));
    Json other = Json::object();
    other.set("dropped_events", Json::num(timeline.dropped_events()));
    other.set("lanes", Json::num(timeline.num_lanes()));
    root.set("otherData", std::move(other));
    return root;
}

bool write_chrome_trace(const std::string& path, const Timeline& timeline,
                        const std::string& process_name) {
    return write_json_file(path, chrome_trace_json(timeline, process_name));
}

}  // namespace mrlg::obs
