#pragma once
/// \file timeline.hpp
/// Wall-clock per-thread execution timeline for the parallel pipeline —
/// the second half of the two-tracer observability model (DESIGN.md §2d).
///
/// The serial Tracer (obs/trace.hpp) is single-threaded by contract, so
/// it records *nothing* about what worker threads do during the
/// region-parallel plan phase. The Timeline fills that hole: every thread
/// (orchestrator and pool workers alike) appends span and instant events
/// to its own fixed-capacity ring buffer — no locks, no shared cursors,
/// no contention — and a post-run merge produces one deterministic event
/// sequence from which scheduling metrics (pool utilization, stragglers,
/// commit-serialization share) and a Chrome-trace/Perfetto export are
/// derived.
///
/// Determinism contract (the two-tracer split):
///   * The Tracer stays the deterministic surface: tick-clock run reports
///     remain byte-identical whether or not a Timeline is installed —
///     timeline data lives in a separate report section that is emitted
///     only under the wall clock and is excluded from goldens.
///   * Timeline timestamps are wall-clock *by design* and never feed any
///     deterministic output. What IS deterministic is the merged event
///     *sequence*: events carry a stable `{wave, slot, task}` key assigned
///     by the (deterministic) partition, and `merge()` orders by that key
///     — never by timestamp, lane, or registration order — so two runs
///     with arbitrarily different thread interleavings merge to the same
///     ordered sequence of (name, kind, key) tuples.
///
/// Thread-safety: `span`/`instant` may be called concurrently from any
/// number of threads. Each thread writes only its own lane (lane indices
/// are handed out by an atomic counter and cached thread-locally), so the
/// hot path is: one thread-local lookup, one ring-slot store. `merge()`
/// and the derived reports must only run after the workers have quiesced
/// (the thread pool's join provides the happens-before edge).
///
/// Overflow: a lane that outgrows its fixed capacity wraps around and
/// overwrites its oldest events; nothing is silently truncated — the
/// overwritten count is surfaced as `dropped_events()` and lands in the
/// run report / trace metadata.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace mrlg::obs {

/// Stable, scheduling-independent identity of a timeline event. For
/// pipeline events: `wave` is the global wave sequence number (1-based,
/// monotonically increasing across rounds), `slot` the event's position
/// within the wave's batch, `task` the planned cell's queue index.
/// Orchestrator-level events use slot/task 0.
struct TimelineKey {
    std::uint32_t wave = 0;
    std::uint32_t slot = 0;
    std::uint32_t task = 0;
};

enum class TimelineEventKind : std::uint8_t {
    kSpan,     ///< [begin_ns, end_ns) duration event.
    kInstant,  ///< Point event (end_ns == begin_ns).
};

struct TimelineEvent {
    /// Static-storage name (string literals only — events do not own or
    /// copy their names; the ring stays trivially copyable).
    const char* name = "";
    TimelineEventKind kind = TimelineEventKind::kSpan;
    TimelineKey key;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
};

class Timeline {
public:
    static constexpr std::size_t kDefaultMaxLanes = 64;
    static constexpr std::size_t kDefaultLaneCapacity = 1u << 15;

    /// `max_lanes` bounds the number of distinct recording threads;
    /// `lane_capacity` is the per-lane ring size in events. Both are
    /// fixed at construction — recording never allocates.
    explicit Timeline(std::size_t max_lanes = kDefaultMaxLanes,
                      std::size_t lane_capacity = kDefaultLaneCapacity);
    Timeline(const Timeline&) = delete;
    Timeline& operator=(const Timeline&) = delete;
    ~Timeline();

    /// Wall-clock nanoseconds (monotonic). Reading time is the caller's
    /// job so a span's two reads bracket exactly the caller's scope.
    std::uint64_t now_ns() const;

    /// Records a completed span / an instant on the calling thread's
    /// lane. Lock-free; safe from any thread.
    void span(const char* name, TimelineKey key, std::uint64_t begin_ns,
              std::uint64_t end_ns);
    void instant(const char* name, TimelineKey key);

    /// Lanes that have recorded at least one event.
    std::size_t num_lanes() const;
    std::size_t lane_capacity() const { return lane_capacity_; }
    /// Total events lost: ring overwrites plus events from threads beyond
    /// `max_lanes`. Reported, never silent (docs/REPORT.md `timeline`).
    std::uint64_t dropped_events() const;
    /// Total events currently retained across all lanes.
    std::size_t num_events() const;

    struct MergedEvent {
        TimelineEvent ev;
        std::uint32_t lane = 0;  ///< Recording lane (display only — NOT
                                 ///< part of the deterministic order).
    };

    /// Deterministic post-run merge: all retained events ordered by
    /// (key.wave, key.slot, key.task, name, kind); events with equal
    /// sort keys keep their single-lane recording order (equal-key events
    /// are only ever produced by one thread — a task runs on exactly one
    /// worker). Call only after recording threads have quiesced.
    std::vector<MergedEvent> merge() const;

private:
    struct Lane;
    /// Registers the calling thread on first use (one lane per thread per
    /// timeline; a thread alternating between two live timelines burns a
    /// fresh lane per switch — not a supported pattern). Returns nullptr
    /// once every lane is taken.
    Lane* lane_for_this_thread();
    void record(const TimelineEvent& ev);

    const std::size_t lane_capacity_;
    const std::uint64_t id_;  ///< Process-unique, for thread-local caching.
    std::vector<Lane> lanes_;
    std::atomic<std::uint32_t> next_lane_{0};
    /// Events from threads that arrived after every lane was taken.
    std::atomic<std::uint64_t> unlaned_dropped_{0};
};

/// Ambient timeline consulted by the instrumented orchestration code;
/// nullptr (the default) disables recording at the cost of one atomic
/// load per probe. Unlike the ambient Tracer this pointer is an atomic:
/// worker threads may legitimately read it.
Timeline* current_timeline();
void set_current_timeline(Timeline* timeline);

/// RAII install/restore of the ambient timeline.
class ScopedTimeline {
public:
    explicit ScopedTimeline(Timeline& timeline) : prev_(current_timeline()) {
        set_current_timeline(&timeline);
    }
    ~ScopedTimeline() { set_current_timeline(prev_); }
    ScopedTimeline(const ScopedTimeline&) = delete;
    ScopedTimeline& operator=(const ScopedTimeline&) = delete;

private:
    Timeline* prev_;
};

/// RAII span against an explicit timeline pointer (callers hoist the
/// `current_timeline()` load out of their hot loops). A null timeline
/// makes construction and destruction a single branch — the disabled
/// path must stay unmeasurable.
class TimelineSpan {
public:
    TimelineSpan(Timeline* timeline, const char* name, TimelineKey key)
        : timeline_(timeline), name_(name), key_(key),
          begin_ns_(timeline != nullptr ? timeline->now_ns() : 0) {}
    ~TimelineSpan() {
        if (timeline_ != nullptr) {
            timeline_->span(name_, key_, begin_ns_, timeline_->now_ns());
        }
    }
    TimelineSpan(const TimelineSpan&) = delete;
    TimelineSpan& operator=(const TimelineSpan&) = delete;

private:
    Timeline* timeline_;
    const char* name_;
    TimelineKey key_;
    std::uint64_t begin_ns_;
};

// ---------------------------------------------------------------------------
// Derived scheduling metrics (the run report's `timeline` block and the
// mrlg_profile bottleneck analysis).

/// Per-wave schedule accounting, aggregated from the merged events.
struct WaveSchedule {
    std::uint32_t wave = 0;
    std::uint64_t wall_ns = 0;       ///< "wave" span (orchestrator).
    std::uint64_t partition_ns = 0;  ///< "partition" span.
    std::uint64_t plan_ns = 0;       ///< "plan" span (the fan-out window).
    std::uint64_t commit_ns = 0;     ///< "commit" span (serial applies).
    std::uint64_t task_sum_ns = 0;   ///< Σ "plan.task" durations.
    std::uint64_t task_max_ns = 0;   ///< Longest "plan.task" (critical path).
    std::uint32_t tasks = 0;         ///< "plan.task" spans in this wave.
};

/// Whole-run schedule report. Shares (utilization, straggler, commit
/// serialization) are in [0, 1]; see docs/REPORT.md for the exact
/// definitions. `waves` carries per-wave detail capped at
/// `kMaxWaveDetail` entries (`waves_total` always counts all of them —
/// truncation is explicit, never silent).
struct ScheduleReport {
    static constexpr std::size_t kMaxWaveDetail = 128;

    int threads = 0;  ///< Thread budget the shares are computed against.
    std::size_t lanes = 0;
    std::uint64_t dropped_events = 0;
    std::size_t waves_total = 0;
    std::vector<WaveSchedule> waves;  ///< First kMaxWaveDetail waves.

    // Aggregates over ALL waves (not just the detailed ones).
    std::uint64_t wave_wall_ns = 0;
    std::uint64_t partition_ns = 0;
    std::uint64_t plan_ns = 0;
    std::uint64_t commit_ns = 0;
    std::uint64_t task_sum_ns = 0;
    std::uint64_t critical_path_ns = 0;  ///< Σ per-wave task_max.
    std::size_t tasks_total = 0;

    /// Σ task time / (Σ plan wall × threads): fraction of the pool's
    /// plan-phase capacity doing useful work.
    double pool_utilization = 0.0;
    /// Σ max(0, task_max − ceil(task_sum/threads)) / Σ plan wall: plan
    /// wall time attributable to the longest task overhanging a perfectly
    /// balanced schedule.
    double straggler_share = 0.0;
    /// Σ commit / Σ wave wall: serial commit's share of pipeline time.
    double commit_serial_share = 0.0;
    /// Σ partition / Σ wave wall: serial partition's share.
    double partition_share = 0.0;

    Histogram task_us;        ///< Per-task plan durations (µs).
    Histogram wave_idle_pct;  ///< Per-wave pool idle percentage (0-100).
};

/// Folds the timeline's merged events into per-wave and aggregate
/// scheduling metrics. `threads` is the configured thread budget of the
/// run (used for utilization/straggler math; <= 0 is treated as 1).
ScheduleReport derive_schedule_report(const Timeline& timeline, int threads);

/// Serializes a ScheduleReport (the run report's `timeline` block).
Json schedule_report_json(const ScheduleReport& report);

// ---------------------------------------------------------------------------
// Chrome trace-event / Perfetto export.

/// Serializes the timeline as a Chrome trace-event JSON object
/// (https://ui.perfetto.dev loads it directly): one `pid`, one `tid` per
/// lane, `ph:"X"` complete events for spans, `ph:"i"` instants, and
/// metadata records naming the process and threads. Timestamps are
/// microseconds relative to the earliest retained event.
Json chrome_trace_json(const Timeline& timeline,
                       const std::string& process_name);

/// chrome_trace_json + write_json_file.
bool write_chrome_trace(const std::string& path, const Timeline& timeline,
                        const std::string& process_name);

}  // namespace mrlg::obs
