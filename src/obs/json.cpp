#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mrlg::obs {

Json Json::object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
}

Json Json::array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::num(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = v;
    return j;
}

Json Json::num(std::int64_t v) {
    Json j;
    j.type_ = Type::kInteger;
    j.integer_ = v;
    return j;
}

Json Json::num(std::size_t v) {
    return num(static_cast<std::int64_t>(v));
}

Json Json::str(std::string v) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(v);
    return j;
}

Json Json::boolean(bool v) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = v;
    return j;
}

Json& Json::set(const std::string& key, Json v) {
    MRLG_ASSERT(type_ == Type::kObject, "Json::set on a non-object");
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

Json& Json::push(Json v) {
    MRLG_ASSERT(type_ == Type::kArray, "Json::push on a non-array");
    elements_.push_back(std::move(v));
    return *this;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_indent(std::ostream& os, int indent) {
    for (int i = 0; i < indent; ++i) {
        os << "  ";
    }
}

}  // namespace

void Json::write(std::ostream& os, int indent) const {
    switch (type_) {
        case Type::kNull:
            os << "null";
            break;
        case Type::kBool:
            os << (bool_ ? "true" : "false");
            break;
        case Type::kInteger:
            os << integer_;
            break;
        case Type::kNumber: {
            if (!std::isfinite(number_)) {
                os << "null";  // JSON has no inf/nan
                break;
            }
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.10g", number_);
            os << buf;
            break;
        }
        case Type::kString:
            write_escaped(os, string_);
            break;
        case Type::kObject: {
            if (members_.empty()) {
                os << "{}";
                break;
            }
            os << "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                write_indent(os, indent + 1);
                write_escaped(os, members_[i].first);
                os << ": ";
                members_[i].second.write(os, indent + 1);
                os << (i + 1 < members_.size() ? ",\n" : "\n");
            }
            write_indent(os, indent);
            os << '}';
            break;
        }
        case Type::kArray: {
            if (elements_.empty()) {
                os << "[]";
                break;
            }
            os << "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                write_indent(os, indent + 1);
                elements_[i].write(os, indent + 1);
                os << (i + 1 < elements_.size() ? ",\n" : "\n");
            }
            write_indent(os, indent);
            os << ']';
            break;
        }
    }
}

std::string Json::dump() const {
    std::ostringstream oss;
    write(oss, 0);
    oss << "\n";
    return oss.str();
}

bool write_json_file(const std::string& path, const Json& root) {
    std::ofstream os(path);
    if (!os) {
        MRLG_LOG(kError) << "cannot open " << path << " for writing";
        return false;
    }
    root.write(os, 0);
    os << "\n";
    return static_cast<bool>(os);
}

}  // namespace mrlg::obs
