#include "obs/memres.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#if __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#define MRLG_HAVE_PERF_EVENT 1
#endif
#endif

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace mrlg::obs {

namespace {

/// Parses a "VmXXX:   1234 kB" line value into bytes; 0 when absent.
std::uint64_t proc_status_kb(const std::string& status,
                             const char* field) {
    const std::size_t pos = status.find(field);
    if (pos == std::string::npos) {
        return 0;
    }
    std::istringstream in(status.substr(pos + std::strlen(field)));
    std::uint64_t kb = 0;
    in >> kb;
    return kb * 1024;
}

}  // namespace

MemorySample sample_memory() {
    MemorySample sample;

#if defined(__linux__)
    if (std::ifstream in("/proc/self/status"); in) {
        std::stringstream buf;
        buf << in.rdbuf();
        const std::string status = buf.str();
        sample.peak_rss_bytes = proc_status_kb(status, "VmHWM:");
        sample.current_rss_bytes = proc_status_kb(status, "VmRSS:");
        sample.rss_available = sample.peak_rss_bytes > 0;
    }
    if (!sample.rss_available) {
        struct rusage usage {};
        if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
            // ru_maxrss is KiB on Linux.
            sample.peak_rss_bytes =
                static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
            sample.rss_available = true;
        }
    }
#endif

#if defined(__GLIBC__) && __GLIBC__ >= 2 && __GLIBC_MINOR__ >= 33
    const struct mallinfo2 mi = mallinfo2();
    sample.heap_bytes = static_cast<std::uint64_t>(mi.uordblks) +
                        static_cast<std::uint64_t>(mi.hblkhd);
    sample.heap_available = true;
#endif

    return sample;
}

namespace {

Json arena_json(const std::vector<ArenaUsage>& arenas) {
    Json j = Json::array();
    for (const ArenaUsage& a : arenas) {
        Json aj = Json::object();
        aj.set("name", Json::str(a.name));
        aj.set("bytes", Json::num(a.bytes));
        aj.set("entries", Json::num(a.entries));
        j.push(std::move(aj));
    }
    return j;
}

}  // namespace

Json memory_report_json(const MemorySample& sample,
                        const std::vector<ArenaUsage>& db_arenas,
                        const std::vector<ArenaUsage>& grid_arenas) {
    Json j = Json::object();
    j.set("rss_available", Json::boolean(sample.rss_available));
    j.set("peak_rss_bytes", Json::num(sample.peak_rss_bytes));
    j.set("current_rss_bytes", Json::num(sample.current_rss_bytes));
    j.set("heap_available", Json::boolean(sample.heap_available));
    j.set("heap_bytes", Json::num(sample.heap_bytes));
    if (!db_arenas.empty()) {
        j.set("db_arenas", arena_json(db_arenas));
        j.set("db_arena_bytes",
              Json::num(total_arena_bytes(db_arenas)));
    }
    if (!grid_arenas.empty()) {
        j.set("grid_arenas", arena_json(grid_arenas));
        j.set("grid_arena_bytes",
              Json::num(total_arena_bytes(grid_arenas)));
    }
    return j;
}

// ---------------------------------------------------------------------------
// perf_event_open counters.

bool PerfCounters::requested() {
    const char* env = std::getenv("MRLG_PERF_COUNTERS");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

#if defined(MRLG_HAVE_PERF_EVENT)

namespace {

int open_perf_event(std::uint32_t type, std::uint64_t config, int group_fd) {
    struct perf_event_attr attr {};
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                    group_fd, 0));
}

}  // namespace

PerfCounters::PerfCounters() {
    if (!requested()) {
        return;
    }
    static constexpr std::uint64_t kConfigs[kNumEvents] = {
        PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CPU_CYCLES,
        PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES};
    for (int i = 0; i < kNumEvents; ++i) {
        fds_[i] = open_perf_event(PERF_TYPE_HARDWARE, kConfigs[i],
                                  i == 0 ? -1 : fds_[0]);
        if (fds_[i] == -1) {
            // EPERM/ENOENT/EACCES: counters unavailable in this
            // container/kernel — report unavailable, never fail.
            for (int k = 0; k < i; ++k) {
                close(fds_[k]);
                fds_[k] = -1;
            }
            return;
        }
    }
    available_ = true;
}

PerfCounters::~PerfCounters() {
    for (int fd : fds_) {
        if (fd != -1) {
            close(fd);
        }
    }
}

void PerfCounters::start() {
    if (available_) {
        ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
}

void PerfCounters::stop() {
    if (available_) {
        ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    }
}

PerfCounters::Values PerfCounters::read() const {
    Values values;
    if (!available_) {
        return values;
    }
    std::uint64_t raw[kNumEvents] = {};
    for (int i = 0; i < kNumEvents; ++i) {
        if (::read(fds_[i], &raw[i], sizeof(raw[i])) !=
            static_cast<ssize_t>(sizeof(raw[i]))) {
            return values;
        }
    }
    values.instructions = raw[0];
    values.cycles = raw[1];
    values.cache_references = raw[2];
    values.cache_misses = raw[3];
    values.valid = true;
    return values;
}

#else  // !MRLG_HAVE_PERF_EVENT: stubs keeping the call sites unconditional.

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
void PerfCounters::stop() {}
PerfCounters::Values PerfCounters::read() const { return {}; }

#endif  // MRLG_HAVE_PERF_EVENT

Json perf_counters_json(const PerfCounters::Values& values) {
    Json j = Json::object();
    j.set("instructions", Json::num(values.instructions));
    j.set("cycles", Json::num(values.cycles));
    j.set("cache_references", Json::num(values.cache_references));
    j.set("cache_misses", Json::num(values.cache_misses));
    return j;
}

}  // namespace mrlg::obs
