#include "obs/run_report.hpp"

#include <cstring>

#include "eval/report.hpp"
#include "obs/memres.hpp"
#include "util/thread_pool.hpp"

namespace mrlg::obs {

namespace {

const char* to_string(LegalizerOptions::Pipeline pipeline) {
    switch (pipeline) {
        case LegalizerOptions::Pipeline::kSerial: return "serial";
        case LegalizerOptions::Pipeline::kRegionParallel:
            return "region_parallel";
    }
    return "unknown";
}

const char* to_string(LegalizerOptions::Order order) {
    switch (order) {
        case LegalizerOptions::Order::kInputOrder: return "input";
        case LegalizerOptions::Order::kLeftToRight: return "left_to_right";
        case LegalizerOptions::Order::kAreaDescending:
            return "area_descending";
        case LegalizerOptions::Order::kMultiRowFirst:
            return "multi_row_first";
    }
    return "unknown";
}

Json options_json(const LegalizerOptions& o, bool check_rail,
                  int num_threads) {
    Json j = Json::object();
    j.set("seed", Json::num(static_cast<std::int64_t>(o.seed)));
    j.set("num_threads", Json::num(num_threads));
    j.set("pipeline", Json::str(to_string(o.pipeline)));
    j.set("order", Json::str(to_string(o.order)));
    j.set("max_rounds", Json::num(o.max_rounds));
    j.set("free_slot_fallback_round", Json::num(o.free_slot_fallback_round));
    j.set("enable_ripup", Json::boolean(o.enable_ripup));
    j.set("audit", Json::str(mrlg::to_string(o.audit)));
    j.set("rx", Json::num(static_cast<std::int64_t>(o.mll.rx)));
    j.set("ry", Json::num(static_cast<std::int64_t>(o.mll.ry)));
    j.set("check_rail", Json::boolean(check_rail));
    j.set("exact_evaluation", Json::boolean(o.mll.exact_evaluation));
    j.set("use_mip", Json::boolean(o.mll.use_mip));
    j.set("max_points", Json::num(o.mll.max_points));
    return j;
}

Json design_json(const Database& db, const std::string& name) {
    const Floorplan& fp = db.floorplan();
    Json j = Json::object();
    j.set("name", Json::str(name));
    const std::size_t movable = db.movable_cells().size();
    j.set("num_cells", Json::num(db.num_cells()));
    j.set("num_movable", Json::num(movable));
    j.set("num_fixed", Json::num(db.num_cells() - movable));
    j.set("num_single_row", Json::num(db.num_single_row_cells()));
    j.set("num_multi_row", Json::num(db.num_multi_row_cells()));
    j.set("num_nets", Json::num(db.nets().size()));
    j.set("num_pins", Json::num(db.pins().size()));
    j.set("num_rows", Json::num(static_cast<std::int64_t>(fp.num_rows())));
    j.set("num_blockages", Json::num(fp.blockages().size()));
    j.set("density", Json::num(db.density()));
    j.set("site_w_um", Json::num(fp.site_w_um()));
    j.set("site_h_um", Json::num(fp.site_h_um()));
    return j;
}

/// Every LegalizerStats field is surfaced here (the header promises this);
/// wall-clock runtime_s is reported only under a physical clock so that
/// deterministic-mode reports stay byte-for-byte reproducible.
Json stats_json(const LegalizerStats& s, bool include_wall_runtime) {
    Json j = Json::object();
    j.set("success", Json::boolean(s.success));
    j.set("num_cells", Json::num(s.num_cells));
    j.set("direct_placements", Json::num(s.direct_placements));
    j.set("mll_successes", Json::num(s.mll_successes));
    j.set("mll_failures", Json::num(s.mll_failures));
    j.set("fallback_placements", Json::num(s.fallback_placements));
    j.set("ripup_placements", Json::num(s.ripup_placements));
    j.set("unplaced", Json::num(s.unplaced));
    j.set("mll_points_evaluated", Json::num(s.mll_points_evaluated));
    j.set("audits_run", Json::num(s.audits_run));
    j.set("waves", Json::num(s.waves));
    j.set("conflict_requeues", Json::num(s.conflict_requeues));
    j.set("rounds", Json::num(s.rounds));
    if (include_wall_runtime) {
        j.set("runtime_s", Json::num(s.runtime_s));
    }
    return j;
}

Json quality_json(const Database& db, const SegmentGrid& grid,
                  bool check_rail) {
    const QualityReport q = make_quality_report(db, grid, check_rail);
    Json j = Json::object();
    j.set("legal", Json::boolean(q.legal));
    j.set("num_cells", Json::num(q.num_cells));
    j.set("num_unplaced", Json::num(q.num_unplaced));
    j.set("gp_hpwl_m", Json::num(q.gp_hpwl_m));
    j.set("legal_hpwl_m", Json::num(q.legal_hpwl_m));
    j.set("dhpwl_pct", Json::num(q.dhpwl_pct));
    j.set("disp_avg_sites", Json::num(q.disp_avg));
    j.set("disp_median_sites", Json::num(q.disp_median));
    j.set("disp_p95_sites", Json::num(q.disp_p95));
    j.set("disp_max_sites", Json::num(q.disp_max));
    Json hist = Json::array();
    for (const std::size_t b : q.disp_histogram) {
        hist.push(Json::num(b));
    }
    j.set("disp_histogram", std::move(hist));
    Json by_h = Json::array();
    Json count_h = Json::array();
    for (std::size_t h = 0; h < q.disp_by_height.size(); ++h) {
        by_h.push(Json::num(q.disp_by_height[h]));
        count_h.push(Json::num(q.count_by_height[h]));
    }
    j.set("disp_avg_by_height", std::move(by_h));
    j.set("count_by_height", std::move(count_h));
    return j;
}

}  // namespace

Json make_run_report(const RunReportSpec& spec) {
    Json j = Json::object();
    j.set("schema_version", Json::num(kRunReportSchemaVersion));
    j.set("tool", Json::str(spec.tool));
    j.set("design", Json::str(spec.design));

    Tracer* tracer =
        spec.tracer != nullptr ? spec.tracer : current_tracer();
    const bool deterministic = tracer != nullptr && tracer->deterministic();

    if (spec.options != nullptr) {
        j.set("options", options_json(*spec.options, spec.check_rail,
                                      spec.num_threads));
    }
    if (spec.db != nullptr) {
        j.set("design_stats", design_json(*spec.db, spec.design));
    }
    if (spec.stats != nullptr) {
        j.set("legalizer", stats_json(*spec.stats, !deterministic));
    }
    if (spec.db != nullptr && spec.grid != nullptr) {
        j.set("quality",
              quality_json(*spec.db, *spec.grid, spec.check_rail));
    }
    if (!deterministic) {
        // Machine facts behind any wall-clock numbers in this report.
        // Omitted in deterministic mode for the same reason runtime_s is:
        // tick-clock reports must be byte-identical across machines.
        const ThreadPoolConfig tp = ThreadPool::config();
        Json env = Json::object();
        env.set("hardware_threads", Json::num(tp.hardware_threads));
        env.set("default_threads", Json::num(tp.default_threads));
        env.set("pool_workers", Json::num(tp.pool_workers));
        env.set("pool_workers_active", Json::num(tp.pool_workers_active));
        env.set("mrlg_threads_env", Json::boolean(tp.env_override));
        j.set("environment", std::move(env));

        // Wall-clock-only schema-v2 blocks. Excluded from deterministic
        // reports so goldens stay byte-identical with a timeline
        // installed (tests/test_timeline.cpp proves it).
        const Timeline* timeline = spec.timeline != nullptr
                                       ? spec.timeline
                                       : current_timeline();
        if (timeline != nullptr) {
            j.set("timeline",
                  schedule_report_json(derive_schedule_report(
                      *timeline,
                      ThreadPool::resolve_threads(spec.num_threads))));
        }
        if (spec.include_memory) {
            j.set("memory",
                  memory_report_json(
                      sample_memory(),
                      spec.db != nullptr ? spec.db->memory_breakdown()
                                         : std::vector<ArenaUsage>{},
                      spec.grid != nullptr ? spec.grid->memory_breakdown()
                                           : std::vector<ArenaUsage>{}));
        }
    }
    if (tracer != nullptr) {
        j.set("metrics", tracer->to_json());
    }
    return j;
}

bool write_run_report(const std::string& path, const RunReportSpec& spec) {
    return write_json_file(path, make_run_report(spec));
}

}  // namespace mrlg::obs
