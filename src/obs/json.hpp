#pragma once
/// \file json.hpp
/// Minimal write-only JSON value tree (objects keep insertion order) — the
/// serialization substrate for run reports (obs/run_report.hpp) and the
/// benchmark trajectory files. Promoted out of bench_common so the product
/// library can emit machine-readable reports; bench/ aliases this type.
/// Not a parser: goldens are compared as canonical serialized text.

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mrlg::obs {

class Json {
public:
    Json() = default;  // null
    static Json object();
    static Json array();
    static Json num(double v);
    static Json num(std::int64_t v);
    static Json num(std::size_t v);
    static Json num(int v) { return num(static_cast<std::int64_t>(v)); }
    static Json str(std::string v);
    static Json boolean(bool v);

    /// Object member (created/overwritten in insertion order).
    Json& set(const std::string& key, Json v);
    /// Array element.
    Json& push(Json v);

    void write(std::ostream& os, int indent = 0) const;
    /// Canonical serialized text (what `write` emits, plus a trailing
    /// newline) — the unit of golden-file comparison.
    std::string dump() const;

private:
    enum class Type { kNull, kBool, kNumber, kInteger, kString, kObject,
                      kArray };
    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::string string_;
    std::vector<std::pair<std::string, Json>> members_;
    std::vector<Json> elements_;
};

/// Writes `root` to `path` (pretty-printed, trailing newline). Returns
/// false (and logs) when the file cannot be opened.
bool write_json_file(const std::string& path, const Json& root);

}  // namespace mrlg::obs
