#pragma once
/// \file clock.hpp
/// Time source behind the obs tracer's phase timers. Production runs use
/// the wall clock; deterministic runs (golden regression tests, the
/// thread-count bit-identity property) substitute counted ticks so that a
/// serialized run report is a pure function of the execution path — never
/// of the scheduler or the machine.

#include <chrono>
#include <cstdint>

namespace mrlg::obs {

class Clock {
public:
    virtual ~Clock() = default;
    /// Monotonic "now". Wall clocks return nanoseconds since an arbitrary
    /// epoch; the tick clock returns a call counter scaled to fake
    /// nanoseconds.
    virtual std::uint64_t now_ns() = 0;
    /// "wall" or "ticks" — recorded in the run report so consumers know
    /// whether time values are physical.
    virtual const char* kind() const = 0;
};

class WallClock final : public Clock {
public:
    std::uint64_t now_ns() override {
        // obs Clock is itself a sanctioned wrapper: determinism-sensitive
        // users take TickClock instead.
        const auto now =
            std::chrono::steady_clock::now();  // mrlg-lint: allow(wall-clock)
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now.time_since_epoch())
                .count());
    }
    const char* kind() const override { return "wall"; }
};

/// Deterministic counted-tick clock: every read advances time by one fixed
/// step. A phase's "duration" becomes the number of tracer events nested
/// inside it — identical for identical execution paths, so reports are
/// byte-for-byte reproducible across runs and thread counts (the tracer
/// contract keeps all reads on the orchestrating thread).
class TickClock final : public Clock {
public:
    explicit TickClock(std::uint64_t step_ns = 1000) : step_ns_(step_ns) {}
    std::uint64_t now_ns() override {
        ticks_ += step_ns_;
        return ticks_;
    }
    const char* kind() const override { return "ticks"; }
    std::uint64_t reads() const { return ticks_ / step_ns_; }

private:
    std::uint64_t step_ns_;
    std::uint64_t ticks_ = 0;
};

}  // namespace mrlg::obs
