#pragma once
/// \file histogram.hpp
/// Log2-bucket histogram shared by both halves of the two-tracer model:
/// the deterministic serial Tracer (obs/trace.hpp) and the wall-clock
/// parallel Timeline (obs/timeline.hpp). Split out of trace.hpp so the
/// Timeline can aggregate distributions without including — or being
/// tempted to touch — the Tracer (tools/mrlg_lint enforces that isolation).

#include <algorithm>
#include <array>
#include <cstdint>

#include "obs/json.hpp"

namespace mrlg::obs {

/// Log2-bucket histogram: bucket i counts values in [2^(i-1), 2^i) with
/// bucket 0 = [0, 1); the last bucket absorbs everything larger. Negative
/// values clamp into bucket 0.
struct Histogram {
    static constexpr std::size_t kBuckets = 16;
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    void observe(double v) {
        ++count;
        sum += v;
        max = std::max(max, v);
        std::size_t bucket = 0;
        double edge = 1.0;  // bucket 0 = [0, 1)
        while (bucket + 1 < kBuckets && v >= edge) {
            ++bucket;
            edge *= 2.0;
        }
        ++buckets[bucket];
    }
};

/// Canonical histogram serialization (count/sum/max/buckets with trailing
/// all-zero buckets elided) — the one shape every report block uses.
inline Json histogram_json(const Histogram& h) {
    Json hj = Json::object();
    hj.set("count", Json::num(h.count));
    hj.set("sum", Json::num(h.sum));
    hj.set("max", Json::num(h.max));
    // Trailing all-zero buckets are elided; bucket i covers
    // [2^(i-1), 2^i), bucket 0 covers [0, 1).
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) {
        --last;
    }
    Json buckets = Json::array();
    for (std::size_t i = 0; i < last; ++i) {
        buckets.push(Json::num(h.buckets[i]));
    }
    hj.set("buckets", std::move(buckets));
    return hj;
}

}  // namespace mrlg::obs
