#pragma once
/// \file trace.hpp
/// Deterministic tracing/metrics: hierarchical phase timers, monotonic
/// counters, and log2-bucket histograms, all owned by a Tracer that
/// serializes into the run report (obs/run_report.hpp).
///
/// Activation model: instrumented code calls the MRLG_OBS_* macros, which
/// consult an ambient "current tracer" pointer. With no tracer installed
/// (the default) every macro is a single pointer load and branch, so
/// production hot paths pay nothing measurable; defining MRLG_NO_OBS
/// compiles the bodies out entirely while keeping the operands parsed and
/// name-resolved (the MRLG_DCHECK no-op idiom — instrumentation cannot
/// rot in an untraced build).
///
/// Determinism contract: a Tracer is single-threaded by design. Instrument
/// only from the orchestrating thread — worker-pool lambdas must never
/// touch the tracer. That is what makes tick-clock reports bit-identical
/// across `num_threads` values: the sequence of clock reads and metric
/// updates depends only on the (deterministic) serial execution path,
/// never on scheduling.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace mrlg::obs {

/// One node of the phase tree. Children are ordered by first entry, so the
/// serialized tree is deterministic.
struct PhaseNode {
    std::string name;
    std::uint64_t total_ns = 0;
    std::uint64_t calls = 0;
    std::vector<std::unique_ptr<PhaseNode>> children;

    /// Find-or-create a child (linear scan; phase fan-out is small).
    PhaseNode* child(std::string_view child_name);
};

class Tracer {
public:
    /// `clock` must outlive the tracer; nullptr = own wall clock.
    explicit Tracer(Clock* clock = nullptr);
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    void phase_begin(std::string_view name);
    void phase_end();
    void count(std::string_view name, std::uint64_t n = 1);
    void observe(std::string_view name, double v);

    /// Phase-tree root (name "run"; its total covers begin-to-serialize).
    const PhaseNode& root() const { return root_; }
    /// Counter value, 0 when the counter was never touched.
    std::uint64_t counter(std::string_view name) const;
    /// Histogram, nullptr when never observed.
    const Histogram* histogram(std::string_view name) const;
    const char* clock_kind() const { return clock_->kind(); }
    bool deterministic() const;

    /// Serializes phases/counters/histograms (the "metrics" sub-object of
    /// the run report). Closes the root span as a side effect.
    Json to_json();

private:
    WallClock default_clock_;
    Clock* clock_;
    PhaseNode root_;
    /// Open spans: (node, begin timestamp). stack_[0] is the root.
    std::vector<std::pair<PhaseNode*, std::uint64_t>> stack_;
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, Histogram, std::less<>> hists_;
};

/// Ambient tracer consulted by the MRLG_OBS_* macros; nullptr = tracing
/// disabled (the default).
Tracer* current_tracer();
void set_current_tracer(Tracer* tracer);

/// RAII install/restore of the ambient tracer.
class ScopedTracer {
public:
    explicit ScopedTracer(Tracer& tracer) : prev_(current_tracer()) {
        set_current_tracer(&tracer);
    }
    ~ScopedTracer() { set_current_tracer(prev_); }
    ScopedTracer(const ScopedTracer&) = delete;
    ScopedTracer& operator=(const ScopedTracer&) = delete;

private:
    Tracer* prev_;
};

/// RAII suppression of the ambient tracer. The tracer is deliberately a
/// plain (non-thread_local) global, so instrumented code running on
/// worker-pool threads would race on it and break the single-threaded
/// Tracer. Parallel phases that execute instrumented code on workers (the
/// legalizer's region-parallel plan phase) install a pause around the
/// fan-out — on every thread-count, including 1, so the emitted metrics
/// stay independent of the configuration — and the orchestrator re-emits
/// the aggregated counters afterwards.
class TracerPause {
public:
    TracerPause() : prev_(current_tracer()) { set_current_tracer(nullptr); }
    ~TracerPause() { set_current_tracer(prev_); }
    TracerPause(const TracerPause&) = delete;
    TracerPause& operator=(const TracerPause&) = delete;

private:
    Tracer* prev_;
};

/// RAII phase span against the ambient tracer. Captures the tracer at
/// construction so a span stays balanced even if the ambient pointer
/// changes inside the scope.
class ScopedPhase {
public:
    explicit ScopedPhase(std::string_view name) : tracer_(current_tracer()) {
        if (tracer_ != nullptr) {
            tracer_->phase_begin(name);
        }
    }
    ~ScopedPhase() {
        if (tracer_ != nullptr) {
            tracer_->phase_end();
        }
    }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
    Tracer* tracer_;
};

}  // namespace mrlg::obs

#define MRLG_OBS_CONCAT_IMPL(a, b) a##b
#define MRLG_OBS_CONCAT(a, b) MRLG_OBS_CONCAT_IMPL(a, b)

#ifndef MRLG_NO_OBS

/// Times the enclosing scope as a phase (nested under the innermost open
/// phase of the ambient tracer).
#define MRLG_OBS_PHASE(name) \
    ::mrlg::obs::ScopedPhase MRLG_OBS_CONCAT(mrlg_obs_phase_, __LINE__)(name)

/// Adds `n` to the named monotonic counter.
#define MRLG_OBS_COUNT(name, n)                                             \
    do {                                                                    \
        if (::mrlg::obs::Tracer* mrlg_obs_t = ::mrlg::obs::current_tracer();\
            mrlg_obs_t != nullptr) {                                        \
            mrlg_obs_t->count((name), static_cast<std::uint64_t>(n));       \
        }                                                                   \
    } while (false)

/// Records `v` into the named histogram.
#define MRLG_OBS_OBSERVE(name, v)                                           \
    do {                                                                    \
        if (::mrlg::obs::Tracer* mrlg_obs_t = ::mrlg::obs::current_tracer();\
            mrlg_obs_t != nullptr) {                                        \
            mrlg_obs_t->observe((name), static_cast<double>(v));            \
        }                                                                   \
    } while (false)

#else  // MRLG_NO_OBS: compiled out, operands still parse and name-resolve
       // (the MRLG_DCHECK idiom — see util/assert.hpp).

#define MRLG_OBS_PHASE(name)                                                \
    do {                                                                    \
        static_cast<void>(sizeof(name));                                    \
    } while (false)

#define MRLG_OBS_COUNT(name, n)                                             \
    do {                                                                    \
        static_cast<void>(sizeof(name));                                    \
        static_cast<void>(sizeof(n));                                       \
    } while (false)

#define MRLG_OBS_OBSERVE(name, v)                                           \
    do {                                                                    \
        static_cast<void>(sizeof(name));                                    \
        static_cast<void>(sizeof(v));                                       \
    } while (false)

#endif  // MRLG_NO_OBS
