#pragma once
/// \file memres.hpp
/// Process memory + hardware-counter telemetry for the run report's
/// wall-clock-only `memory` block. Everything here is observational and
/// platform-dependent by nature, so — like the Timeline — none of it may
/// feed deterministic output: the block is emitted only under the wall
/// clock and is excluded from goldens.
///
/// Three layers, each degrading gracefully:
///   * RSS via /proc/self/status (VmHWM/VmRSS), falling back to
///     getrusage(ru_maxrss); zeros when neither source exists.
///   * Heap via mallinfo2 (glibc only; `heap_available` says whether the
///     numbers mean anything).
///   * Optional perf_event_open instruction/cycle/cache counters, opt-in
///     via the MRLG_PERF_COUNTERS env var and silently unavailable when
///     the kernel interface is missing or access is denied (CI reports
///     SKIP, never FAIL).

#include <cstdint>
#include <vector>

#include "db/arena_stats.hpp"
#include "obs/json.hpp"

namespace mrlg::obs {

/// Point-in-time snapshot of the process's memory footprint.
struct MemorySample {
    std::uint64_t peak_rss_bytes = 0;     ///< VmHWM / ru_maxrss.
    std::uint64_t current_rss_bytes = 0;  ///< VmRSS (0 with the fallback).
    std::uint64_t heap_bytes = 0;         ///< mallinfo2 in-use (arena+mmap).
    bool rss_available = false;
    bool heap_available = false;
};

/// Reads the current process footprint. Cheap (one /proc read), but meant
/// for report time, not hot loops.
MemorySample sample_memory();

/// Serializes the `memory` block: the process sample plus the db arena
/// breakdowns (pass what the caller has; empty vectors are omitted).
Json memory_report_json(const MemorySample& sample,
                        const std::vector<ArenaUsage>& db_arenas,
                        const std::vector<ArenaUsage>& grid_arenas);

/// Hardware counters over a measured region. Construction opens the
/// counters only when `requested()` (MRLG_PERF_COUNTERS set to anything
/// but "0"); `available()` reports whether they actually count.
class PerfCounters {
public:
    struct Values {
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        std::uint64_t cache_references = 0;
        std::uint64_t cache_misses = 0;
        bool valid = false;
    };

    /// True when the user asked for counters via MRLG_PERF_COUNTERS.
    static bool requested();

    PerfCounters();
    ~PerfCounters();
    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    bool available() const { return available_; }
    void start();
    void stop();
    /// Counter deltas accumulated between start/stop pairs; `valid` is
    /// false when the counters never opened.
    Values read() const;

private:
    static constexpr int kNumEvents = 4;
    int fds_[kNumEvents] = {-1, -1, -1, -1};
    bool available_ = false;
};

/// Serializes a counter reading (the `memory.perf` sub-block); callers
/// skip it entirely when `!values.valid`.
Json perf_counters_json(const PerfCounters::Values& values);

}  // namespace mrlg::obs
