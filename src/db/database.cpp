#include "db/database.hpp"

#include "util/assert.hpp"

namespace mrlg {

std::size_t Database::check(CellId id) const {
    MRLG_ASSERT(id.valid() && id.index() < cells_.size(), "bad CellId");
    return id.index();
}
std::size_t Database::check(NetId id) const {
    MRLG_ASSERT(id.valid() && id.index() < nets_.size(), "bad NetId");
    return id.index();
}
std::size_t Database::check(PinId id) const {
    MRLG_ASSERT(id.valid() && id.index() < pins_.size(), "bad PinId");
    return id.index();
}

CellId Database::add_cell(Cell cell) {
    MRLG_ASSERT(cell.width() > 0 && cell.height() > 0,
                "cell dimensions must be positive");
    const CellId id{static_cast<CellId::underlying>(cells_.size())};
    auto [it, inserted] = cell_by_name_.emplace(cell.name(), id);
    MRLG_ASSERT(inserted, "duplicate cell name: " + cell.name());
    static_cast<void>(it);
    cells_.push_back(std::move(cell));
    return id;
}

std::vector<CellId> Database::movable_cells() const {
    std::vector<CellId> out;
    out.reserve(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        if (!cells_[i].fixed()) {
            out.push_back(CellId{static_cast<CellId::underlying>(i)});
        }
    }
    return out;
}

CellId Database::find_cell(const std::string& name) const {
    const auto it = cell_by_name_.find(name);
    return it == cell_by_name_.end() ? CellId{} : it->second;
}

NetId Database::add_net(std::string name) {
    const NetId id{static_cast<NetId::underlying>(nets_.size())};
    auto [it, inserted] = net_by_name_.emplace(name, id);
    MRLG_ASSERT(inserted, "duplicate net name: " + name);
    static_cast<void>(it);
    nets_.emplace_back(std::move(name));
    return id;
}

PinId Database::add_pin(CellId cell_id, NetId net_id, double offset_x,
                        double offset_y) {
    check(cell_id);
    check(net_id);
    const PinId id{static_cast<PinId::underlying>(pins_.size())};
    pins_.push_back(Pin{cell_id, net_id, offset_x, offset_y});
    cells_[cell_id.index()].add_pin(id);
    nets_[net_id.index()].add_pin(id);
    return id;
}

NetId Database::find_net(const std::string& name) const {
    const auto it = net_by_name_.find(name);
    return it == net_by_name_.end() ? NetId{} : it->second;
}

double Database::density() const {
    const std::int64_t free_area = fp_.free_site_area();
    if (free_area <= 0) {
        return 0.0;
    }
    std::int64_t cell_area = 0;
    for (const Cell& c : cells_) {
        if (!c.fixed()) {
            cell_area += static_cast<std::int64_t>(c.width()) * c.height();
        }
    }
    return static_cast<double>(cell_area) / static_cast<double>(free_area);
}

std::size_t Database::num_single_row_cells() const {
    std::size_t n = 0;
    for (const Cell& c : cells_) {
        if (!c.fixed() && c.height() == 1) {
            ++n;
        }
    }
    return n;
}

std::size_t Database::num_multi_row_cells() const {
    std::size_t n = 0;
    for (const Cell& c : cells_) {
        if (!c.fixed() && c.height() > 1) {
            ++n;
        }
    }
    return n;
}

namespace {

/// Heap bytes a std::string actually owns (0 when the small-string
/// optimisation keeps it inline).
std::size_t string_heap_bytes(const std::string& s) {
    return s.capacity() + 1 > sizeof(std::string) ? s.capacity() + 1 : 0;
}

/// Rough per-entry footprint of one unordered_map node plus the bucket
/// array. Implementation-defined in detail, but capacity-proportional and
/// stable enough for trend tracking, which is all the memory block claims.
template <typename Map>
std::size_t name_map_bytes(const Map& map) {
    std::size_t bytes = map.bucket_count() * sizeof(void*);
    for (const auto& [name, id] : map) {
        bytes += sizeof(typename Map::value_type) + 2 * sizeof(void*) +
                 string_heap_bytes(name);
        static_cast<void>(id);
    }
    return bytes;
}

}  // namespace

std::vector<ArenaUsage> Database::memory_breakdown() const {
    std::vector<ArenaUsage> arenas;

    std::size_t cell_bytes = cells_.capacity() * sizeof(Cell);
    for (const Cell& c : cells_) {
        cell_bytes += string_heap_bytes(c.name());
        cell_bytes += c.pins().capacity() * sizeof(PinId);
    }
    arenas.push_back({"cells", cell_bytes, cells_.size()});

    std::size_t net_bytes = nets_.capacity() * sizeof(Net);
    for (const Net& n : nets_) {
        net_bytes += string_heap_bytes(n.name());
        net_bytes += n.pins().capacity() * sizeof(PinId);
    }
    arenas.push_back({"nets", net_bytes, nets_.size()});

    arenas.push_back(
        {"pins", pins_.capacity() * sizeof(Pin), pins_.size()});

    std::size_t fp_bytes = fp_.rows().capacity() * sizeof(Row) +
                           fp_.blockages().capacity() * sizeof(Rect) +
                           fp_.fences().capacity() * sizeof(Floorplan::Fence);
    arenas.push_back({"floorplan", fp_bytes, fp_.rows().size()});

    arenas.push_back({"name_maps",
                      name_map_bytes(cell_by_name_) +
                          name_map_bytes(net_by_name_),
                      cell_by_name_.size() + net_by_name_.size()});
    return arenas;
}

void Database::freeze_fixed_cells() {
    for (const Cell& c : cells_) {
        if (c.fixed()) {
            MRLG_ASSERT(c.placed(), "fixed cell must have a position: " +
                                        c.name());
            fp_.add_blockage(c.rect());
        }
    }
}

}  // namespace mrlg
