#pragma once
/// \file net.hpp
/// Netlist: pins carry an offset from the owning cell's lower-left corner
/// in fractional site units; HPWL is evaluated from pin positions.

#include <string>
#include <vector>

#include "db/types.hpp"

namespace mrlg {

/// A pin belongs to exactly one cell and one net.
struct Pin {
    CellId cell;
    NetId net;
    /// Offset from cell lower-left, fractional site units.
    double offset_x = 0.0;
    double offset_y = 0.0;
};

class Net {
public:
    explicit Net(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    const std::vector<PinId>& pins() const { return pins_; }
    void add_pin(PinId pin) { pins_.push_back(pin); }
    std::size_t degree() const { return pins_.size(); }

private:
    std::string name_;
    std::vector<PinId> pins_;
};

}  // namespace mrlg
