#pragma once
/// \file types.hpp
/// Strongly-typed identifiers and small enums shared by the database.
///
/// Ids are thin wrappers over an int32 index into the owning container;
/// distinct tag types prevent a CellId being passed where a NetId is
/// expected (Core Guidelines I.4: make interfaces precisely typed).

#include <cstdint>
#include <functional>
#include <ostream>

namespace mrlg {

namespace detail {

template <typename Tag>
class Id {
public:
    using underlying = std::int32_t;
    static constexpr underlying kInvalid = -1;

    constexpr Id() = default;
    constexpr explicit Id(underlying v) : value_(v) {}

    constexpr underlying value() const { return value_; }
    constexpr bool valid() const { return value_ >= 0; }
    constexpr std::size_t index() const {
        return static_cast<std::size_t>(value_);
    }

    friend constexpr bool operator==(Id, Id) = default;
    friend constexpr auto operator<=>(Id, Id) = default;

private:
    underlying value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
    if (id.valid()) {
        return os << id.value();
    }
    return os << "<invalid>";
}

}  // namespace detail

struct CellTag {};
struct NetTag {};
struct PinTag {};
struct SegmentTag {};

/// Index of a cell in Database::cells().
using CellId = detail::Id<CellTag>;
/// Index of a net in Database::nets().
using NetId = detail::Id<NetTag>;
/// Index of a pin in Database::pins().
using PinId = detail::Id<PinTag>;
/// Index of a segment in SegmentGrid::segments().
using SegmentId = detail::Id<SegmentTag>;

/// Power-rail phase: which row parity the *bottom* edge of a cell must sit
/// on so that its VDD/VSS rails line up (paper §2, constraint 4). Only
/// binding for cells whose height is an even number of rows; odd-height
/// cells can be flipped onto either parity.
enum class RailPhase : std::uint8_t { kEven = 0, kOdd = 1 };

/// Cell orientation. mrlg only distinguishes upright (N) from vertically
/// flipped (FS), which is what power-rail matching needs.
enum class Orient : std::uint8_t { kN = 0, kFS = 1 };

inline const char* to_string(RailPhase p) {
    return p == RailPhase::kEven ? "even" : "odd";
}
inline const char* to_string(Orient o) { return o == Orient::kN ? "N" : "FS"; }

}  // namespace mrlg

template <typename Tag>
struct std::hash<mrlg::detail::Id<Tag>> {
    std::size_t operator()(mrlg::detail::Id<Tag> id) const noexcept {
        return std::hash<std::int32_t>{}(id.value());
    }
};
