#include "db/segment.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace mrlg {

SegmentGrid SegmentGrid::build(const Database& db) {
    SegmentGrid grid;
    const Floorplan& fp = db.floorplan();
    grid.row_index_.assign(static_cast<std::size_t>(fp.num_rows()) + 1, 0);

    for (const Row& row : fp.rows()) {
        // Collect blockage cuts on this row, merged left-to-right.
        std::vector<Span> cuts;
        const Rect row_rect{row.x, row.y, row.num_sites, 1};
        for (const Rect& b : fp.blockages()) {
            const Rect ov = intersect(row_rect, b);
            if (!ov.empty()) {
                cuts.push_back(ov.x_span());
            }
        }
        std::sort(cuts.begin(), cuts.end(),
                  [](const Span& a, const Span& b2) { return a.lo < b2.lo; });

        // Fence intervals on this row (merged per region boundary cut).
        struct FenceCut {
            Span span;
            int region;
        };
        std::vector<FenceCut> fence_cuts;
        const Rect row_rect2{row.x, row.y, row.num_sites, 1};
        for (const Floorplan::Fence& f : fp.fences()) {
            const Rect ov = intersect(row_rect2, f.rect);
            if (!ov.empty()) {
                fence_cuts.push_back(FenceCut{ov.x_span(), f.region});
            }
        }
        std::sort(fence_cuts.begin(), fence_cuts.end(),
                  [](const FenceCut& a, const FenceCut& b) {
                      return a.span.lo < b.span.lo;
                  });
        // Merge touching/overlapping same-region pieces so a fence built
        // from several rects still yields one contiguous segment.
        {
            std::vector<FenceCut> merged;
            for (const FenceCut& fc : fence_cuts) {
                if (!merged.empty() &&
                    merged.back().region == fc.region &&
                    fc.span.lo <= merged.back().span.hi) {
                    merged.back().span.hi =
                        std::max(merged.back().span.hi, fc.span.hi);
                } else {
                    merged.push_back(fc);
                }
            }
            fence_cuts = std::move(merged);
        }

        SiteCoord cursor = row.x;
        auto emit_tagged = [&](SiteCoord lo, SiteCoord hi, int region) {
            if (hi > lo) {
                const SegmentId id{
                    static_cast<SegmentId::underlying>(grid.segments_.size())};
                grid.segments_.push_back(
                    Segment{id, row.y, Span{lo, hi}, region, {}});
                grid.row_order_.push_back(id);
                ++grid.row_index_[static_cast<std::size_t>(row.y) + 1];
            }
        };
        // Splits a blockage-free span at fence boundaries and emits each
        // piece with its region tag.
        auto emit = [&](SiteCoord lo, SiteCoord hi) {
            SiteCoord pos = lo;
            for (const FenceCut& fc : fence_cuts) {
                if (fc.span.hi <= pos || fc.span.lo >= hi) {
                    continue;
                }
                const SiteCoord f_lo = std::max(fc.span.lo, pos);
                const SiteCoord f_hi = std::min(fc.span.hi, hi);
                emit_tagged(pos, f_lo, 0);
                // Same-region fences may abut/overlap; extend through them
                // is unnecessary — emit piecewise (queries only need tags).
                emit_tagged(f_lo, f_hi, fc.region);
                pos = std::max(pos, f_hi);
            }
            emit_tagged(pos, hi, 0);
        };
        for (const Span& c : cuts) {
            if (c.lo > cursor) {
                emit(cursor, c.lo);
            }
            cursor = std::max(cursor, c.hi);
        }
        emit(cursor, static_cast<SiteCoord>(row.x + row.num_sites));
    }

    // Prefix-sum row_index_ so row_segments(y) is a contiguous span.
    for (std::size_t y = 1; y < grid.row_index_.size(); ++y) {
        grid.row_index_[y] += grid.row_index_[y - 1];
    }
    return grid;
}

const Segment& SegmentGrid::segment(SegmentId id) const {
    MRLG_ASSERT(id.valid() && id.index() < segments_.size(), "bad SegmentId");
    return segments_[id.index()];
}

Segment& SegmentGrid::mutable_segment(SegmentId id) {
    MRLG_ASSERT(id.valid() && id.index() < segments_.size(), "bad SegmentId");
    return segments_[id.index()];
}

std::span<const SegmentId> SegmentGrid::row_segments(SiteCoord y) const {
    if (y < 0 || static_cast<std::size_t>(y) + 1 >= row_index_.size()) {
        return {};
    }
    const std::size_t lo = row_index_[static_cast<std::size_t>(y)];
    const std::size_t hi = row_index_[static_cast<std::size_t>(y) + 1];
    return std::span<const SegmentId>(row_order_.data() + lo, hi - lo);
}

SegmentId SegmentGrid::containing_segment(SiteCoord y, Span xs,
                                          int region) const {
    for (const SegmentId id : row_segments(y)) {
        const Segment& s = segments_[id.index()];
        if (s.span.contains(xs)) {
            if (region == kAnyRegion || s.region == region) {
                return id;
            }
            return SegmentId{};  // right sites, wrong fence region
        }
        if (s.span.lo > xs.lo) {
            break;  // segments sorted by x; no later segment can contain xs
        }
    }
    return SegmentId{};
}

std::pair<std::size_t, std::size_t> SegmentGrid::cells_overlapping(
    const Database& db, const Segment& s, Span xs) const {
    // First cell whose right edge exceeds xs.lo: candidates start at the
    // predecessor of the first cell with x >= xs.lo (it may stick into xs).
    const auto& list = s.cells;
    auto it = std::lower_bound(
        list.begin(), list.end(), xs.lo,
        [&](CellId c, SiteCoord x) { return db.cell(c).x() < x; });
    std::size_t first = static_cast<std::size_t>(it - list.begin());
    if (first > 0) {
        const Cell& prev = db.cell(list[first - 1]);
        if (prev.x() + prev.width() > xs.lo) {
            --first;
        }
    }
    std::size_t last = first;
    while (last < list.size() && db.cell(list[last]).x() < xs.hi) {
        ++last;
    }
    return {first, last};
}

bool SegmentGrid::region_free(const Database& db, const Rect& r,
                              CellId ignore) const {
    for (SiteCoord y = r.y; y < r.y_hi(); ++y) {
        for (const SegmentId id : row_segments(y)) {
            const Segment& s = segments_[id.index()];
            if (!s.span.overlaps(r.x_span())) {
                continue;
            }
            const auto [first, last] = cells_overlapping(db, s, r.x_span());
            for (std::size_t i = first; i < last; ++i) {
                if (s.cells[i] != ignore) {
                    return false;
                }
            }
        }
    }
    return true;
}

bool SegmentGrid::placeable(const Database& db, const Rect& r,
                            CellId ignore, int region) const {
    for (SiteCoord y = r.y; y < r.y_hi(); ++y) {
        if (!containing_segment(y, r.x_span(), region).valid()) {
            return false;
        }
    }
    return region_free(db, r, ignore);
}

void SegmentGrid::place(Database& db, CellId c, SiteCoord x, SiteCoord y) {
    Cell& cell = db.cell(c);
    MRLG_ASSERT(!cell.fixed(), "cannot place a fixed cell");
    MRLG_ASSERT(!cell.placed(), "cell already placed: " + cell.name());
    const Span xs{x, x + cell.width()};
    // Validate the whole footprint before mutating anything, so a failed
    // place leaves the cell untouched.
    std::vector<SegmentId> target_segments;
    target_segments.reserve(static_cast<std::size_t>(cell.height()));
    for (SiteCoord row = y; row < y + cell.height(); ++row) {
        const SegmentId sid = containing_segment(row, xs, cell.region());
        MRLG_ASSERT(sid.valid(),
                    "cell footprint not contained in a segment of its "
                    "fence region: " +
                        cell.name());
        target_segments.push_back(sid);
    }
    cell.set_pos(x, y);
    for (const SegmentId sid : target_segments) {
        auto& list = mutable_segment(sid).cells;
        const auto it = std::lower_bound(
            list.begin(), list.end(), x,
            [&](CellId other, SiteCoord xv) { return db.cell(other).x() < xv; });
        list.insert(it, c);
    }
    // Odd-height cells flip to match the row's rail phase; even-height
    // cells keep N (their placement row is what must match).
    if (cell.height() % 2 == 1) {
        const bool phase_match =
            (y % 2 == 0) == (cell.rail_phase() == RailPhase::kEven);
        cell.set_orient(phase_match ? Orient::kN : Orient::kFS);
    } else {
        cell.set_orient(Orient::kN);
    }
}

void SegmentGrid::remove(Database& db, CellId c) {
    Cell& cell = db.cell(c);
    MRLG_ASSERT(cell.placed(), "cell not placed: " + cell.name());
    const Span xs{cell.x(), static_cast<SiteCoord>(cell.x() + cell.width())};
    for (SiteCoord row = cell.y(); row < cell.y() + cell.height(); ++row) {
        const SegmentId sid =
            containing_segment(row, xs, cell.region());
        MRLG_ASSERT(sid.valid(), "placed cell lost its segment");
        auto& list = mutable_segment(sid).cells;
        const std::size_t idx = index_in(db, segments_[sid.index()], c);
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    cell.unplace();
}

std::size_t SegmentGrid::index_in(const Database& db, const Segment& s,
                                  CellId c) const {
    const Cell& cell = db.cell(c);
    const auto& list = s.cells;
    auto it = std::lower_bound(
        list.begin(), list.end(), cell.x(),
        [&](CellId other, SiteCoord xv) { return db.cell(other).x() < xv; });
    // Several transiently-equal x values are impossible for *placed* cells
    // (lists are overlap-free), but be robust: scan forward for the id.
    while (it != list.end() && *it != c &&
           db.cell(*it).x() == cell.x()) {
        ++it;
    }
    MRLG_ASSERT(it != list.end() && *it == c,
                "cell not found in segment list: " + cell.name());
    return static_cast<std::size_t>(it - list.begin());
}

std::vector<ArenaUsage> SegmentGrid::memory_breakdown() const {
    std::vector<ArenaUsage> arenas;
    std::size_t list_bytes = 0;
    std::size_t cell_refs = 0;
    for (const Segment& s : segments_) {
        list_bytes += s.cells.capacity() * sizeof(CellId);
        cell_refs += s.cells.size();
    }
    arenas.push_back({"segments", segments_.capacity() * sizeof(Segment),
                      segments_.size()});
    arenas.push_back({"segment_cell_lists", list_bytes, cell_refs});
    arenas.push_back({"row_index",
                      row_order_.capacity() * sizeof(SegmentId) +
                          row_index_.capacity() * sizeof(std::size_t),
                      row_order_.size()});
    return arenas;
}

std::string SegmentGrid::audit(const Database& db) const {
    std::ostringstream err;
    std::vector<int> appearances(db.num_cells(), 0);
    for (const Segment& s : segments_) {
        SiteCoord prev_end = s.span.lo;
        for (std::size_t i = 0; i < s.cells.size(); ++i) {
            const Cell& c = db.cell(s.cells[i]);
            if (!c.placed()) {
                err << "unplaced cell " << c.name() << " in segment list\n";
                continue;
            }
            appearances[s.cells[i].index()] += 1;
            if (c.y() > s.y || c.y() + c.height() <= s.y) {
                err << "cell " << c.name() << " listed on wrong row " << s.y
                    << "\n";
            }
            if (c.x() < s.span.lo || c.x() + c.width() > s.span.hi) {
                err << "cell " << c.name() << " outside segment span\n";
            }
            if (c.region() != s.region) {
                err << "cell " << c.name() << " in wrong fence region\n";
            }
            if (c.x() < prev_end) {
                err << "overlap/order violation before " << c.name()
                    << " on row " << s.y << "\n";
            }
            prev_end = c.x() + c.width();
        }
    }
    for (std::size_t i = 0; i < db.num_cells(); ++i) {
        const Cell& c = db.cells()[i];
        if (c.fixed()) {
            continue;
        }
        const int expected = c.placed() ? c.height() : 0;
        if (appearances[i] != expected) {
            err << "cell " << c.name() << " appears in " << appearances[i]
                << " lists, expected " << expected << "\n";
        }
    }
    return err.str();
}

}  // namespace mrlg
