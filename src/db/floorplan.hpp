#pragma once
/// \file floorplan.hpp
/// Die outline, placement rows, site dimensions and placement blockages.
///
/// Rows are uniform-height (one site height each, paper §2) and indexed
/// bottom-up: row i occupies y ∈ [i, i+1) in site units. Rows may start at
/// different x origins / have different widths (non-rectangular dies).

#include <vector>

#include "db/types.hpp"
#include "util/geometry.hpp"

namespace mrlg {

/// One placement row as defined by the floorplan (before blockage cuts).
struct Row {
    SiteCoord y = 0;        ///< Row index == lower y in site units.
    SiteCoord x = 0;        ///< Leftmost site of the row.
    SiteCoord num_sites = 0;  ///< Width in sites.

    Span x_span() const { return Span{x, x + num_sites}; }
    /// Bottom-rail phase of this row: rows alternate VDD/VSS, so parity is
    /// the whole story (paper §2 constraint 4).
    RailPhase rail_phase() const {
        return (y % 2 == 0) ? RailPhase::kEven : RailPhase::kOdd;
    }
};

class Floorplan {
public:
    Floorplan() = default;
    /// Rectangular die helper: `num_rows` rows, each `sites_per_row` wide,
    /// origin at (0,0).
    Floorplan(SiteCoord num_rows, SiteCoord sites_per_row,
              double site_w_um = 0.2, double site_h_um = 1.71);

    // --- site dimensions (microns), for displacement/HPWL reporting -------
    double site_w_um() const { return site_w_um_; }
    double site_h_um() const { return site_h_um_; }
    void set_site_dims_um(double w_um, double h_um) {
        site_w_um_ = w_um;
        site_h_um_ = h_um;
    }

    // --- rows ---------------------------------------------------------------
    const std::vector<Row>& rows() const { return rows_; }
    SiteCoord num_rows() const { return static_cast<SiteCoord>(rows_.size()); }
    bool has_row(SiteCoord y) const { return y >= 0 && y < num_rows(); }
    const Row& row(SiteCoord y) const;
    /// Appends a row; rows must be added bottom-up with y == index.
    void add_row(Row row);

    // --- blockages ----------------------------------------------------------
    /// A blockage removes its sites from every row it covers. Fixed macros
    /// are registered here by Database::freeze_fixed_cells().
    const std::vector<Rect>& blockages() const { return blockages_; }
    void add_blockage(const Rect& r) { blockages_.push_back(r); }

    // --- fence regions --------------------------------------------------
    /// Declares the sites of `r` as belonging to fence `region` (> 0).
    /// Fences of different regions must not overlap; blockages win over
    /// fences. ISPD2015 semantics: fence members stay inside, core cells
    /// stay outside (enforced by SegmentGrid / the legality checker).
    void add_fence(int region, const Rect& r);
    struct Fence {
        int region;
        Rect rect;
    };
    const std::vector<Fence>& fences() const { return fences_; }

    /// Bounding box over all rows (site units).
    Rect die() const;

    /// Total non-blocked placement area in site units (sites × rows).
    std::int64_t free_site_area() const;

private:
    std::vector<Row> rows_;
    std::vector<Rect> blockages_;
    std::vector<Fence> fences_;
    double site_w_um_ = 0.2;
    double site_h_um_ = 1.71;
};

}  // namespace mrlg
