#pragma once
/// \file cell.hpp
/// Movable/fixed standard cell instance. All geometry in site units
/// (paper §2.1.1): width in site widths, height in whole rows.

#include <string>
#include <vector>

#include "db/types.hpp"
#include "db/write_cap.hpp"
#include "util/geometry.hpp"

namespace mrlg {

class Cell {
public:
    Cell(std::string name, SiteCoord width, SiteCoord height,
         RailPhase rail_phase = RailPhase::kEven, bool fixed = false)
        : name_(std::move(name)),
          w_(width),
          h_(height),
          rail_phase_(rail_phase),
          fixed_(fixed) {}

    const std::string& name() const { return name_; }
    SiteCoord width() const { return w_; }
    SiteCoord height() const { return h_; }
    bool fixed() const { return fixed_; }
    /// True for cells spanning an even number of rows — these are the ones
    /// restricted to alternate rows (paper §2 constraint 4).
    bool even_height() const { return (h_ % 2) == 0; }
    RailPhase rail_phase() const { return rail_phase_; }
    bool multi_row() const { return h_ > 1; }

    /// Fence region this cell belongs to (ISPD2015 fence semantics):
    /// 0 = the default core region; a member of fence r may only occupy
    /// placement sites of fence r, and core cells may not enter fences.
    int region() const { return region_; }
    void set_region(int r) MRLG_REQUIRES(grid_write_cap()) { region_ = r; }

    // --- global-placement input position (fractional site units) ---------
    double gp_x() const { return gp_x_; }
    double gp_y() const { return gp_y_; }
    void set_gp(double x, double y) MRLG_REQUIRES(grid_write_cap()) {
        gp_x_ = x;
        gp_y_ = y;
    }

    // --- legalized position ----------------------------------------------
    bool placed() const { return placed_; }
    /// Lower-left corner, site units. Only meaningful when placed().
    SiteCoord x() const { return x_; }
    SiteCoord y() const { return y_; }
    Point pos() const { return Point{x_, y_}; }
    Rect rect() const { return Rect{x_, y_, w_, h_}; }
    Orient orient() const { return orient_; }

    void set_pos(SiteCoord x, SiteCoord y) MRLG_REQUIRES(grid_write_cap()) {
        x_ = x;
        y_ = y;
        placed_ = true;
    }
    void set_x(SiteCoord x) MRLG_REQUIRES(grid_write_cap()) { x_ = x; }
    void set_orient(Orient o) MRLG_REQUIRES(grid_write_cap()) { orient_ = o; }
    void unplace() MRLG_REQUIRES(grid_write_cap()) { placed_ = false; }

    // --- connectivity ------------------------------------------------------
    const std::vector<PinId>& pins() const { return pins_; }
    void add_pin(PinId pin) MRLG_REQUIRES(grid_write_cap()) {
        pins_.push_back(pin);
    }

private:
    std::string name_;
    SiteCoord w_;
    SiteCoord h_;
    RailPhase rail_phase_;
    bool fixed_;
    int region_ = 0;

    double gp_x_ = 0.0;
    double gp_y_ = 0.0;

    bool placed_ = false;
    SiteCoord x_ = 0;
    SiteCoord y_ = 0;
    Orient orient_ = Orient::kN;

    std::vector<PinId> pins_;
};

}  // namespace mrlg
