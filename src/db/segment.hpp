#pragma once
/// \file segment.hpp
/// Segment model of paper §2.1.2: a segment is a maximal run of non-blocked
/// placement sites on one row. Every placed movable cell of height h is
/// referenced by the cell list of each of the h segments it crosses; lists
/// are kept sorted by cell x.

#include <span>
#include <vector>

#include "db/arena_stats.hpp"
#include "db/database.hpp"
#include "db/types.hpp"
#include "db/write_cap.hpp"
#include "util/geometry.hpp"

namespace mrlg {

struct Segment {
    SegmentId id;
    SiteCoord y = 0;  ///< Row index.
    Span span;        ///< Non-blocked site range [lo, hi).
    int region = 0;   ///< Fence region of these sites (0 = core).
    /// Placed movable cells overlapping this row, ordered by x
    /// (non-overlapping, so strictly increasing x).
    std::vector<CellId> cells;

    SiteCoord x() const { return span.lo; }
    SiteCoord width() const { return span.length(); }
};

/// Wildcard for region-filtered queries: match any region.
inline constexpr int kAnyRegion = -1;

/// Geometric bookkeeping for the whole die. Built once from the floorplan
/// (rows minus blockages, which include frozen fixed-cell footprints), then
/// kept in sync by place()/remove().
class SegmentGrid {
public:
    SegmentGrid() = default;

    /// Cuts every row by the floorplan blockages. Call after
    /// Database::freeze_fixed_cells(). Does not look at movable cells.
    static SegmentGrid build(const Database& db);

    const std::vector<Segment>& segments() const { return segments_; }
    const Segment& segment(SegmentId id) const;
    std::size_t num_segments() const { return segments_.size(); }

    /// Segment ids of row y, sorted by x span.
    std::span<const SegmentId> row_segments(SiteCoord y) const;

    /// Segment on row y whose span fully contains [xs.lo, xs.hi) and whose
    /// region matches (kAnyRegion matches all); invalid id if none.
    SegmentId containing_segment(SiteCoord y, Span xs,
                                 int region = kAnyRegion) const;

    /// True when every row slice of `r` lies inside some segment of the
    /// given region and no placed movable cell (other than `ignore`)
    /// overlaps `r`.
    bool placeable(const Database& db, const Rect& r,
                   CellId ignore = CellId{},
                   int region = kAnyRegion) const;

    /// True when no placed movable cell (other than `ignore`) overlaps `r`.
    /// Does not check row containment.
    bool region_free(const Database& db, const Rect& r,
                     CellId ignore = CellId{}) const;

    /// Inserts `c` at (x, y): updates the cell position and registers it in
    /// the h covered segment lists. Requires the footprint to be contained
    /// in segments; does NOT require it to be overlap-free (MLL commits the
    /// target before pushing neighbours).
    void place(Database& db, CellId c, SiteCoord x, SiteCoord y)
        MRLG_REQUIRES(grid_write_cap());

    /// Removes a placed cell from its segment lists and marks it unplaced.
    void remove(Database& db, CellId c) MRLG_REQUIRES(grid_write_cap());

    /// Index of placed cell `c` in segment `s`'s list (by binary search on
    /// x; list order is an invariant). Asserts if absent.
    std::size_t index_in(const Database& db, const Segment& s, CellId c) const;

    /// Cells of segment `s` whose footprint intersects x range `xs`.
    /// Returns [first, last) index range into s.cells.
    std::pair<std::size_t, std::size_t> cells_overlapping(
        const Database& db, const Segment& s, Span xs) const;

    /// Internal-consistency audit: every placed movable cell appears in
    /// exactly its h covering segments, lists sorted and within span.
    /// Returns a human-readable error string, or empty when consistent.
    std::string audit(const Database& db) const;

    /// Capacity-based bytes per grid arena (segments + per-segment cell
    /// lists, row index) for the obs memory-telemetry block.
    std::vector<ArenaUsage> memory_breakdown() const;

    /// Fault injection for the audit tests ONLY: direct write access to a
    /// segment's cell list so fixtures can break the invariants the
    /// auditors must catch. Never call from library code.
    std::vector<CellId>& mutable_cells_for_test(SegmentId id)
        MRLG_REQUIRES(grid_write_cap()) {
        return mutable_segment(id).cells;
    }

private:
    Segment& mutable_segment(SegmentId id) MRLG_REQUIRES(grid_write_cap());

    std::vector<Segment> segments_;
    /// segment ids grouped per row; row_index_[y] .. row_index_[y+1].
    std::vector<SegmentId> row_order_;
    std::vector<std::size_t> row_index_;
};

}  // namespace mrlg
