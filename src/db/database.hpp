#pragma once
/// \file database.hpp
/// Owning container for one design: floorplan, cells, nets, pins.
///
/// The Database is deliberately dumb storage plus name lookup; geometric
/// bookkeeping (which cells sit where) lives in SegmentGrid, and all
/// algorithmic logic lives in mrlg::legalize / mrlg::gp.

#include <string>
#include <unordered_map>
#include <vector>

#include "db/arena_stats.hpp"
#include "db/cell.hpp"
#include "db/floorplan.hpp"
#include "db/net.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

class Database {
public:
    Database() = default;
    explicit Database(Floorplan fp) : fp_(std::move(fp)) {}

    // Mutating entry points carry MRLG_REQUIRES(grid_write_cap()): only
    // serial construction / commit phases may call them (db/write_cap.hpp).
    // The const accessors are the plan phase's whole surface.

    // --- floorplan ---------------------------------------------------------
    const Floorplan& floorplan() const { return fp_; }
    Floorplan& floorplan() MRLG_REQUIRES(grid_write_cap()) { return fp_; }

    // --- cells --------------------------------------------------------------
    CellId add_cell(Cell cell) MRLG_REQUIRES(grid_write_cap());
    const Cell& cell(CellId id) const { return cells_[check(id)]; }
    Cell& cell(CellId id) MRLG_REQUIRES(grid_write_cap()) {
        return cells_[check(id)];
    }
    const std::vector<Cell>& cells() const { return cells_; }
    std::size_t num_cells() const { return cells_.size(); }
    /// Ids of all non-fixed cells, in id order.
    std::vector<CellId> movable_cells() const;
    /// Lookup by instance name; returns invalid id when absent.
    CellId find_cell(const std::string& name) const;

    // --- nets / pins ---------------------------------------------------------
    NetId add_net(std::string name) MRLG_REQUIRES(grid_write_cap());
    PinId add_pin(CellId cell, NetId net, double offset_x, double offset_y)
        MRLG_REQUIRES(grid_write_cap());
    const Net& net(NetId id) const { return nets_[check(id)]; }
    Net& net(NetId id) MRLG_REQUIRES(grid_write_cap()) {
        return nets_[check(id)];
    }
    const std::vector<Net>& nets() const { return nets_; }
    const Pin& pin(PinId id) const { return pins_[check(id)]; }
    const std::vector<Pin>& pins() const { return pins_; }
    NetId find_net(const std::string& name) const;

    // --- derived stats -------------------------------------------------------
    /// Movable cell area divided by non-blocked row area ("Density", Table 1).
    double density() const;
    std::size_t num_single_row_cells() const;
    std::size_t num_multi_row_cells() const;

    /// Registers every fixed cell's footprint as a floorplan blockage (so
    /// SegmentGrid::build treats them as obstacles). Call once after all
    /// fixed cells have received their positions.
    void freeze_fixed_cells() MRLG_REQUIRES(grid_write_cap());

    /// Capacity-based bytes per storage arena (cells/nets/pins/name maps,
    /// including per-element heap like names and pin lists) for the obs
    /// memory-telemetry block. O(n) walk; call it at report time, not in
    /// hot loops.
    std::vector<ArenaUsage> memory_breakdown() const;

private:
    std::size_t check(CellId id) const;
    std::size_t check(NetId id) const;
    std::size_t check(PinId id) const;

    Floorplan fp_;
    std::vector<Cell> cells_;
    std::vector<Net> nets_;
    std::vector<Pin> pins_;
    std::unordered_map<std::string, CellId> cell_by_name_;
    std::unordered_map<std::string, NetId> net_by_name_;
};

}  // namespace mrlg
