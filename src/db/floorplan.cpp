#include "db/floorplan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mrlg {

Floorplan::Floorplan(SiteCoord num_rows, SiteCoord sites_per_row,
                     double site_w_um, double site_h_um)
    : site_w_um_(site_w_um), site_h_um_(site_h_um) {
    MRLG_ASSERT(num_rows >= 0 && sites_per_row >= 0,
                "floorplan dimensions must be non-negative");
    rows_.reserve(static_cast<std::size_t>(num_rows));
    for (SiteCoord y = 0; y < num_rows; ++y) {
        rows_.push_back(Row{y, 0, sites_per_row});
    }
}

const Row& Floorplan::row(SiteCoord y) const {
    MRLG_ASSERT(has_row(y), "row index out of range");
    return rows_[static_cast<std::size_t>(y)];
}

void Floorplan::add_row(Row row) {
    MRLG_ASSERT(row.y == num_rows(),
                "rows must be added bottom-up with consecutive indices");
    MRLG_ASSERT(row.num_sites >= 0, "row width must be non-negative");
    rows_.push_back(row);
}

void Floorplan::add_fence(int region, const Rect& r) {
    MRLG_ASSERT(region > 0, "fence region ids start at 1 (0 is the core)");
    for (const Fence& f : fences_) {
        MRLG_ASSERT(f.region == region || !f.rect.overlaps(r),
                    "fences of different regions must not overlap");
    }
    fences_.push_back(Fence{region, r});
}

Rect Floorplan::die() const {
    if (rows_.empty()) {
        return Rect{};
    }
    SiteCoord x_lo = kSiteCoordMax;
    SiteCoord x_hi = kSiteCoordMin;
    for (const Row& r : rows_) {
        x_lo = std::min(x_lo, r.x);
        x_hi = std::max(x_hi, static_cast<SiteCoord>(r.x + r.num_sites));
    }
    return Rect{x_lo, 0, static_cast<SiteCoord>(x_hi - x_lo), num_rows()};
}

std::int64_t Floorplan::free_site_area() const {
    std::int64_t total = 0;
    for (const Row& r : rows_) {
        total += r.num_sites;
    }
    // Subtract blockage overlap with each row. Blockages are few (macros),
    // so the quadratic loop is fine; overlapping blockages are merged per
    // row to avoid double counting.
    for (const Row& r : rows_) {
        std::vector<Span> cuts;
        const Rect row_rect{r.x, r.y, r.num_sites, 1};
        for (const Rect& b : blockages_) {
            const Rect ov = intersect(row_rect, b);
            if (!ov.empty()) {
                cuts.push_back(ov.x_span());
            }
        }
        std::sort(cuts.begin(), cuts.end(),
                  [](const Span& a, const Span& b2) { return a.lo < b2.lo; });
        SiteCoord covered_hi = kSiteCoordMin;
        for (const Span& c : cuts) {
            const SiteCoord lo = std::max(c.lo, covered_hi);
            if (c.hi > lo) {
                total -= (c.hi - lo);
                covered_hi = c.hi;
            }
        }
    }
    return total;
}

}  // namespace mrlg
