#pragma once
/// \file write_cap.hpp
/// GridWriteCap: the capability ("role") that stands for the exclusive
/// right to mutate the shared placement state — the Database's cells
/// (positions, gp inputs, construction) and the SegmentGrid's segment
/// lists.
///
/// Phase discipline of the region-parallel pipeline (DESIGN.md §2c):
///
///   plan    read-only, concurrent   — mll_plan and everything it calls
///                                     must not need GridWriteCap
///   commit  mutating, serial        — mll_commit / rip-up / direct place
///                                     run with GridWriteCap held
///
/// Every mutating entry point of Database / SegmentGrid / Cell is
/// annotated MRLG_REQUIRES(grid_write_cap()); the serial orchestration
/// entry points (legalize_placement, the baselines, the detailed placer,
/// design construction in io/qa) acquire it with a GridWriteScope. Under
/// clang -Wthread-safety (the `analyze-effects` preset) a call chain from
/// the plan phase into a mutator therefore fails to compile; under other
/// compilers the annotations vanish and the types below cost nothing.
///
/// The capability is a role, not a lock: acquiring it performs no
/// synchronization (the pipeline's serial phases are already
/// single-threaded by construction), and nested GridWriteScope objects
/// are harmless no-ops. tools/analyze_effects.py enforces the read side
/// of the same contract statically, without clang (docs/ANALYSIS.md).

#include "util/annotations.hpp"

namespace mrlg {

/// The capability object. One per process; its address is its identity
/// (clang matches capability expressions syntactically, so every
/// annotation refers to it through grid_write_cap()).
class MRLG_CAPABILITY("mrlg::GridWriteCap") GridWriteCap {
public:
    GridWriteCap() = default;
    GridWriteCap(const GridWriteCap&) = delete;
    GridWriteCap& operator=(const GridWriteCap&) = delete;

    /// No-op role transitions — annotation carriers only.
    void acquire() MRLG_ACQUIRE() {}
    void release() MRLG_RELEASE() {}
};

/// The process-wide grid-write capability.
inline GridWriteCap& grid_write_cap() {
    static GridWriteCap cap;
    return cap;
}

/// Re-establishes "GridWriteCap is held" for the analysis inside a lambda
/// or callback whose enclosing function holds it (clang analyzes lambda
/// bodies as separate functions with an empty capability set). Call it as
/// the first statement of serial commit lambdas; it compiles to nothing.
inline void assert_grid_write_cap() MRLG_ASSERT_CAPABILITY(grid_write_cap()) {}

/// RAII acquisition of GridWriteCap for a serial mutating phase. The
/// non-trivial (empty) constructor/destructor keep -Wunused-variable quiet
/// at zero cost.
class MRLG_SCOPED_CAPABILITY GridWriteScope {
public:
    GridWriteScope() MRLG_ACQUIRE(grid_write_cap()) {}
    ~GridWriteScope() MRLG_RELEASE() {}
    GridWriteScope(const GridWriteScope&) = delete;
    GridWriteScope& operator=(const GridWriteScope&) = delete;
};

}  // namespace mrlg
