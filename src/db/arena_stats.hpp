#pragma once
/// \file arena_stats.hpp
/// Capacity-based memory accounting for the db storage arenas, consumed by
/// the obs memory-telemetry block (src/obs/memres.*). Lives in db/ so the
/// containers can report on themselves without depending on obs.

#include <cstddef>
#include <string>
#include <vector>

namespace mrlg {

/// One storage arena's footprint. `bytes` counts reserved capacity (what
/// the process actually holds), not size; `entries` is the live element
/// count so consumers can compute bytes-per-entry.
struct ArenaUsage {
    std::string name;
    std::size_t bytes = 0;
    std::size_t entries = 0;
};

inline std::size_t total_arena_bytes(const std::vector<ArenaUsage>& arenas) {
    std::size_t total = 0;
    for (const ArenaUsage& a : arenas) {
        total += a.bytes;
    }
    return total;
}

}  // namespace mrlg
