#pragma once
/// \file row_polish.hpp
/// Fixed-order single-row optimal placement (the classic detailed-placement
/// technique of Kahng/Tucker/Zelikovsky [9] and Pan/Viswanathan/Chu [8]
/// that the paper's introduction discusses): for one row segment whose cell
/// order is fixed, place every cell at the position minimizing the sum of
/// piecewise-linear costs (distance to each cell's wirelength-preferred x)
/// subject to non-overlap — solved exactly by cluster collapse (an
/// isotonic-regression / "clumping" argument).
///
/// The paper's point (§1): this only works when the row's cells belong to
/// that row alone. A multi-row cell couples rows, so segments containing
/// one are skipped — row_polish reports how much of the design is thereby
/// untouchable, which is precisely the motivation for MLL.

#include "db/database.hpp"
#include "db/segment.hpp"

namespace mrlg {

struct RowPolishOptions {
    /// Accept a segment's new placement only if it improves total HPWL by
    /// at least this much (um).
    double min_gain_um = 1e-9;
    int max_passes = 2;
};

struct RowPolishStats {
    std::size_t segments_total = 0;
    std::size_t segments_polished = 0;
    /// Segments skipped because a multi-row cell crosses them — the
    /// fraction of the design single-row techniques cannot touch.
    std::size_t segments_skipped_multirow = 0;
    std::size_t segments_accepted = 0;
    double hpwl_before_um = 0.0;
    double hpwl_after_um = 0.0;
    int passes = 0;

    double improvement_pct() const {
        return hpwl_before_um > 0
                   ? (1.0 - hpwl_after_um / hpwl_before_um) * 100.0
                   : 0.0;
    }
};

/// Polishes every eligible segment. Placement must be legal on entry and
/// stays legal (cells only shift within their segment, order preserved).
RowPolishStats row_polish(Database& db, SegmentGrid& grid,
                          const RowPolishOptions& opts = {});

/// Exact fixed-order 1-D solve, exposed for testing: given widths, the
/// segment span, and each cell's preferred position, returns the
/// overlap-free, order-preserving positions minimizing Σ|x_i - pref_i|.
/// (Cluster collapse with median positions — L1 isotonic regression.)
std::vector<SiteCoord> solve_fixed_order_row(
    const std::vector<SiteCoord>& widths, Span span,
    const std::vector<double>& pref);

}  // namespace mrlg
