#pragma once
/// \file detailed_placer.hpp
/// Wirelength-driven detailed placement with instant legalization — the
/// application the paper builds MLL for (§1, citing Chow et al. ISPD'14
/// and Popovych et al. DAC'14): every cell move goes through the MLL
/// kernel, so the placement is legal after every single step.
///
/// The optimizer is a classic median-move improver: each cell's optimal
/// region is the median of its connected pins (with the cell's own pins
/// excluded); the cell is moved there via remove → mll_place, the exact
/// HPWL delta is measured over the affected nets only, and the move is
/// reverted (exactly, via mll_undo) unless it improves. Multi-row cells
/// are first-class: MLL handles their row/parity constraints.

#include <cstdint>

#include "db/database.hpp"
#include "db/segment.hpp"
#include "legalize/mll.hpp"

namespace mrlg {

struct DetailedPlacementOptions {
    MllOptions mll;
    /// Improvement passes over all cells.
    int max_passes = 2;
    /// Skip cells whose preferred spot is within this many sites of the
    /// current position (saves useless churn).
    double min_move_sites = 1.0;
    /// Accept a move only if it improves total HPWL by at least this (um).
    double min_gain_um = 1e-9;
    /// Process cells in descending estimated gain (distance to median)
    /// instead of id order.
    bool gain_ordered = true;
};

struct DetailedPlacementStats {
    int passes = 0;
    std::size_t moves_attempted = 0;
    std::size_t moves_accepted = 0;
    std::size_t mll_failures = 0;
    double hpwl_before_um = 0.0;
    double hpwl_after_um = 0.0;
    double runtime_s = 0.0;

    double improvement_pct() const {
        return hpwl_before_um > 0
                   ? (1.0 - hpwl_after_um / hpwl_before_um) * 100.0
                   : 0.0;
    }
};

/// Optimizes HPWL over all movable, placed cells of `db`. The placement
/// must be legal on entry; it is legal after every accepted or rejected
/// move (instant legalization).
DetailedPlacementStats detailed_place(Database& db, SegmentGrid& grid,
                                      const DetailedPlacementOptions& opts
                                      = {});

struct SwapOptions {
    /// Candidate search radius around a cell's preferred region (sites).
    SiteCoord radius = 40;
    int max_passes = 1;
    double min_gain_um = 1e-9;
};

struct SwapStats {
    std::size_t swaps_attempted = 0;
    std::size_t swaps_accepted = 0;
    double hpwl_before_um = 0.0;
    double hpwl_after_um = 0.0;
    double runtime_s = 0.0;
};

/// Global-swap pass: exchanges pairs of placed cells with identical
/// footprint (width, height), compatible rail phases and the same fence
/// region when it lowers HPWL. A swap of identical footprints cannot
/// create overlap, so the placement stays legal trivially — the classic
/// companion operator to the median-move pass.
SwapStats swap_pass(Database& db, SegmentGrid& grid,
                    const SwapOptions& opts = {});

}  // namespace mrlg
