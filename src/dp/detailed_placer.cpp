#include "dp/detailed_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "dp/net_cache.hpp"
#include "eval/legality.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

/// Median of the other pins of the cell's nets; nullopt when unconnected.
std::optional<std::pair<double, double>> median_target(const Database& db,
                                                       CellId c) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const PinId pid : db.cell(c).pins()) {
        const Net& net = db.net(db.pin(pid).net);
        for (const PinId qid : net.pins()) {
            const Pin& q = db.pin(qid);
            if (q.cell == c) {
                continue;
            }
            const Cell& other = db.cell(q.cell);
            xs.push_back(static_cast<double>(other.x()) + q.offset_x);
            ys.push_back(static_cast<double>(other.y()) + q.offset_y);
        }
    }
    if (xs.empty()) {
        return std::nullopt;
    }
    const auto mid_x = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
    const auto mid_y = ys.begin() + static_cast<std::ptrdiff_t>(ys.size() / 2);
    std::nth_element(xs.begin(), mid_x, xs.end());
    std::nth_element(ys.begin(), mid_y, ys.end());
    return std::make_pair(*mid_x, *mid_y);
}

/// Nets whose HPWL a move can change: the target's nets plus the nets of
/// every shifted cell. Sorted: the caller folds float deltas over this
/// list, so its order must not depend on hash layout.
std::vector<NetId> affected_nets(const Database& db, CellId target,
                                 const MllResult& r) {
    std::vector<NetId> nets;
    auto add_cell_nets = [&](CellId c) {
        for (const PinId pid : db.cell(c).pins()) {
            nets.push_back(db.pin(pid).net);
        }
    };
    add_cell_nets(target);
    for (const auto& [id, old_x] : r.moved) {
        static_cast<void>(old_x);
        add_cell_nets(id);
    }
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    return nets;
}

}  // namespace

DetailedPlacementStats detailed_place(Database& db, SegmentGrid& grid,
                                      const DetailedPlacementOptions& opts) {
    GridWriteScope grid_write;
    MRLG_OBS_PHASE("dp.place");
    Timer timer;
    DetailedPlacementStats stats;
    NetHpwlCache cache(db);
    stats.hpwl_before_um = cache.total();

    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();

    for (int pass = 0; pass < opts.max_passes; ++pass) {
        MRLG_OBS_PHASE("dp.pass");
        stats.passes = pass + 1;
        std::size_t accepted_this_pass = 0;

        // Candidate order: by estimated gain (Manhattan distance to the
        // median region, microns).
        struct Candidate {
            CellId cell;
            double gain;
            double tx;
            double ty;
        };
        std::vector<Candidate> cands;
        for (const CellId c : db.movable_cells()) {
            const Cell& cell = db.cell(c);
            if (!cell.placed() || cell.pins().empty()) {
                continue;
            }
            const auto med = median_target(db, c);
            if (!med) {
                continue;
            }
            const double dx = std::abs(med->first - cell.x());
            const double dy = std::abs(med->second - cell.y());
            if (dx + dy < opts.min_move_sites) {
                continue;
            }
            cands.push_back(Candidate{c, dx * sw + dy * sh, med->first,
                                      med->second});
        }
        if (opts.gain_ordered) {
            std::stable_sort(cands.begin(), cands.end(),
                             [](const Candidate& a, const Candidate& b) {
                                 return a.gain > b.gain;
                             });
        }

        for (const Candidate& cand : cands) {
            Cell& cell = db.cell(cand.cell);
            if (!cell.placed()) {
                continue;  // displaced by an earlier move's shuffle? no —
                           // MLL never unplaces; defensive only
            }
            // Re-derive the target: earlier accepted moves shift medians.
            const auto med = median_target(db, cand.cell);
            if (!med) {
                continue;
            }
            const SiteCoord old_x = cell.x();
            const SiteCoord old_y = cell.y();

            ++stats.moves_attempted;
            grid.remove(db, cand.cell);
            const MllResult r =
                mll_place(db, grid, cand.cell, med->first, med->second,
                          opts.mll);
            if (!r.success()) {
                ++stats.mll_failures;
                grid.place(db, cand.cell, old_x, old_y);
                continue;
            }
            // Exact delta over the affected nets only.
            double delta = 0.0;
            const std::vector<NetId> nets =
                affected_nets(db, cand.cell, r);
            for (const NetId n : nets) {
                delta += cache.net_hpwl(n) - cache.cached(n);
            }
            if (delta <= -opts.min_gain_um) {
                for (const NetId n : nets) {
                    cache.refresh(n);
                }
                ++stats.moves_accepted;
                ++accepted_this_pass;
            } else {
                mll_undo(db, grid, cand.cell, r);
                grid.place(db, cand.cell, old_x, old_y);
            }
        }
        if (accepted_this_pass == 0) {
            break;  // converged
        }
    }

    stats.hpwl_after_um = cache.total();
    stats.runtime_s = timer.elapsed_s();
    MRLG_OBS_COUNT("dp.passes", stats.passes);
    MRLG_OBS_COUNT("dp.moves_attempted", stats.moves_attempted);
    MRLG_OBS_COUNT("dp.moves_accepted", stats.moves_accepted);
    MRLG_OBS_COUNT("dp.mll_failures", stats.mll_failures);
    return stats;
}

SwapStats swap_pass(Database& db, SegmentGrid& grid,
                    const SwapOptions& opts) {
    GridWriteScope grid_write;
    Timer timer;
    SwapStats stats;
    NetHpwlCache cache(db);
    stats.hpwl_before_um = cache.total();
    const double sw = db.floorplan().site_w_um();
    const double sh = db.floorplan().site_h_um();

    // Spatial buckets keyed by footprint (w, h) for candidate lookup.
    struct Key {
        SiteCoord w;
        SiteCoord h;
        bool operator==(const Key&) const = default;
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const {
            return std::hash<int>{}(k.w * 131 + k.h);
        }
    };

    auto swap_cells = [&](CellId a, CellId b) {
        assert_grid_write_cap();
        Cell& ca = db.cell(a);
        Cell& cb = db.cell(b);
        const SiteCoord ax = ca.x();
        const SiteCoord ay = ca.y();
        const SiteCoord bx = cb.x();
        const SiteCoord by = cb.y();
        grid.remove(db, a);
        grid.remove(db, b);
        grid.place(db, a, bx, by);
        grid.place(db, b, ax, ay);
    };

    MRLG_OBS_PHASE("dp.swap");
    for (int pass = 0; pass < opts.max_passes; ++pass) {
        std::unordered_map<Key, std::vector<CellId>, KeyHash> buckets;
        for (const CellId c : db.movable_cells()) {
            const Cell& cell = db.cell(c);
            if (cell.placed()) {
                buckets[Key{cell.width(), cell.height()}].push_back(c);
            }
        }
        std::size_t accepted_this_pass = 0;
        for (const CellId a : db.movable_cells()) {
            const Cell& ca = db.cell(a);
            if (!ca.placed() || ca.pins().empty()) {
                continue;
            }
            const auto med = median_target(db, a);
            if (!med) {
                continue;
            }
            // Skip cells already near their optimal region.
            if (std::abs(med->first - ca.x()) +
                    std::abs(med->second - ca.y()) <
                2.0) {
                continue;
            }
            // Best same-footprint candidate near the target region.
            const auto it = buckets.find(Key{ca.width(), ca.height()});
            if (it == buckets.end()) {
                continue;
            }
            CellId best;
            double best_gain_est = 0.0;
            for (const CellId b : it->second) {
                if (b == a) {
                    continue;
                }
                const Cell& cb = db.cell(b);
                if (!cb.placed() || cb.region() != ca.region()) {
                    continue;
                }
                if (std::abs(cb.x() - med->first) > opts.radius ||
                    std::abs(static_cast<double>(cb.y()) - med->second) *
                            sh / sw >
                        static_cast<double>(opts.radius)) {
                    continue;
                }
                // Rail compatibility in both directions.
                if (!rail_compatible(cb.y(), ca.height(),
                                     ca.rail_phase()) ||
                    !rail_compatible(ca.y(), cb.height(),
                                     cb.rail_phase())) {
                    continue;
                }
                // Cheap estimate: how much closer a gets to its median.
                const double now =
                    std::abs(ca.x() - med->first) * sw +
                    std::abs(static_cast<double>(ca.y()) - med->second) *
                        sh;
                const double then =
                    std::abs(cb.x() - med->first) * sw +
                    std::abs(static_cast<double>(cb.y()) - med->second) *
                        sh;
                if (now - then > best_gain_est) {
                    best_gain_est = now - then;
                    best = b;
                }
            }
            if (!best.valid()) {
                continue;
            }
            ++stats.swaps_attempted;
            swap_cells(a, best);
            // Exact delta over both cells' nets, in sorted order so the
            // float fold (and thus the accept decision) is reproducible.
            std::vector<NetId> nets;
            for (const PinId pid : db.cell(a).pins()) {
                nets.push_back(db.pin(pid).net);
            }
            for (const PinId pid : db.cell(best).pins()) {
                nets.push_back(db.pin(pid).net);
            }
            std::sort(nets.begin(), nets.end());
            nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
            double delta = 0.0;
            for (const NetId n : nets) {
                delta += cache.net_hpwl(n) - cache.cached(n);
            }
            if (delta <= -opts.min_gain_um) {
                for (const NetId n : nets) {
                    cache.refresh(n);
                }
                ++stats.swaps_accepted;
                ++accepted_this_pass;
            } else {
                swap_cells(a, best);  // swap back
            }
        }
        if (accepted_this_pass == 0) {
            break;
        }
    }
    stats.hpwl_after_um = cache.total();
    stats.runtime_s = timer.elapsed_s();
    return stats;
}

}  // namespace mrlg
