#include "dp/row_polish.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "dp/net_cache.hpp"
#include "util/assert.hpp"
#include "db/write_cap.hpp"

namespace mrlg {

namespace {

/// L1 isotonic regression by pool-adjacent-violators with block medians.
/// Returns non-decreasing y minimizing Σ|y_i - q_i|.
std::vector<double> pava_l1(const std::vector<double>& q) {
    struct Block {
        std::vector<double> values;
        double median;
        double med() {
            const auto mid =
                values.begin() +
                static_cast<std::ptrdiff_t>(values.size() / 2);
            std::nth_element(values.begin(), mid, values.end());
            return *mid;
        }
    };
    std::vector<Block> blocks;
    for (const double v : q) {
        blocks.push_back(Block{{v}, v});
        blocks.back().median = blocks.back().med();
        while (blocks.size() > 1 &&
               blocks[blocks.size() - 2].median >
                   blocks.back().median) {
            Block last = std::move(blocks.back());
            blocks.pop_back();
            Block& prev = blocks.back();
            prev.values.insert(prev.values.end(), last.values.begin(),
                               last.values.end());
            prev.median = prev.med();
        }
    }
    std::vector<double> y;
    y.reserve(q.size());
    for (Block& b : blocks) {
        for (std::size_t i = 0; i < b.values.size(); ++i) {
            y.push_back(b.median);
        }
    }
    return y;
}

/// Median x of the pins connected to `c` through its nets (excluding its
/// own pins); nullopt when unconnected.
std::optional<double> preferred_x(const Database& db, CellId c) {
    std::vector<double> xs;
    for (const PinId pid : db.cell(c).pins()) {
        const Net& net = db.net(db.pin(pid).net);
        for (const PinId qid : net.pins()) {
            const Pin& q = db.pin(qid);
            if (q.cell == c) {
                continue;
            }
            xs.push_back(static_cast<double>(db.cell(q.cell).x()) +
                         q.offset_x);
        }
    }
    if (xs.empty()) {
        return std::nullopt;
    }
    const auto mid = xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2);
    std::nth_element(xs.begin(), mid, xs.end());
    return *mid;
}

}  // namespace

std::vector<SiteCoord> solve_fixed_order_row(
    const std::vector<SiteCoord>& widths, Span span,
    const std::vector<double>& pref) {
    MRLG_ASSERT(widths.size() == pref.size(), "arity mismatch");
    const std::size_t n = widths.size();
    std::vector<SiteCoord> out(n);
    if (n == 0) {
        return out;
    }
    // Substitute y_i = x_i - prefix_width_i: ordering+abutment becomes
    // y non-decreasing; the span becomes y ∈ [span.lo, span.hi - Σw].
    SiteCoord total_w = 0;
    std::vector<double> q(n);
    {
        SiteCoord prefix = 0;
        for (std::size_t i = 0; i < n; ++i) {
            q[i] = pref[i] - static_cast<double>(prefix);
            prefix += widths[i];
        }
        total_w = prefix;
    }
    MRLG_ASSERT(span.length() >= total_w, "cells exceed the segment");
    const double lo = static_cast<double>(span.lo);
    const double hi = static_cast<double>(span.hi - total_w);

    std::vector<double> y = pava_l1(q);
    SiteCoord prefix = 0;
    SiteCoord prev_end = span.lo;
    for (std::size_t i = 0; i < n; ++i) {
        // Clamp into the global band (preserves monotonicity and, for
        // convex losses, optimality), then round to sites left-to-right
        // without re-introducing overlap.
        const double yc = std::clamp(y[i], lo, hi);
        SiteCoord x = static_cast<SiteCoord>(
            std::lround(yc + static_cast<double>(prefix)));
        x = std::max(x, prev_end);
        x = std::min(x, static_cast<SiteCoord>(
                            span.hi - (total_w - prefix)));
        out[i] = x;
        prev_end = x + widths[i];
        prefix += widths[i];
    }
    return out;
}

RowPolishStats row_polish(Database& db, SegmentGrid& grid,
                          const RowPolishOptions& opts) {
    GridWriteScope grid_write;
    RowPolishStats stats;
    NetHpwlCache cache(db);
    stats.hpwl_before_um = cache.total();
    stats.segments_total = grid.num_segments();

    for (int pass = 0; pass < opts.max_passes; ++pass) {
        stats.passes = pass + 1;
        std::size_t accepted_this_pass = 0;
        for (const Segment& seg : grid.segments()) {
            if (seg.cells.empty()) {
                continue;
            }
            bool has_multi_row = false;
            for (const CellId c : seg.cells) {
                if (db.cell(c).height() > 1) {
                    has_multi_row = true;
                    break;
                }
            }
            if (has_multi_row) {
                if (pass == 0) {
                    ++stats.segments_skipped_multirow;
                }
                continue;
            }
            if (pass == 0) {
                ++stats.segments_polished;
            }

            std::vector<SiteCoord> widths;
            std::vector<double> pref;
            std::vector<SiteCoord> old_x;
            widths.reserve(seg.cells.size());
            for (const CellId c : seg.cells) {
                const Cell& cell = db.cell(c);
                widths.push_back(cell.width());
                old_x.push_back(cell.x());
                const auto p = preferred_x(db, c);
                pref.push_back(p ? *p : static_cast<double>(cell.x()));
            }
            const std::vector<SiteCoord> new_x =
                solve_fixed_order_row(widths, seg.span, pref);

            // Trial-commit and measure the exact delta on affected nets.
            bool any_move = false;
            for (std::size_t i = 0; i < seg.cells.size(); ++i) {
                if (new_x[i] != old_x[i]) {
                    db.cell(seg.cells[i]).set_x(new_x[i]);
                    any_move = true;
                }
            }
            if (!any_move) {
                continue;
            }
            // Sorted: the float fold below decides accept/reject, so its
            // order must not depend on hash layout.
            std::vector<NetId> nets;
            for (const CellId c : seg.cells) {
                for (const PinId pid : db.cell(c).pins()) {
                    nets.push_back(db.pin(pid).net);
                }
            }
            std::sort(nets.begin(), nets.end());
            nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
            double delta = 0.0;
            for (const NetId n : nets) {
                delta += cache.net_hpwl(n) - cache.cached(n);
            }
            if (delta <= -opts.min_gain_um) {
                for (const NetId n : nets) {
                    cache.refresh(n);
                }
                ++stats.segments_accepted;
                ++accepted_this_pass;
            } else {
                for (std::size_t i = 0; i < seg.cells.size(); ++i) {
                    db.cell(seg.cells[i]).set_x(old_x[i]);
                }
            }
        }
        if (accepted_this_pass == 0) {
            break;
        }
    }
    stats.hpwl_after_um = cache.total();
    return stats;
}

}  // namespace mrlg
