#include "dp/net_cache.hpp"

#include <algorithm>
#include <limits>

namespace mrlg {

NetHpwlCache::NetHpwlCache(const Database& db) : db_(db) {
    hpwl_.resize(db.nets().size());
    for (std::size_t i = 0; i < db.nets().size(); ++i) {
        hpwl_[i] = net_hpwl(NetId{static_cast<NetId::underlying>(i)});
        total_ += hpwl_[i];
    }
}

double NetHpwlCache::refresh(NetId n) {
    const double fresh = net_hpwl(n);
    const double delta = fresh - hpwl_[n.index()];
    hpwl_[n.index()] = fresh;
    total_ += delta;
    return delta;
}

double NetHpwlCache::net_hpwl(NetId n) const {
    const Net& net = db_.net(n);
    if (net.degree() < 2) {
        return 0.0;
    }
    const double sw = db_.floorplan().site_w_um();
    const double sh = db_.floorplan().site_h_um();
    double xl = std::numeric_limits<double>::max();
    double xh = std::numeric_limits<double>::lowest();
    double yl = xl;
    double yh = xh;
    for (const PinId pid : net.pins()) {
        const Pin& p = db_.pin(pid);
        const Cell& c = db_.cell(p.cell);
        const double px = static_cast<double>(c.x()) + p.offset_x;
        const double py = static_cast<double>(c.y()) + p.offset_y;
        xl = std::min(xl, px);
        xh = std::max(xh, px);
        yl = std::min(yl, py);
        yh = std::max(yh, py);
    }
    return (xh - xl) * sw + (yh - yl) * sh;
}

}  // namespace mrlg
