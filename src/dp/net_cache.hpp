#pragma once
/// \file net_cache.hpp
/// Incremental per-net HPWL cache over legalized positions, shared by the
/// detailed placer and the row polisher. Recomputing only the nets a move
/// touches is what makes accept/reject loops cheap.

#include <vector>

#include "db/database.hpp"

namespace mrlg {

class NetHpwlCache {
public:
    explicit NetHpwlCache(const Database& db);

    /// Total cached HPWL (microns).
    double total() const { return total_; }
    double cached(NetId n) const { return hpwl_[n.index()]; }

    /// Recomputes `n` from current positions and returns the delta applied
    /// to the total.
    double refresh(NetId n);

    /// Fresh (uncached) HPWL of `n` at current legalized positions.
    double net_hpwl(NetId n) const;

private:
    const Database& db_;
    std::vector<double> hpwl_;
    double total_ = 0.0;
};

}  // namespace mrlg
