# Empty dependencies file for bench_ablation_eval.
# This may be replaced when dependencies are built.
