file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eval.dir/bench_ablation_eval.cpp.o"
  "CMakeFiles/bench_ablation_eval.dir/bench_ablation_eval.cpp.o.d"
  "CMakeFiles/bench_ablation_eval.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_eval.dir/bench_common.cpp.o.d"
  "bench_ablation_eval"
  "bench_ablation_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
