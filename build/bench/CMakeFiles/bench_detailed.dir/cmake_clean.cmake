file(REMOVE_RECURSE
  "CMakeFiles/bench_detailed.dir/bench_common.cpp.o"
  "CMakeFiles/bench_detailed.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_detailed.dir/bench_detailed.cpp.o"
  "CMakeFiles/bench_detailed.dir/bench_detailed.cpp.o.d"
  "bench_detailed"
  "bench_detailed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detailed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
