# Empty compiler generated dependencies file for bench_detailed.
# This may be replaced when dependencies are built.
