# Empty dependencies file for bench_fences.
# This may be replaced when dependencies are built.
