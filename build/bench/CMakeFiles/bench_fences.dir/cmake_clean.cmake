file(REMOVE_RECURSE
  "CMakeFiles/bench_fences.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fences.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fences.dir/bench_fences.cpp.o"
  "CMakeFiles/bench_fences.dir/bench_fences.cpp.o.d"
  "bench_fences"
  "bench_fences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
