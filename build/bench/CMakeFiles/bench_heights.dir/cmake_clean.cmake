file(REMOVE_RECURSE
  "CMakeFiles/bench_heights.dir/bench_common.cpp.o"
  "CMakeFiles/bench_heights.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_heights.dir/bench_heights.cpp.o"
  "CMakeFiles/bench_heights.dir/bench_heights.cpp.o.d"
  "bench_heights"
  "bench_heights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
