
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/bench_heights.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/bench_heights.dir/bench_common.cpp.o.d"
  "/root/repo/bench/bench_heights.cpp" "bench/CMakeFiles/bench_heights.dir/bench_heights.cpp.o" "gcc" "bench/CMakeFiles/bench_heights.dir/bench_heights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/mrlg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/mrlg_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/mrlg_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/legalize/CMakeFiles/mrlg_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrlg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mrlg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mrlg_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrlg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
