file(REMOVE_RECURSE
  "CMakeFiles/test_row_polish.dir/test_helpers.cpp.o"
  "CMakeFiles/test_row_polish.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_row_polish.dir/test_row_polish.cpp.o"
  "CMakeFiles/test_row_polish.dir/test_row_polish.cpp.o.d"
  "test_row_polish"
  "test_row_polish.pdb"
  "test_row_polish[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
