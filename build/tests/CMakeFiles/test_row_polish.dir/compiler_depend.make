# Empty compiler generated dependencies file for test_row_polish.
# This may be replaced when dependencies are built.
