# Empty dependencies file for test_local_region.
# This may be replaced when dependencies are built.
