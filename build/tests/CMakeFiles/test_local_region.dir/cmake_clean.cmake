file(REMOVE_RECURSE
  "CMakeFiles/test_local_region.dir/test_helpers.cpp.o"
  "CMakeFiles/test_local_region.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_local_region.dir/test_local_region.cpp.o"
  "CMakeFiles/test_local_region.dir/test_local_region.cpp.o.d"
  "test_local_region"
  "test_local_region.pdb"
  "test_local_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
