file(REMOVE_RECURSE
  "CMakeFiles/test_realization.dir/test_helpers.cpp.o"
  "CMakeFiles/test_realization.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_realization.dir/test_realization.cpp.o"
  "CMakeFiles/test_realization.dir/test_realization.cpp.o.d"
  "test_realization"
  "test_realization.pdb"
  "test_realization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
