# Empty compiler generated dependencies file for test_realization.
# This may be replaced when dependencies are built.
