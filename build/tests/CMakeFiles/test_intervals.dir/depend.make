# Empty dependencies file for test_intervals.
# This may be replaced when dependencies are built.
