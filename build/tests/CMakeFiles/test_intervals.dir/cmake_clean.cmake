file(REMOVE_RECURSE
  "CMakeFiles/test_intervals.dir/test_helpers.cpp.o"
  "CMakeFiles/test_intervals.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_intervals.dir/test_intervals.cpp.o"
  "CMakeFiles/test_intervals.dir/test_intervals.cpp.o.d"
  "test_intervals"
  "test_intervals.pdb"
  "test_intervals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
