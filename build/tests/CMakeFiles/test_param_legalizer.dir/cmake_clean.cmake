file(REMOVE_RECURSE
  "CMakeFiles/test_param_legalizer.dir/test_helpers.cpp.o"
  "CMakeFiles/test_param_legalizer.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_param_legalizer.dir/test_param_legalizer.cpp.o"
  "CMakeFiles/test_param_legalizer.dir/test_param_legalizer.cpp.o.d"
  "test_param_legalizer"
  "test_param_legalizer.pdb"
  "test_param_legalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_legalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
