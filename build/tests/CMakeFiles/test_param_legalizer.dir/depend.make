# Empty dependencies file for test_param_legalizer.
# This may be replaced when dependencies are built.
