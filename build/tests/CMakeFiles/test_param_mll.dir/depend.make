# Empty dependencies file for test_param_mll.
# This may be replaced when dependencies are built.
