file(REMOVE_RECURSE
  "CMakeFiles/test_param_mll.dir/test_helpers.cpp.o"
  "CMakeFiles/test_param_mll.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_param_mll.dir/test_param_mll.cpp.o"
  "CMakeFiles/test_param_mll.dir/test_param_mll.cpp.o.d"
  "test_param_mll"
  "test_param_mll.pdb"
  "test_param_mll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_mll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
