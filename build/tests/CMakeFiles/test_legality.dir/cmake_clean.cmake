file(REMOVE_RECURSE
  "CMakeFiles/test_legality.dir/test_helpers.cpp.o"
  "CMakeFiles/test_legality.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_legality.dir/test_legality.cpp.o"
  "CMakeFiles/test_legality.dir/test_legality.cpp.o.d"
  "test_legality"
  "test_legality.pdb"
  "test_legality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
