file(REMOVE_RECURSE
  "CMakeFiles/test_row_origins.dir/test_helpers.cpp.o"
  "CMakeFiles/test_row_origins.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_row_origins.dir/test_row_origins.cpp.o"
  "CMakeFiles/test_row_origins.dir/test_row_origins.cpp.o.d"
  "test_row_origins"
  "test_row_origins.pdb"
  "test_row_origins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_row_origins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
