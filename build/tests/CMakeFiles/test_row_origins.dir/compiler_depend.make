# Empty compiler generated dependencies file for test_row_origins.
# This may be replaced when dependencies are built.
