file(REMOVE_RECURSE
  "CMakeFiles/test_ilp_local.dir/test_helpers.cpp.o"
  "CMakeFiles/test_ilp_local.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_ilp_local.dir/test_ilp_local.cpp.o"
  "CMakeFiles/test_ilp_local.dir/test_ilp_local.cpp.o.d"
  "test_ilp_local"
  "test_ilp_local.pdb"
  "test_ilp_local[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilp_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
