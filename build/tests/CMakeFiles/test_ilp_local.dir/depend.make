# Empty dependencies file for test_ilp_local.
# This may be replaced when dependencies are built.
