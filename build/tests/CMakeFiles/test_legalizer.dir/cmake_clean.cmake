file(REMOVE_RECURSE
  "CMakeFiles/test_legalizer.dir/test_helpers.cpp.o"
  "CMakeFiles/test_legalizer.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_legalizer.dir/test_legalizer.cpp.o"
  "CMakeFiles/test_legalizer.dir/test_legalizer.cpp.o.d"
  "test_legalizer"
  "test_legalizer.pdb"
  "test_legalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
