# Empty dependencies file for test_walkthrough.
# This may be replaced when dependencies are built.
