file(REMOVE_RECURSE
  "CMakeFiles/test_walkthrough.dir/test_helpers.cpp.o"
  "CMakeFiles/test_walkthrough.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_walkthrough.dir/test_walkthrough.cpp.o"
  "CMakeFiles/test_walkthrough.dir/test_walkthrough.cpp.o.d"
  "test_walkthrough"
  "test_walkthrough.pdb"
  "test_walkthrough[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
