file(REMOVE_RECURSE
  "CMakeFiles/test_mll.dir/test_helpers.cpp.o"
  "CMakeFiles/test_mll.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_mll.dir/test_mll.cpp.o"
  "CMakeFiles/test_mll.dir/test_mll.cpp.o.d"
  "test_mll"
  "test_mll.pdb"
  "test_mll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
