# Empty compiler generated dependencies file for test_mll.
# This may be replaced when dependencies are built.
