file(REMOVE_RECURSE
  "CMakeFiles/test_ripup.dir/test_helpers.cpp.o"
  "CMakeFiles/test_ripup.dir/test_helpers.cpp.o.d"
  "CMakeFiles/test_ripup.dir/test_ripup.cpp.o"
  "CMakeFiles/test_ripup.dir/test_ripup.cpp.o.d"
  "test_ripup"
  "test_ripup.pdb"
  "test_ripup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ripup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
