# Empty dependencies file for test_ripup.
# This may be replaced when dependencies are built.
