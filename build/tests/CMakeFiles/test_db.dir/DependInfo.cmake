
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_db.cpp" "tests/CMakeFiles/test_db.dir/test_db.cpp.o" "gcc" "tests/CMakeFiles/test_db.dir/test_db.cpp.o.d"
  "/root/repo/tests/test_helpers.cpp" "tests/CMakeFiles/test_db.dir/test_helpers.cpp.o" "gcc" "tests/CMakeFiles/test_db.dir/test_helpers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/mrlg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/mrlg_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/mrlg_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/legalize/CMakeFiles/mrlg_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrlg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mrlg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mrlg_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrlg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
