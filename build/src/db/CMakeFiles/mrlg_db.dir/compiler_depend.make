# Empty compiler generated dependencies file for mrlg_db.
# This may be replaced when dependencies are built.
