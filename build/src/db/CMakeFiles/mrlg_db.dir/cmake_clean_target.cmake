file(REMOVE_RECURSE
  "libmrlg_db.a"
)
