file(REMOVE_RECURSE
  "CMakeFiles/mrlg_db.dir/database.cpp.o"
  "CMakeFiles/mrlg_db.dir/database.cpp.o.d"
  "CMakeFiles/mrlg_db.dir/floorplan.cpp.o"
  "CMakeFiles/mrlg_db.dir/floorplan.cpp.o.d"
  "CMakeFiles/mrlg_db.dir/segment.cpp.o"
  "CMakeFiles/mrlg_db.dir/segment.cpp.o.d"
  "libmrlg_db.a"
  "libmrlg_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
