file(REMOVE_RECURSE
  "libmrlg_eval.a"
)
