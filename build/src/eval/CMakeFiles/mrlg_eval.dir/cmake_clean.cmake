file(REMOVE_RECURSE
  "CMakeFiles/mrlg_eval.dir/legality.cpp.o"
  "CMakeFiles/mrlg_eval.dir/legality.cpp.o.d"
  "CMakeFiles/mrlg_eval.dir/metrics.cpp.o"
  "CMakeFiles/mrlg_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/mrlg_eval.dir/report.cpp.o"
  "CMakeFiles/mrlg_eval.dir/report.cpp.o.d"
  "libmrlg_eval.a"
  "libmrlg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
