# Empty dependencies file for mrlg_eval.
# This may be replaced when dependencies are built.
