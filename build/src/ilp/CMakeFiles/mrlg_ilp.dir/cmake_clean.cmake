file(REMOVE_RECURSE
  "CMakeFiles/mrlg_ilp.dir/branch_bound.cpp.o"
  "CMakeFiles/mrlg_ilp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/mrlg_ilp.dir/model.cpp.o"
  "CMakeFiles/mrlg_ilp.dir/model.cpp.o.d"
  "CMakeFiles/mrlg_ilp.dir/simplex.cpp.o"
  "CMakeFiles/mrlg_ilp.dir/simplex.cpp.o.d"
  "libmrlg_ilp.a"
  "libmrlg_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
