# Empty dependencies file for mrlg_ilp.
# This may be replaced when dependencies are built.
