file(REMOVE_RECURSE
  "libmrlg_ilp.a"
)
