file(REMOVE_RECURSE
  "CMakeFiles/mrlg_dp.dir/detailed_placer.cpp.o"
  "CMakeFiles/mrlg_dp.dir/detailed_placer.cpp.o.d"
  "CMakeFiles/mrlg_dp.dir/net_cache.cpp.o"
  "CMakeFiles/mrlg_dp.dir/net_cache.cpp.o.d"
  "CMakeFiles/mrlg_dp.dir/row_polish.cpp.o"
  "CMakeFiles/mrlg_dp.dir/row_polish.cpp.o.d"
  "libmrlg_dp.a"
  "libmrlg_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
