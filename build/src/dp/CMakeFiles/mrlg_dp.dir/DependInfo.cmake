
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/detailed_placer.cpp" "src/dp/CMakeFiles/mrlg_dp.dir/detailed_placer.cpp.o" "gcc" "src/dp/CMakeFiles/mrlg_dp.dir/detailed_placer.cpp.o.d"
  "/root/repo/src/dp/net_cache.cpp" "src/dp/CMakeFiles/mrlg_dp.dir/net_cache.cpp.o" "gcc" "src/dp/CMakeFiles/mrlg_dp.dir/net_cache.cpp.o.d"
  "/root/repo/src/dp/row_polish.cpp" "src/dp/CMakeFiles/mrlg_dp.dir/row_polish.cpp.o" "gcc" "src/dp/CMakeFiles/mrlg_dp.dir/row_polish.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/mrlg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrlg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/legalize/CMakeFiles/mrlg_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrlg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mrlg_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
