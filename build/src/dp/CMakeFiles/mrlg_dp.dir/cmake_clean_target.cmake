file(REMOVE_RECURSE
  "libmrlg_dp.a"
)
