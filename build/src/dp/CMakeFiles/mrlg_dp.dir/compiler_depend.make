# Empty compiler generated dependencies file for mrlg_dp.
# This may be replaced when dependencies are built.
