file(REMOVE_RECURSE
  "libmrlg_util.a"
)
