# Empty dependencies file for mrlg_util.
# This may be replaced when dependencies are built.
