file(REMOVE_RECURSE
  "CMakeFiles/mrlg_util.dir/assert.cpp.o"
  "CMakeFiles/mrlg_util.dir/assert.cpp.o.d"
  "CMakeFiles/mrlg_util.dir/logging.cpp.o"
  "CMakeFiles/mrlg_util.dir/logging.cpp.o.d"
  "CMakeFiles/mrlg_util.dir/str.cpp.o"
  "CMakeFiles/mrlg_util.dir/str.cpp.o.d"
  "CMakeFiles/mrlg_util.dir/table.cpp.o"
  "CMakeFiles/mrlg_util.dir/table.cpp.o.d"
  "libmrlg_util.a"
  "libmrlg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
