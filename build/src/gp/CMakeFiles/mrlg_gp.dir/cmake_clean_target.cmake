file(REMOVE_RECURSE
  "libmrlg_gp.a"
)
