file(REMOVE_RECURSE
  "CMakeFiles/mrlg_gp.dir/cg.cpp.o"
  "CMakeFiles/mrlg_gp.dir/cg.cpp.o.d"
  "CMakeFiles/mrlg_gp.dir/quadratic.cpp.o"
  "CMakeFiles/mrlg_gp.dir/quadratic.cpp.o.d"
  "libmrlg_gp.a"
  "libmrlg_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
