# Empty dependencies file for mrlg_gp.
# This may be replaced when dependencies are built.
