# Empty dependencies file for mrlg_io.
# This may be replaced when dependencies are built.
