file(REMOVE_RECURSE
  "CMakeFiles/mrlg_io.dir/benchmark_gen.cpp.o"
  "CMakeFiles/mrlg_io.dir/benchmark_gen.cpp.o.d"
  "CMakeFiles/mrlg_io.dir/bookshelf.cpp.o"
  "CMakeFiles/mrlg_io.dir/bookshelf.cpp.o.d"
  "CMakeFiles/mrlg_io.dir/lefdef.cpp.o"
  "CMakeFiles/mrlg_io.dir/lefdef.cpp.o.d"
  "CMakeFiles/mrlg_io.dir/profiles.cpp.o"
  "CMakeFiles/mrlg_io.dir/profiles.cpp.o.d"
  "CMakeFiles/mrlg_io.dir/svg.cpp.o"
  "CMakeFiles/mrlg_io.dir/svg.cpp.o.d"
  "libmrlg_io.a"
  "libmrlg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
