
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/benchmark_gen.cpp" "src/io/CMakeFiles/mrlg_io.dir/benchmark_gen.cpp.o" "gcc" "src/io/CMakeFiles/mrlg_io.dir/benchmark_gen.cpp.o.d"
  "/root/repo/src/io/bookshelf.cpp" "src/io/CMakeFiles/mrlg_io.dir/bookshelf.cpp.o" "gcc" "src/io/CMakeFiles/mrlg_io.dir/bookshelf.cpp.o.d"
  "/root/repo/src/io/lefdef.cpp" "src/io/CMakeFiles/mrlg_io.dir/lefdef.cpp.o" "gcc" "src/io/CMakeFiles/mrlg_io.dir/lefdef.cpp.o.d"
  "/root/repo/src/io/profiles.cpp" "src/io/CMakeFiles/mrlg_io.dir/profiles.cpp.o" "gcc" "src/io/CMakeFiles/mrlg_io.dir/profiles.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/io/CMakeFiles/mrlg_io.dir/svg.cpp.o" "gcc" "src/io/CMakeFiles/mrlg_io.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/mrlg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrlg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/legalize/CMakeFiles/mrlg_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrlg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mrlg_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
