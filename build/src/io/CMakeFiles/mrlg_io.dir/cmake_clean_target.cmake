file(REMOVE_RECURSE
  "libmrlg_io.a"
)
