
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legalize/abacus.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/abacus.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/abacus.cpp.o.d"
  "/root/repo/src/legalize/enumeration.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/enumeration.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/enumeration.cpp.o.d"
  "/root/repo/src/legalize/evaluation.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/evaluation.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/evaluation.cpp.o.d"
  "/root/repo/src/legalize/exact_local.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/exact_local.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/exact_local.cpp.o.d"
  "/root/repo/src/legalize/greedy.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/greedy.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/greedy.cpp.o.d"
  "/root/repo/src/legalize/ilp_local.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/ilp_local.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/ilp_local.cpp.o.d"
  "/root/repo/src/legalize/insertion_interval.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/insertion_interval.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/insertion_interval.cpp.o.d"
  "/root/repo/src/legalize/legalizer.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/legalizer.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/legalizer.cpp.o.d"
  "/root/repo/src/legalize/local_problem.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/local_problem.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/local_problem.cpp.o.d"
  "/root/repo/src/legalize/local_region.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/local_region.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/local_region.cpp.o.d"
  "/root/repo/src/legalize/minmax_placement.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/minmax_placement.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/minmax_placement.cpp.o.d"
  "/root/repo/src/legalize/mll.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/mll.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/mll.cpp.o.d"
  "/root/repo/src/legalize/realization.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/realization.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/realization.cpp.o.d"
  "/root/repo/src/legalize/ripup.cpp" "src/legalize/CMakeFiles/mrlg_legalize.dir/ripup.cpp.o" "gcc" "src/legalize/CMakeFiles/mrlg_legalize.dir/ripup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/mrlg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mrlg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrlg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mrlg_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
