file(REMOVE_RECURSE
  "CMakeFiles/mrlg_legalize.dir/abacus.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/abacus.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/enumeration.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/enumeration.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/evaluation.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/evaluation.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/exact_local.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/exact_local.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/greedy.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/greedy.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/ilp_local.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/ilp_local.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/insertion_interval.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/insertion_interval.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/legalizer.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/legalizer.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/local_problem.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/local_problem.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/local_region.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/local_region.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/minmax_placement.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/minmax_placement.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/mll.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/mll.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/realization.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/realization.cpp.o.d"
  "CMakeFiles/mrlg_legalize.dir/ripup.cpp.o"
  "CMakeFiles/mrlg_legalize.dir/ripup.cpp.o.d"
  "libmrlg_legalize.a"
  "libmrlg_legalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlg_legalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
