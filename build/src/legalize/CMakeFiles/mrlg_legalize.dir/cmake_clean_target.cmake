file(REMOVE_RECURSE
  "libmrlg_legalize.a"
)
