# Empty dependencies file for mrlg_legalize.
# This may be replaced when dependencies are built.
