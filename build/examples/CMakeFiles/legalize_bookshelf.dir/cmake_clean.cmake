file(REMOVE_RECURSE
  "CMakeFiles/legalize_bookshelf.dir/legalize_bookshelf.cpp.o"
  "CMakeFiles/legalize_bookshelf.dir/legalize_bookshelf.cpp.o.d"
  "legalize_bookshelf"
  "legalize_bookshelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legalize_bookshelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
