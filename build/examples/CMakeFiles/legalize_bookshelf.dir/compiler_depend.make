# Empty compiler generated dependencies file for legalize_bookshelf.
# This may be replaced when dependencies are built.
