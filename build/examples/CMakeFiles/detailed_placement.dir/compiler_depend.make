# Empty compiler generated dependencies file for detailed_placement.
# This may be replaced when dependencies are built.
