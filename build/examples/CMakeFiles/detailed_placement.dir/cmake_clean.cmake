file(REMOVE_RECURSE
  "CMakeFiles/detailed_placement.dir/detailed_placement.cpp.o"
  "CMakeFiles/detailed_placement.dir/detailed_placement.cpp.o.d"
  "detailed_placement"
  "detailed_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detailed_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
