file(REMOVE_RECURSE
  "CMakeFiles/incremental_flow.dir/incremental_flow.cpp.o"
  "CMakeFiles/incremental_flow.dir/incremental_flow.cpp.o.d"
  "incremental_flow"
  "incremental_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
