# Empty compiler generated dependencies file for gate_sizing.
# This may be replaced when dependencies are built.
