file(REMOVE_RECURSE
  "CMakeFiles/gate_sizing.dir/gate_sizing.cpp.o"
  "CMakeFiles/gate_sizing.dir/gate_sizing.cpp.o.d"
  "gate_sizing"
  "gate_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
