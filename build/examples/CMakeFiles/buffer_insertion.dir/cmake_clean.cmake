file(REMOVE_RECURSE
  "CMakeFiles/buffer_insertion.dir/buffer_insertion.cpp.o"
  "CMakeFiles/buffer_insertion.dir/buffer_insertion.cpp.o.d"
  "buffer_insertion"
  "buffer_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
