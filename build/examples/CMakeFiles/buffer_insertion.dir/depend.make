# Empty dependencies file for buffer_insertion.
# This may be replaced when dependencies are built.
