/// bench_scaling — the paper's runtime claim: legalization completes a
/// million-cell design in under two minutes; runtime grows near-linearly
/// in the cell count (each MLL call touches a constant-size window).
/// Google-benchmark over generated designs of growing size.

#include <benchmark/benchmark.h>

#include "db/segment.hpp"
#include "io/benchmark_gen.hpp"
#include "legalize/legalizer.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrlg;

void BM_LegalizeScaling(benchmark::State& state) {
    set_log_level(LogLevel::kError);
    const auto cells = static_cast<std::size_t>(state.range(0));
    GenProfile p;
    p.name = "scaling";
    p.num_single = cells * 9 / 10;
    p.num_double = cells / 10;
    p.density = 0.55;
    p.seed = 99;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);

    std::size_t unplaced = 0;
    for (auto _ : state) {
        state.PauseTiming();
        for (const CellId c : gen.db.movable_cells()) {
            if (gen.db.cell(c).placed()) {
                grid.remove(gen.db, c);
            }
        }
        state.ResumeTiming();
        const LegalizerStats s = legalize_placement(gen.db, grid);
        unplaced = s.unplaced;
        benchmark::DoNotOptimize(unplaced);
    }
    state.counters["cells"] = static_cast<double>(cells);
    state.counters["unplaced"] = static_cast<double>(unplaced);
    state.counters["cells_per_sec"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ExactLegalizeScaling(benchmark::State& state) {
    set_log_level(LogLevel::kError);
    const auto cells = static_cast<std::size_t>(state.range(0));
    GenProfile p;
    p.name = "scaling_exact";
    p.num_single = cells * 9 / 10;
    p.num_double = cells / 10;
    p.density = 0.55;
    p.seed = 99;
    GenResult gen = generate_benchmark(p);
    SegmentGrid grid = SegmentGrid::build(gen.db);
    LegalizerOptions opts;
    opts.mll.exact_evaluation = true;
    for (auto _ : state) {
        state.PauseTiming();
        for (const CellId c : gen.db.movable_cells()) {
            if (gen.db.cell(c).placed()) {
                grid.remove(gen.db, c);
            }
        }
        state.ResumeTiming();
        const LegalizerStats s = legalize_placement(gen.db, grid, opts);
        benchmark::DoNotOptimize(s.unplaced);
    }
    state.counters["cells"] = static_cast<double>(cells);
}

}  // namespace

BENCHMARK(BM_LegalizeScaling)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

BENCHMARK(BM_ExactLegalizeScaling)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

BENCHMARK_MAIN();
