/// bench_detailed — extension experiment: the detailed-placement
/// application the paper motivates MLL with (§1). Measures HPWL recovery
/// and runtime of the median-move optimizer with instant legalization on
/// Table 1 profiles, aligned vs relaxed power rails.
///
/// Flags: --scale F (default 0.01), --passes N (default 2)

#include <iostream>

#include "bench_common.hpp"
#include "dp/detailed_placer.hpp"
#include "dp/row_polish.hpp"
#include "eval/metrics.hpp"
#include "io/profiles.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const double scale = args.get_double("--scale", 0.01);
    const int passes = args.get_int("--passes", 2);

    const std::vector<std::size_t> picks = {4, 3, 8, 0};  // fft_1 etc.

    std::cout << "=== Extension: detailed placement with instant "
                 "legalization (HPWL recovery) ===\n";
    Table t({"Benchmark", "Density", "HPWL legal (m)", "HPWL dp (m)",
             "Gain %", "+swap %", "+polish %", "Rows untouchable %",
             "Moves ok/try", "MLL fails", "RT (s)"});
    const auto all = table1_benchmarks(scale);
    for (const std::size_t idx : picks) {
        GenProfile profile = all[idx].profile;
        // Extra GP noise: leaves wirelength on the table for dp to win
        // back, as a real global placement would.
        profile.gp_sigma_x = 3.0;
        profile.gp_sigma_y = 0.8;
        GenResult gen = generate_benchmark(profile);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        LegalizerOptions lopts;
        if (!legalize_placement(gen.db, grid, lopts).success) {
            std::cerr << profile.name << ": legalization failed\n";
            continue;
        }
        DetailedPlacementOptions dopts;
        dopts.max_passes = passes;
        const DetailedPlacementStats s = detailed_place(gen.db, grid, dopts);
        // Follow-up single-row polish ([8,9]-style): only touches segments
        // free of multi-row cells — its skip rate quantifies the paper's
        // §1 claim about single-row techniques.
        const SwapStats sp = swap_pass(gen.db, grid);
        const RowPolishStats rp = row_polish(gen.db, grid);
        const double occupied = static_cast<double>(
            rp.segments_polished + rp.segments_skipped_multirow);
        t.add_row({profile.name, format_fixed(gen.db.density(), 2),
                   format_fixed(s.hpwl_before_um * 1e-6, 4),
                   format_fixed(s.hpwl_after_um * 1e-6, 4),
                   format_fixed(s.improvement_pct(), 2),
                   format_fixed(sp.hpwl_before_um > 0
                                    ? (1.0 - sp.hpwl_after_um /
                                                 sp.hpwl_before_um) * 100
                                    : 0.0,
                                2),
                   format_fixed(rp.improvement_pct(), 2),
                   format_fixed(occupied > 0
                                    ? 100.0 *
                                          static_cast<double>(
                                              rp.segments_skipped_multirow) /
                                          occupied
                                    : 0.0,
                                1),
                   std::to_string(s.moves_accepted) + "/" +
                       std::to_string(s.moves_attempted),
                   std::to_string(s.mll_failures),
                   format_fixed(s.runtime_s, 2)});
    }
    t.print(std::cout);
    std::cout << "\nEvery intermediate state is legal (the [11,12]-style "
                 "instant legalization the paper enables).\n";
    return 0;
}
