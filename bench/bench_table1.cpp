/// bench_table1 — regenerates the paper's Table 1: for each of the 20
/// ISPD2015-profile benchmarks, legalize the synthetic global placement
/// with (a) the MLL algorithm ("Ours") and (b) the exact local solver
/// ("ILP" — optimal per local subproblem, the paper's lpsolve stand-in),
/// under both the power-line-aligned and relaxed constraints.
///
/// Flags:
///   --scale F     cell-count scale vs the paper (default 0.02)
///   --seed N      generator seed offset (default 0)
///   --aligned-only / --relaxed-only
///   --skip-ilp    only run MLL (exact solver is ~1-2 orders slower)
///   --csv         emit CSV instead of the aligned table

#include <iostream>

#include "bench_common.hpp"
#include "io/profiles.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

namespace {

struct RowResult {
    std::string name;
    std::size_t s_cells = 0;
    std::size_t d_cells = 0;
    double density = 0;
    double gp_hpwl_m = 0;
    RunMetrics ilp;
    RunMetrics ours;
};

void print_block(const std::string& title,
                 const std::vector<RowResult>& rows, bool have_ilp,
                 bool csv) {
    std::cout << "\n=== Table 1 — " << title << " ===\n";
    Table t({"Benchmark", "#S.Cell", "#D.Cell", "Density", "GP HPWL(m)",
             "Disp ILP", "Disp Ours", "dHPWL% ILP", "dHPWL% Ours",
             "RT ILP(s)", "RT Ours(s)"});
    double sum_disp_ilp = 0;
    double sum_disp_ours = 0;
    double sum_dh_ilp = 0;
    double sum_dh_ours = 0;
    double sum_rt_ilp = 0;
    double sum_rt_ours = 0;
    for (const RowResult& r : rows) {
        t.add_row({r.name, std::to_string(r.s_cells),
                   std::to_string(r.d_cells), format_fixed(r.density, 2),
                   format_fixed(r.gp_hpwl_m, 3),
                   have_ilp ? format_fixed(r.ilp.disp_avg_sites, 2) : "-",
                   format_fixed(r.ours.disp_avg_sites, 2),
                   have_ilp ? format_fixed(r.ilp.dhpwl_pct, 2) : "-",
                   format_fixed(r.ours.dhpwl_pct, 2),
                   have_ilp ? format_fixed(r.ilp.runtime_s, 2) : "-",
                   format_fixed(r.ours.runtime_s, 2)});
        sum_disp_ilp += r.ilp.disp_avg_sites;
        sum_disp_ours += r.ours.disp_avg_sites;
        sum_dh_ilp += r.ilp.dhpwl_pct;
        sum_dh_ours += r.ours.dhpwl_pct;
        sum_rt_ilp += r.ilp.runtime_s;
        sum_rt_ours += r.ours.runtime_s;
    }
    const double n = static_cast<double>(rows.size());
    t.add_row({"Avg.", "", "", "", "",
               have_ilp ? format_fixed(sum_disp_ilp / n, 2) : "-",
               format_fixed(sum_disp_ours / n, 2),
               have_ilp ? format_fixed(sum_dh_ilp / n, 2) : "-",
               format_fixed(sum_dh_ours / n, 2),
               have_ilp ? format_fixed(sum_rt_ilp / n, 2) : "-",
               format_fixed(sum_rt_ours / n, 2)});
    if (have_ilp && sum_disp_ours > 0 && sum_rt_ours > 0) {
        t.add_row({"N.Avg", "", "", "", "",
                   format_fixed(sum_disp_ilp / sum_disp_ours, 2), "1.00",
                   format_fixed(sum_dh_ilp / std::max(sum_dh_ours, 1e-9), 2),
                   "1.00", format_fixed(sum_rt_ilp / sum_rt_ours, 1),
                   "1.00"});
    }
    if (csv) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
}

}  // namespace

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const double scale = args.get_double("--scale", 0.02);
    const bool skip_ilp = args.has_flag("--skip-ilp");
    const bool csv = args.has_flag("--csv");
    const int seed_offset = args.get_int("--seed", 0);

    std::vector<bool> modes;  // true = power-line aligned
    if (!args.has_flag("--relaxed-only")) {
        modes.push_back(true);
    }
    if (!args.has_flag("--aligned-only")) {
        modes.push_back(false);
    }

    const std::string only = args.get_string("--only", "");
    for (const bool aligned : modes) {
        std::vector<RowResult> rows;
        for (const Table1Entry& entry : table1_benchmarks(scale)) {
            if (!only.empty() && entry.profile.name != only) {
                continue;
            }
            GenProfile profile = entry.profile;
            profile.seed += static_cast<std::uint64_t>(seed_offset);
            GenResult gen = generate_benchmark(profile);
            Database& db = gen.db;
            SegmentGrid grid = SegmentGrid::build(db);

            RowResult row;
            row.name = profile.name;
            row.s_cells = db.num_single_row_cells();
            row.d_cells = db.num_multi_row_cells();
            row.density = db.density();

            LegalizerOptions ours;
            ours.mll.check_rail = aligned;
            ours.seed = profile.seed;
            row.ours = run_legalization(db, grid, ours);
            row.gp_hpwl_m = row.ours.gp_hpwl_m;

            if (!skip_ilp) {
                reset_placement(db, grid);
                LegalizerOptions ilp = ours;
                ilp.mll.exact_evaluation = true;
                ilp.mll.use_mip = args.has_flag("--true-ilp");
                row.ilp = run_legalization(db, grid, ilp);
            }
            std::cerr << "[" << (aligned ? "aligned" : "relaxed") << "] "
                      << row.name << ": ours disp="
                      << format_fixed(row.ours.disp_avg_sites, 2)
                      << " rt=" << format_fixed(row.ours.runtime_s, 2)
                      << "s" << (skip_ilp ? "" : " | ilp disp=" +
                          format_fixed(row.ilp.disp_avg_sites, 2) + " rt=" +
                          format_fixed(row.ilp.runtime_s, 2) + "s")
                      << "\n";
            rows.push_back(std::move(row));
        }
        print_block(aligned ? "Power Line Aligned"
                            : "Power Line Not Aligned",
                    rows, !skip_ilp, csv);
    }
    return 0;
}
