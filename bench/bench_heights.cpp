/// bench_heights — extension experiment beyond the paper's evaluation:
/// the DAC'16 algorithm is formulated for arbitrary multi-row heights
/// (§2), but its benchmarks only contain double-height cells. This bench
/// sweeps the height mix (singles / doubles / triples / quads) and shows
/// the legalizer keeps succeeding with bounded displacement as taller,
/// parity-constrained cells are added.
///
/// Flags: --cells N (default 4000), --density F (default 0.6)

#include <iostream>

#include "bench_common.hpp"
#include "util/logging.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace mrlg;
using namespace mrlg::bench;

int main(int argc, char** argv) {
    Args args(argc, argv);
    set_log_level(LogLevel::kWarn);
    const std::size_t cells =
        static_cast<std::size_t>(args.get_int("--cells", 4000));
    const double density = args.get_double("--density", 0.6);

    struct Mix {
        const char* name;
        double singles, doubles, triples, quads;
    };
    const std::vector<Mix> mixes = {
        {"all-single (classic)", 1.00, 0.00, 0.00, 0.00},
        {"paper (10% double)", 0.90, 0.10, 0.00, 0.00},
        {"+triples", 0.85, 0.10, 0.05, 0.00},
        {"+quads", 0.82, 0.10, 0.05, 0.03},
        {"tall-heavy", 0.60, 0.20, 0.12, 0.08},
    };

    std::cout << "=== Extension: height-mix sweep at density "
              << format_fixed(density, 2) << " ===\n";
    Table t({"Mix", "#1r", "#2r", "#3r", "#4r", "Disp (sites)", "dHPWL %",
             "RT (s)", "Legal"});
    for (const Mix& mix : mixes) {
        GenProfile p;
        p.name = mix.name;
        p.num_single =
            static_cast<std::size_t>(mix.singles * static_cast<double>(cells));
        p.num_double =
            static_cast<std::size_t>(mix.doubles * static_cast<double>(cells));
        p.num_triple =
            static_cast<std::size_t>(mix.triples * static_cast<double>(cells));
        p.num_quad =
            static_cast<std::size_t>(mix.quads * static_cast<double>(cells));
        p.density = density;
        p.seed = 77;
        GenResult gen = generate_benchmark(p);
        SegmentGrid grid = SegmentGrid::build(gen.db);
        LegalizerOptions opts;
        const RunMetrics m = run_legalization(gen.db, grid, opts);
        t.add_row({mix.name, std::to_string(p.num_single),
                   std::to_string(p.num_double),
                   std::to_string(p.num_triple), std::to_string(p.num_quad),
                   format_fixed(m.disp_avg_sites, 3),
                   format_fixed(m.dhpwl_pct, 2),
                   format_fixed(m.runtime_s, 3), m.success ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\nTaller cells are rarer but costlier to place (taller "
                 "windows, parity for even heights); displacement grows "
                 "mildly while the flow stays legal.\n";
    return 0;
}
