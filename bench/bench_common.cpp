#include "bench_common.hpp"

#include <cstdlib>

#include "eval/legality.hpp"
#include "eval/metrics.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mrlg::bench {

Args::Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        argv_.emplace_back(argv[i]);
    }
}

double Args::get_double(const std::string& key, double def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return std::atof(argv_[i + 1].c_str());
        }
    }
    return def;
}

int Args::get_int(const std::string& key, int def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return std::atoi(argv_[i + 1].c_str());
        }
    }
    return def;
}

bool Args::has_flag(const std::string& key) const {
    for (const auto& a : argv_) {
        if (a == key) {
            return true;
        }
    }
    return false;
}

std::string Args::get_string(const std::string& key,
                             const std::string& def) const {
    for (std::size_t i = 0; i + 1 < argv_.size(); ++i) {
        if (argv_[i] == key) {
            return argv_[i + 1];
        }
    }
    return def;
}

void reset_placement(Database& db, SegmentGrid& grid) {
    for (const CellId c : db.movable_cells()) {
        if (db.cell(c).placed()) {
            grid.remove(db, c);
        }
    }
}

RunMetrics run_legalization(Database& db, SegmentGrid& grid,
                            const LegalizerOptions& opts) {
    RunMetrics m;
    m.gp_hpwl_m = hpwl_m(db, PositionSource::kGlobalPlacement);

    const LegalizerStats stats = legalize_placement(db, grid, opts);
    m.success = stats.success;
    m.runtime_s = stats.runtime_s;
    m.direct = stats.direct_placements;
    m.mll = stats.mll_successes;
    m.points_evaluated = stats.mll_points_evaluated;
    m.waves = stats.waves;
    m.conflict_requeues = stats.conflict_requeues;

    LegalityOptions lopts;
    lopts.check_rail_alignment = opts.mll.check_rail;
    lopts.num_threads = opts.num_threads;
    lopts.require_all_placed = true;
    const LegalityReport rep = check_legality(db, grid, lopts);
    if (!rep.legal) {
        MRLG_LOG(kError) << "bench produced an illegal placement ("
                         << rep.messages.size() << "+ violations)";
        m.success = false;
    }

    const DisplacementStats d = displacement_stats(db);
    m.disp_avg_sites = d.avg_sites;
    m.disp_max_sites = d.max_sites;
    m.dhpwl_pct = hpwl_delta(db) * 100.0;
    return m;
}

}  // namespace mrlg::bench
